//! FaaS design-space exploration: evaluate the eight deployment
//! architectures of §6 for a workload and print a recommendation — the
//! decision a platform team would actually make with this library.
//!
//! ```text
//! cargo run --example faas_dse [dataset]
//! ```

use lsdgnn_core::faas::dse::run_dse;
use lsdgnn_core::faas::{perf, Architecture, CostModel, InstanceSize};
use lsdgnn_core::framework::CpuClusterModel;
use lsdgnn_core::graph::DatasetConfig;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "ll".to_string());
    let dataset = DatasetConfig::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown dataset `{name}` (expected ss/ls/sl/ml/ll/syn)");
        std::process::exit(2);
    });
    let cost = CostModel::default_fitted();
    let dse = run_dse(&CpuClusterModel::default(), &cost);

    println!(
        "FaaS DSE for dataset `{}` ({} nodes at paper scale)\n",
        name, dataset.nodes
    );
    println!(
        "{:<14} {:>14} {:>14} {:>12} {:>12}",
        "architecture", "samples/s", "$/hour", "perf/$ vs cpu", "bottleneck"
    );
    let mut best: Option<(String, f64)> = None;
    for a in Architecture::ALL {
        let cell = dse
            .faas
            .iter()
            .find(|c| {
                c.arch == a.name() && c.size == InstanceSize::Medium && c.dataset == dataset.name
            })
            .expect("grid complete");
        let norm = dse.normalized_perf_per_dollar(cell);
        let binding = perf::rates_for(a, InstanceSize::Medium, &dataset).binding();
        println!(
            "{:<14} {:>12.2}M {:>13.2} {:>11.2}x {:>12}",
            a.name(),
            cell.samples_per_sec / 1e6,
            cell.dollars_per_hour,
            norm,
            binding
        );
        if best.as_ref().is_none_or(|(_, b)| norm > *b) {
            best = Some((a.name(), norm));
        }
    }
    let (winner, value) = best.expect("eight architectures evaluated");
    println!(
        "\nrecommendation: {winner} ({value:.2}x CPU performance per dollar on medium instances)"
    );
    println!(
        "paper's conclusion: mem-opt.tc wins outright (12.58x) but needs custom infrastructure;"
    );
    println!("base is deployable today; cost-opt pays off for the provider, not the user.");
}
