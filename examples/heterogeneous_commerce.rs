//! Heterogeneous + dynamic graphs: the e-commerce scenario the paper's
//! introduction motivates — users clicking and buying items over time,
//! meta-path sampling for recommendation, and sliding-window snapshots
//! feeding the unchanged sampling stack.
//!
//! ```text
//! cargo run --release --example heterogeneous_commerce
//! ```

use lsdgnn_core::graph::dynamic::DynamicGraph;
use lsdgnn_core::graph::hetero::HeteroGraphBuilder;
use lsdgnn_core::graph::NodeId;
use lsdgnn_core::sampler::{MetaPath, StreamingSampler};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let users = 200u64;
    let items = 800u64;
    let n = users + items;
    let mut rng = SmallRng::seed_from_u64(7);

    // 1. A heterogeneous user/item graph: clicks and co-purchases.
    let mut b = HeteroGraphBuilder::new(n);
    let clicks = b.add_edge_type("clicks");
    let bought_with = b.add_edge_type("bought_with");
    for u in 0..users {
        for _ in 0..12 {
            b.add_edge(clicks, NodeId(u), NodeId(users + rng.gen_range(0..items)));
        }
    }
    for i in 0..items {
        for _ in 0..4 {
            let other = users + rng.gen_range(0..items);
            if other != users + i {
                b.add_edge(bought_with, NodeId(users + i), NodeId(other));
            }
        }
    }
    let hetero = b.build();
    println!(
        "hetero graph: {} nodes, {} edges ({:?})",
        hetero.num_nodes(),
        hetero.num_edges(),
        hetero.edge_histogram()
    );

    // 2. Meta-path sampling: user -clicks-> item -bought_with-> item,
    //    the classic recommendation expansion.
    let path = MetaPath::new(&[clicks, bought_with], 5);
    let roots: Vec<NodeId> = (0..16).map(NodeId).collect();
    let batch = path.sample(&mut rng, &hetero, &StreamingSampler, &roots);
    println!(
        "meta-path sample: {} clicked items -> {} co-purchase candidates for {} users",
        batch.hops[0].len(),
        batch.hops[1].len(),
        roots.len()
    );

    // 3. The same store as a dynamic stream: events arrive with
    //    timestamps; training snapshots a sliding window.
    let mut dynamic = DynamicGraph::new(n);
    for t in 0..5_000u64 {
        let u = rng.gen_range(0..users);
        let i = users + rng.gen_range(0..items);
        dynamic.insert_edge(NodeId(u), NodeId(i), t);
    }
    for (from, to) in [(0u64, 1_000u64), (2_000, 3_000), (4_000, 5_000)] {
        let snap = dynamic.window_snapshot(from, to);
        println!(
            "window [{from}, {to}]: {} edges, avg degree {:.2}",
            snap.num_edges(),
            snap.avg_degree()
        );
    }
    println!(
        "full history: {} events, hottest user-item pair seen {} times",
        dynamic.num_events(),
        dynamic.max_pair_multiplicity()
    );
}
