//! The proof-of-concept system end to end (§7.1): the AxE discrete-event
//! simulation standing in for the 4-card FPGA server, the RISC-V/QRCH
//! control path issuing real AxE commands, and the Figure 14 comparison
//! against the CPU baseline.
//!
//! ```text
//! cargo run --release --example poc_system
//! ```

use lsdgnn_core::axe::{AxeCommand, CommandExecutor};
use lsdgnn_core::riscv::{assemble, Cpu, QrchHub};
use lsdgnn_core::PocSystem;

fn main() {
    // 1. Assemble the PoC around the paper's `ls` dataset (scaled down).
    let poc = PocSystem::scaled_down("ls", 20_000, 42);
    println!(
        "PoC: dataset {} scaled to {} nodes, AxE {} cores @ {} MHz, 4-way partitioned",
        poc.dataset.name,
        poc.graph.num_nodes(),
        poc.axe_config.cores,
        poc.axe_config.clock_mhz
    );

    // 2. Drive the timing simulation (the "measurement").
    let m = poc.run_axe(4);
    println!(
        "AxE DES: {} batches, {} samples, {:.2} ms simulated, {:.1}M samples/s",
        m.batches,
        m.samples,
        m.elapsed.as_secs_f64() * 1e3,
        m.samples_per_sec / 1e6
    );
    println!(
        "  traffic: local {} MB, remote {} MB, output {} MB, cache hit rate {:.0}%, avg outstanding {:.1}",
        m.local_bytes / 1_000_000,
        m.remote_bytes / 1_000_000,
        m.output_bytes / 1_000_000,
        m.cache_hit_rate * 100.0,
        m.avg_outstanding
    );

    // 3. The Figure 14 comparison — the timing model plus the same
    //    mini-batches served functionally through the SamplingService
    //    over the AxE backend.
    let cmp = poc.compare_against_cpu(4);
    println!(
        "one simulated FPGA ~ {:.0} vCPUs of software sampling (paper: ~894 on average); \
         serving stack produced {} samples",
        cmp.fpga_vcpu_equivalent, cmp.served_samples
    );

    // 4. The control path: a RISC-V program talks to the accelerator
    //    through QRCH queues (functional command semantics).
    let program = assemble(
        "addi x11, x0, 21      # a command operand
         qpush q0, x11         # enqueue command to the accelerator
         qpop  x12, q1         # dequeue its response
         halt",
    )
    .expect("control program assembles");
    let mut cpu = Cpu::with_device(4096, QrchHub::new());
    cpu.load_program(&program);
    cpu.run(10_000).expect("control program halts");
    println!(
        "RISC-V/QRCH: response {} in {} cycles (QRCH costs ~10 cycles per queue op)",
        cpu.reg(12),
        cpu.cycles()
    );

    // 5. Functional AxE commands (Table 4) against the real graph.
    let mut exec = CommandExecutor::new(&poc.graph, &poc.attributes, 7);
    let batch = exec.sample_2hop(&[lsdgnn_core::graph::NodeId(5)], 10);
    println!(
        "Table 4 `sample n-hop` command: {} nodes sampled across {} hops",
        batch.total_sampled(),
        batch.hops.len()
    );
    let resp = exec.execute(&AxeCommand::ReadCsr { index: 0 });
    println!("CSR read-back: {resp:?}");
}
