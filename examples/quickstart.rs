//! Quickstart: build a graph, open a Graph-Learn-style session, sample a
//! mini-batch and fetch its attributes — the user-facing API of §5.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use lsdgnn_core::framework::{GraphLearnSession, SamplerBackend};
use lsdgnn_core::graph::{generators, AttributeStore, NodeId};

fn main() {
    // A scaled-down e-commerce-like power-law graph with 64-float
    // attributes.
    let graph = generators::power_law(10_000, 9, 42);
    let attrs = AttributeStore::synthetic(graph.num_nodes(), 64, 42);
    println!(
        "graph: {} nodes, {} edges, avg degree {:.1}, max degree {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.avg_degree(),
        graph.max_degree()
    );

    // Open a session with the AxE-offloaded backend (the CPU cluster
    // backend is a one-word change).
    let mut session = GraphLearnSession::open(&graph, &attrs, SamplerBackend::Axe, 4, 7);

    // 2-hop, fanout-10 mini-batch over 8 roots — the paper's Table 2
    // sampling setup in miniature.
    let roots: Vec<NodeId> = (0..8).map(NodeId).collect();
    let batch = session.sample(&roots, 2, 10);
    println!(
        "sampled {} hop-1 and {} hop-2 neighbors for {} roots",
        batch.hops[0].len(),
        batch.hops[1].len(),
        batch.roots.len()
    );

    // Fetch attributes for everything a GNN layer would consume.
    let fetch = batch.attr_fetch_list();
    let features = session.node_attributes(&fetch);
    println!(
        "gathered {} attribute floats for {} nodes",
        features.len(),
        fetch.len()
    );

    // Negative sampling for link-prediction training.
    let negatives = session.negative_sample(&[(roots[0], batch.hops[0][0])], 10);
    println!("drew {} negatives for the first positive pair", negatives[0].len());

    session.close();
}
