//! Quickstart: build a graph, start the sampling service over a backend,
//! sample a mini-batch and fetch its attributes — the serving API of §5.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use lsdgnn_core::framework::{AxeBackend, SampleRequest, SamplingService};
use lsdgnn_core::graph::{generators, AttributeStore, NodeId};
use std::sync::Arc;

fn main() {
    // A scaled-down e-commerce-like power-law graph with 64-float
    // attributes.
    let graph = Arc::new(generators::power_law(10_000, 9, 42));
    let attrs = Arc::new(AttributeStore::synthetic(graph.num_nodes(), 64, 42));
    println!(
        "graph: {} nodes, {} edges, avg degree {:.1}, max degree {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.avg_degree(),
        graph.max_degree()
    );

    // Start the service over the AxE-offloaded backend. The CPU cluster
    // path is the one-line swap:
    //   Box::new(CpuBackend::new(&graph, &attrs, 4))
    let service =
        SamplingService::with_defaults(Box::new(AxeBackend::new(graph.clone(), attrs.clone())));

    // 2-hop, fanout-10 mini-batch over 8 roots — the paper's Table 2
    // sampling setup in miniature. The request carries its own seed, so
    // the same request is reproducible on any backend.
    let batch = service.sample(SampleRequest {
        roots: (0..8).map(NodeId).collect(),
        hops: 2,
        fanout: 10,
        seed: 7,
    });
    println!(
        "sampled {} hop-1 and {} hop-2 neighbors for {} roots",
        batch.hops[0].len(),
        batch.hops[1].len(),
        batch.roots.len()
    );

    // Fetch attributes for everything a GNN layer would consume.
    let fetch = batch.attr_fetch_list();
    let features = service.gather_attributes(&fetch);
    println!(
        "gathered {} attribute floats for {} nodes",
        features.len(),
        fetch.len()
    );

    // The service keeps the operational stats a serving fleet would
    // alarm on.
    let stats = service.stats();
    println!(
        "service: {} requests in {} dispatches, mean latency {:.0}us, backend expanded {} nodes",
        stats.requests,
        stats.dispatches,
        stats.latency.mean().as_micros_f64(),
        stats.backend.nodes_expanded
    );
    service.shutdown();
}
