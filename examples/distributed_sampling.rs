//! Distributed sampling: run the mini-AliGraph cluster (one server thread
//! per partition) on a scaled-down Table 2 dataset, show where the
//! requests go, and compare against the single-machine view — the
//! characterization workflow of §3.
//!
//! ```text
//! cargo run --example distributed_sampling
//! ```

use lsdgnn_core::framework::cluster::Cluster;
use lsdgnn_core::framework::CpuClusterModel;
use lsdgnn_core::graph::{DatasetConfig, NodeId, PartitionedGraph};

fn main() {
    // The paper's `ml` dataset (207M nodes, 5.7B edges) scaled down to an
    // executable size; attribute length and degree structure preserved.
    let dataset = DatasetConfig::by_name("ml").expect("table 2 dataset");
    let (graph, attrs) = dataset.instantiate_scaled(20_000, 1);
    println!(
        "dataset {}: scaled to {} nodes / {} edges (paper scale: {} / {})",
        dataset.name,
        graph.num_nodes(),
        graph.num_edges(),
        dataset.nodes,
        dataset.edges
    );

    for partitions in [1u32, 4, 8] {
        let pg = PartitionedGraph::new(graph.clone(), partitions).with_attributes(attrs.clone());
        let cut = pg.edge_cut_fraction();
        let cluster = Cluster::spawn(pg);
        let roots: Vec<NodeId> = (0..64).map(NodeId).collect();
        let (batch, stats) = cluster.sample_batch(
            &roots,
            dataset.sampling.hops,
            dataset.sampling.fanout as usize,
            7,
        );
        println!(
            "{partitions} server(s): {} samples, {} node expansions, remote requests {:.0}% (edge cut {:.0}%)",
            batch.total_sampled(),
            stats.nodes_expanded,
            stats.remote_fraction() * 100.0,
            cut * 100.0
        );
        cluster.shutdown();
    }

    // The timing model behind Figure 2(b): why scaling is sub-linear.
    let model = CpuClusterModel::default();
    let curve = model.scaling_curve(&[1, 5, 15]);
    println!(
        "modeled cluster speedup at 1/5/15 servers: {:.2}x / {:.2}x / {:.2}x (communication-bound)",
        curve[0], curve[1], curve[2]
    );
}
