//! Distributed sampling: serve a scaled-down Table 2 dataset through the
//! `SamplingService` over the mini-AliGraph cluster backend (one server
//! thread per partition), show where the requests go, and compare
//! against the single-machine view — the characterization workflow of §3.
//!
//! ```text
//! cargo run --example distributed_sampling
//! ```

use lsdgnn_core::framework::{
    CachedBackend, CpuBackend, CpuClusterModel, SampleRequest, SamplingService,
};
use lsdgnn_core::graph::{DatasetConfig, NodeId};

fn main() {
    // The paper's `ml` dataset (207M nodes, 5.7B edges) scaled down to an
    // executable size; attribute length and degree structure preserved.
    let dataset = DatasetConfig::by_name("ml").expect("table 2 dataset");
    let (graph, attrs) = dataset.instantiate_scaled(20_000, 1);
    println!(
        "dataset {}: scaled to {} nodes / {} edges (paper scale: {} / {})",
        dataset.name,
        graph.num_nodes(),
        graph.num_edges(),
        dataset.nodes,
        dataset.edges
    );

    for partitions in [1u32, 4, 8] {
        let backend = CpuBackend::new(&graph, &attrs, partitions);
        let cut = backend.cluster().graph().edge_cut_fraction();
        let service = SamplingService::with_defaults(Box::new(backend));
        // A burst of mini-batches: the bounded queue applies
        // backpressure, the shards coalesce, every request keeps its own
        // seed so results are reproducible.
        let tickets: Vec<_> = (0..8u64)
            .map(|b| {
                let roots: Vec<NodeId> = (0..64)
                    .map(|r| NodeId((b * 64 + r) % graph.num_nodes()))
                    .collect();
                service.submit(SampleRequest {
                    roots,
                    hops: dataset.sampling.hops,
                    fanout: dataset.sampling.fanout as usize,
                    seed: 7 + b,
                })
            })
            .collect();
        let samples: usize = tickets.into_iter().map(|t| t.wait().total_sampled()).sum();
        let stats = service.stats();
        println!(
            "{partitions} server(s): {} samples over {} requests in {} dispatches, \
             remote requests {:.0}% (edge cut {:.0}%), mean latency {:.0}us",
            samples,
            stats.requests,
            stats.dispatches,
            stats.backend.remote_fraction() * 100.0,
            cut * 100.0,
            stats.latency.mean().as_micros_f64(),
        );
        service.shutdown();
    }

    // The framework-level hot-node cache (Tech-4's "the framework already
    // caches") is one decorator away from any backend.
    let cached = CachedBackend::new(
        Box::new(CpuBackend::new(&graph, &attrs, 4)),
        2_048,
        attrs.attr_len(),
    );
    let hot: Vec<NodeId> = (0..256).map(|i| NodeId(i % 32)).collect();
    let service = SamplingService::with_defaults(Box::new(cached));
    for _ in 0..4 {
        service.gather_attributes(&hot);
    }
    println!(
        "cache-decorated backend: {} attribute floats per gather of {} hub nodes",
        hot.len() * attrs.attr_len(),
        hot.len(),
    );
    service.shutdown();

    // The timing model behind Figure 2(b): why scaling is sub-linear.
    let model = CpuClusterModel::default();
    let curve = model.scaling_curve(&[1, 5, 15]);
    println!(
        "modeled cluster speedup at 1/5/15 servers: {:.2}x / {:.2}x / {:.2}x (communication-bound)",
        curve[0], curve[1], curve[2]
    );
}
