//! End-to-end link-prediction training: the full LSD-GNN workflow —
//! distributed sampling, embedding, graphSAGE aggregation and per-batch
//! SGD — on both the CPU and the AxE-offloaded backend.
//!
//! ```text
//! cargo run --release --example train_link_prediction
//! ```

use lsdgnn_core::framework::{SamplerBackend, TrainerConfig, TrainingJob};
use lsdgnn_core::graph::DatasetConfig;

fn main() {
    let dataset = DatasetConfig::by_name("ss").expect("table 2 dataset");
    let (graph, _) = dataset.instantiate_scaled(5_000, 7);
    // Structure-correlated features (neighbors look alike) so link
    // prediction has signal to learn.
    let attrs = lsdgnn_core::graph::AttributeStore::smoothed(&graph, 16, 7);
    println!(
        "training link prediction on {} (scaled: {} nodes, {} edges)",
        dataset.name,
        graph.num_nodes(),
        graph.num_edges()
    );

    for backend in [SamplerBackend::Cpu, SamplerBackend::Axe] {
        let cfg = TrainerConfig {
            batch_size: 64,
            fanout: 10,
            negative_rate: 2,
            embed_dim: 16,
            learning_rate: 0.2,
            seed: 42,
        };
        let mut job = TrainingJob::new(&graph, &attrs, backend, 4, cfg);
        println!("\nbackend: {backend:?}");
        for epoch in 1..=6 {
            let r = job.run_epoch(8);
            println!(
                "  epoch {epoch}: mean loss {:.4} ({} roots, {} sampled)",
                r.mean_loss, r.roots, r.sampled
            );
        }
        job.finish();
    }
    println!("\n(identical convergence on both backends — the §5 near-transparent offload)");
}
