//! Collection strategies: `vec(element, size)`.

use crate::{Strategy, TestRng};
use rand::Rng;

/// Acceptable sizes for a generated collection.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec<E::Value>` with a size drawn from the range.
#[derive(Debug, Clone)]
pub struct VecStrategy<E> {
    element: E,
    size: SizeRange,
}

/// Builds a [`VecStrategy`]: each case draws a length in `size`, then
/// that many elements.
pub fn vec<E: Strategy>(element: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<E: Strategy> Strategy for VecStrategy<E> {
    type Value = Vec<E::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.rng().gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
