//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait over integer/float ranges, tuples and
//! [`collection::vec`]; [`any`] for primitives; and the [`proptest!`],
//! [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//! [`prop_assume!`] macros. Each test body runs [`CASES`] times with
//! pseudo-random inputs derived deterministically from the test name, so
//! failures reproduce across runs. No shrinking: the failing input is
//! printed as-is.

pub mod collection;

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Cases generated per property (deterministic per test name).
pub const CASES: u32 = 64;

/// Deterministic input generator handed to strategies.
#[derive(Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// Derives a generator from a test-identifying string.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(SmallRng::seed_from_u64(h))
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.0
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn new_value(&self, rng: &mut TestRng) -> f32 {
        rng.rng().gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident/$i:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Full-range strategy for a primitive type (the `any::<T>()` form).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// Builds the full-range strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(core::marker::PhantomData)
}

macro_rules! any_uint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng().next_u64() as $t
            }
        }
    )*};
}

any_uint_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.rng().gen_bool(0.5)
    }
}

impl Strategy for Any<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.rng().gen()
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert*` failed; the string describes the violation.
    Fail(String),
    /// A `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// Result type the generated test-case closures return.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs `body` for [`CASES`] deterministic cases; used by [`proptest!`].
///
/// # Panics
///
/// Panics (failing the surrounding `#[test]`) on the first case whose
/// body returns [`TestCaseError::Fail`].
pub fn run_cases(name: &str, mut body: impl FnMut(&mut TestRng) -> TestCaseResult) {
    let mut rng = TestRng::for_test(name);
    for case in 0..CASES {
        match body(&mut rng) {
            Ok(()) | Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed on case {case}: {msg}")
            }
        }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy,
        TestCaseError, TestCaseResult,
    };

    /// Alias module matching real proptest's `prop::` prelude export.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over [`CASES`](crate::CASES)
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases(stringify!($name), |prop_rng| {
                $(let $arg = $crate::Strategy::new_value(&($strat), prop_rng);)+
                $body
                Ok(())
            });
        }
        $crate::proptest! { $($rest)* }
    };
}

/// Asserts inside a property body; fails the case instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Range strategies stay in bounds.
        #[test]
        fn ranges_in_bounds(a in 3u64..17, b in 1usize..=4, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!((0.0..1.0).contains(&f));
        }

        /// Tuple and vec strategies compose.
        #[test]
        fn composite_strategies(pairs in crate::collection::vec((0u32..10, 0u32..10), 0..50)) {
            prop_assert!(pairs.len() < 50);
            for (x, y) in pairs {
                prop_assert!(x < 10 && y < 10);
            }
        }

        /// Assumptions reject without failing.
        #[test]
        fn assume_skips(v in any::<u8>()) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let s = 0u64..1000;
        for _ in 0..16 {
            assert_eq!(
                crate::Strategy::new_value(&s, &mut a),
                crate::Strategy::new_value(&s, &mut b)
            );
        }
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failing_property_panics() {
        crate::run_cases("always_fails", |_| {
            Err(crate::TestCaseError::Fail("nope".into()))
        });
    }
}
