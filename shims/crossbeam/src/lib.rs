//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the subset of crossbeam it uses: [`channel`], an MPMC
//! bounded/unbounded channel built on `Mutex` + `Condvar`. Bounded
//! sends block when the queue is full (the backpressure the
//! `SamplingService` relies on); receivers are cloneable so a sharded
//! worker pool can pull from one shared queue.

pub mod channel;
