//! Multi-producer multi-consumer channels with optional capacity bounds.
//!
//! API-compatible (for the operations this workspace uses) with
//! `crossbeam-channel`: [`unbounded`], [`bounded`], cloneable
//! [`Sender`]/[`Receiver`], blocking `send`/`recv`, `try_*` variants and
//! `recv_timeout`. Disconnection follows crossbeam semantics: `recv`
//! drains remaining messages before reporting disconnect; `send` fails
//! once every receiver is gone.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are dropped.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

// Like real crossbeam, Debug does not require `T: Debug` — the payload
// is elided so `expect` works on channels of non-Debug messages.
impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Error returned by [`Sender::try_send`].
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded queue is at capacity.
    Full(T),
    /// All receivers are dropped.
    Disconnected(T),
}

impl<T> std::fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message is currently queued.
    Empty,
    /// The channel is empty and all senders are dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and all senders are dropped.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn disconnected_tx(&self) -> bool {
        self.senders.load(Ordering::SeqCst) == 0
    }

    fn disconnected_rx(&self) -> bool {
        self.receivers.load(Ordering::SeqCst) == 0
    }
}

/// The sending half; cloneable for multiple producers.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; cloneable for multiple consumers.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

/// Creates a channel with no capacity bound: sends never block.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a channel holding at most `cap` in-flight messages: sends
/// block (backpressure) once the queue is full.
///
/// # Panics
///
/// Panics if `cap` is zero (rendezvous channels are not supported by
/// this shim).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "zero-capacity channels are not supported");
    with_capacity(Some(cap))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Sends `value`, blocking while a bounded queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] with the value when all receivers are gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut queue = self.shared.queue.lock().expect("channel lock");
        loop {
            if self.shared.disconnected_rx() {
                return Err(SendError(value));
            }
            match self.shared.capacity {
                Some(cap) if queue.len() >= cap => {
                    queue = self.shared.not_full.wait(queue).expect("channel lock");
                }
                _ => break,
            }
        }
        queue.push_back(value);
        drop(queue);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Sends without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`TrySendError::Full`] when a bounded queue is at
    /// capacity, [`TrySendError::Disconnected`] when all receivers are
    /// gone.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut queue = self.shared.queue.lock().expect("channel lock");
        if self.shared.disconnected_rx() {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = self.shared.capacity {
            if queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        queue.push_back(value);
        drop(queue);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().expect("channel lock").len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Wake receivers blocked on an empty queue so they observe
            // the disconnect.
            let _guard = self.shared.queue.lock().expect("channel lock");
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives the next message, blocking while the queue is empty.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the queue is empty and all senders are
    /// gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().expect("channel lock");
        loop {
            if let Some(v) = queue.pop_front() {
                drop(queue);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if self.shared.disconnected_tx() {
                return Err(RecvError);
            }
            queue = self.shared.not_empty.wait(queue).expect("channel lock");
        }
    }

    /// Receives without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is queued,
    /// [`TryRecvError::Disconnected`] when additionally all senders are
    /// gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.queue.lock().expect("channel lock");
        match queue.pop_front() {
            Some(v) => {
                drop(queue);
                self.shared.not_full.notify_one();
                Ok(v)
            }
            None if self.shared.disconnected_tx() => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Receives, blocking at most `timeout`.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] when the deadline passes,
    /// [`RecvTimeoutError::Disconnected`] on a drained, sender-less
    /// channel.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.queue.lock().expect("channel lock");
        loop {
            if let Some(v) = queue.pop_front() {
                drop(queue);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if self.shared.disconnected_tx() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (q, result) = self
                .shared
                .not_empty
                .wait_timeout(queue, deadline - now)
                .expect("channel lock");
            queue = q;
            if result.timed_out() && queue.is_empty() {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().expect("channel lock").len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A blocking iterator over messages; ends on disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.shared.queue.lock().expect("channel lock");
            self.shared.not_full.notify_all();
        }
    }
}

/// Blocking message iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_round_trip_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_reports_disconnect_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_send_blocks_until_capacity_frees() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        let t = thread::spawn(move || tx.send(3));
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn mpmc_consumers_partition_the_stream() {
        let (tx, rx) = bounded(16);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for i in 0..1000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
    }
}
