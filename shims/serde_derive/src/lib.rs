//! Offline stand-in for `serde_derive`: the derives expand to nothing.
//!
//! The workspace tags config structs `#[derive(Serialize, Deserialize)]`
//! for future interchange but never serializes them (there is no
//! `serde_json` in the tree), so empty expansions keep every annotation
//! compiling without crates.io access.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
