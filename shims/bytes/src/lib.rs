//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset the MoF codec uses: [`BytesMut`] as a growable
//! write buffer ([`BufMut`]), and [`Buf`] over `&[u8]` as an advancing
//! little-endian read cursor. Wire formats produced by this shim are
//! byte-identical to those of the real crate (plain little-endian
//! writes), so the MoF frame layouts are unaffected.

/// An advancing read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes as a slice.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is exhausted.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two bytes remain.
    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than four bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than eight bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// A sink for sequential byte writes.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable, uniquely owned byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The written bytes as an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(0xAB);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0102_0304_0506_0708);
        buf.put_slice(&[9, 9]);
        let bytes = buf.to_vec();
        let mut cursor: &[u8] = &bytes;
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_u16_le(), 0x1234);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(cursor.remaining(), 2);
        assert_eq!(cursor.chunk(), &[9, 9]);
    }

    #[test]
    fn layout_is_little_endian() {
        let mut buf = BytesMut::new();
        buf.put_u16_le(0x0102);
        assert_eq!(&buf[..], &[0x02, 0x01]);
    }
}
