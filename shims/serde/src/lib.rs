//! Offline stand-in for the `serde` facade crate.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derives so existing
//! `#[derive(...)]` annotations compile unchanged without crates.io
//! access. No serialization actually happens in this workspace.

pub use serde_derive::{Deserialize, Serialize};
