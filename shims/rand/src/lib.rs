//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the *subset* of the `rand 0.8` API it actually uses:
//! [`SmallRng`](rngs::SmallRng) (xoshiro256++ seeded with SplitMix64),
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`), and
//! [`SeedableRng::seed_from_u64`]. Semantics match `rand` (uniform
//! ranges, 53-bit float precision); the exact output streams do not,
//! which is fine because every consumer seeds explicitly and asserts
//! distributional or structural properties, not golden values.

pub mod rngs;

pub use rngs::SmallRng;

/// Core RNG interface: a source of uniform random words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from the generator's full range
/// (the `Standard` distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 bits of mantissa, uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 bits of mantissa, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn uniformly from (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// The user-facing extension trait: `gen`, `gen_range`, `gen_bool`.
pub trait Rng: RngCore {
    /// Draws a value of `T` from its full-range uniform distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        <f64 as Standard>::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let f: f64 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i: usize = rng.gen_range(0..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.8)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((0.79..0.81).contains(&rate), "rate {rate}");
    }

    #[test]
    fn unit_floats_are_uniform_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 100_000.0;
        assert!((0.49..0.51).contains(&mean), "mean {mean}");
    }
}
