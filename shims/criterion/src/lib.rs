//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::bench_function`],
//! benchmark groups with [`BenchmarkGroup::bench_with_input`], [`black_box`]
//! and [`BenchmarkId`] — over a simple wall-clock measurement loop: a short
//! warm-up, then timed batches until a fixed budget elapses, reporting
//! mean ns/iteration. No statistical analysis, HTML reports, or saved
//! baselines; good enough to compare variants in one run and to keep
//! `cargo bench` compiling and running offline.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benched computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_id: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the measured closure.
#[derive(Debug)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly under measurement.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: stabilize caches/branch predictors and estimate cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(50) {
            black_box(routine());
            warmup_iters += 1;
        }
        let est = warmup_start.elapsed() / warmup_iters.max(1) as u32;
        // Measurement: batches sized to the estimate, ~200ms budget.
        let batch = (Duration::from_millis(10).as_nanos() / est.as_nanos().max(1)).max(1) as u64;
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        while start.elapsed() < budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.total += t0.elapsed();
            self.iters += batch;
        }
    }
}

fn report(name: &str, total: Duration, iters: u64) {
    let per_iter = total.as_nanos() as f64 / iters.max(1) as f64;
    let (value, unit) = if per_iter >= 1e9 {
        (per_iter / 1e9, "s")
    } else if per_iter >= 1e6 {
        (per_iter / 1e6, "ms")
    } else if per_iter >= 1e3 {
        (per_iter / 1e3, "µs")
    } else {
        (per_iter, "ns")
    };
    println!("{name:<48} {value:>10.3} {unit}/iter  ({iters} iters)");
}

fn run_one(name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    report(name, b.total, b.iters);
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample-size hint; accepted for API compatibility, unused by the
    /// fixed-budget loop.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_accept_inputs_and_ids() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("f", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }
}
