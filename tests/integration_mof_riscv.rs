//! Integration of the MoF protocol with the graph/sampling stack and of
//! the RISC-V control path with the AxE command set: a remote sampling
//! transaction carried over real encoded frames, end to end.

use lsdgnn_core::graph::{generators, AttributeStore, NodeId};
use lsdgnn_core::mof::{
    bdi_compress, bdi_decompress, ReadRequestPackage, ReadResponsePackage, ReliableChannel,
};
use lsdgnn_core::riscv::{assemble, Cpu, QrchHub};
use lsdgnn_core::sampler::{NeighborSampler, StreamingSampler};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A "remote server" that answers MoF read-request packages from its
/// attribute store (4-byte words addressed by node id * attr bytes).
fn serve_mof(store: &AttributeStore, pkg: &ReadRequestPackage) -> ReadResponsePackage {
    let attr_bytes = store.bytes_per_node() as usize;
    let mut data = Vec::with_capacity(pkg.request_count() * pkg.request_bytes as usize);
    for i in 0..pkg.request_count() {
        let addr = pkg.address(i);
        let node = NodeId(addr / attr_bytes as u64);
        let attr = store.get(node);
        for f in attr.iter().take(pkg.request_bytes as usize / 4) {
            data.extend_from_slice(&f.to_le_bytes());
        }
    }
    ReadResponsePackage::new(pkg.seq, pkg.request_bytes, data).expect("valid response")
}

#[test]
fn remote_attribute_fetch_over_encoded_mof_frames() {
    // Sample neighbors locally, fetch their attributes "remotely" through
    // encoded+decoded MoF packages, and verify against the ground truth.
    let graph = generators::power_law(1_000, 8, 21);
    let store = AttributeStore::synthetic(1_000, 16, 21);
    let attr_bytes = store.bytes_per_node() as u32;

    let mut rng = SmallRng::seed_from_u64(2);
    let picked = StreamingSampler.sample(&mut rng, graph.neighbors(NodeId(3)), 8);
    assert!(!picked.is_empty());

    // Build one packed request for all sampled nodes (Tech-1).
    let base = picked.iter().map(|v| v.0).min().unwrap() * attr_bytes as u64;
    let offsets: Vec<u32> = picked
        .iter()
        .map(|v| (v.0 * attr_bytes as u64 - base) as u32)
        .collect();
    let pkg = ReadRequestPackage::new(1, base, &offsets, attr_bytes as u16).unwrap();

    // Wire round trip with CRC on both directions.
    let decoded = ReadRequestPackage::decode(&pkg.encode()).unwrap();
    let resp = serve_mof(&store, &decoded);
    let resp = ReadResponsePackage::decode(&resp.encode()).unwrap();

    for (i, v) in picked.iter().enumerate() {
        let got = resp.response(i);
        let want: Vec<u8> = store.get(*v).iter().flat_map(|f| f.to_le_bytes()).collect();
        assert_eq!(got, &want[..], "attribute mismatch for {v}");
    }
}

#[test]
fn packed_fetch_survives_lossy_link() {
    // The reliability layer delivers every frame of a multi-package fetch
    // in order despite drops.
    let mut ch: ReliableChannel<Vec<u8>> = ReliableChannel::new(4);
    let frames: Vec<Vec<u8>> = (0..10u32)
        .map(|i| {
            ReadRequestPackage::new(i, i as u64 * 4096, &[0, 64, 128], 64)
                .unwrap()
                .encode()
        })
        .collect();
    for f in &frames {
        ch.push(f.clone());
    }
    let mut n = 0u32;
    ch.run(|_| {
        n += 1;
        n.is_multiple_of(4)
    });
    assert_eq!(ch.received().len(), frames.len());
    for (got, want) in ch.received().iter().zip(&frames) {
        assert_eq!(got, want);
        // And every delivered frame still decodes (CRC intact).
        assert!(ReadRequestPackage::decode(got).is_ok());
    }
    assert!(ch.efficiency() < 1.0, "drops occurred");
}

#[test]
fn address_compression_round_trips_on_sampling_addresses() {
    // Table 6's address-compression path on realistic sampling addresses.
    let graph = generators::power_law(5_000, 8, 22);
    let mut rng = SmallRng::seed_from_u64(3);
    let picked = StreamingSampler.sample(&mut rng, graph.neighbors(NodeId(100)), 32);
    let addrs: Vec<u64> = picked.iter().map(|v| 0x4000_0000 + v.0 * 288).collect();
    let block = bdi_compress(&addrs);
    assert_eq!(bdi_decompress(&block).unwrap(), addrs);
}

#[test]
fn riscv_program_drives_a_command_sequence() {
    // A control loop pushes 16 commands through QRCH and accumulates the
    // responses — the §5 software stack's lowest layer.
    let program = assemble(
        "       addi x10, x0, 16
                addi x11, x0, 3
                addi x12, x0, 0
        loop:   qpush q0, x11
                qpop  x13, q1
                add   x12, x12, x13
                addi  x11, x11, 1
                addi  x10, x10, -1
                bne   x10, x0, loop
                halt",
    )
    .unwrap();
    let mut cpu = Cpu::with_device(8 * 1024, QrchHub::new());
    cpu.load_program(&program);
    cpu.run(100_000).unwrap();
    // f(x) = 2x + 1 over x = 3..19.
    let expect: u32 = (3..19).map(|x| 2 * x + 1).sum();
    assert_eq!(cpu.reg(12), expect);
    assert_eq!(cpu.device().ops(), 16);
}

#[test]
fn mmio_and_qrch_paths_agree_on_results() {
    // Same accelerator, two interfaces: results identical, costs wildly
    // different (Table 7).
    let qrch_prog = assemble("addi x11, x0, 9\nqpush q0, x11\nqpop x12, q1\nhalt").unwrap();
    let mmio_prog = assemble(
        "addi x11, x0, 9
         lui  x20, 0x80000
         sw   x11, 0(x20)
         lw   x12, 4(x20)
         halt",
    )
    .unwrap();
    let mut a = Cpu::with_device(4096, QrchHub::new());
    a.load_program(&qrch_prog);
    a.run(10_000).unwrap();
    let mut b = Cpu::with_device(4096, QrchHub::new());
    b.load_program(&mmio_prog);
    b.run(10_000).unwrap();
    assert_eq!(a.reg(12), b.reg(12));
    assert!(b.cycles() > a.cycles() + 100, "MMIO must cost far more");
}
