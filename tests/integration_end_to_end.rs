//! End-to-end integration: dataset → distributed sampling → embedding →
//! graphSAGE-max → DSSM scoring, exercising graph, framework, sampler and
//! nn crates together (the paper's Table 3 application in miniature).

use lsdgnn_core::framework::{GraphLearnSession, SamplerBackend};
use lsdgnn_core::graph::{DatasetConfig, NodeId};
use lsdgnn_core::nn::{Dssm, Linear, Matrix, SageMaxLayer};

/// Runs the full pipeline for one mini-batch and returns the DSSM scores.
fn run_pipeline(backend: SamplerBackend, seed: u64) -> Vec<f32> {
    let dataset = DatasetConfig::by_name("ss").expect("table 2 dataset");
    let (graph, attrs) = dataset.instantiate_scaled(3_000, seed);
    let attr_len = attrs.attr_len();
    let mut session = GraphLearnSession::open(&graph, &attrs, backend, 4, seed);

    // Sample a 16-root, 1-hop, fanout-5 batch.
    let roots: Vec<NodeId> = (0..16).map(NodeId).collect();
    let batch = session.sample(&roots, 1, 5);
    assert_eq!(batch.hops.len(), 1);
    assert!(!batch.hops[0].is_empty(), "power-law roots have neighbors");

    // Embed raw attributes to 32 dims.
    let embed = Linear::new(attr_len, 32, true, seed);
    let root_feats = Matrix::from_vec(roots.len(), attr_len, session.node_attributes(&roots));
    let neigh_feats = Matrix::from_vec(
        batch.hops[0].len(),
        attr_len,
        session.node_attributes(&batch.hops[0]),
    );
    let root_emb = embed.forward(&root_feats);
    let neigh_emb = embed.forward(&neigh_feats);

    // Adjacency: samples appear in parent-major order, so carve runs by
    // walking the hop list against each root's neighbor membership.
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); roots.len()];
    let mut cursor = 0usize;
    for (i, &root) in roots.iter().enumerate() {
        let deg = graph.degree(root).min(5) as usize;
        for _ in 0..deg {
            if cursor < batch.hops[0].len() {
                adjacency[i].push(cursor);
                cursor += 1;
            }
        }
    }

    // graphSAGE-max layer + DSSM head.
    let sage = SageMaxLayer::new(32, 32, seed + 1);
    let hidden = sage.forward(&root_emb, &neigh_emb, &adjacency);
    assert_eq!(hidden.shape(), (roots.len(), 32));

    let dssm = Dssm::new(32, &[32, 32], seed + 2);
    let scores = dssm.score(&hidden, &hidden);
    session.close();
    scores
}

#[test]
fn pipeline_produces_valid_scores_on_cpu_backend() {
    let scores = run_pipeline(SamplerBackend::Cpu, 1);
    assert_eq!(scores.len(), 16);
    for s in &scores {
        assert!((-1.0..=1.0).contains(s), "cosine score out of range: {s}");
        assert!(s.is_finite());
    }
}

#[test]
fn pipeline_produces_valid_scores_on_axe_backend() {
    let scores = run_pipeline(SamplerBackend::Axe, 2);
    assert_eq!(scores.len(), 16);
    assert!(scores.iter().all(|s| s.is_finite()));
}

#[test]
fn pipeline_is_deterministic_per_seed() {
    let a = run_pipeline(SamplerBackend::Axe, 3);
    let b = run_pipeline(SamplerBackend::Axe, 3);
    assert_eq!(a, b);
}

#[test]
fn sampled_subtrees_respect_graph_structure() {
    let dataset = DatasetConfig::by_name("ml").unwrap();
    let (graph, attrs) = dataset.instantiate_scaled(2_000, 5);
    let mut session = GraphLearnSession::open(&graph, &attrs, SamplerBackend::Cpu, 3, 5);
    let roots: Vec<NodeId> = (10..20).map(NodeId).collect();
    let batch = session.sample(&roots, 2, 4);
    // Every hop-1 node neighbors some root; every hop-2 node neighbors
    // some hop-1 node.
    for v in &batch.hops[0] {
        assert!(roots.iter().any(|&r| graph.has_edge(r, *v)));
    }
    for v in &batch.hops[1] {
        assert!(batch.hops[0].iter().any(|&u| graph.has_edge(u, *v)));
    }
    session.close();
}

#[test]
fn figure3_breakdown_consistent_with_sampling_rate_measurement() {
    // Feed the e2e model a sampling rate derived from the CPU model and
    // confirm the paper's both-modes shape emerges.
    use lsdgnn_core::framework::CpuClusterModel;
    use lsdgnn_core::nn::E2eModel;
    let cpu = CpuClusterModel::default();
    // A 5-server, 120-worker instance (Table 3).
    let m = E2eModel {
        sampling_rate: cpu.vcpu_rate(5) * 120.0,
        ..E2eModel::default()
    };
    let train = m.breakdown(true);
    let infer = m.breakdown(false);
    assert!(train.sampling_fraction() > 0.5);
    assert!(infer.sampling_fraction() > train.sampling_fraction());
}

#[test]
fn full_pipeline_training_quality_matches_across_samplers() {
    // The system-level Tech-2 claim: swapping streaming sampling for
    // exact sampling does not change downstream model quality. Build
    // community-correlated features, aggregate sampled neighborhoods,
    // train a link predictor, compare accuracies.
    use lsdgnn_core::graph::generators;
    use lsdgnn_core::nn::{LinkPredictor, Matrix, SageMaxLayer};
    use lsdgnn_core::sampler::{NeighborSampler, StandardSampler, StreamingSampler};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    let (graph, labels) = generators::two_community(300, 0.12, 0.02, 9);
    let n = graph.num_nodes() as usize;

    // Features: community direction + noise.
    let mut rng = SmallRng::seed_from_u64(10);
    let mut feats = Matrix::zeros(n, 8);
    for (v, &label) in labels.iter().enumerate() {
        let sign = if label == 1 { 1.0 } else { -1.0 };
        for c in 0..8 {
            // Seed triage: the unsuffixed float literals left `gen_range`'s
            // type ambiguous (f64 fallback) against `Matrix::set`'s f32
            // column — pin the range to f32.
            feats.set(v, c, sign + rng.gen_range(-0.5f32..0.5));
        }
    }

    let run = |use_streaming: bool| -> f64 {
        let mut rng = SmallRng::seed_from_u64(11);
        let sage = SageMaxLayer::new(8, 8, 12);
        // Sampled adjacency: up to 5 neighbors per node.
        let mut adjacency = Vec::with_capacity(n);
        for v in 0..n {
            let ns = graph.neighbors(lsdgnn_core::graph::NodeId(v as u64));
            let picked = if use_streaming {
                StreamingSampler.sample(&mut rng, ns, 5)
            } else {
                StandardSampler.sample(&mut rng, ns, 5)
            };
            adjacency.push(picked.iter().map(|p| p.index()).collect::<Vec<_>>());
        }
        let embeddings = sage.forward(&feats, &feats, &adjacency);

        // Positives: same-community edges; negatives: cross-community
        // non-edges (the separable link-prediction task this head can
        // express — same-community non-edges are indistinguishable from
        // edges under a Hadamard feature).
        let positives: Vec<(usize, usize)> = graph
            .edges()
            .filter(|(u, v)| labels[u.index()] == labels[v.index()])
            .step_by(3)
            .map(|(u, v)| (u.index(), v.index()))
            .take(200)
            .collect();
        let mut negatives = Vec::new();
        let mut nrng = SmallRng::seed_from_u64(13);
        while negatives.len() < positives.len() {
            let u = nrng.gen_range(0..n);
            let v = nrng.gen_range(0..n);
            let cross = labels[u] != labels[v];
            if u != v
                && cross
                && !graph.has_edge(
                    lsdgnn_core::graph::NodeId(u as u64),
                    lsdgnn_core::graph::NodeId(v as u64),
                )
            {
                negatives.push((u, v));
            }
        }
        let mut model = LinkPredictor::new(8, 0.1);
        for _ in 0..50 {
            model.train_epoch(&embeddings, &positives, &negatives);
        }
        model.accuracy(&embeddings, &positives, &negatives)
    };

    let standard = run(false);
    let streaming = run(true);
    assert!(standard > 0.75, "standard pipeline accuracy {standard}");
    assert!(streaming > 0.75, "streaming pipeline accuracy {streaming}");
    assert!(
        (standard - streaming).abs() < 0.06,
        "sampler choice changed quality: standard {standard} vs streaming {streaming}"
    );
}
