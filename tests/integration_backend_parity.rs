//! Backend parity: the §5 transparency claim as an executable contract.
//!
//! With the same [`SampleRequest`] (same seed), every [`SamplingBackend`]
//! — the CPU cluster, the AxE offload, and either wrapped in the
//! [`CachedBackend`] decorator — must return the *identical*
//! [`SampleBatch`] node sets, and the service must preserve that equality
//! no matter how requests are sharded or coalesced.

use lsdgnn_core::framework::{
    AxeBackend, CachedBackend, CpuBackend, SampleRequest, SamplingBackend, SamplingService,
    ServiceConfig,
};
use lsdgnn_core::graph::{generators, AttributeStore, NodeId};
use std::sync::Arc;
use std::time::Duration;

fn setup() -> (Arc<lsdgnn_core::graph::CsrGraph>, Arc<AttributeStore>) {
    let g = generators::power_law(700, 8, 123);
    let a = AttributeStore::synthetic(700, 8, 123);
    (Arc::new(g), Arc::new(a))
}

fn backends(
    graph: &Arc<lsdgnn_core::graph::CsrGraph>,
    attrs: &Arc<AttributeStore>,
) -> Vec<(&'static str, Box<dyn SamplingBackend>)> {
    vec![
        ("cpu", Box::new(CpuBackend::new(graph, attrs, 4))),
        (
            "axe",
            Box::new(AxeBackend::new(graph.clone(), attrs.clone())),
        ),
        (
            "cached-cpu",
            Box::new(CachedBackend::new(
                Box::new(CpuBackend::new(graph, attrs, 4)),
                256,
                attrs.attr_len(),
            )),
        ),
        (
            "cached-axe",
            Box::new(CachedBackend::new(
                Box::new(AxeBackend::new(graph.clone(), attrs.clone())),
                256,
                attrs.attr_len(),
            )),
        ),
    ]
}

fn request(seed: u64) -> SampleRequest {
    SampleRequest {
        roots: (0..16).map(NodeId).collect(),
        hops: 2,
        fanout: 5,
        seed,
    }
}

#[test]
fn all_backends_return_identical_batches_for_the_same_seed() {
    let (graph, attrs) = setup();
    for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
        let req = request(seed);
        let mut results = Vec::new();
        for (name, backend) in backends(&graph, &attrs) {
            results.push((name, backend.sample_neighbors(&req)));
        }
        let (ref_name, reference) = &results[0];
        for (name, batch) in &results[1..] {
            assert_eq!(
                batch, reference,
                "seed {seed}: backend `{name}` diverged from `{ref_name}`"
            );
        }
        // And different seeds actually change the draw (the contract is
        // parity, not constancy).
        if seed != 0 {
            let (_, other) = &results[0];
            assert_ne!(
                other,
                &backends(&graph, &attrs)[0].1.sample_neighbors(&request(0)),
                "seed {seed} drew the same batch as seed 0"
            );
        }
    }
}

#[test]
fn all_backends_agree_on_gathered_attributes() {
    let (graph, attrs) = setup();
    // A fetch list with repeats, hubs and tail nodes.
    let nodes: Vec<NodeId> = (0..60).map(|i| NodeId((i * i) % 700)).collect();
    let want = attrs.gather(&nodes);
    for (name, backend) in backends(&graph, &attrs) {
        assert_eq!(
            backend.gather_attributes(&nodes),
            want,
            "backend `{name}` attribute mismatch"
        );
    }
}

#[test]
fn parity_survives_the_service_pipeline() {
    // Shard scheduling and batch coalescing must not leak into results:
    // serve the same seeds through differently-tuned services over
    // different backends and compare everything.
    let (graph, attrs) = setup();
    let configs = [
        ServiceConfig {
            workers: 1,
            queue_capacity: 4,
            max_batch: 1,
            batch_deadline: Duration::ZERO,
            ..ServiceConfig::default()
        },
        ServiceConfig {
            workers: 3,
            queue_capacity: 64,
            max_batch: 8,
            batch_deadline: Duration::from_millis(5),
            ..ServiceConfig::default()
        },
    ];
    let mut all_runs: Vec<Vec<_>> = Vec::new();
    for config in configs {
        for (_, backend) in backends(&graph, &attrs) {
            let service = SamplingService::start(backend, config);
            let tickets: Vec<_> = (0..12).map(|s| service.submit(request(s))).collect();
            all_runs.push(tickets.into_iter().map(|t| t.wait()).collect());
            service.shutdown();
        }
    }
    let reference = &all_runs[0];
    for run in &all_runs[1..] {
        assert_eq!(run, reference, "service tuning or backend changed results");
    }
}

#[test]
fn cached_decorator_reports_reuse_without_changing_values() {
    let (graph, attrs) = setup();
    let cached = CachedBackend::new(
        Box::new(CpuBackend::new(&graph, &attrs, 2)),
        128,
        attrs.attr_len(),
    );
    let hubs: Vec<NodeId> = (0..64).map(|i| NodeId(i % 8)).collect();
    let want = attrs.gather(&hubs);
    for _ in 0..3 {
        assert_eq!(cached.gather_attributes(&hubs), want);
    }
    assert!(
        cached.hit_rate() > 0.5,
        "hub reuse should hit the cache: {}",
        cached.hit_rate()
    );
}
