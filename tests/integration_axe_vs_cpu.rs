//! Integration across the AxE simulation, the CPU baseline and the
//! sampler substrate: the Figure 14 comparison and the micro-architecture
//! claims at system level.

use lsdgnn_core::axe::{AccessEngine, AxeConfig};
use lsdgnn_core::graph::{DatasetConfig, PAPER_DATASETS};
use lsdgnn_core::PocSystem;

#[test]
fn fpga_replaces_hundreds_of_vcpus_geomean() {
    // Figure 14's headline: one FPGA ~ 894 vCPUs (order 10^2–10^3).
    let mut log_sum = 0.0;
    for d in &PAPER_DATASETS {
        let poc = PocSystem::scaled_down(d.name, 2_000, 9);
        let cmp = poc.compare_against_cpu(2);
        assert!(
            cmp.fpga_vcpu_equivalent > 50.0,
            "{}: equivalent {}",
            d.name,
            cmp.fpga_vcpu_equivalent
        );
        log_sum += cmp.fpga_vcpu_equivalent.ln();
    }
    let geomean = (log_sum / PAPER_DATASETS.len() as f64).exp();
    assert!(
        (100.0..3_000.0).contains(&geomean),
        "geomean vCPU equivalence {geomean} outside the paper's order of magnitude"
    );
}

#[test]
fn outstanding_requests_track_eq3_in_the_des() {
    // The DES's time-weighted outstanding-request average should be of
    // the order Equation 3 predicts for the configured budget.
    let d = DatasetConfig::by_name("ss").unwrap();
    let (g, _) = d.instantiate_scaled(2_000, 3);
    let cfg = AxeConfig::poc()
        .with_batch_size(48)
        .with_max_outstanding(64);
    let m = AccessEngine::new(cfg).run(&g, d.attr_len as usize, 2);
    assert!(
        m.avg_outstanding > 4.0,
        "massive MLP expected, got {}",
        m.avg_outstanding
    );
    assert!(
        m.avg_outstanding <= 2.0 * 64.0,
        "outstanding {} exceeds the tag budget",
        m.avg_outstanding
    );
}

#[test]
fn streaming_sampler_does_not_change_engine_results_statistically() {
    // Swapping Tech-2 streaming for the conventional sampler changes
    // timing, not the sample volume.
    let d = DatasetConfig::by_name("sl").unwrap();
    let (g, _) = d.instantiate_scaled(2_000, 4);
    let stream = AccessEngine::new(AxeConfig::poc().with_batch_size(32).with_streaming(true)).run(
        &g,
        d.attr_len as usize,
        2,
    );
    let standard = AccessEngine::new(AxeConfig::poc().with_batch_size(32).with_streaming(false))
        .run(&g, d.attr_len as usize, 2);
    let ratio = stream.samples as f64 / standard.samples as f64;
    assert!(
        (0.9..1.1).contains(&ratio),
        "sample volumes diverge: {} vs {}",
        stream.samples,
        standard.samples
    );
}

#[test]
fn four_node_poc_sees_mostly_remote_traffic() {
    // The 4-card PoC: ~3/4 of graph bytes cross the MoF fabric.
    let d = DatasetConfig::by_name("ss").unwrap();
    let (g, _) = d.instantiate_scaled(2_000, 5);
    let m = AccessEngine::new(AxeConfig::poc().with_partitions(4).with_batch_size(32)).run(
        &g,
        d.attr_len as usize,
        2,
    );
    let frac = m.remote_bytes as f64 / (m.remote_bytes + m.local_bytes) as f64;
    assert!((0.6..0.9).contains(&frac), "remote byte fraction {frac}");
}

#[test]
fn bigger_attributes_slow_the_output_bound_engine() {
    // PCIe-output-bound throughput scales inversely with attribute size —
    // the cross-dataset shape visible in Figure 14.
    let ss = DatasetConfig::by_name("ss").unwrap(); // 72 floats
    let ll = DatasetConfig::by_name("ll").unwrap(); // 152 floats
    let (g_ss, _) = ss.instantiate_scaled(2_000, 6);
    let (g_ll, _) = ll.instantiate_scaled(2_000, 6);
    let m_ss =
        AccessEngine::new(AxeConfig::poc().with_batch_size(32)).run(&g_ss, ss.attr_len as usize, 2);
    let m_ll =
        AccessEngine::new(AxeConfig::poc().with_batch_size(32)).run(&g_ll, ll.attr_len as usize, 2);
    assert!(
        m_ss.samples_per_sec > m_ll.samples_per_sec,
        "ss {} vs ll {}",
        m_ss.samples_per_sec,
        m_ll.samples_per_sec
    );
    let ratio = m_ss.samples_per_sec / m_ll.samples_per_sec;
    let attr_ratio = ll.attr_len as f64 / ss.attr_len as f64;
    assert!(
        ratio < attr_ratio * 1.5,
        "throughput ratio {ratio} inconsistent with attribute ratio {attr_ratio}"
    );
}
