//! Integration of the FaaS analytical model with the AxE discrete-event
//! simulation (the Figure 15 validation) and the end-to-end DSE headline
//! checks across crates.

use lsdgnn_core::axe::{AccessEngine, AxeConfig};
use lsdgnn_core::faas::dse::{min_cost_table, run_dse};
use lsdgnn_core::faas::perf::{bottleneck_rates, PerfInputs};
use lsdgnn_core::faas::{CostModel, InstanceSize, QuoteSet};
use lsdgnn_core::framework::CpuClusterModel;
use lsdgnn_core::graph::DatasetConfig;
use lsdgnn_core::memfabric::{MemoryTier, TierConfig};

#[test]
fn analytical_model_tracks_the_des_within_tolerance() {
    // Figure 15: the paper validates to ~1% against its hardware; our
    // model-vs-DES agreement stays within a small factor across the PoC
    // sweep and preserves ordering.
    let d = DatasetConfig::by_name("ss").unwrap();
    let (g, _) = d.instantiate_scaled(2_500, 11);
    let mut worst: f64 = 0.0;
    for (chans, cores, nodes) in [
        (None, 2usize, 1u32),
        (Some(1), 2, 1),
        (Some(4), 2, 1),
        (None, 2, 4),
        (Some(4), 4, 4),
    ] {
        let tier = TierConfig {
            local: match chans {
                None => MemoryTier::PcieHostDram,
                Some(c) => MemoryTier::FpgaLocalDram { channels: c },
            },
            remote: MemoryTier::Mof { links: 3 },
            output: MemoryTier::PciePeerToPeer,
        };
        let des = AccessEngine::new(
            AxeConfig::poc()
                .with_cores(cores)
                .with_tier(tier)
                .with_partitions(nodes)
                .with_batch_size(32),
        )
        .run(&g, d.attr_len as usize, 2);
        let model = bottleneck_rates(&PerfInputs {
            local: tier.local.link_model(),
            remote: tier.remote.link_model(),
            output: Some(tier.output.link_model()),
            output_shares_remote: false,
            cores: cores as u32,
            tags_per_core: 64,
            clock_hz: 250e6,
            avg_degree: g.avg_degree(),
            fanout: 10.0,
            attr_bytes: d.attr_len as f64 * 4.0,
            remote_fraction: 1.0 - 1.0 / nodes as f64,
        })
        .samples_per_sec();
        let err = (model - des.samples_per_sec).abs() / des.samples_per_sec;
        worst = worst.max(err);
    }
    assert!(worst < 0.35, "worst model-vs-DES error {worst}");
}

#[test]
fn dse_headline_numbers_hold_shape() {
    // The Figure 21 conclusions, end to end through cost + perf models.
    let dse = run_dse(&CpuClusterModel::default(), &CostModel::default_fitted());
    let base_decp = dse.arch_perf_per_dollar("base.decp");
    let base_tc = dse.arch_perf_per_dollar("base.tc");
    let comm_tc = dse.arch_perf_per_dollar("comm-opt.tc");
    let mem_tc = dse.arch_perf_per_dollar("mem-opt.tc");
    // Paper: 2.47x, 4.11x, 7.78x, 12.58x — assert the band and ordering.
    assert!((1.5..4.0).contains(&base_decp), "base.decp {base_decp}");
    assert!((3.0..7.0).contains(&base_tc), "base.tc {base_tc}");
    assert!((6.0..14.0).contains(&comm_tc), "comm-opt.tc {comm_tc}");
    assert!((9.0..20.0).contains(&mem_tc), "mem-opt.tc {mem_tc}");
    assert!(base_decp < base_tc && base_tc < comm_tc && comm_tc <= mem_tc);
}

#[test]
fn comm_opt_decp_gains_over_base_decp() {
    // §7.4: comm-opt.decp provides ~1.6x extra performance over base.decp.
    let dse = run_dse(&CpuClusterModel::default(), &CostModel::default_fitted());
    let gain = dse.speedup("comm-opt.decp", "base.decp");
    assert!((1.2..2.5).contains(&gain), "comm-opt.decp gain {gain}");
}

#[test]
fn cost_model_end_to_end_profile() {
    let quotes = QuoteSet::alibaba_like();
    let model = CostModel::fit(&quotes);
    let errors = model.validation_errors(&quotes);
    let mean: f64 = errors.iter().map(|(_, e)| e).sum::<f64>() / errors.len() as f64;
    assert!(mean < 0.08, "mean validation error {mean}");
    // Instances needed for the biggest graph dwarf the smallest.
    let rows = min_cost_table(&model);
    let syn_small = rows
        .iter()
        .find(|r| r.dataset == "syn" && r.size == InstanceSize::Small)
        .unwrap();
    assert!(
        syn_small.instances > 500,
        "syn on 8GB instances: {}",
        syn_small.instances
    );
}

#[test]
fn per_instance_perf_is_consistent_between_dse_and_perf_module() {
    use lsdgnn_core::faas::{perf, Architecture};
    let dse = run_dse(&CpuClusterModel::default(), &CostModel::default_fitted());
    let d = DatasetConfig::by_name("ml").unwrap();
    for a in Architecture::ALL {
        let direct = perf::samples_per_sec(a, InstanceSize::Medium, &d);
        let cell = dse
            .faas
            .iter()
            .find(|c| c.arch == a.name() && c.size == InstanceSize::Medium && c.dataset == "ml")
            .unwrap();
        assert!(
            (direct - cell.samples_per_sec).abs() < 1e-6 * direct.max(1.0),
            "{}: {direct} vs {}",
            a.name(),
            cell.samples_per_sec
        );
    }
}
