#!/usr/bin/env sh
# Repo CI gate: formatting, lints-as-errors, and the full test suite.
# Run from the workspace root: ./ci.sh
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "CI OK"
