#!/usr/bin/env sh
# Repo CI gate: formatting, lints-as-errors, and the full test suite.
# Run from the workspace root: ./ci.sh
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -p lsdgnn-telemetry -q"
cargo test -p lsdgnn-telemetry -q

echo "==> telemetry smoke: fig14 with --metrics-out/--trace-out"
SMOKE_DIR=results/ci_smoke
rm -rf "$SMOKE_DIR"
LSDGNN_SCALE=800 LSDGNN_BATCHES=1 cargo run --release -q -p lsdgnn-bench -- fig14 \
    --metrics-out "$SMOKE_DIR/metrics.json" --trace-out "$SMOKE_DIR/trace.json"
test -s "$SMOKE_DIR/metrics.json" || { echo "FAIL: metrics snapshot missing or empty"; exit 1; }
test -s "$SMOKE_DIR/trace.json" || { echo "FAIL: chrome trace missing or empty"; exit 1; }
grep -q 'cache_hit_rate' "$SMOKE_DIR/metrics.json" \
    || { echo "FAIL: AxE cache hit rate absent from metrics snapshot"; exit 1; }
grep -q 'latency_us' "$SMOKE_DIR/metrics.json" \
    || { echo "FAIL: service latency histogram absent from metrics snapshot"; exit 1; }
grep -q '"ph"' "$SMOKE_DIR/trace.json" \
    || { echo "FAIL: no trace events in chrome trace"; exit 1; }

echo "==> kernel microbenchmark smoke: bench kernel --quick"
cargo run --release -q -p lsdgnn-bench -- kernel --quick
test -s BENCH_desim_kernel.json \
    || { echo "FAIL: BENCH_desim_kernel.json missing or empty"; exit 1; }
grep -q 'schedule_heavy' BENCH_desim_kernel.json \
    || { echo "FAIL: schedule_heavy workload absent from kernel bench json"; exit 1; }

echo "==> chaos sweep smoke: bench chaos --quick"
cargo run --release -q -p lsdgnn-bench -- chaos --quick
test -s BENCH_chaos.json \
    || { echo "FAIL: BENCH_chaos.json missing or empty"; exit 1; }
grep -q '"any_degraded_success":true' BENCH_chaos.json \
    || { echo "FAIL: no degraded-but-successful response under card failure"; exit 1; }
grep -q '"identical":true' BENCH_chaos.json \
    || { echo "FAIL: zero-fault plan not bit-identical to fault-free run"; exit 1; }

echo "==> dataplane smoke: bench dataplane --quick"
cargo run --release -q -p lsdgnn-bench -- dataplane --quick
test -s BENCH_dataplane.json \
    || { echo "FAIL: BENCH_dataplane.json missing or empty"; exit 1; }
grep -q '"digests_match":true' BENCH_dataplane.json \
    || { echo "FAIL: flat data plane not byte-identical to legacy path"; exit 1; }
grep -q '"speedup_ok":true' BENCH_dataplane.json \
    || { echo "FAIL: flat data plane slower than legacy path"; exit 1; }

echo "==> wire smoke: bench wire --quick"
cargo run --release -q -p lsdgnn-bench -- wire --quick
test -s BENCH_wire.json \
    || { echo "FAIL: BENCH_wire.json missing or empty"; exit 1; }
grep -q '"digests_equivalent":true' BENCH_wire.json \
    || { echo "FAIL: reordered/wired sampling not isomorphic to the baseline path"; exit 1; }
grep -q '"compression_ratio_ok":true' BENCH_wire.json \
    || { echo "FAIL: BDI did not shrink the sampled remote traffic"; exit 1; }
grep -q '"coalesce_ok":true' BENCH_wire.json \
    || { echo "FAIL: no reorder policy beat the scrambled baseline's locality"; exit 1; }

echo "==> inference pipeline smoke: bench inference --quick"
cargo run --release -q -p lsdgnn-bench -- inference --quick
test -s BENCH_inference.json \
    || { echo "FAIL: BENCH_inference.json missing or empty"; exit 1; }
grep -q '"digests_match":true' BENCH_inference.json \
    || { echo "FAIL: pipelined inference not bitwise-identical to sequential reference"; exit 1; }
grep -q '"pipelined_p99_us":[0-9]' BENCH_inference.json \
    || { echo "FAIL: end-to-end p99 absent from inference bench json"; exit 1; }
grep -q '"speedup_ok":true' BENCH_inference.json \
    || { echo "FAIL: pipelined inference slower than sequential reference"; exit 1; }

echo "==> observability smoke: bench obs --quick"
cargo run --release -q -p lsdgnn-bench -- obs --quick
test -s BENCH_obs.json \
    || { echo "FAIL: BENCH_obs.json missing or empty"; exit 1; }
grep -q '"overhead_ok":true' BENCH_obs.json \
    || { echo "FAIL: instrumented serving overhead above budget"; exit 1; }
grep -q '"digest_identical":true' BENCH_obs.json \
    || { echo "FAIL: observed pipeline not digest-identical to plain pipeline"; exit 1; }
grep -q '"blame_names_fault":true' BENCH_obs.json \
    || { echo "FAIL: tail blame failed to name an injected fault"; exit 1; }
if grep -q '"blame_stages":0,' BENCH_obs.json; then
    echo "FAIL: blame table is empty"; exit 1
fi
grep -q '"merge_jobs_parity":true' BENCH_obs.json \
    || { echo "FAIL: ledger merge digest depends on recorder threads"; exit 1; }

echo "==> traffic smoke: bench traffic --quick"
cargo run --release -q -p lsdgnn-bench -- traffic --quick
test -s BENCH_traffic.json \
    || { echo "FAIL: BENCH_traffic.json missing or empty"; exit 1; }
grep -q '"digests_match":true' BENCH_traffic.json \
    || { echo "FAIL: unshaped ShapedService not digest-identical to the plain service"; exit 1; }
grep -q '"slo_met_improved":true' BENCH_traffic.json \
    || { echo "FAIL: shaping did not improve interactive SLO attainment"; exit 1; }
grep -q '"no_unbounded_queue":true' BENCH_traffic.json \
    || { echo "FAIL: shaped lanes exceeded their bounds or did not cap the backlog"; exit 1; }
grep -q '"autoscaler_cost_ok":true' BENCH_traffic.json \
    || { echo "FAIL: autoscaler costs more per SLO-met than static peak provisioning"; exit 1; }

echo "==> cache smoke: bench cache --quick"
cargo run --release -q -p lsdgnn-bench -- cache --quick
test -s BENCH_cache.json \
    || { echo "FAIL: BENCH_cache.json missing or empty"; exit 1; }
grep -q '"digests_match":true' BENCH_cache.json \
    || { echo "FAIL: a cached arm diverged from the cache-off digest"; exit 1; }
grep -q '"remote_cut_ok":true' BENCH_cache.json \
    || { echo "FAIL: warm cache did not cut remote requests >=2x at the reference cell"; exit 1; }
grep -q '"speedup_ok":true' BENCH_cache.json \
    || { echo "FAIL: cached serving throughput below the gate floor"; exit 1; }
grep -q '"wire_cut_ok":true' BENCH_cache.json \
    || { echo "FAIL: cache hits did not shrink WirePlane response bytes"; exit 1; }
grep -q '"cache_hit_blamed":true' BENCH_cache.json \
    || { echo "FAIL: blame report never attributed time to cache_hit"; exit 1; }

echo "==> trace-report smoke: per-stage summary of the fig14 trace"
cargo run --release -q -p lsdgnn-bench -- trace-report "$SMOKE_DIR/trace.json" \
    | grep -q 'dispatch' \
    || { echo "FAIL: trace-report did not summarize service spans"; exit 1; }

echo "==> parallel harness smoke: fig14 through --jobs 2"
LSDGNN_SCALE=800 LSDGNN_BATCHES=1 cargo run --release -q -p lsdgnn-bench -- fig14 --jobs 2

echo "CI OK"
