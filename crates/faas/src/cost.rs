//! The FaaS instance cost model (§7.2, Figure 16).
//!
//! The paper fits a linear regression over (vCPU count, DRAM capacity,
//! FPGA count, GPU count) against Alibaba Cloud price-calculator quotes
//! and finds it accurate except for the largest-memory instance
//! (`ecs-ram-e`, 906 GB), whose premium pricing the linear model
//! under-estimates.
//!
//! The calculator is not reachable offline, so [`QuoteSet::alibaba_like`]
//! synthesizes quotes from a hidden pricing function with the same
//! structure (affine base + a premium on the highest-memory tier + small
//! per-SKU noise); the regression then recovers the affine part and shows
//! exactly the paper's validation profile.

use crate::instance::InstanceSize;
use serde::{Deserialize, Serialize};

/// One priceable instance configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceSpec {
    /// SKU name.
    pub name: String,
    /// vCPU count.
    pub vcpus: u32,
    /// DRAM in GB.
    pub memory_gb: u32,
    /// FPGA cards.
    pub fpgas: u32,
    /// GPU cards.
    pub gpus: u32,
}

impl InstanceSpec {
    /// Builds a spec.
    pub fn new(name: &str, vcpus: u32, memory_gb: u32, fpgas: u32, gpus: u32) -> Self {
        InstanceSpec {
            name: name.to_string(),
            vcpus,
            memory_gb,
            fpgas,
            gpus,
        }
    }

    /// The feature vector `[1, vcpus, mem, fpgas, gpus]`.
    fn features(&self) -> [f64; 5] {
        [
            1.0,
            self.vcpus as f64,
            self.memory_gb as f64,
            self.fpgas as f64,
            self.gpus as f64,
        ]
    }
}

/// A set of quoted instances (the synthetic "price calculator" data).
#[derive(Debug, Clone, PartialEq)]
pub struct QuoteSet {
    /// Specs and their quoted hourly prices in dollars.
    pub quotes: Vec<(InstanceSpec, f64)>,
}

/// The hidden ground-truth pricing function: affine rates mirroring public
/// Alibaba ECS price ratios, plus a premium on ≥900 GB instances and ±2 %
/// SKU noise.
fn true_price(spec: &InstanceSpec, sku_index: usize) -> f64 {
    let affine = 0.04
        + 0.049 * spec.vcpus as f64
        + 0.0052 * spec.memory_gb as f64
        + 0.95 * spec.fpgas as f64
        + 2.4 * spec.gpus as f64;
    let premium = if spec.memory_gb >= 900 { 1.35 } else { 1.0 };
    // Deterministic ±1.5% per-SKU jitter.
    let noise = 1.0 + 0.015 * ((sku_index as f64 * 2.399).sin());
    affine * premium * noise
}

impl QuoteSet {
    /// The ten-SKU quote table mimicking the paper's Figure 16 set,
    /// including the large-memory outlier `ecs-ram-e` (906 GB).
    pub fn alibaba_like() -> Self {
        let specs = vec![
            InstanceSpec::new("ecs-g-s", 2, 8, 0, 0),
            InstanceSpec::new("ecs-g-m", 8, 32, 0, 0),
            InstanceSpec::new("ecs-g-l", 32, 128, 0, 0),
            InstanceSpec::new("ecs-ram-s", 8, 192, 0, 0),
            InstanceSpec::new("ecs-ram-m", 16, 384, 0, 0),
            InstanceSpec::new("ecs-ram-l", 24, 512, 0, 0),
            InstanceSpec::new("ecs-ram-e", 24, 906, 0, 0),
            InstanceSpec::new("ecs-f3-s", 4, 16, 1, 0),
            InstanceSpec::new("ecs-f3-l", 16, 64, 2, 0),
            InstanceSpec::new("ecs-gn6-v", 8, 32, 0, 1),
        ];
        QuoteSet {
            quotes: specs
                .into_iter()
                .enumerate()
                .map(|(i, s)| {
                    let p = true_price(&s, i);
                    (s, p)
                })
                .collect(),
        }
    }
}

/// The fitted linear cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Coefficients for `[1, vcpus, mem, fpgas, gpus]`.
    pub coefficients: [f64; 5],
}

impl CostModel {
    /// Fits by ordinary least squares (normal equations, Gaussian
    /// elimination with partial pivoting).
    ///
    /// # Panics
    ///
    /// Panics with fewer than five quotes (under-determined system).
    pub fn fit(quotes: &QuoteSet) -> Self {
        let n = quotes.quotes.len();
        assert!(n >= 5, "need at least five quotes to fit five coefficients");
        // Weighted least squares in *relative* error (weight 1/price²),
        // matching how a price model is validated: a $0.20 instance off by
        // $0.05 matters as much as a $5 instance off by $1.25.
        let mut xtx = [[0.0f64; 5]; 5];
        let mut xty = [0.0f64; 5];
        for (spec, price) in &quotes.quotes {
            let f = spec.features();
            let w = 1.0 / (price * price);
            for i in 0..5 {
                for j in 0..5 {
                    xtx[i][j] += w * f[i] * f[j];
                }
                xty[i] += w * f[i] * price;
            }
        }
        // Ridge epsilon for numerical stability.
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += 1e-9;
        }
        let coefficients = solve5(xtx, xty);
        CostModel { coefficients }
    }

    /// The paper-default model fitted on the synthetic quotes.
    pub fn default_fitted() -> Self {
        Self::fit(&QuoteSet::alibaba_like())
    }

    /// Predicted hourly price of a spec.
    pub fn predict(&self, spec: &InstanceSpec) -> f64 {
        spec.features()
            .iter()
            .zip(&self.coefficients)
            .map(|(f, c)| f * c)
            .sum()
    }

    /// Hourly price of a Table 12 FaaS instance (its vCPUs, memory and
    /// FPGAs) plus `gpus` V100-class cards.
    pub fn faas_instance_price(&self, inst: InstanceSize, gpus: f64) -> f64 {
        let spec = InstanceSpec::new(
            inst.name(),
            inst.vcpus(),
            inst.memory_gb() as u32,
            inst.fpga_chips(),
            0,
        );
        self.predict(&spec) + self.gpu_price() * gpus
    }

    /// Hourly price of the CPU-only variant of a Table 12 instance.
    pub fn cpu_instance_price(&self, inst: InstanceSize) -> f64 {
        let spec = InstanceSpec::new(inst.name(), inst.vcpus(), inst.memory_gb() as u32, 0, 0);
        self.predict(&spec)
    }

    /// The fitted per-GPU hourly price.
    pub fn gpu_price(&self) -> f64 {
        self.coefficients[4]
    }

    /// Relative validation error per quote (Figure 16's blue line).
    pub fn validation_errors(&self, quotes: &QuoteSet) -> Vec<(String, f64)> {
        quotes
            .quotes
            .iter()
            .map(|(spec, price)| {
                let rel = (self.predict(spec) - price).abs() / price;
                (spec.name.clone(), rel)
            })
            .collect()
    }
}

/// Solves a 5×5 linear system by Gaussian elimination with partial
/// pivoting.
#[allow(clippy::needless_range_loop)] // in-place row operations
fn solve5(mut a: [[f64; 5]; 5], mut b: [f64; 5]) -> [f64; 5] {
    for col in 0..5 {
        // Pivot.
        let pivot = (col..5)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
            .expect("non-empty range");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        assert!(diag.abs() > 1e-12, "singular system");
        for row in (col + 1)..5 {
            let factor = a[row][col] / diag;
            for k in col..5 {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0.0f64; 5];
    for row in (0..5).rev() {
        let mut acc = b[row];
        for k in (row + 1)..5 {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_recovers_affine_rates() {
        let m = CostModel::default_fitted();
        // Recovered coefficients should be near the hidden truth (within
        // the noise+premium distortion).
        assert!((m.coefficients[1] - 0.049).abs() < 0.03, "vcpu rate");
        assert!((m.coefficients[2] - 0.0052).abs() < 0.003, "mem rate");
        assert!((m.coefficients[3] - 0.95).abs() < 0.3, "fpga rate");
        assert!((m.coefficients[4] - 2.4).abs() < 0.7, "gpu rate");
    }

    #[test]
    fn figure16_validation_profile() {
        // Generally accurate, with the ecs-ram-e (906 GB) outlier being
        // the worst — exactly the paper's observation.
        let quotes = QuoteSet::alibaba_like();
        let m = CostModel::fit(&quotes);
        let errors = m.validation_errors(&quotes);
        let (worst_name, worst_err) = errors
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(worst_name, "ecs-ram-e", "worst SKU is the 906GB instance");
        assert!(*worst_err > 0.03, "outlier error {worst_err}");
        let others_ok = errors
            .iter()
            .filter(|(n, _)| n != "ecs-ram-e")
            .all(|(_, e)| *e < 0.10);
        assert!(others_ok, "non-outlier SKUs within 10%: {errors:?}");
    }

    #[test]
    fn prices_are_monotone_in_resources() {
        let m = CostModel::default_fitted();
        let small = m.predict(&InstanceSpec::new("a", 2, 8, 0, 0));
        let bigger = m.predict(&InstanceSpec::new("b", 8, 64, 0, 0));
        let with_fpga = m.predict(&InstanceSpec::new("c", 8, 64, 1, 0));
        let with_gpu = m.predict(&InstanceSpec::new("d", 8, 64, 1, 1));
        assert!(small < bigger && bigger < with_fpga && with_fpga < with_gpu);
    }

    #[test]
    fn faas_vs_cpu_instance_prices() {
        let m = CostModel::default_fitted();
        for inst in InstanceSize::ALL {
            let cpu = m.cpu_instance_price(inst);
            let faas = m.faas_instance_price(inst, 0.0);
            assert!(faas > cpu, "{}: FPGA adds cost", inst.name());
            assert!(
                m.faas_instance_price(inst, 1.0) > faas + 1.0,
                "GPUs are expensive"
            );
        }
    }

    #[test]
    fn solver_handles_known_system() {
        // Fit on noise-free synthetic data reproduces exact coefficients.
        let specs = [
            (2u32, 8u32, 0u32, 0u32),
            (4, 16, 0, 0),
            (8, 64, 1, 0),
            (16, 128, 2, 1),
            (32, 256, 0, 2),
            (24, 906, 1, 0),
        ];
        let quotes = QuoteSet {
            quotes: specs
                .iter()
                .enumerate()
                .map(|(i, &(v, m, f, g))| {
                    let spec = InstanceSpec::new(&format!("s{i}"), v, m, f, g);
                    let price =
                        0.1 + 0.05 * v as f64 + 0.005 * m as f64 + 1.0 * f as f64 + 2.0 * g as f64;
                    (spec, price)
                })
                .collect(),
        };
        let model = CostModel::fit(&quotes);
        assert!((model.coefficients[0] - 0.1).abs() < 1e-6);
        assert!((model.coefficients[1] - 0.05).abs() < 1e-6);
        assert!((model.coefficients[2] - 0.005).abs() < 1e-6);
        assert!((model.coefficients[3] - 1.0).abs() < 1e-6);
        assert!((model.coefficients[4] - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "five quotes")]
    fn underdetermined_fit_panics() {
        let q = QuoteSet {
            quotes: vec![(InstanceSpec::new("x", 1, 1, 0, 0), 1.0)],
        };
        CostModel::fit(&q);
    }
}
