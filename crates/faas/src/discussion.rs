//! The §9 "Discussion beyond FPGA" alternatives, quantified, plus the
//! §7.4 CXL outlook.
//!
//! The paper argues three alternative platforms are suboptimal for
//! LSD-GNN sampling and sketches CXL as the future comm-opt fabric; this
//! module turns each argument into a model the benches can print and the
//! tests can check.

use crate::arch::Architecture;
use crate::instance::InstanceSize;
use crate::perf::{bottleneck_rates, PerfInputs};
use lsdgnn_framework::CpuClusterModel;
use lsdgnn_graph::DatasetConfig;
use lsdgnn_memfabric::LinkModel;

/// An integrated CPU/GPU node (NVIDIA Grace-like): many efficient cores
/// with a fat GPU link, but *software* sampling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GraceLikeNode {
    /// CPU cores (Grace: 144 ARM cores).
    pub cores: u32,
    /// CPU→GPU link bandwidth in GB/s (Grace: 900 GB/s NVLink).
    pub gpu_link_gbps: f64,
}

impl GraceLikeNode {
    /// The paper's reference configuration.
    pub fn grace() -> Self {
        GraceLikeNode {
            cores: 144,
            gpu_link_gbps: 900.0,
        }
    }

    /// Sampling throughput: cores × the software per-core rate — the
    /// link is huge but the *producer* is the CPU (§9: "CPUs are
    /// inefficient for sampling compared with the FPGA solution").
    pub fn samples_per_sec(&self, cpu: &CpuClusterModel, servers: u64) -> f64 {
        self.cores as f64 * cpu.vcpu_rate(servers)
    }
}

/// A DPU (BlueField-like): general cores on the NIC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpuNode {
    /// Processing cores (paper: "Bluefield provides 300 CPU core").
    pub cores: u32,
    /// NIC wire rate in GB/s.
    pub nic_gbps: f64,
}

impl DpuNode {
    /// The paper's reference configuration.
    pub fn bluefield() -> Self {
        DpuNode {
            cores: 300,
            nic_gbps: 50.0,
        }
    }

    /// Sampling throughput: min(core-limited software rate, wire rate).
    /// §9: "limited by the processing capability. Hence they cannot
    /// fully utilize the bandwidth."
    pub fn samples_per_sec(&self, cpu: &CpuClusterModel, servers: u64, attr_bytes: f64) -> f64 {
        let core_rate = self.cores as f64 * cpu.vcpu_rate(servers);
        let wire_rate = self.nic_gbps * 1e9 / attr_bytes;
        core_rate.min(wire_rate)
    }
}

/// A hypothetical sampling ASIC: `speedup_over_fpga`× the AxE device
/// rate, but behind the same result-output link — §9's point that "all
/// standalone sampling chip solutions have a performance upper-bound
/// (the GPU data input bandwidth)".
pub fn asic_samples_per_sec(
    fpga_device_rate: f64,
    speedup_over_fpga: f64,
    output_link_gbps: f64,
    attr_bytes: f64,
) -> f64 {
    let device = fpga_device_rate * speedup_over_fpga;
    let output_bound = output_link_gbps * 1e9 / attr_bytes;
    device.min(output_bound)
}

/// The §7.4 CXL outlook: a standardized fabric with MoF-class bandwidth
/// and near-MoF latency replacing the customized interconnect in
/// comm-opt. Returns `(mof_rate, cxl_rate)` for the tightly-coupled
/// medium-instance configuration on `dataset`.
pub fn cxl_variant_rates(dataset: &DatasetConfig) -> (f64, f64) {
    // Compare the *fabrics* directly: same comm-opt.tc wiring with the
    // output bound lifted (it otherwise masks the remote path).
    let arch = Architecture::parse("comm-opt.tc").expect("known architecture");
    let inst = InstanceSize::Medium;
    let tiers = arch.tier_config(inst);
    let fm = lsdgnn_graph::FootprintModel {
        server_bytes: inst.memory_gb() * (1 << 30),
        ..lsdgnn_graph::FootprintModel::default()
    };
    let instances = fm.min_servers(dataset);
    let inputs = |remote: LinkModel| PerfInputs {
        local: tiers.local.link_model(),
        remote,
        output: None,
        output_shares_remote: false,
        cores: arch.paper_cores() * inst.fpga_chips(),
        tags_per_core: 128,
        clock_hz: 250e6,
        avg_degree: dataset.avg_degree(),
        fanout: dataset.sampling.fanout as f64,
        attr_bytes: dataset.attr_len as f64 * 4.0,
        remote_fraction: 1.0 - 1.0 / instances as f64,
    };
    // Compare the remote-path-bound rates (the component the fabric
    // choice governs; local memory and output bounds are common-mode).
    let mut mof_link = tiers.remote.link_model();
    mof_link.peak_gbps = inst.mof_gbps();
    let mof = bottleneck_rates(&inputs(mof_link)).remote;
    // A CXL 2.0-class link: x16 at 64 GB/s, ~350 ns access, standard
    // (not custom) per-request cost.
    let cxl_link = LinkModel::new("cxl-fabric", 350, 80, 64.0);
    let cxl = bottleneck_rates(&inputs(cxl_link)).remote;
    (mof, cxl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdgnn_graph::DatasetConfig;

    fn cpu() -> CpuClusterModel {
        CpuClusterModel::default()
    }

    #[test]
    fn grace_cannot_match_the_fpga() {
        // §9: one FPGA ≈ 894 vCPUs > Grace's 144 cores of software
        // sampling.
        let grace = GraceLikeNode::grace();
        let grace_rate = grace.samples_per_sec(&cpu(), 4);
        let fpga_equiv_vcpus = 677.0; // this repo's Figure 14 geomean
        let fpga_rate = fpga_equiv_vcpus * cpu().vcpu_rate(4);
        assert!(
            fpga_rate > 2.0 * grace_rate,
            "fpga {fpga_rate} vs grace {grace_rate}"
        );
    }

    #[test]
    fn dpu_is_core_limited_not_wire_limited() {
        // §9: 300 cores cannot fill the NIC for fine-grained sampling.
        let dpu = DpuNode::bluefield();
        let attr_bytes = 288.0;
        let rate = dpu.samples_per_sec(&cpu(), 4, attr_bytes);
        let core_rate = 300.0 * cpu().vcpu_rate(4);
        let wire_rate = 50.0e9 / attr_bytes;
        assert_eq!(rate, core_rate.min(wire_rate));
        assert!(core_rate < wire_rate, "DPU must be compute-bound");
    }

    #[test]
    fn asic_hits_the_same_output_wall() {
        // §9: a 10x-faster ASIC lands on the same GPU-input bound as the
        // FPGA — no deployment advantage.
        let fpga = 55e6; // PCIe-bound device rate (our Fig 15 plateau)
        let asic_1x = asic_samples_per_sec(fpga, 1.0, 16.0, 288.0);
        let asic_10x = asic_samples_per_sec(fpga, 10.0, 16.0, 288.0);
        let output_bound = 16.0e9 / 288.0;
        assert!((asic_1x - fpga.min(output_bound)).abs() < 1e-3);
        assert!(
            (asic_10x - output_bound).abs() < 1e-3,
            "10x ASIC must saturate the output bound"
        );
        // Barely better than the FPGA despite 10x silicon.
        assert!(asic_10x / asic_1x < 1.2);
    }

    #[test]
    fn cxl_approaches_mof_performance() {
        // §7.4: "next-generation communication infrastructures such as
        // CXL may bridge this gap" — a standard CXL fabric lands within
        // ~2x of the customized MoF.
        let d = DatasetConfig::by_name("ll").unwrap();
        let (mof, cxl) = cxl_variant_rates(&d);
        assert!(cxl > mof * 0.5, "cxl {cxl} vs mof {mof}");
        // A 64 GB/s CXL x16 can even exceed a 25 GB/s 200Gb MoF build —
        // exactly why the paper expects CXL to obsolete custom fabrics.
        assert!(cxl.is_finite() && mof.is_finite());
    }
}
