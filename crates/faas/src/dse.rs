//! The full design-space exploration behind Figures 17–21.
//!
//! For every (architecture × dataset × instance size) cell, computes the
//! per-instance sampling throughput (Figure 17), the hourly cost under the
//! fitted cost model plus the paper's GPU rule (one V100 per 12 GB/s of
//! sampling output, §7.2), the performance-per-dollar normalized to the
//! CPU geomean (Figure 18), the geomeans (Figures 19/21), and the
//! minimum-cost analysis of Figure 20.

use crate::arch::Architecture;
use crate::cost::CostModel;
use crate::instance::InstanceSize;
use crate::perf;
use lsdgnn_framework::CpuClusterModel;
use lsdgnn_graph::{DatasetConfig, FootprintModel, PAPER_DATASETS};

/// Output bytes per second that one V100 GPU absorbs (12 GB/s, 75 % of
/// PCIe — the paper's Limitation-2 assumption).
pub const GPU_BYTES_PER_SEC: f64 = 12e9;

/// One DSE cell.
#[derive(Debug, Clone, PartialEq)]
pub struct DseCell {
    /// Architecture name (`base.tc` …) or `cpu` for the baseline.
    pub arch: String,
    /// Instance size.
    pub size: InstanceSize,
    /// Dataset name.
    pub dataset: &'static str,
    /// Sampling throughput per instance (samples/second).
    pub samples_per_sec: f64,
    /// Hourly price including the GPU share.
    pub dollars_per_hour: f64,
    /// Raw performance per dollar (samples/s/$/h).
    pub perf_per_dollar: f64,
}

/// The complete grid plus baselines.
#[derive(Debug, Clone, PartialEq)]
pub struct DseResult {
    /// FaaS cells (8 architectures × 6 datasets × 3 sizes).
    pub faas: Vec<DseCell>,
    /// CPU baseline cells (6 datasets × 3 sizes).
    pub cpu: Vec<DseCell>,
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = values.fold((0.0, 0u32), |(s, n), v| (s + v.max(1e-30).ln(), n + 1));
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

/// GPUs required for a given sampling throughput on a dataset.
pub fn gpus_needed(samples_per_sec: f64, dataset: &DatasetConfig) -> f64 {
    samples_per_sec * dataset.attr_len as f64 * 4.0 / GPU_BYTES_PER_SEC
}

/// Runs the full DSE with the paper's default GPU assumption (one V100
/// per 12 GB/s of sampling output).
pub fn run_dse(cpu_model: &CpuClusterModel, cost_model: &CostModel) -> DseResult {
    run_dse_with_gpu_factor(cpu_model, cost_model, 1.0)
}

/// Runs the DSE with `gpu_factor` V100s required per 12 GB/s of sampling
/// output — the §7.3 Limitation-2 sensitivity knob. The paper notes that
/// at 10 GPUs per 12 GB/s (a very deep end model) the mem-opt.tc benefit
/// collapses from 12.58x to 1.48x.
pub fn run_dse_with_gpu_factor(
    cpu_model: &CpuClusterModel,
    cost_model: &CostModel,
    gpu_factor: f64,
) -> DseResult {
    let fm = FootprintModel::default();
    let mut faas = Vec::new();
    let mut cpu = Vec::new();
    for d in &PAPER_DATASETS {
        for size in InstanceSize::ALL {
            // CPU baseline: a CPU-optimized instance with the same memory
            // footprint (~4 GB/vCPU) sampling in software.
            let servers = fm.min_servers(d);
            let cpu_vcpus = size.cpu_sampling_vcpus();
            let cpu_rate = cpu_vcpus as f64 * cpu_model.vcpu_rate(servers);
            let cpu_spec = crate::cost::InstanceSpec::new(
                "cpu-fleet",
                cpu_vcpus,
                size.memory_gb() as u32,
                0,
                0,
            );
            let cpu_price = cost_model.predict(&cpu_spec)
                + cost_model.gpu_price() * gpu_factor * gpus_needed(cpu_rate, d);
            cpu.push(DseCell {
                arch: "cpu".into(),
                size,
                dataset: d.name,
                samples_per_sec: cpu_rate,
                dollars_per_hour: cpu_price,
                perf_per_dollar: cpu_rate / cpu_price,
            });
            for a in Architecture::ALL {
                let rate = perf::samples_per_sec(a, size, d);
                let price = cost_model.faas_instance_price(size, gpu_factor * gpus_needed(rate, d));
                faas.push(DseCell {
                    arch: a.name(),
                    size,
                    dataset: d.name,
                    samples_per_sec: rate,
                    dollars_per_hour: price,
                    perf_per_dollar: rate / price,
                });
            }
        }
    }
    DseResult { faas, cpu }
}

impl DseResult {
    /// Geomean CPU performance-per-dollar (the Figure 18 normalizer).
    pub fn cpu_perf_per_dollar_geomean(&self) -> f64 {
        geomean(self.cpu.iter().map(|c| c.perf_per_dollar))
    }

    /// Figure 18: a cell's perf/$ normalized to the CPU geomean *within
    /// the same dataset and size* (so datasets with different absolute
    /// rates are comparable).
    pub fn normalized_perf_per_dollar(&self, cell: &DseCell) -> f64 {
        let cpu = self
            .cpu
            .iter()
            .find(|c| c.dataset == cell.dataset && c.size == cell.size)
            .expect("cpu baseline exists for every (dataset, size)");
        cell.perf_per_dollar / cpu.perf_per_dollar
    }

    /// Figure 21: geomean (over datasets and sizes) of normalized perf/$
    /// for one architecture.
    pub fn arch_perf_per_dollar(&self, arch: &str) -> f64 {
        geomean(
            self.faas
                .iter()
                .filter(|c| c.arch == arch)
                .map(|c| self.normalized_perf_per_dollar(c)),
        )
    }

    /// Figure 19: geomean performance per instance for one architecture
    /// and size, over datasets.
    pub fn arch_performance(&self, arch: &str, size: InstanceSize) -> f64 {
        geomean(
            self.faas
                .iter()
                .filter(|c| c.arch == arch && c.size == size)
                .map(|c| c.samples_per_sec),
        )
    }

    /// Geomean speedup of one architecture over another (same cells).
    pub fn speedup(&self, arch: &str, over: &str) -> f64 {
        let a = geomean(
            self.faas
                .iter()
                .filter(|c| c.arch == arch)
                .map(|c| c.samples_per_sec),
        );
        let b = geomean(
            self.faas
                .iter()
                .filter(|c| c.arch == over)
                .map(|c| c.samples_per_sec),
        );
        a / b
    }
}

impl DseResult {
    /// Serializes the grid as CSV (`arch,size,dataset,samples_per_sec,
    /// dollars_per_hour,perf_per_dollar,normalized`), CPU rows included —
    /// the raw data behind Figures 17/18 for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "arch,size,dataset,samples_per_sec,dollars_per_hour,perf_per_dollar,normalized\n",
        );
        for c in self.cpu.iter().chain(&self.faas) {
            let normalized = if c.arch == "cpu" {
                1.0
            } else {
                self.normalized_perf_per_dollar(c)
            };
            out.push_str(&format!(
                "{},{},{},{:.3},{:.4},{:.3},{:.4}\n",
                c.arch,
                c.size.name(),
                c.dataset,
                c.samples_per_sec,
                c.dollars_per_hour,
                c.perf_per_dollar,
                normalized
            ));
        }
        out
    }
}

/// Figure 20: the minimum number of instances (and their hourly cost) to
/// carry each dataset, for the CPU fleet and the FaaS.base fleet.
#[derive(Debug, Clone, PartialEq)]
pub struct MinCostRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Instance size.
    pub size: InstanceSize,
    /// Instances needed to hold the graph.
    pub instances: u64,
    /// Hourly cost of the CPU fleet.
    pub cpu_cost: f64,
    /// Hourly cost of the FaaS.base fleet (same instance count, FPGAs
    /// added).
    pub faas_cost: f64,
}

/// Computes the Figure 20 table.
pub fn min_cost_table(cost_model: &CostModel) -> Vec<MinCostRow> {
    let mut rows = Vec::new();
    for d in &PAPER_DATASETS {
        for size in InstanceSize::ALL {
            let fm = FootprintModel {
                server_bytes: size.memory_gb() * (1 << 30),
                ..FootprintModel::default()
            };
            let instances = fm.min_servers(d);
            rows.push(MinCostRow {
                dataset: d.name,
                size,
                instances,
                cpu_cost: instances as f64 * cost_model.cpu_instance_price(size),
                faas_cost: instances as f64 * cost_model.faas_instance_price(size, 0.0),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dse() -> DseResult {
        run_dse(&CpuClusterModel::default(), &CostModel::default_fitted())
    }

    #[test]
    fn grid_is_complete() {
        let r = dse();
        assert_eq!(r.faas.len(), 8 * 6 * 3);
        assert_eq!(r.cpu.len(), 6 * 3);
    }

    #[test]
    fn headline_base_perf_per_dollar() {
        // Paper: FaaS.base.decp ≈ 2.47×, base.tc ≈ 4.11× CPU perf/$.
        let r = dse();
        let decp = r.arch_perf_per_dollar("base.decp");
        let tc = r.arch_perf_per_dollar("base.tc");
        assert!((1.3..6.0).contains(&decp), "base.decp perf/$ {decp}");
        assert!(tc > decp, "tc {tc} must beat decp {decp}");
    }

    #[test]
    fn headline_optimized_perf_per_dollar() {
        // Paper: comm-opt up to 7.78×, mem-opt.tc 12.58×.
        let r = dse();
        let base = r.arch_perf_per_dollar("base.decp");
        let comm = r.arch_perf_per_dollar("comm-opt.tc");
        let mem = r.arch_perf_per_dollar("mem-opt.tc");
        assert!(comm > base * 1.5, "comm {comm} vs base {base}");
        assert!(mem >= comm, "mem {mem} vs comm {comm}");
        assert!((5.0..30.0).contains(&mem), "mem-opt.tc perf/$ {mem}");
    }

    #[test]
    fn cost_opt_matches_base_for_users() {
        // §7.4: cost-opt shows no user-visible perf/$ change.
        let r = dse();
        let base = r.arch_perf_per_dollar("base.tc");
        let cost = r.arch_perf_per_dollar("cost-opt.tc");
        assert!(
            (cost / base - 1.0).abs() < 0.25,
            "base {base} vs cost {cost}"
        );
    }

    #[test]
    fn per_dataset_base_improvements_in_band() {
        // Figure 18: base.decp improvements cluster in the low single
        // digits across datasets. (Known deviation: the paper finds ss/ls
        // *below* CPU per dollar; our analytic CPU baseline's small-graph
        // advantage and the smaller attribute output of those graphs
        // cancel, so the ordering across datasets flattens —
        // see EXPERIMENTS.md.)
        let r = dse();
        for d in lsdgnn_graph::PAPER_DATASETS {
            let v = geomean(
                r.faas
                    .iter()
                    .filter(|c| c.arch == "base.decp" && c.dataset == d.name)
                    .map(|c| r.normalized_perf_per_dollar(c)),
            );
            assert!((0.5..6.0).contains(&v), "{}: base.decp perf/$ {v}", d.name);
        }
    }

    #[test]
    fn figure19_scales_with_instance_size() {
        let r = dse();
        for a in Architecture::ALL {
            let s = r.arch_performance(&a.name(), InstanceSize::Small);
            let l = r.arch_performance(&a.name(), InstanceSize::Large);
            assert!(l >= s, "{}: large {l} vs small {s}", a.name());
        }
    }

    #[test]
    fn figure20_costs_scale_with_graph() {
        let rows = min_cost_table(&CostModel::default_fitted());
        assert_eq!(rows.len(), 18);
        for r in &rows {
            assert!(r.faas_cost > r.cpu_cost, "FPGAs cost extra");
            assert!(r.instances >= 1);
        }
        // syn needs far more small instances than ss.
        let get = |d: &str, s: InstanceSize| {
            rows.iter()
                .find(|r| r.dataset == d && r.size == s)
                .unwrap()
                .instances
        };
        assert!(get("syn", InstanceSize::Small) > 50 * get("ss", InstanceSize::Small));
    }

    #[test]
    fn tc_vs_decp_gap_grows_with_optimization() {
        // §7.4: the tc benefit magnifies from cost-opt to mem-opt.
        let r = dse();
        let gap = |kind: &str| r.speedup(&format!("{kind}.tc"), &format!("{kind}.decp"));
        let cost_gap = gap("cost-opt");
        let mem_gap = gap("mem-opt");
        assert!(mem_gap > cost_gap, "mem {mem_gap} vs cost {cost_gap}");
        assert!(mem_gap > 3.0, "mem-opt tc/decp gap {mem_gap}");
    }

    fn geomean(values: impl Iterator<Item = f64>) -> f64 {
        super::geomean(values)
    }

    #[test]
    fn csv_export_covers_the_grid() {
        let r = dse();
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        // header + cpu rows + faas rows
        assert_eq!(lines.len(), 1 + r.cpu.len() + r.faas.len());
        assert!(lines[0].starts_with("arch,size,dataset"));
        assert!(csv.contains("mem-opt.tc,large,syn"));
        // Every data row has 7 fields.
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), 7, "bad row {l}");
        }
    }

    #[test]
    fn limitation2_gpu_sensitivity_collapses_the_benefit() {
        // §7.3 Limitation-2: with 10 V100s per 12 GB/s instead of 1, the
        // mem-opt.tc perf/$ benefit falls from ~12.6x to ~1.5x.
        let cpu = CpuClusterModel::default();
        let cost = CostModel::default_fitted();
        let light = run_dse_with_gpu_factor(&cpu, &cost, 1.0);
        let heavy = run_dse_with_gpu_factor(&cpu, &cost, 10.0);
        let light_mem = light.arch_perf_per_dollar("mem-opt.tc");
        let heavy_mem = heavy.arch_perf_per_dollar("mem-opt.tc");
        assert!(
            heavy_mem < light_mem / 3.0,
            "light {light_mem} vs heavy {heavy_mem}"
        );
        assert!(
            (1.0..4.0).contains(&heavy_mem),
            "heavy-NN mem-opt.tc perf/$ {heavy_mem} (paper: 1.48x)"
        );
    }
}
