//! The eight FaaS architectures of Table 8 and the Equation 3 core-sizing
//! rule.

use crate::instance::InstanceSize;
use lsdgnn_memfabric::{outstanding_demand, LinkModel, MemoryTier, TierConfig};
use serde::{Deserialize, Serialize};

/// Primary design constraint (Table 8 rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArchKind {
    /// Off-the-shelf FaaS: PCIe host memory, PCIe→NIC remote access.
    Base,
    /// On-FPGA NIC (§6.3): same bandwidth, lower latency, cheaper infra.
    CostOpt,
    /// Dedicated inter-FPGA MoF fabric (§6.4).
    CommOpt,
    /// FPGA-local DRAM + MoF (+ GPU fast link when tightly coupled, §6.5).
    MemOpt,
}

/// FPGA/GPU coupling (Table 8 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Coupling {
    /// Tightly coupled: FPGA and GPU in one server.
    Tc,
    /// Decoupled: all-FPGA and all-GPU servers joined by the network.
    Decp,
}

/// One of the eight explored architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Architecture {
    /// Design constraint.
    pub kind: ArchKind,
    /// Coupling.
    pub coupling: Coupling,
}

impl Architecture {
    /// All eight architectures in the paper's presentation order
    /// (decoupled first, then tightly coupled).
    pub const ALL: [Architecture; 8] = [
        Architecture {
            kind: ArchKind::Base,
            coupling: Coupling::Decp,
        },
        Architecture {
            kind: ArchKind::CostOpt,
            coupling: Coupling::Decp,
        },
        Architecture {
            kind: ArchKind::CommOpt,
            coupling: Coupling::Decp,
        },
        Architecture {
            kind: ArchKind::MemOpt,
            coupling: Coupling::Decp,
        },
        Architecture {
            kind: ArchKind::Base,
            coupling: Coupling::Tc,
        },
        Architecture {
            kind: ArchKind::CostOpt,
            coupling: Coupling::Tc,
        },
        Architecture {
            kind: ArchKind::CommOpt,
            coupling: Coupling::Tc,
        },
        Architecture {
            kind: ArchKind::MemOpt,
            coupling: Coupling::Tc,
        },
    ];

    /// Name in the paper's `kind.coupling` format, e.g. `comm-opt.tc`.
    pub fn name(&self) -> String {
        let k = match self.kind {
            ArchKind::Base => "base",
            ArchKind::CostOpt => "cost-opt",
            ArchKind::CommOpt => "comm-opt",
            ArchKind::MemOpt => "mem-opt",
        };
        let c = match self.coupling {
            Coupling::Tc => "tc",
            Coupling::Decp => "decp",
        };
        format!("{k}.{c}")
    }

    /// Parses a `kind.coupling` name.
    pub fn parse(s: &str) -> Option<Architecture> {
        let (k, c) = s.split_once('.')?;
        let kind = match k {
            "base" => ArchKind::Base,
            "cost-opt" => ArchKind::CostOpt,
            "comm-opt" => ArchKind::CommOpt,
            "mem-opt" => ArchKind::MemOpt,
            _ => return None,
        };
        let coupling = match c {
            "tc" => Coupling::Tc,
            "decp" => Coupling::Decp,
            _ => return None,
        };
        Some(Architecture { kind, coupling })
    }

    /// The Table 8 memory wiring for this architecture on the given
    /// instance size.
    pub fn tier_config(&self, inst: InstanceSize) -> TierConfig {
        let local = match self.kind {
            ArchKind::Base | ArchKind::CostOpt | ArchKind::CommOpt => MemoryTier::PcieHostDram,
            ArchKind::MemOpt => MemoryTier::FpgaLocalDram { channels: 8 },
        };
        let remote = match self.kind {
            ArchKind::Base => MemoryTier::CloudNicRemote,
            ArchKind::CostOpt => MemoryTier::OnFpgaNicRemote,
            ArchKind::CommOpt | ArchKind::MemOpt => MemoryTier::Mof {
                links: inst.mof_links().max(1),
            },
        };
        let output = match self.coupling {
            // In-server PCIe P2P to the GPU, except mem-opt.tc's fast link.
            Coupling::Tc => {
                if self.kind == ArchKind::MemOpt {
                    MemoryTier::GpuFastLink
                } else {
                    MemoryTier::PciePeerToPeer
                }
            }
            // Results cross the network to the GPU servers.
            Coupling::Decp => MemoryTier::CloudNicRemote,
        };
        TierConfig {
            local,
            remote,
            output,
        }
    }

    /// Whether remote access and result output share the NIC (the
    /// decoupled handicap of §7.4, and base/cost-opt's remote path).
    pub fn output_shares_nic(&self) -> bool {
        self.coupling == Coupling::Decp
    }

    /// Whether remote graph access itself rides the NIC.
    pub fn remote_on_nic(&self) -> bool {
        matches!(self.kind, ArchKind::Base | ArchKind::CostOpt)
    }

    /// Equation 3 core sizing: outstanding requests needed to saturate the
    /// dominant IO path, divided by the per-core tag budget (128 in the
    /// PoC load unit).
    pub fn axe_cores(&self, inst: InstanceSize) -> u32 {
        let tiers = self.tier_config(inst);
        // The paper's access mix: fine-grained structure reads and
        // attribute fetches average ~240 B.
        let mean_req_bytes = 240.0;
        let per_core_tags = 128.0;
        let demand = |link: &LinkModel| {
            outstanding_demand(
                link.peak_gbps,
                link.round_trip(mean_req_bytes as u64).as_nanos_f64(),
                mean_req_bytes,
            )
        };
        let local = demand(&tiers.local.link_model());
        let remote = demand(&tiers.remote.link_model());
        let output = demand(&tiers.output.link_model());
        let dominant = local.max(remote).max(output);
        (dominant / per_core_tags).ceil().max(1.0) as u32
    }

    /// The paper's stated core counts (§6.2–6.5) for cross-checking
    /// Equation 3.
    pub fn paper_cores(&self) -> u32 {
        match (self.kind, self.coupling) {
            (ArchKind::Base, _) => 3,
            (ArchKind::CostOpt, _) => 2,
            (ArchKind::CommOpt, _) => 2,
            (ArchKind::MemOpt, Coupling::Decp) => 2,
            (ArchKind::MemOpt, Coupling::Tc) => 10,
        }
    }
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for a in Architecture::ALL {
            assert_eq!(Architecture::parse(&a.name()), Some(a));
        }
        assert_eq!(Architecture::parse("bogus.tc"), None);
        assert_eq!(Architecture::parse("base.sideways"), None);
    }

    #[test]
    fn table8_tier_wiring() {
        let base_tc = Architecture::parse("base.tc").unwrap();
        let t = base_tc.tier_config(InstanceSize::Medium);
        assert_eq!(t.local, MemoryTier::PcieHostDram);
        assert_eq!(t.remote, MemoryTier::CloudNicRemote);
        assert_eq!(t.output, MemoryTier::PciePeerToPeer);

        let mem_tc = Architecture::parse("mem-opt.tc").unwrap();
        let t = mem_tc.tier_config(InstanceSize::Medium);
        assert_eq!(t.local, MemoryTier::FpgaLocalDram { channels: 8 });
        assert_eq!(t.remote, MemoryTier::Mof { links: 2 });
        assert_eq!(t.output, MemoryTier::GpuFastLink);

        let comm_decp = Architecture::parse("comm-opt.decp").unwrap();
        let t = comm_decp.tier_config(InstanceSize::Large);
        assert_eq!(t.remote, MemoryTier::Mof { links: 8 });
        assert_eq!(t.output, MemoryTier::CloudNicRemote);
    }

    #[test]
    fn eq3_core_counts_track_paper() {
        // §6.2–6.5: 3 cores base, 2 cost-opt, 2 comm-opt, 2 mem-opt.decp,
        // 10 mem-opt.tc. Equation 3 with the stated parameters lands on
        // (or next to) each value.
        for a in Architecture::ALL {
            let eq3 = a.axe_cores(InstanceSize::Medium);
            let paper = a.paper_cores();
            // Within one core for the small configurations; the paper
            // provisions extra headroom on mem-opt.tc (10 vs the ~6 the
            // equation demands at a 240 B mix).
            assert!(
                eq3 as f64 >= paper as f64 * 0.5 && eq3 <= paper + 2,
                "{}: eq3 {eq3} vs paper {paper}",
                a.name()
            );
        }
    }

    #[test]
    fn mem_opt_tc_needs_the_most_cores() {
        let cores: Vec<u32> = Architecture::ALL
            .iter()
            .map(|a| a.axe_cores(InstanceSize::Medium))
            .collect();
        let mem_tc_cores = Architecture::parse("mem-opt.tc")
            .unwrap()
            .axe_cores(InstanceSize::Medium);
        assert_eq!(*cores.iter().max().unwrap(), mem_tc_cores);
    }

    #[test]
    fn nic_sharing_flags() {
        assert!(Architecture::parse("base.decp")
            .unwrap()
            .output_shares_nic());
        assert!(!Architecture::parse("base.tc").unwrap().output_shares_nic());
        assert!(Architecture::parse("base.tc").unwrap().remote_on_nic());
        assert!(!Architecture::parse("comm-opt.tc").unwrap().remote_on_nic());
    }
}
