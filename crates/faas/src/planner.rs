//! A deployment planner on top of the DSE.
//!
//! Figure 20 answers "what does it cost to *hold* the graph"; a platform
//! team's real question adds a throughput target: *which architecture,
//! instance size and fleet count serves this workload cheapest?* The
//! planner enumerates the Table 8 × Table 12 space and returns the
//! cost-optimal deployment, accounting for the memory needed to hold the
//! graph, the per-instance sampling rate, and the paper's GPU rule.

use crate::arch::Architecture;
use crate::cost::CostModel;
use crate::dse::gpus_needed;
use crate::instance::InstanceSize;
use crate::perf;
use lsdgnn_graph::{DatasetConfig, FootprintModel};

/// One feasible deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct Deployment {
    /// Architecture.
    pub arch: Architecture,
    /// Instance size.
    pub size: InstanceSize,
    /// Instance count.
    pub instances: u64,
    /// Aggregate sampling throughput (samples/second).
    pub throughput: f64,
    /// Total hourly cost including GPUs.
    pub dollars_per_hour: f64,
}

impl Deployment {
    /// Cost efficiency (samples/s per $/h).
    pub fn perf_per_dollar(&self) -> f64 {
        self.throughput / self.dollars_per_hour
    }
}

/// Fleet scaling efficiency: distributed sampling fleets lose a little
/// throughput per added instance to coordination (mirrors the CPU
/// model's sub-linearity, far milder on FPGA fleets with MoF).
fn fleet_efficiency(instances: u64) -> f64 {
    1.0 / (1.0 + 0.01 * (instances.saturating_sub(1) as f64))
}

/// Plans the cheapest deployment of `dataset` sustaining at least
/// `target_samples_per_sec`. Returns `None` if no configuration in the
/// space reaches the target (caps fleets at 4096 instances).
pub fn plan_cheapest(
    dataset: &DatasetConfig,
    target_samples_per_sec: f64,
    cost_model: &CostModel,
) -> Option<Deployment> {
    let mut best: Option<Deployment> = None;
    for arch in Architecture::ALL {
        for size in InstanceSize::ALL {
            let per_instance = perf::samples_per_sec(arch, size, dataset);
            if per_instance <= 0.0 {
                continue;
            }
            // Minimum fleet to hold the graph at all.
            let fm = FootprintModel {
                server_bytes: size.memory_gb() * (1 << 30),
                ..FootprintModel::default()
            };
            let hold = fm.min_servers(dataset);
            // Grow the fleet until the throughput target is met.
            let mut instances = hold;
            loop {
                if instances > 4096 {
                    break;
                }
                let throughput = per_instance * instances as f64 * fleet_efficiency(instances);
                if throughput >= target_samples_per_sec {
                    let price = instances as f64
                        * cost_model.faas_instance_price(size, gpus_needed(per_instance, dataset));
                    let cand = Deployment {
                        arch,
                        size,
                        instances,
                        throughput,
                        dollars_per_hour: price,
                    };
                    match &best {
                        Some(b) if b.dollars_per_hour <= cand.dollars_per_hour => {}
                        _ => best = Some(cand),
                    }
                    break;
                }
                instances += 1;
            }
        }
    }
    best
}

/// Plans across a range of targets, returning `(target, deployment)`
/// rows — the "scaling price list" a platform team would publish.
pub fn plan_sweep(
    dataset: &DatasetConfig,
    targets: &[f64],
    cost_model: &CostModel,
) -> Vec<(f64, Option<Deployment>)> {
    targets
        .iter()
        .map(|&t| (t, plan_cheapest(dataset, t, cost_model)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DatasetConfig, CostModel) {
        (
            DatasetConfig::by_name("ml").unwrap(),
            CostModel::default_fitted(),
        )
    }

    #[test]
    fn planner_meets_the_target() {
        let (d, cost) = setup();
        let plan = plan_cheapest(&d, 50e6, &cost).expect("target reachable");
        assert!(plan.throughput >= 50e6);
        assert!(plan.dollars_per_hour > 0.0);
        assert!(plan.instances >= 1);
    }

    #[test]
    fn higher_targets_cost_more() {
        let (d, cost) = setup();
        let lo = plan_cheapest(&d, 10e6, &cost).unwrap();
        let hi = plan_cheapest(&d, 200e6, &cost).unwrap();
        assert!(hi.dollars_per_hour > lo.dollars_per_hour);
        assert!(hi.throughput >= 200e6);
    }

    #[test]
    fn low_targets_still_hold_the_graph() {
        // Even a tiny target needs enough instances for the footprint.
        let (d, cost) = setup();
        let plan = plan_cheapest(&d, 1.0, &cost).unwrap();
        let fm = FootprintModel {
            server_bytes: plan.size.memory_gb() * (1 << 30),
            ..FootprintModel::default()
        };
        assert!(plan.instances >= fm.min_servers(&d));
    }

    #[test]
    fn impossible_targets_return_none() {
        let (d, cost) = setup();
        assert!(plan_cheapest(&d, 1e18, &cost).is_none());
    }

    #[test]
    fn optimized_architectures_win_at_high_targets() {
        // At high throughput targets the optimized architectures need
        // far fewer instances, making them the cheapest choice.
        let (d, cost) = setup();
        let plan = plan_cheapest(&d, 500e6, &cost).unwrap();
        assert!(
            matches!(
                plan.arch.kind,
                crate::arch::ArchKind::MemOpt | crate::arch::ArchKind::CommOpt
            ),
            "expected an optimized architecture, got {}",
            plan.arch.name()
        );
    }

    #[test]
    fn sweep_is_monotone_in_cost() {
        let (d, cost) = setup();
        let rows = plan_sweep(&d, &[1e6, 10e6, 100e6, 400e6], &cost);
        let costs: Vec<f64> = rows
            .iter()
            .filter_map(|(_, p)| p.as_ref().map(|p| p.dollars_per_hour))
            .collect();
        assert_eq!(costs.len(), 4);
        assert!(costs.windows(2).all(|w| w[0] <= w[1] + 1e-9));
    }
}
