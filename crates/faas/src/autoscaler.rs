//! Policy simulation and a cost-scored autoscaler for the serving tier.
//!
//! Replays a seeded [`TrafficTrace`] against the §7.2 archetype
//! performance model in virtual time: each step admits the arrivals that
//! fall inside it (optionally through an [`AdmissionController`]), drains
//! the class lanes in priority order against the fleet's modeled sampling
//! capacity, and charges the fleet by the hour through [`CostModel`]. An
//! optional hysteresis autoscaler adds and removes simulated cards as
//! utilization moves; policies are compared by *cost per million SLO-met
//! requests*, which is the number the capacity planner actually buys.
//!
//! The simulation is deliberately fluid (work is a scalar samples count,
//! service happens within the step that pays for it) — it ranks shaping
//! and scaling policies on identical traffic, it does not predict absolute
//! latencies. The batching delay model mirrors the live service's two
//! [`BatchPolicy`](lsdgnn_framework::BatchPolicy) arms: the fixed arm
//! charges every request the full growth-timer wait, the slack arm
//! charges `min(wait, remaining slack)` so coalescing is never the reason
//! a request misses its deadline.

use crate::arch::Architecture;
use crate::cost::CostModel;
use crate::instance::InstanceSize;
use crate::perf;
use lsdgnn_framework::{
    AdmissionConfig, AdmissionController, Arrival, Priority, TrafficTrace, Verdict, CLASSES,
};
use lsdgnn_graph::DatasetConfig;
use std::collections::VecDeque;

/// How the simulated batcher charges coalescing delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchSim {
    /// Every request waits out the fixed growth timer.
    Fixed {
        /// The growth-timer wait charged to every request, µs.
        wait_us: u64,
    },
    /// Requests wait `min(wait, slack)`: a batch closes early once the
    /// oldest member's deadline slack runs out.
    Slack {
        /// The growth-timer ceiling, µs.
        wait_us: u64,
    },
}

impl BatchSim {
    /// Batching delay charged to a request that finished its queue +
    /// service time with `slack_us` left before its deadline.
    fn delay_us(&self, slack_us: u64) -> u64 {
        match *self {
            BatchSim::Fixed { wait_us } => wait_us,
            BatchSim::Slack { wait_us } => wait_us.min(slack_us),
        }
    }
}

/// Hysteresis bounds for the card autoscaler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalerConfig {
    /// Fleet floor.
    pub min_cards: u32,
    /// Fleet ceiling.
    pub max_cards: u32,
    /// Scale up when step utilization exceeds this...
    pub up_utilization: f64,
    /// ...and down when it falls below this.
    pub down_utilization: f64,
    /// Consecutive steps past a threshold before acting.
    pub consecutive_steps: u32,
    /// Steps to sit still after any action.
    pub cooldown_steps: u32,
    /// Cards added or removed per action.
    pub step_cards: u32,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            min_cards: 1,
            max_cards: 16,
            up_utilization: 0.85,
            down_utilization: 0.40,
            consecutive_steps: 2,
            cooldown_steps: 3,
            step_cards: 1,
        }
    }
}

/// Fleet sizing policy.
#[derive(Debug, Clone, PartialEq)]
pub enum Scaling {
    /// A fixed fleet (the peak-provisioned comparison arm).
    Static {
        /// Cards held for the whole trace.
        cards: u32,
    },
    /// Hysteresis autoscaling between the configured bounds.
    Auto(AutoscalerConfig),
}

/// One policy arm: shaping × batching × scaling.
#[derive(Debug, Clone)]
pub struct SimPolicy {
    /// Report label.
    pub name: String,
    /// Admission control; `None` is the unshaped baseline (merged FIFO,
    /// unbounded queue).
    pub admission: Option<AdmissionConfig>,
    /// Batching delay model.
    pub batch: BatchSim,
    /// Fleet sizing.
    pub scaling: Scaling,
}

/// The simulated platform: which archetype serves, how fast, at what
/// granularity.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Serving architecture (one of the Table 8 eight).
    pub arch: Architecture,
    /// Instance size per card.
    pub instance: InstanceSize,
    /// Dataset the perf model is evaluated on.
    pub dataset: DatasetConfig,
    /// Divides the modeled samples/sec so request rates stay tractable:
    /// the §7.2 model yields hundreds of millions of samples/sec per
    /// card, which would need absurd request rates to load. Scaling
    /// capacity and demand together preserves every ratio the comparison
    /// cares about.
    pub rate_scale: f64,
    /// Virtual step, µs.
    pub step_us: u64,
    /// Allowed deadline-miss fraction; the burn fed to admission is
    /// `recent miss fraction / slo_budget`.
    pub slo_budget: f64,
    /// Completions in the sliding miss window behind the burn signal.
    pub burn_window: usize,
    /// Extra steps allowed to drain queues after the last arrival;
    /// anything still queued then is counted served-but-missed.
    pub max_drain_steps: u64,
}

impl SimConfig {
    /// A paper-shaped default: comm-opt.tc Medium cards on the given
    /// dataset, 10ms steps.
    pub fn new(dataset: DatasetConfig) -> Self {
        SimConfig {
            arch: Architecture::parse("comm-opt.tc").expect("known archetype"),
            instance: InstanceSize::Medium,
            dataset,
            // 2.6e7 samples/sec/card scaled to ~2.6e5: a ~300-sample
            // request then costs ~1ms of card time, comfortably inside
            // the tens-of-ms interactive deadlines the traces use.
            rate_scale: 100.0,
            step_us: 5_000,
            slo_budget: 0.05,
            burn_window: 256,
            max_drain_steps: 2_000,
        }
    }

    /// Modeled sampling capacity of one card, samples/sec, after
    /// `rate_scale`.
    pub fn card_rate(&self) -> f64 {
        perf::samples_per_sec(self.arch, self.instance, &self.dataset) / self.rate_scale
    }

    /// Request rate (requests/sec) that loads `cards` to `utilization`,
    /// for traces whose requests average `work_per_request` samples. The
    /// bench uses this to pin trace demand to a fraction of static
    /// capacity so the comparison is about shaping, not sizing.
    pub fn calibrated_rps(&self, cards: u32, work_per_request: f64, utilization: f64) -> f64 {
        self.card_rate() * cards as f64 * utilization / work_per_request.max(1.0)
    }
}

/// Per-class outcome counts for one policy arm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassOutcome {
    /// Arrivals offered to this class.
    pub submitted: u64,
    /// Admitted into a lane.
    pub admitted: u64,
    /// Rejected (rate limit or full lane).
    pub rejected: u64,
    /// Dropped by brownout shedding.
    pub shed: u64,
    /// Served to completion (including past-deadline completions).
    pub completed: u64,
    /// Served within their deadline.
    pub slo_met: u64,
    /// Admits served at brownout-degraded fanout.
    pub degraded: u64,
}

/// What one policy arm did with the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyReport {
    /// Policy label.
    pub policy: String,
    /// Virtual steps simulated (including drain).
    pub steps: u64,
    /// Mean fleet size across steps.
    pub cards_mean: f64,
    /// Peak fleet size.
    pub cards_max: u32,
    /// Fleet size at the final step.
    pub cards_final: u32,
    /// Scale-up actions taken.
    pub scale_ups: u32,
    /// Scale-down actions taken.
    pub scale_downs: u32,
    /// Outcomes per class, indexed by [`Priority::index`].
    pub classes: [ClassOutcome; CLASSES],
    /// High-water lane depth per class (requests).
    pub max_queue: [u64; CLASSES],
    /// Whether the admission lane bounds were never exceeded (true
    /// vacuously for the unshaped baseline).
    pub bounds_respected: bool,
    /// Fleet cost over the trace, dollars.
    pub cost: f64,
    /// Dollars per million SLO-met requests (infinite if none met).
    pub cost_per_million_slo_met: f64,
}

impl PolicyReport {
    /// Total requests that met their deadline.
    pub fn slo_met_total(&self) -> u64 {
        self.classes.iter().map(|c| c.slo_met).sum()
    }

    /// Fraction of one class's offered load that met its deadline.
    pub fn slo_rate(&self, class: Priority) -> f64 {
        let c = &self.classes[class.index()];
        if c.submitted == 0 {
            1.0
        } else {
            c.slo_met as f64 / c.submitted as f64
        }
    }

    /// Rejected + shed counts outside `class` (for "rejections confined
    /// to best-effort" style assertions).
    pub fn refusals_outside(&self, class: Priority) -> u64 {
        Priority::ALL
            .iter()
            .filter(|p| **p != class)
            .map(|p| {
                let c = &self.classes[p.index()];
                c.rejected + c.shed
            })
            .sum()
    }
}

/// A request waiting for fleet capacity.
#[derive(Debug, Clone, Copy)]
struct Pending {
    at_us: u64,
    deadline_us: u64,
    work_left: f64,
    class: Priority,
    degraded: bool,
}

fn work_samples(a: &Arrival, fanout: usize) -> f64 {
    let mut per_root = 0.0;
    let mut frontier = 1.0;
    for _ in 0..a.hops {
        frontier *= fanout.max(1) as f64;
        per_root += frontier;
    }
    a.roots as f64 * per_root
}

/// Sliding-window deadline-miss accounting behind the burn signal.
struct BurnWindow {
    recent: VecDeque<bool>,
    cap: usize,
    budget: f64,
}

impl BurnWindow {
    fn new(cap: usize, budget: f64) -> Self {
        BurnWindow {
            recent: VecDeque::with_capacity(cap.max(1)),
            cap: cap.max(1),
            budget: budget.max(1e-9),
        }
    }

    fn observe(&mut self, missed: bool) {
        if self.recent.len() == self.cap {
            self.recent.pop_front();
        }
        self.recent.push_back(missed);
    }

    fn burn(&self) -> f64 {
        if self.recent.is_empty() {
            return 0.0;
        }
        let misses = self.recent.iter().filter(|m| **m).count() as f64;
        misses / self.recent.len() as f64 / self.budget
    }
}

/// Hysteresis state for the autoscaler.
struct ScalerState {
    over: u32,
    under: u32,
    cooldown: u32,
}

/// Replays `trace` under one policy arm and scores it.
///
/// # Panics
///
/// Panics if the policy's admission config has fewer tenants than the
/// trace references, or on a zero-card static fleet.
pub fn simulate(
    trace: &TrafficTrace,
    policy: &SimPolicy,
    sim: &SimConfig,
    cost: &CostModel,
) -> PolicyReport {
    let mut cards = match &policy.scaling {
        Scaling::Static { cards } => {
            assert!(*cards > 0, "static fleet needs at least one card");
            *cards
        }
        Scaling::Auto(a) => a.min_cards.max(1),
    };
    let mut ctrl = policy.admission.clone().map(AdmissionController::new);
    let card_rate = sim.card_rate();
    let price_per_us = cost.faas_instance_price(sim.instance, 0.0) / 3.6e9;

    let mut lanes: [VecDeque<Pending>; CLASSES] = Default::default();
    let mut classes = [ClassOutcome::default(); CLASSES];
    let mut max_queue = [0u64; CLASSES];
    let mut burn = BurnWindow::new(sim.burn_window, sim.slo_budget);
    let mut scaler = ScalerState {
        over: 0,
        under: 0,
        cooldown: 0,
    };
    let (mut steps, mut drain_steps) = (0u64, 0u64);
    let (mut cards_sum, mut cards_max) = (0u64, cards);
    let (mut scale_ups, mut scale_downs) = (0u32, 0u32);
    let mut dollars = 0.0f64;
    let mut idx = 0usize;
    let mut now = 0u64;

    loop {
        let step_end = now + sim.step_us;
        let mut arrived_work = 0.0f64;

        // Admit this step's arrivals.
        while idx < trace.arrivals.len() && trace.arrivals[idx].at_us < step_end {
            let a = &trace.arrivals[idx];
            idx += 1;
            let out = &mut classes[a.class.index()];
            out.submitted += 1;
            let verdict = match ctrl.as_mut() {
                Some(c) => {
                    c.set_burn(burn.burn());
                    c.decide(a.tenant as usize, a.class, a.at_us)
                }
                None => Verdict::Admit {
                    degrade_fanout: false,
                },
            };
            match verdict {
                Verdict::Admit { degrade_fanout } => {
                    out.admitted += 1;
                    let fanout = if degrade_fanout {
                        let div = policy
                            .admission
                            .as_ref()
                            .and_then(|c| c.brownout.as_ref())
                            .map_or(1, |b| b.degrade_fanout_div);
                        (a.fanout / div.max(1)).max(1)
                    } else {
                        a.fanout
                    };
                    if degrade_fanout {
                        out.degraded += 1;
                    }
                    let work = work_samples(a, fanout);
                    arrived_work += work;
                    // The unshaped baseline has no lanes: everything
                    // shares one FIFO (interactive's) in arrival order.
                    let lane = if ctrl.is_some() {
                        a.class.index()
                    } else {
                        Priority::Interactive.index()
                    };
                    lanes[lane].push_back(Pending {
                        at_us: a.at_us,
                        deadline_us: a.deadline_us,
                        work_left: work,
                        class: a.class,
                        degraded: degrade_fanout,
                    });
                }
                Verdict::Reject { .. } => out.rejected += 1,
                Verdict::Shed => out.shed += 1,
            }
        }

        for (i, lane) in lanes.iter().enumerate() {
            max_queue[i] = max_queue[i].max(lane.len() as u64);
        }

        // Serve in priority order against the fleet's step capacity.
        let capacity = cards as f64 * card_rate * (sim.step_us as f64 * 1e-6);
        let queued_work: f64 = lanes
            .iter()
            .flat_map(|l| l.iter())
            .map(|p| p.work_left)
            .sum();
        let utilization = if capacity > 0.0 {
            queued_work / capacity
        } else {
            f64::INFINITY
        };
        let mut budget = capacity;
        for lane in lanes.iter_mut() {
            while budget > 0.0 {
                let Some(front) = lane.front_mut() else { break };
                if front.work_left > budget {
                    front.work_left -= budget;
                    budget = 0.0;
                    break;
                }
                budget -= front.work_left;
                let done = lane.pop_front().expect("front exists");
                if let Some(c) = ctrl.as_mut() {
                    c.dequeued(done.class);
                }
                let out = &mut classes[done.class.index()];
                out.completed += 1;
                let base = step_end.saturating_sub(done.at_us);
                let slack = done.deadline_us.saturating_sub(base);
                let total = base + policy.batch.delay_us(slack);
                let met = total <= done.deadline_us;
                if met {
                    out.slo_met += 1;
                }
                burn.observe(!met);
                let _ = done.degraded;
            }
            if budget <= 0.0 {
                break;
            }
        }

        // Autoscale on utilization with hysteresis.
        if let Scaling::Auto(a) = &policy.scaling {
            if scaler.cooldown > 0 {
                scaler.cooldown -= 1;
            } else {
                if utilization > a.up_utilization {
                    scaler.over += 1;
                    scaler.under = 0;
                } else if utilization < a.down_utilization {
                    scaler.under += 1;
                    scaler.over = 0;
                } else {
                    scaler.over = 0;
                    scaler.under = 0;
                }
                if scaler.over >= a.consecutive_steps && cards < a.max_cards {
                    cards = (cards + a.step_cards).min(a.max_cards);
                    scale_ups += 1;
                    scaler.over = 0;
                    scaler.cooldown = a.cooldown_steps;
                } else if scaler.under >= a.consecutive_steps && cards > a.min_cards {
                    cards = cards.saturating_sub(a.step_cards).max(a.min_cards);
                    scale_downs += 1;
                    scaler.under = 0;
                    scaler.cooldown = a.cooldown_steps;
                }
            }
        }

        steps += 1;
        cards_sum += cards as u64;
        cards_max = cards_max.max(cards);
        dollars += cards as f64 * price_per_us * sim.step_us as f64;
        now = step_end;
        let _ = arrived_work;

        let empty = lanes.iter().all(|l| l.is_empty());
        if idx >= trace.arrivals.len() {
            drain_steps += 1;
            if empty || drain_steps > sim.max_drain_steps {
                break;
            }
        }
    }

    // Anything still queued at the drain cap would finish far past its
    // deadline: count it served-but-missed so conservation holds.
    for lane in lanes.iter_mut() {
        while let Some(p) = lane.pop_front() {
            if let Some(c) = ctrl.as_mut() {
                c.dequeued(p.class);
            }
            classes[p.class.index()].completed += 1;
        }
    }

    let bounds_respected = ctrl.as_ref().is_none_or(|c| c.stats().bounds_respected());
    let slo_met: u64 = classes.iter().map(|c| c.slo_met).sum();
    PolicyReport {
        policy: policy.name.clone(),
        steps,
        cards_mean: cards_sum as f64 / steps.max(1) as f64,
        cards_max,
        cards_final: cards,
        scale_ups,
        scale_downs,
        classes,
        max_queue,
        bounds_respected,
        cost: dollars,
        cost_per_million_slo_met: if slo_met == 0 {
            f64::INFINITY
        } else {
            dollars * 1e6 / slo_met as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdgnn_framework::{BrownoutConfig, BucketConfig, TenantConfig, TenantSpec, TrafficConfig};

    fn dataset() -> DatasetConfig {
        DatasetConfig::by_name("ll").unwrap()
    }

    fn mix() -> Vec<TenantSpec> {
        vec![
            TenantSpec {
                name: "chat".into(),
                archetype: "comm-opt.tc".into(),
                class: Priority::Interactive,
                weight: 2.0,
                deadline_us: 40_000,
                roots: 4,
                hops: 2,
                fanout: 8,
            },
            TenantSpec {
                name: "nightly".into(),
                archetype: "comm-opt.tc".into(),
                class: Priority::Batch,
                weight: 1.0,
                deadline_us: 400_000,
                roots: 8,
                hops: 2,
                fanout: 8,
            },
            TenantSpec {
                name: "crawler".into(),
                archetype: "comm-opt.tc".into(),
                class: Priority::BestEffort,
                weight: 1.0,
                deadline_us: 1_000_000,
                roots: 8,
                hops: 2,
                fanout: 8,
            },
        ]
    }

    fn admission(bounds: [usize; CLASSES]) -> AdmissionConfig {
        AdmissionConfig {
            tenants: mix()
                .into_iter()
                .map(|t| TenantConfig {
                    name: t.name,
                    bucket: BucketConfig {
                        rate_per_sec: 2_000.0,
                        burst: 200.0,
                    },
                })
                .collect(),
            queue_bounds: bounds,
            brownout: Some(BrownoutConfig::default()),
        }
    }

    fn bursty_trace(sim: &SimConfig, cards: u32, utilization: f64) -> TrafficTrace {
        let tenants = mix();
        let work: f64 = {
            let per: Vec<f64> = tenants
                .iter()
                .map(|t| {
                    let mut fr = 1.0;
                    let mut sum = 0.0;
                    for _ in 0..t.hops {
                        fr *= t.fanout as f64;
                        sum += fr;
                    }
                    t.roots as f64 * sum
                })
                .collect();
            let wsum: f64 = tenants.iter().map(|t| t.weight).sum();
            tenants
                .iter()
                .zip(&per)
                .map(|(t, w)| w * t.weight / wsum)
                .sum()
        };
        TrafficTrace::generate(&TrafficConfig {
            seed: 7,
            duration_us: 2_000_000,
            mean_rps: sim.calibrated_rps(cards, work, utilization),
            // A deep single cycle: a genuine rush hour and a genuine
            // trough, so scale-down behavior is exercised too.
            diurnal_depth: 0.8,
            diurnal_cycles: 1.0,
            burstiness: 0.8,
            cascade_depth: 8,
            tenants,
        })
    }

    fn policies(cards: u32) -> (SimPolicy, SimPolicy, SimPolicy) {
        let wait = 5_000;
        (
            SimPolicy {
                name: "fixed/no-admission".into(),
                admission: None,
                batch: BatchSim::Fixed { wait_us: wait },
                scaling: Scaling::Static { cards },
            },
            SimPolicy {
                name: "slack+admission".into(),
                admission: Some(admission([512, 512, 64])),
                batch: BatchSim::Slack { wait_us: wait },
                scaling: Scaling::Static { cards },
            },
            SimPolicy {
                name: "slack+admission+autoscaler".into(),
                admission: Some(admission([512, 512, 64])),
                batch: BatchSim::Slack { wait_us: wait },
                scaling: Scaling::Auto(AutoscalerConfig {
                    min_cards: 1,
                    max_cards: cards,
                    ..AutoscalerConfig::default()
                }),
            },
        )
    }

    #[test]
    fn shaping_beats_the_unshaped_baseline_on_interactive_slo() {
        let sim = SimConfig::new(dataset());
        let cards = 4;
        let trace = bursty_trace(&sim, cards, 0.9);
        let cost = CostModel::default_fitted();
        let (base, shaped, _) = policies(cards);
        let b = simulate(&trace, &base, &sim, &cost);
        let s = simulate(&trace, &shaped, &sim, &cost);
        assert!(
            s.slo_rate(Priority::Interactive) > b.slo_rate(Priority::Interactive),
            "shaped {} vs baseline {}",
            s.slo_rate(Priority::Interactive),
            b.slo_rate(Priority::Interactive)
        );
        assert!(s.bounds_respected);
        // The shaped arm's drops stay in the best-effort class.
        assert_eq!(
            s.refusals_outside(Priority::BestEffort),
            s.classes[Priority::Interactive.index()].rejected
                + s.classes[Priority::Interactive.index()].shed
                + s.classes[Priority::Batch.index()].rejected
                + s.classes[Priority::Batch.index()].shed
        );
    }

    #[test]
    fn every_submission_reaches_exactly_one_terminal_outcome() {
        let sim = SimConfig::new(dataset());
        let trace = bursty_trace(&sim, 4, 1.1);
        let cost = CostModel::default_fitted();
        let (base, shaped, auto) = policies(4);
        for p in [&base, &shaped, &auto] {
            let r = simulate(&trace, p, &sim, &cost);
            for (i, c) in r.classes.iter().enumerate() {
                assert_eq!(
                    c.submitted,
                    c.completed + c.rejected + c.shed,
                    "{}: class {i} leaks requests",
                    p.name
                );
                assert_eq!(c.admitted, c.completed, "{}: class {i} lost admits", p.name);
            }
        }
    }

    #[test]
    fn autoscaler_scales_up_under_burst_and_back_down() {
        let sim = SimConfig::new(dataset());
        let cards = 6;
        let trace = bursty_trace(&sim, cards, 0.9);
        let cost = CostModel::default_fitted();
        let (_, _, auto) = policies(cards);
        let r = simulate(&trace, &auto, &sim, &cost);
        assert!(r.scale_ups > 0, "burst must trigger a scale-up");
        assert!(r.scale_downs > 0, "troughs must trigger scale-downs");
        assert!(r.cards_max > 1);
        assert!(
            r.cards_mean < r.cards_max as f64,
            "fleet must not sit at peak the whole trace ({} mean vs {} peak)",
            r.cards_mean,
            r.cards_max
        );
    }

    #[test]
    fn autoscaler_costs_no_more_per_slo_met_than_static_peak() {
        let sim = SimConfig::new(dataset());
        let cards = 6;
        let trace = bursty_trace(&sim, cards, 0.9);
        let cost = CostModel::default_fitted();
        let (_, shaped, auto) = policies(cards);
        let s = simulate(&trace, &shaped, &sim, &cost);
        let a = simulate(&trace, &auto, &sim, &cost);
        assert!(
            a.cost_per_million_slo_met <= s.cost_per_million_slo_met,
            "auto {} vs static {}",
            a.cost_per_million_slo_met,
            s.cost_per_million_slo_met
        );
        assert!(a.cost < s.cost, "smaller mean fleet must cost less");
    }

    #[test]
    fn simulation_is_deterministic() {
        let sim = SimConfig::new(dataset());
        let trace = bursty_trace(&sim, 4, 0.9);
        let cost = CostModel::default_fitted();
        let (_, shaped, _) = policies(4);
        let a = simulate(&trace, &shaped, &sim, &cost);
        let b = simulate(&trace, &shaped, &sim, &cost);
        assert_eq!(a, b);
    }

    #[test]
    fn slack_batching_never_adds_a_miss() {
        // Identical fleet and traffic; only the batch model differs. The
        // slack arm's met count can only improve on the fixed arm's.
        let sim = SimConfig::new(dataset());
        let trace = bursty_trace(&sim, 4, 0.9);
        let cost = CostModel::default_fitted();
        let fixed = SimPolicy {
            name: "fixed".into(),
            admission: None,
            batch: BatchSim::Fixed { wait_us: 30_000 },
            scaling: Scaling::Static { cards: 4 },
        };
        let slack = SimPolicy {
            name: "slack".into(),
            batch: BatchSim::Slack { wait_us: 30_000 },
            ..fixed.clone()
        };
        let f = simulate(&trace, &fixed, &sim, &cost);
        let s = simulate(&trace, &slack, &sim, &cost);
        assert!(s.slo_met_total() >= f.slo_met_total());
    }
}
