//! FPGA-as-a-Service design-space exploration (paper §6 and §7).
//!
//! Encodes the eight FaaS architectures of Table 8 (`base`, `cost-opt`,
//! `comm-opt`, `mem-opt`, each tightly-coupled `.tc` or decoupled
//! `.decp`), the three instance configurations of Table 12, the Equation 3
//! core-sizing rule, the analytical sampling-performance model validated
//! against the AxE discrete-event simulation (Figure 15), the cloud cost
//! model (Figure 16), and the full DSE drivers behind Figures 17–21.
//!
//! # Example
//!
//! ```
//! use lsdgnn_faas::{Architecture, InstanceSize};
//! use lsdgnn_graph::DatasetConfig;
//!
//! let arch = Architecture::parse("mem-opt.tc").unwrap();
//! let d = DatasetConfig::by_name("ll").unwrap();
//! let perf = lsdgnn_faas::perf::samples_per_sec(arch, InstanceSize::Large, &d);
//! assert!(perf > 0.0);
//! ```

pub mod arch;
pub mod autoscaler;
pub mod cost;
pub mod discussion;
pub mod dse;
pub mod instance;
pub mod perf;
pub mod planner;

pub use arch::{ArchKind, Architecture, Coupling};
pub use autoscaler::{
    simulate, AutoscalerConfig, BatchSim, ClassOutcome, PolicyReport, Scaling, SimConfig, SimPolicy,
};
pub use cost::{CostModel, InstanceSpec, QuoteSet};
pub use dse::{DseCell, DseResult};
pub use instance::InstanceSize;
pub use planner::{plan_cheapest, plan_sweep, Deployment};
