//! FaaS instance configurations (paper Table 12).

use serde::{Deserialize, Serialize};

/// The three instance sizes of Table 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstanceSize {
    /// 2 vCPU, 8 GB, 1 FPGA, 10 Gb NIC, 100 Gb MoF.
    Small,
    /// 2 vCPU, 384 GB, 1 FPGA, 20 Gb NIC, 200 Gb MoF.
    Medium,
    /// 2 vCPU, 512 GB, 2 FPGAs, 50 Gb NIC, 800 Gb MoF.
    Large,
}

impl InstanceSize {
    /// All sizes in Table 12 order.
    pub const ALL: [InstanceSize; 3] = [
        InstanceSize::Small,
        InstanceSize::Medium,
        InstanceSize::Large,
    ];

    /// Table 12 row name.
    pub fn name(&self) -> &'static str {
        match self {
            InstanceSize::Small => "small",
            InstanceSize::Medium => "medium",
            InstanceSize::Large => "large",
        }
    }

    /// vCPUs per instance.
    pub fn vcpus(&self) -> u32 {
        2
    }

    /// DRAM per instance in GB.
    pub fn memory_gb(&self) -> u64 {
        match self {
            InstanceSize::Small => 8,
            InstanceSize::Medium => 384,
            InstanceSize::Large => 512,
        }
    }

    /// FPGA chips per instance.
    pub fn fpga_chips(&self) -> u32 {
        match self {
            InstanceSize::Small | InstanceSize::Medium => 1,
            InstanceSize::Large => 2,
        }
    }

    /// vCPUs of the *CPU-baseline* fleet instance with the same memory
    /// footprint (CPU-optimized SKUs provision ~4 GB per vCPU, so a pure
    /// software deployment holding this much graph also gets this much
    /// sampling compute).
    pub fn cpu_sampling_vcpus(&self) -> u32 {
        ((self.memory_gb() / 4) as u32).max(2)
    }

    /// NIC rate in Gbit/s.
    pub fn nic_gbit(&self) -> u32 {
        match self {
            InstanceSize::Small => 10,
            InstanceSize::Medium => 20,
            InstanceSize::Large => 50,
        }
    }

    /// MoF rate in Gbit/s (where the architecture has MoF).
    pub fn mof_gbit(&self) -> u32 {
        match self {
            InstanceSize::Small => 100,
            InstanceSize::Medium => 200,
            InstanceSize::Large => 800,
        }
    }

    /// NIC rate in GB/s.
    pub fn nic_gbps(&self) -> f64 {
        self.nic_gbit() as f64 / 8.0
    }

    /// MoF rate in GB/s.
    pub fn mof_gbps(&self) -> f64 {
        self.mof_gbit() as f64 / 8.0
    }

    /// MoF lanes of 100 Gb each.
    pub fn mof_links(&self) -> u32 {
        self.mof_gbit() / 100
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table12_values() {
        assert_eq!(InstanceSize::Small.memory_gb(), 8);
        assert_eq!(InstanceSize::Medium.memory_gb(), 384);
        assert_eq!(InstanceSize::Large.memory_gb(), 512);
        assert_eq!(InstanceSize::Large.fpga_chips(), 2);
        assert_eq!(InstanceSize::Small.nic_gbit(), 10);
        assert_eq!(InstanceSize::Medium.mof_gbit(), 200);
        for s in InstanceSize::ALL {
            assert_eq!(s.vcpus(), 2);
        }
    }

    #[test]
    fn unit_conversions() {
        assert!((InstanceSize::Small.nic_gbps() - 1.25).abs() < 1e-9);
        assert!((InstanceSize::Large.mof_gbps() - 100.0).abs() < 1e-9);
        assert_eq!(InstanceSize::Large.mof_links(), 8);
    }

    #[test]
    fn sizes_are_ordered() {
        let mem: Vec<u64> = InstanceSize::ALL.iter().map(|s| s.memory_gb()).collect();
        assert!(mem.windows(2).all(|w| w[0] < w[1]));
    }
}
