//! The analytical sampling-performance model (§7.2).
//!
//! The paper projects FaaS performance from PoC measurements with an
//! in-house analytical model; this module is that model. Throughput is the
//! minimum over the system's bottleneck rates — local memory, remote
//! fabric, result output (sharing the NIC when decoupled), the Equation 3
//! concurrency budget, and the sampler pipeline itself. The same
//! decomposition, fed with a PoC configuration, is validated against the
//! AxE discrete-event simulation for Figure 15.

use crate::arch::Architecture;
use crate::instance::InstanceSize;
use lsdgnn_graph::{DatasetConfig, FootprintModel};
use lsdgnn_memfabric::LinkModel;

/// Everything the bottleneck decomposition needs.
#[derive(Debug, Clone)]
pub struct PerfInputs {
    /// Local-tier link (already aggregated across channels/chips).
    pub local: LinkModel,
    /// Remote-tier link.
    pub remote: LinkModel,
    /// Output link; `None` disables the output bound (Figure 15's
    /// "w/o PCIe limitation").
    pub output: Option<LinkModel>,
    /// Output and remote share one NIC (decoupled deployments).
    pub output_shares_remote: bool,
    /// AxE cores available.
    pub cores: u32,
    /// Context tags per core (outstanding budget).
    pub tags_per_core: u32,
    /// Logic clock in Hz.
    pub clock_hz: f64,
    /// Average out-degree of the graph.
    pub avg_degree: f64,
    /// Sampling fanout.
    pub fanout: f64,
    /// Attribute bytes per sampled node.
    pub attr_bytes: f64,
    /// Fraction of accesses that are remote.
    pub remote_fraction: f64,
}

/// The per-bottleneck rates (samples/second), for reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BottleneckRates {
    /// Local-memory-bound rate.
    pub local: f64,
    /// Remote-fabric-bound rate.
    pub remote: f64,
    /// Output-bound rate.
    pub output: f64,
    /// Concurrency-(Eq. 3)-bound rate.
    pub concurrency: f64,
    /// Sampler-pipeline-bound rate.
    pub pipeline: f64,
}

impl BottleneckRates {
    /// The overall throughput: the tightest bottleneck.
    pub fn samples_per_sec(&self) -> f64 {
        self.local
            .min(self.remote)
            .min(self.output)
            .min(self.concurrency)
            .min(self.pipeline)
    }

    /// Name of the binding bottleneck.
    pub fn binding(&self) -> &'static str {
        let m = self.samples_per_sec();
        if m == self.output {
            "output"
        } else if m == self.remote {
            "remote"
        } else if m == self.local {
            "local"
        } else if m == self.concurrency {
            "concurrency"
        } else {
            "pipeline"
        }
    }
}

/// Evaluates the bottleneck decomposition.
pub fn bottleneck_rates(p: &PerfInputs) -> BottleneckRates {
    // Bytes each sampled node pulls from graph storage: its attribute plus
    // its amortized share of the parent's metadata + edge-list read.
    let struct_bytes = (16.0 + p.avg_degree * 8.0) / p.fanout;
    let fetch_bytes = p.attr_bytes + struct_bytes;
    let local_share = fetch_bytes * (1.0 - p.remote_fraction);
    let remote_share = fetch_bytes * p.remote_fraction;

    let local = if local_share > 0.0 {
        p.local.peak_gbps * 1e9 / local_share
    } else {
        f64::INFINITY
    };

    // When output shares the NIC, the remote tier's budget is consumed by
    // both graph fetches and result output.
    let (remote_budget_bytes, output_rate) = match (&p.output, p.output_shares_remote) {
        (Some(out), true) => {
            // One pipe carries remote fetches + results.
            let shared = remote_share + p.attr_bytes;
            let rate = out.peak_gbps.min(p.remote.peak_gbps) * 1e9 / shared;
            (f64::INFINITY, rate)
        }
        (Some(out), false) => {
            let rate = out.peak_gbps * 1e9 / p.attr_bytes;
            (remote_share, rate)
        }
        (None, _) => (remote_share, f64::INFINITY),
    };
    let remote = if remote_budget_bytes.is_infinite() {
        // handled inside the shared-output rate
        f64::INFINITY
    } else if remote_budget_bytes > 0.0 {
        p.remote.peak_gbps * 1e9 / remote_budget_bytes
    } else {
        f64::INFINITY
    };

    // Equation 3: requests in flight / round trip. ~1 attribute request
    // per sample plus 1/fanout expansions.
    let reqs_per_sample = 1.0 + 1.0 / p.fanout;
    let mean_req = fetch_bytes / reqs_per_sample;
    let rtt_local = p.local.round_trip(mean_req as u64).as_nanos_f64();
    let rtt_remote = p.remote.round_trip(mean_req as u64).as_nanos_f64();
    let rtt = rtt_local * (1.0 - p.remote_fraction) + rtt_remote * p.remote_fraction;
    let concurrency = (p.cores as f64 * p.tags_per_core as f64 / (rtt * 1e-9)) / reqs_per_sample;

    // The streaming sampler consumes deg cycles per expansion, i.e.
    // deg/fanout cycles per sample, per core.
    let pipeline = p.cores as f64 * p.clock_hz * p.fanout / p.avg_degree.max(1.0);

    BottleneckRates {
        local,
        remote,
        output: output_rate,
        concurrency,
        pipeline,
    }
}

/// FaaS-level throughput of one instance running `arch` on `dataset`
/// (Figures 17/19).
pub fn samples_per_sec(arch: Architecture, inst: InstanceSize, dataset: &DatasetConfig) -> f64 {
    rates_for(arch, inst, dataset).samples_per_sec()
}

/// The full decomposition for one DSE cell.
pub fn rates_for(
    arch: Architecture,
    inst: InstanceSize,
    dataset: &DatasetConfig,
) -> BottleneckRates {
    let chips = inst.fpga_chips() as f64;
    let tiers = arch.tier_config(inst);
    // Instance-size scaling: FPGA-side links multiply by chip count; the
    // NIC is per instance.
    let scale = |mut l: LinkModel, by: f64| {
        l.peak_gbps *= by;
        l
    };
    let local = scale(tiers.local.link_model(), chips);
    let mut remote = scale(tiers.remote.link_model(), chips);
    // NIC-riding remote paths are capped by the instance NIC rate.
    if arch.remote_on_nic() {
        remote.peak_gbps = remote.peak_gbps.min(inst.nic_gbps());
    } else {
        // MoF fabric scales with the instance's MoF provisioning.
        remote.peak_gbps = inst.mof_gbps() * chips.max(1.0);
    }
    let mut output = scale(tiers.output.link_model(), chips);
    if arch.output_shares_nic() {
        output.peak_gbps = inst.nic_gbps();
    }

    // The graph shards across the FaaS fleet.
    let fm = FootprintModel {
        server_bytes: inst.memory_gb() * (1 << 30),
        ..FootprintModel::default()
    };
    let instances = fm.min_servers(dataset);
    let remote_fraction = 1.0 - 1.0 / instances as f64;

    let cores = arch.axe_cores(inst).max(arch.paper_cores());
    bottleneck_rates(&PerfInputs {
        local,
        remote,
        output: Some(output),
        // The NIC carries remote fetches only in base/cost-opt; with a
        // dedicated MoF fabric (comm/mem-opt) the decoupled NIC carries
        // results alone — the §7.4 "1.6x extra" effect.
        output_shares_remote: arch.output_shares_nic() && arch.remote_on_nic(),
        cores: cores * inst.fpga_chips(),
        tags_per_core: 128,
        clock_hz: 250e6,
        avg_degree: dataset.avg_degree(),
        fanout: dataset.sampling.fanout as f64,
        attr_bytes: dataset.attr_len as f64 * 4.0,
        remote_fraction,
    })
}

/// vCPU-equivalents of one instance (the paper's "a decoupled FPGA equals
/// 67 vCPUs, tightly coupled 129.6" framing).
pub fn vcpu_equivalent(
    arch: Architecture,
    inst: InstanceSize,
    dataset: &DatasetConfig,
    cpu: &lsdgnn_framework::CpuClusterModel,
) -> f64 {
    let fm = FootprintModel::default();
    samples_per_sec(arch, inst, dataset) / cpu.vcpu_rate_for(dataset, &fm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdgnn_graph::PAPER_DATASETS;

    fn arch(n: &str) -> Architecture {
        Architecture::parse(n).unwrap()
    }

    fn ll() -> DatasetConfig {
        DatasetConfig::by_name("ll").unwrap()
    }

    #[test]
    fn tc_beats_decp_everywhere() {
        // §7.4: tightly coupled wins because results skip the busy NIC.
        for kind in ["base", "cost-opt", "comm-opt", "mem-opt"] {
            for d in &PAPER_DATASETS {
                let tc = samples_per_sec(arch(&format!("{kind}.tc")), InstanceSize::Medium, d);
                let decp = samples_per_sec(arch(&format!("{kind}.decp")), InstanceSize::Medium, d);
                assert!(tc >= decp, "{kind} on {}: tc {tc} < decp {decp}", d.name);
            }
        }
    }

    #[test]
    fn architecture_ordering_matches_paper() {
        // base ≤ cost-opt ≈ base < comm-opt < mem-opt (tc, large graphs).
        let d = ll();
        let base = samples_per_sec(arch("base.tc"), InstanceSize::Medium, &d);
        let cost = samples_per_sec(arch("cost-opt.tc"), InstanceSize::Medium, &d);
        let comm = samples_per_sec(arch("comm-opt.tc"), InstanceSize::Medium, &d);
        let mem = samples_per_sec(arch("mem-opt.tc"), InstanceSize::Medium, &d);
        assert!(cost >= base * 0.99, "cost {cost} vs base {base}");
        assert!(cost <= base * 1.5, "cost-opt must not add bandwidth");
        assert!(comm > base * 1.3, "comm {comm} vs base {base}");
        assert!(mem > comm * 1.5, "mem {mem} vs comm {comm}");
    }

    #[test]
    fn mem_opt_decp_gains_nothing_over_comm_opt_decp() {
        // §7.4: mem-opt.decp is still NIC-output-bound.
        let d = ll();
        let comm = samples_per_sec(arch("comm-opt.decp"), InstanceSize::Medium, &d);
        let mem = samples_per_sec(arch("mem-opt.decp"), InstanceSize::Medium, &d);
        assert!((mem / comm - 1.0).abs() < 0.05, "comm {comm} vs mem {mem}");
    }

    #[test]
    fn bigger_instances_go_faster() {
        let d = ll();
        for a in Architecture::ALL {
            let s = samples_per_sec(a, InstanceSize::Small, &d);
            let m = samples_per_sec(a, InstanceSize::Medium, &d);
            let l = samples_per_sec(a, InstanceSize::Large, &d);
            assert!(s <= m && m <= l, "{}: {s} {m} {l}", a.name());
        }
    }

    #[test]
    fn decp_output_is_nic_bound() {
        let d = ll();
        let r = rates_for(arch("comm-opt.decp"), InstanceSize::Medium, &d);
        assert_eq!(r.binding(), "output");
    }

    #[test]
    fn vcpu_equivalence_is_order_hundreds() {
        // Figure 14/§7.4: one FPGA ≈ tens-to-hundreds of vCPUs per
        // instance, growing with architecture optimization.
        let cpu = lsdgnn_framework::CpuClusterModel::default();
        let d = ll();
        let base = vcpu_equivalent(arch("base.decp"), InstanceSize::Medium, &d, &cpu);
        let mem = vcpu_equivalent(arch("mem-opt.tc"), InstanceSize::Medium, &d, &cpu);
        assert!((20.0..400.0).contains(&base), "base.decp vcpu-equiv {base}");
        assert!(mem > base * 3.0, "mem-opt.tc {mem} vs base {base}");
    }

    #[test]
    fn bottleneck_rates_min_is_consistent() {
        let d = ll();
        for a in Architecture::ALL {
            let r = rates_for(a, InstanceSize::Medium, &d);
            let m = r.samples_per_sec();
            assert!(m <= r.local && m <= r.remote && m <= r.output);
            assert!(m > 0.0 && m.is_finite());
        }
    }
}
