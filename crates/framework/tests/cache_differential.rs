//! Differential pinning of the two-tier hot-set cache: for arbitrary
//! zipf-skewed workloads, capacities, and tier combinations, a cached
//! cluster must answer byte-identically to an uncached one — cold,
//! warming, and warm; the cache serves the *same truth faster*, never a
//! different truth. Three arms cover the ways a cache classically goes
//! wrong:
//!
//! * **Skewed sweep** — every request digests equal across cache-off /
//!   attr-only / attr+neigh arms, at capacities from starved (constant
//!   eviction + admission churn) to ample, over repeated hot sets
//!   (cold→warm transitions happen mid-sequence).
//! * **Chaos** — a cold cache under a partition kill degrades exactly
//!   like an uncached cluster; a *warm* cache serves the healthy answer
//!   with `degraded == false`, counting partition saves.
//! * **Rekey** — a tier warmed under old node labels serves wrong rows
//!   after a reorder unless rekeyed through the permutation
//!   (the stale-key wrong-answer pin, at the tier level).

use lsdgnn_framework::{CacheConfig, CpuBackend, HotSetCache, SampleRequest, SamplingBackend};
use lsdgnn_graph::reorder::ReorderPolicy;
use lsdgnn_graph::{generators, AttributeStore, NodeId, PartitionedGraph};
use proptest::prelude::*;

const NODES: u64 = 400;
const ATTR_LEN: usize = 6;

fn pg(gseed: u64, partitions: u32) -> PartitionedGraph {
    let g = generators::power_law(NODES, 8, gseed);
    let a = AttributeStore::synthetic(NODES, ATTR_LEN, gseed);
    PartitionedGraph::new(g, partitions).with_attributes(a)
}

fn mix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A zipf-flavored root: 80% land in a small hot head, the rest on a
/// cubed tail — the access skew the hot-set cache exists for.
fn skewed_root(seed: u64, i: u64, hot: u64) -> NodeId {
    let h = mix(seed.wrapping_mul(0x9e37).wrapping_add(i));
    if h % 10 < 8 {
        NodeId(mix(h) % hot)
    } else {
        let f = (mix(h ^ 0xabcd) % 1000) as f64 / 1000.0;
        NodeId(((f * f * f) * (NODES - 1) as f64) as u64)
    }
}

fn request(seed: u64, round: u64, roots: u64, hot: u64) -> SampleRequest {
    SampleRequest {
        // Rounds repeat the same skewed population (fresh picks per
        // round), so later rounds run mostly warm.
        roots: (0..roots)
            .map(|i| skewed_root(seed, i + (round % 3) * roots, hot))
            .collect(),
        hops: 2,
        fanout: 5,
        seed: seed.wrapping_add(round * 31),
    }
}

proptest! {
    #[test]
    fn cached_cluster_is_byte_identical_to_uncached(
        gseed in 0u64..500,
        partitions in 2u32..5,
        roots in 4u64..16,
        hot in 8u64..80,
        neigh_cap in 1usize..300,
        attr_cap in 1usize..300,
        warm_top in 0usize..60,
    ) {
        let uncached = CpuBackend::from_partitioned(pg(gseed, partitions));
        let arms = [
            CacheConfig::with_capacity(attr_cap).attr_only(),
            CacheConfig {
                neigh_capacity: neigh_cap,
                attr_capacity: attr_cap,
                warm_top_degree: warm_top,
                ..Default::default()
            },
        ];
        for (a, cfg) in arms.into_iter().enumerate() {
            let cached = CpuBackend::from_partitioned_cached(pg(gseed, partitions), cfg);
            // Rounds revisit the same hot set: round 0 runs cold, later
            // rounds hit — digests must never notice.
            for round in 0..4u64 {
                let req = request(gseed, round, roots, hot);
                let want = uncached.sample_block(&req);
                let got = cached.sample_block(&req);
                prop_assert_eq!(want.digest(), got.digest(),
                    "arm {} round {}: digests diverge", a, round);
                prop_assert_eq!(&want, &got, "arm {} round {}: blocks diverge", a, round);
                prop_assert_eq!(
                    uncached.gather_attributes(&want.nodes),
                    cached.gather_attributes(&got.nodes),
                    "arm {} round {}: attrs diverge", a, round
                );
            }
            // The skewed revisits must actually exercise the tiers.
            let snap = cached.cache_snapshot().expect("cached arm has a snapshot");
            let attr = snap.attr.expect("attr tier on");
            prop_assert!(attr.hits + attr.misses > 0, "arm {}: attr tier never consulted", a);
        }
    }

    #[test]
    fn chaos_cold_cache_degrades_identically_and_warm_cache_saves(
        gseed in 0u64..200,
        kill in 1u32..4,
    ) {
        let partitions = 4u32;
        let kill = kill % partitions; // never the worker-local partition 0
        prop_assume!(kill != 0);
        let roots: Vec<NodeId> = (0..12).map(|i| skewed_root(gseed, i, 40)).collect();
        let req = SampleRequest { roots, hops: 2, fanout: 5, seed: gseed ^ 0x5eed };

        // Cold arm: with nothing cached, a partition kill degrades the
        // cached cluster exactly like the uncached one.
        let uncached = CpuBackend::from_partitioned(pg(gseed, partitions));
        let cold = CpuBackend::from_partitioned_cached(
            pg(gseed, partitions),
            CacheConfig::with_capacity(4096),
        );
        let a = uncached.sample_excluding(&req, &[kill]);
        let b = cold.sample_excluding(&req, &[kill]);
        prop_assert_eq!(&a.block, &b.block, "cold chaos blocks diverge");
        prop_assert_eq!(a.degraded, b.degraded);
        prop_assert_eq!(a.unreachable, b.unreachable);
    }
}

#[test]
fn warm_cache_survives_partition_kill_without_degrading() {
    let partitions = 4u32;
    let gseed = 77u64;
    let roots: Vec<NodeId> = (0..12).map(|i| skewed_root(gseed, i, 40)).collect();
    let req = SampleRequest {
        roots,
        hops: 2,
        fanout: 5,
        seed: gseed ^ 0x5eed,
    };

    let uncached = CpuBackend::from_partitioned(pg(gseed, partitions));
    let healthy = uncached.sample_block(&req);
    let healthy_attrs = uncached.gather_attributes(&healthy.nodes);

    let warm = CpuBackend::from_partitioned_cached(
        pg(gseed, partitions),
        CacheConfig::with_capacity(4096),
    );
    assert_eq!(warm.sample_block(&req), healthy, "warm run must be exact");
    let _ = warm.gather_attributes(&healthy.nodes);

    // Kill a non-local partition; the warm tiers now stand in for it.
    let kill = 2u32;
    let out = warm.sample_excluding(&req, &[kill]);
    assert_eq!(
        out.block, healthy,
        "warm cache must serve the healthy answer"
    );
    assert!(
        !out.degraded,
        "a full-coverage warm cache legally avoids degrading"
    );
    assert_eq!(out.unreachable, 0);
    assert_eq!(
        warm.gather_attributes(&healthy.nodes),
        healthy_attrs,
        "warm rows stand in for the dead partition"
    );
    let snap = warm.cache_snapshot().expect("cached arm");
    let saves =
        snap.neigh.map_or(0, |t| t.partition_saves) + snap.attr.map_or(0, |t| t.partition_saves);
    assert!(saves > 0, "partition saves must be counted, got {snap:?}");

    // An uncached cluster under the same kill is worse off — the cache
    // is the only reason the reply stayed healthy.
    let out_uncached = uncached.sample_excluding(&req, &[kill]);
    assert!(
        out_uncached.unreachable >= out.unreachable,
        "cache can only reduce unreachable nodes"
    );
}

#[test]
fn stale_tier_keys_serve_wrong_rows_and_rekey_fixes_it() {
    // The tier-level twin of the CachedBackend rekey pin: warm the
    // attribute tier under the old labeling, scramble the graph, and
    // read under new labels.
    let pg0 = pg(11, 2);
    let (pg1, perm) = pg0.reorder(ReorderPolicy::Random { seed: 3 });
    let store1 = pg1.attributes().expect("attrs");

    let warm_nodes: Vec<NodeId> = (0..120).map(NodeId).collect();
    let cache = HotSetCache::new(CacheConfig::with_capacity(512));
    let tier = cache.attr().expect("attr tier");
    let store0 = pg0.attributes().expect("attrs");
    for &v in &warm_nodes {
        tier.admit(v, store0.get(v));
    }

    // Without rekey: a key colliding with a different node's new id
    // serves that node's stale row. At least one of the 120 must differ
    // under a random scramble.
    let mut stale_wrong = 0;
    let mut row = vec![0.0f32; ATTR_LEN];
    for &v in &warm_nodes {
        let new_v = perm.to_new(v);
        if tier.copy_to(new_v, &mut row) && row != store1.get(new_v) {
            stale_wrong += 1;
        }
    }
    assert!(
        stale_wrong > 0,
        "a stale-keyed tier must be observably wrong under a scramble"
    );

    // With rekey: every surviving entry answers the relabeled truth.
    cache.rekey(|v| Some(perm.to_new(v)));
    let mut verified = 0;
    for &v in &warm_nodes {
        let new_v = perm.to_new(v);
        if tier.copy_to(new_v, &mut row) {
            assert_eq!(row, store1.get(new_v), "rekeyed row diverges for {v:?}");
            verified += 1;
        }
    }
    assert!(verified > 0, "rekeyed entries must survive and hit");

    // And invalidate_all turns every entry into a miss in O(1).
    cache.invalidate_all();
    for &v in &warm_nodes {
        assert!(
            !tier.copy_to(perm.to_new(v), &mut row),
            "epoch bump must invalidate"
        );
    }
}
