//! Admission-control conservation properties: for any seeded traffic
//! trace and any admission configuration,
//!
//! 1. every submitted request reaches exactly one terminal verdict —
//!    a reply (exact or degraded), an explicit rejection, or a shed —
//!    no lost tickets, no double counting;
//! 2. rate-limit rejections match an independent replay of the public
//!    [`TokenBucket`] arithmetic arrival-by-arrival (the controller's
//!    rate limiting is a pure function of the arrival sequence);
//! 3. per-class lane occupancy never exceeds the configured bounds,
//!    under arbitrary interleavings of admissions and dequeues.

use lsdgnn_framework::{
    AdmissionConfig, AdmissionController, BrownoutConfig, BucketConfig, CpuBackend, Priority,
    RejectReason, ServiceConfig, ShapedRequest, ShapedService, SubmitVerdict, TenantConfig,
    TenantSpec, TokenBucket, TrafficConfig, TrafficTrace, Verdict, CLASSES,
};
use lsdgnn_graph::{generators, AttributeStore};
use proptest::prelude::*;
use std::time::Duration;

const GRAPH_NODES: u64 = 200;

fn class_of(i: u8) -> Priority {
    Priority::ALL[i as usize % CLASSES]
}

fn trace(seed: u64, mean_rps: f64, burstiness: f64, classes: &[u8]) -> TrafficTrace {
    let tenants: Vec<TenantSpec> = classes
        .iter()
        .enumerate()
        .map(|(i, &c)| TenantSpec {
            name: format!("t{i}"),
            archetype: "base.tc".to_string(),
            class: class_of(c),
            weight: 1.0 + i as f64,
            deadline_us: 50_000 * (1 + i as u64),
            roots: 4,
            hops: 2,
            fanout: 4,
        })
        .collect();
    TrafficTrace::generate(&TrafficConfig {
        seed,
        duration_us: 200_000,
        mean_rps,
        diurnal_depth: 0.5,
        diurnal_cycles: 1.0,
        burstiness,
        cascade_depth: 5,
        tenants,
    })
}

proptest! {
    /// End-to-end through a real [`ShapedService`]: every arrival gets
    /// exactly one verdict, every admitted ticket is answered, and the
    /// rate-limit rejections replay the public token-bucket arithmetic
    /// exactly.
    #[test]
    fn every_submission_reaches_exactly_one_terminal_verdict(
        seed in 0u64..10_000,
        mean_rps in 400.0f64..2_000.0,
        burstiness in 0.5f64..0.95,
        classes in proptest::collection::vec(0u8..CLASSES as u8, 1..4),
        rates in proptest::collection::vec((20.0f64..4_000.0, 1.0f64..60.0), 4),
    ) {
        let t = trace(seed, mean_rps, burstiness, &classes);
        let buckets: Vec<BucketConfig> = classes
            .iter()
            .enumerate()
            .map(|(i, _)| BucketConfig { rate_per_sec: rates[i].0, burst: rates[i].1 })
            .collect();
        let admission = AdmissionConfig {
            tenants: buckets
                .iter()
                .enumerate()
                .map(|(i, b)| TenantConfig { name: format!("t{i}"), bucket: *b })
                .collect(),
            // Lane-bound rejections depend on drain timing; the bounds
            // property runs against the pure controller below. Here the
            // lanes stay unbounded so the bucket oracle is exact.
            queue_bounds: [usize::MAX; CLASSES],
            brownout: None,
        };

        let g = generators::power_law(GRAPH_NODES, 6, 17);
        let a = AttributeStore::synthetic(GRAPH_NODES, 6, 17);
        let svc = ShapedService::start(
            Box::new(CpuBackend::new(&g, &a, 2)),
            ServiceConfig {
                workers: 1,
                queue_capacity: 32,
                max_batch: 4,
                batch_deadline: Duration::from_micros(50),
                ..ServiceConfig::default()
            },
            admission,
            None,
        );

        // Independent oracle: replay the public bucket arithmetic.
        let rng = lsdgnn_chaos::ChaosRng::new(t.seed);
        let mut oracle: Vec<TokenBucket> = buckets.iter().map(TokenBucket::new).collect();
        let mut expect_limited = 0u64;
        let (mut admitted, mut rejected) = (0u64, 0u64);
        let mut tickets = Vec::new();
        for arr in &t.arrivals {
            let tenant = arr.tenant as usize;
            let oracle_limited = oracle[tenant].try_take(&buckets[tenant], arr.at_us).is_err();
            expect_limited += u64::from(oracle_limited);
            let verdict = svc.submit(
                ShapedRequest {
                    req: arr.request(&rng, GRAPH_NODES),
                    tenant,
                    class: arr.class,
                    deadline: Duration::from_micros(arr.deadline_us),
                },
                arr.at_us,
            );
            match verdict {
                SubmitVerdict::Admitted(ticket) => {
                    prop_assert!(!oracle_limited, "oracle says limited, service admitted");
                    admitted += 1;
                    tickets.push(ticket);
                }
                SubmitVerdict::Rejected { reason, retry_after_us } => {
                    prop_assert_eq!(reason, RejectReason::RateLimit);
                    prop_assert!(oracle_limited, "service limited, oracle admitted");
                    prop_assert!(retry_after_us > 0, "retry hints are non-zero");
                    rejected += 1;
                }
                SubmitVerdict::Shed => prop_assert!(false, "no brownout configured, nothing sheds"),
            }
        }

        // Terminal-verdict conservation: one verdict per arrival, and
        // every admitted ticket is answered (exact or degraded).
        prop_assert_eq!(admitted + rejected, t.arrivals.len() as u64);
        let replies: Vec<_> = tickets.into_iter().map(|tk| tk.wait_reply()).collect();
        prop_assert_eq!(replies.len() as u64, admitted);

        let stats = svc.admission_stats();
        prop_assert_eq!(stats.rate_limited, expect_limited, "bucket arithmetic drifted");
        prop_assert_eq!(stats.rate_limited, rejected);
        prop_assert_eq!(
            Priority::ALL.iter().map(|p| stats.accepted(*p)).sum::<u64>(),
            admitted
        );
        prop_assert!(stats.bounds_respected());
        svc.shutdown();
    }

    /// The pure controller under arbitrary configs, burn levels and
    /// admit/dequeue interleavings: exactly one counter bump per call,
    /// lanes never exceed their bounds.
    #[test]
    fn pure_controller_conserves_verdicts_and_respects_bounds(
        seed in 0u64..10_000,
        classes in proptest::collection::vec(0u8..CLASSES as u8, 1..4),
        rates in proptest::collection::vec((20.0f64..4_000.0, 1.0f64..60.0), 4),
        bounds in proptest::collection::vec(0usize..6, CLASSES..=CLASSES),
        with_brownout in any::<bool>(),
        burns in proptest::collection::vec(0.0f64..3.0, 8),
        dequeue_every in 1u64..5,
    ) {
        let t = trace(seed, 1_500.0, 0.8, &classes);
        let cfg = AdmissionConfig {
            tenants: classes
                .iter()
                .enumerate()
                .map(|(i, _)| TenantConfig {
                    name: format!("t{i}"),
                    bucket: BucketConfig { rate_per_sec: rates[i].0, burst: rates[i].1 },
                })
                .collect(),
            queue_bounds: [bounds[0], bounds[1], bounds[2]],
            brownout: with_brownout.then(BrownoutConfig::default),
        };
        let mut ctrl = AdmissionController::new(cfg);
        let mut verdicts = 0u64;
        for (i, arr) in t.arrivals.iter().enumerate() {
            ctrl.set_burn(burns[i % burns.len()]);
            let v = ctrl.decide(arr.tenant as usize, arr.class, arr.at_us);
            verdicts += 1;
            // Bound check at every step, not just at the end.
            for p in Priority::ALL {
                prop_assert!(
                    ctrl.queue_len(p) <= ctrl.config().queue_bounds[p.index()],
                    "lane {} over bound after arrival {i}", p.name()
                );
            }
            if let Verdict::Admit { .. } = v {
                // Drain occasionally so admits keep flowing.
                if (i as u64) % dequeue_every == 0 {
                    ctrl.dequeued(arr.class);
                }
            }
        }
        let stats = ctrl.stats();
        let counted: u64 = Priority::ALL
            .iter()
            .map(|p| stats.accepted(*p) + stats.rejected(*p) + stats.shed(*p))
            .sum();
        prop_assert_eq!(counted, verdicts, "exactly one counter bump per decide call");
        prop_assert!(stats.bounds_respected());
        prop_assert_eq!(stats.rate_limited + stats.queue_full,
            Priority::ALL.iter().map(|p| stats.rejected(*p)).sum::<u64>());
    }
}
