//! Differential pinning of the flat-buffer data plane: for arbitrary
//! graphs, partition counts, request shapes and shard-fault masks, the
//! flat path (coalesced frontiers, pooled arenas, zero-copy local
//! reads) must produce byte-identical samples to the legacy
//! nested-`Vec` path — solo, batch-coalesced, cache-wrapped, and under
//! chaos-injected card failures, where the degradation verdict
//! (`degraded`, `unreachable`) must agree as well. The two arms share
//! nothing but the graph and the RNG contract, so any divergence in
//! frontier order, RNG consumption, or fault accounting fails here
//! before it can skew a model downstream.

use lsdgnn_chaos::{FaultInjector, FaultPlan, ScenarioSpec};
use lsdgnn_framework::{CachedBackend, ChaosBackend, CpuBackend, SampleRequest, SamplingBackend};
use lsdgnn_graph::{generators, AttributeStore, NodeId};
use proptest::prelude::*;

const NODES: u64 = 400;
const ATTR_LEN: usize = 6;

fn arms(gseed: u64, partitions: u32) -> (CpuBackend, CpuBackend) {
    let g = generators::power_law(NODES, 8, gseed);
    let a = AttributeStore::synthetic(NODES, ATTR_LEN, gseed);
    (
        CpuBackend::new(&g, &a, partitions),
        CpuBackend::new_legacy(&g, &a, partitions),
    )
}

fn request(seed: u64, roots: u64, hops: u32, fanout: usize) -> SampleRequest {
    SampleRequest {
        roots: (0..roots)
            .map(|r| NodeId(seed.wrapping_mul(31).wrapping_add(r * 7) % NODES))
            .collect(),
        hops,
        fanout,
        seed,
    }
}

proptest! {
    #[test]
    fn flat_path_is_byte_identical_to_legacy(
        gseed in 0u64..1000,
        partitions in 2u32..5,
        roots in 1u64..12,
        hops in 1u32..4,
        fanout in 1usize..8,
        batch in 2usize..6,
        excluded in proptest::collection::vec(0u32..4, 0..3),
        chaos_card in 0u32..4,
        chaos_at in 0u64..8,
    ) {
        let (flat, legacy) = arms(gseed, partitions);
        let mut excluded: Vec<u32> = excluded
            .into_iter()
            .filter(|&e| e < partitions)
            .collect();
        excluded.sort_unstable();
        excluded.dedup();

        // Solo: one request through each arm, fault-free.
        for s in 0..3u64 {
            let req = request(gseed + s, roots, hops, fanout);
            let a = flat.sample_block(&req);
            let b = legacy.sample_block(&req);
            prop_assert_eq!(a.digest(), b.digest());
            prop_assert_eq!(a, b, "solo blocks diverge (seed {})", req.seed);
        }

        // Batched: the coalesced union-frontier path must still answer
        // every request exactly as its solo run would.
        let reqs: Vec<SampleRequest> = (0..batch as u64)
            .map(|s| request(gseed ^ (s + 101), roots, hops, fanout))
            .collect();
        let refs: Vec<&SampleRequest> = reqs.iter().collect();
        let batched = flat.sample_many(&refs);
        for (req, got) in reqs.iter().zip(&batched) {
            prop_assert_eq!(got, &legacy.sample_block(req), "batched block diverges");
        }

        // Faulted: with shards masked out, samples *and* the
        // degradation verdict must agree.
        let req = request(gseed + 17, roots, hops, fanout);
        let a = flat.sample_excluding(&req, &excluded);
        let b = legacy.sample_excluding(&req, &excluded);
        prop_assert_eq!(&a.block, &b.block, "faulted blocks diverge");
        prop_assert_eq!(a.degraded, b.degraded);
        prop_assert_eq!(a.unreachable, b.unreachable);

        // Decorated: the hot-node cache and the chaos layer sit above
        // the data plane, so wrapping either arm must change nothing.
        let (flat2, legacy2) = arms(gseed, partitions);
        let cached = CachedBackend::new(Box::new(flat2), 64, ATTR_LEN);
        prop_assert_eq!(cached.sample_block(&req), legacy2.sample_block(&req));

        let spec = ScenarioSpec::none().with_card_failure(chaos_card % partitions, chaos_at);
        let mk_chaos = |inner: Box<dyn SamplingBackend>| {
            let plan = FaultPlan::build(gseed, spec.clone()).expect("valid spec");
            ChaosBackend::new(inner, FaultInjector::new(plan))
        };
        let (flat3, legacy3) = arms(gseed, partitions);
        let ca = mk_chaos(Box::new(flat3)).sample_excluding(&req, &excluded);
        let cb = mk_chaos(Box::new(legacy3)).sample_excluding(&req, &excluded);
        prop_assert_eq!(&ca.block, &cb.block, "chaos-faulted blocks diverge");
        prop_assert_eq!(ca.degraded, cb.degraded);
        prop_assert_eq!(ca.unreachable, cb.unreachable);
    }
}
