//! Differential pinning of the inference pipeline: for arbitrary
//! graphs, request shapes, stage-queue bounds and gather-batch widths,
//! the pipelined [`InferenceService`] must produce bitwise-identical
//! replies to the sequential sample → gather → compute reference
//! ([`run_sequential`]) — solo, batched, cache-wrapped, and under
//! chaos-injected card failures, where degraded samples must still
//! yield complete (degraded, recall-quantified) replies on both arms.
//! Pipelining, gather fusion and batching may change latency, never
//! answers.

use lsdgnn_chaos::{FaultInjector, FaultPlan, ScenarioSpec};
use lsdgnn_framework::{
    run_sequential, CachedBackend, ChaosBackend, CpuBackend, InferenceConfig, InferenceReply,
    InferenceService, SampleRequest, SamplingBackend, SamplingService, ServiceConfig,
};
use lsdgnn_graph::{generators, AttributeStore, NodeId};
use lsdgnn_nn::SageModel;
use proptest::prelude::*;

const NODES: u64 = 300;
const ATTR_LEN: usize = 6;
const REQUESTS: u64 = 12;

fn backend(edges: u64, gseed: u64, parts: u32) -> Box<dyn SamplingBackend> {
    let g = generators::power_law(NODES, edges.max(2), gseed);
    let a = AttributeStore::synthetic(NODES, ATTR_LEN, gseed);
    Box::new(CpuBackend::new(&g, &a, parts))
}

fn requests(seed: u64, roots: u64, fanout: usize) -> impl Iterator<Item = SampleRequest> + Clone {
    (0..REQUESTS).map(move |s| SampleRequest {
        roots: (0..roots)
            .map(|r| NodeId((seed.wrapping_mul(31) + s * 13 + r * 7) % NODES))
            .collect(),
        hops: 2,
        fanout,
        seed: s,
    })
}

fn model(seed: u64) -> SageModel {
    SageModel::new(&[ATTR_LEN, 5, 3], seed)
}

/// `workers: 1` on every arm: chaos breaker state is order-dependent
/// across requests, and the differential claim is about the pipeline,
/// not worker scheduling.
fn service_cfg() -> ServiceConfig {
    ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    }
}

fn assert_replies_match(piped: &[InferenceReply], seq: &[InferenceReply]) {
    assert_eq!(piped.len(), seq.len());
    for (i, (p, s)) in piped.iter().zip(seq).enumerate() {
        assert_eq!(p, s, "request {i} diverged");
        assert_eq!(p.digest(), s.digest(), "request {i} digest diverged");
    }
}

fn pipeline_replies(
    svc: SamplingService,
    model: SageModel,
    config: InferenceConfig,
    reqs: impl Iterator<Item = SampleRequest>,
) -> Vec<InferenceReply> {
    let pipe = InferenceService::start(svc, model, config);
    let tickets: Vec<_> = reqs.map(|r| pipe.submit(r)).collect();
    tickets.into_iter().map(|t| t.wait()).collect()
}

proptest! {
    /// Healthy backends, arbitrary shapes and stage bounds: pipelined
    /// output is bitwise-identical to the sequential reference.
    #[test]
    fn pipelined_matches_sequential_on_healthy_backends(
        gseed in 1u64..500,
        edges in 2u64..12,
        parts in 1u32..4,
        roots in 1u64..12,
        fanout in 1usize..6,
        stage_capacity in 1usize..8,
        gather_batch in 1usize..6,
    ) {
        let reqs = requests(gseed, roots, fanout);
        let config = InferenceConfig { stage_capacity, gather_batch };

        let piped = pipeline_replies(
            SamplingService::start(backend(edges, gseed, parts), service_cfg()),
            model(gseed),
            config,
            reqs.clone(),
        );
        let seq_svc = SamplingService::start(backend(edges, gseed, parts), service_cfg());
        let seq = run_sequential(&seq_svc, &model(gseed), reqs);
        assert_replies_match(&piped, &seq);
        for r in &seq {
            prop_assert!(!r.degraded);
            prop_assert_eq!(r.recall, 1.0);
        }
    }

    /// A cache-wrapped backend serves the same embeddings, cold or warm.
    #[test]
    fn cached_backend_is_transparent(
        gseed in 1u64..500,
        roots in 1u64..8,
        capacity in 1usize..64,
    ) {
        let reqs = requests(gseed, roots, 4);
        let cached = CachedBackend::new(backend(6, gseed, 2), capacity, ATTR_LEN);
        let piped = pipeline_replies(
            SamplingService::start(Box::new(cached), service_cfg()),
            model(gseed),
            InferenceConfig::default(),
            reqs.clone(),
        );
        let seq_svc = SamplingService::start(backend(6, gseed, 2), service_cfg());
        let seq = run_sequential(&seq_svc, &model(gseed), reqs);
        assert_replies_match(&piped, &seq);
    }

    /// Chaos-faulted backends: both arms see the same deterministic
    /// faults; degraded samples yield degraded-but-complete replies that
    /// stay bitwise-identical across the two executions.
    #[test]
    fn chaos_faults_degrade_identically(
        gseed in 1u64..500,
        roots in 1u64..8,
        loss in 0.0f64..0.6,
        card in 0u32..2,
        at in 0u64..REQUESTS,
    ) {
        let spec = ScenarioSpec::none()
            .with_request_loss(loss)
            .with_card_failure(card, at);
        let plan = FaultPlan::build(gseed, spec).expect("valid spec");
        let faulted = || {
            let injector = FaultInjector::new(plan.clone());
            let chaos = ChaosBackend::new(backend(6, gseed, 2), injector.clone());
            SamplingService::start_faulted(
                Box::new(chaos),
                service_cfg(),
                None,
                Some(injector),
            )
        };
        let reqs = requests(gseed, roots, 4);

        let piped = pipeline_replies(
            faulted(),
            model(gseed),
            InferenceConfig::default(),
            reqs.clone(),
        );
        let seq = run_sequential(&faulted(), &model(gseed), reqs);
        assert_replies_match(&piped, &seq);
        let out_dim = model(gseed).out_dim();
        for r in &piped {
            // Degraded or not, the reply is complete and quantified.
            let (rows, cols) = r.embeddings.shape();
            prop_assert_eq!(cols, out_dim);
            prop_assert!(rows as u64 == roots);
            if r.degraded {
                prop_assert!(r.recall < 1.0);
            } else {
                prop_assert_eq!(r.recall, 1.0);
            }
        }
    }
}
