//! Liveness under arbitrary survivable fault plans: for any scenario
//! with per-attempt loss < 100%, card crashes at any tick, an optional
//! worker panic and queue stalls, the service answers *every* submitted
//! request — no lost reply channels, no deadlock — and every reply is
//! either exact (equal to the fault-free backend's answer) or flagged
//! `degraded` with its quality loss quantified.

use lsdgnn_chaos::{FaultInjector, FaultPlan, ScenarioSpec};
use lsdgnn_framework::{
    ChaosBackend, CpuBackend, DegradeConfig, SampleRequest, SamplingBackend, SamplingService,
    ServiceConfig,
};
use lsdgnn_graph::{generators, AttributeStore, NodeId};
use proptest::prelude::*;
use std::time::Duration;

const REQUESTS: u64 = 16;

fn request(seed: u64) -> SampleRequest {
    SampleRequest {
        roots: (0..6).map(|r| NodeId((seed * 7 + r) % 300)).collect(),
        hops: 2,
        fanout: 4,
        seed,
    }
}

fn backend() -> Box<dyn SamplingBackend> {
    let g = generators::power_law(300, 6, 17);
    let a = AttributeStore::synthetic(300, 6, 17);
    Box::new(CpuBackend::new(&g, &a, 4))
}

proptest! {
    #[test]
    fn every_request_is_answered_exact_or_degraded(
        seed in 0u64..10_000,
        loss in 0.0f64..0.95,
        cards in proptest::collection::vec((0u32..4, 0u64..REQUESTS + 8), 0..3),
        panic_shard0 in any::<bool>(),
        stall_on in any::<bool>(),
        stall_after in 1u64..4,
        stall_us in 50u64..500,
    ) {
        let mut spec = ScenarioSpec::none().with_request_loss(loss);
        for &(card, at) in &cards {
            spec = spec.with_card_failure(card, at);
        }
        if panic_shard0 {
            // Only shard 0 of 2 may die: the survivor keeps draining, so
            // liveness must hold.
            spec = spec.with_worker_panic(0, 2);
        }
        if stall_on {
            spec = spec.with_queue_stall(1, stall_after, stall_us);
        }
        let plan = FaultPlan::build(seed, spec).expect("generated specs are valid");
        let injector = FaultInjector::new(plan);
        let svc = SamplingService::start_faulted(
            Box::new(ChaosBackend::new(backend(), injector.clone())),
            ServiceConfig {
                workers: 2,
                queue_capacity: 32,
                max_batch: 4,
                batch_deadline: Duration::from_micros(50),
                degrade: DegradeConfig {
                    max_retries: 3,
                    backoff_base: Duration::from_micros(5),
                    ..DegradeConfig::default()
                },
                ..ServiceConfig::default()
            },
            None,
            Some(injector),
        );
        let reference = backend();

        let tickets: Vec<_> = (0..REQUESTS).map(|s| svc.submit(request(s))).collect();
        let replies: Vec<_> = tickets.into_iter().map(|t| t.wait_reply()).collect();
        prop_assert_eq!(replies.len() as u64, REQUESTS, "every request answered");

        for (s, reply) in replies.iter().enumerate() {
            if reply.degraded {
                prop_assert!(
                    reply.unreachable > 0,
                    "degraded replies must quantify their loss (seed {})", s
                );
            } else {
                prop_assert_eq!(
                    &reply.block,
                    &reference.sample_block(&request(s as u64)),
                    "non-degraded replies are exact (seed {})", s
                );
            }
        }
        let stats = svc.stats();
        prop_assert_eq!(stats.requests, REQUESTS);
        svc.shutdown();
    }
}
