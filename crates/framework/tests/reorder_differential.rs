//! Differential pinning of locality-aware relabeling: sampling is
//! permutation-isomorphic. For every reorder policy, running the same
//! logical request (roots mapped old→new, same seed) against the
//! relabeled graph and mapping the answer back new→old must reproduce
//! the baseline block byte-for-byte — the relabel preserves each
//! neighbor list's relative order, and the sampler draws positions from
//! list lengths only, so the RNG consumption is identical on both arms.
//! Exact-id coalesce telemetry is likewise id-invariant (it depends on
//! topology and roots, not on which integers name the nodes), while the
//! line/page locality counters are exactly the ones allowed to move.
//!
//! The second half pins the cache-correctness hazard of satellite (b):
//! a hot-node cache warmed under the old labeling must be rekeyed
//! through the permutation before it may front a relabeled backend — a
//! stale-keyed cache serves node `k`'s attributes for whatever node now
//! holds id `k`.

use lsdgnn_framework::{CachedBackend, CpuBackend, SampleRequest, SamplingBackend, WireConfig};
use lsdgnn_graph::reorder::{Permutation, ReorderPolicy};
use lsdgnn_graph::{generators, AttributeStore, NodeId, PartitionedGraph};

const NODES: u64 = 400;
const ATTR_LEN: usize = 6;

fn policies() -> Vec<ReorderPolicy> {
    vec![
        ReorderPolicy::Identity,
        ReorderPolicy::Random { seed: 7 },
        ReorderPolicy::DegreeSort,
        ReorderPolicy::Bfs,
        ReorderPolicy::Gorder { window: 5 },
    ]
}

fn baseline(gseed: u64, partitions: u32) -> PartitionedGraph {
    let g = generators::power_law(NODES, 8, gseed);
    let a = AttributeStore::synthetic(NODES, ATTR_LEN, gseed);
    PartitionedGraph::new(g, partitions).with_attributes(a)
}

fn request(roots: &[NodeId], seed: u64) -> SampleRequest {
    SampleRequest {
        roots: roots.to_vec(),
        hops: 2,
        fanout: 5,
        seed,
    }
}

fn map_roots(roots: &[NodeId], perm: &Permutation) -> Vec<NodeId> {
    roots.iter().map(|&v| perm.to_new(v)).collect()
}

#[test]
fn every_policy_samples_permutation_isomorphically() {
    let pg0 = baseline(3, 4);
    let roots: Vec<NodeId> = (0..8).map(|r| NodeId(r * 13 % NODES)).collect();

    for policy in policies() {
        // Fresh baseline per policy: the stats comparison below needs
        // both arms to have served exactly the same request sequence.
        let base = CpuBackend::from_partitioned(pg0.clone());
        let (pg1, perm) = pg0.reorder(policy);

        // Ownership rides along: a node keeps its partition under its
        // new name, so the local/remote split is unchanged.
        for old in 0..NODES {
            let v = NodeId(old);
            assert_eq!(
                pg0.owner(v),
                pg1.owner(perm.to_new(v)),
                "{policy}: node {old} changed owner"
            );
        }

        // Edge containment under the new names (binary-search has_edge
        // is invalid on reordered graphs — lists keep their original
        // relative order, which is the isomorphism contract itself).
        let g1 = pg1.graph();
        for old in (0..NODES).step_by(37) {
            let v = NodeId(old);
            let mapped: Vec<NodeId> = pg0
                .graph()
                .neighbors(v)
                .iter()
                .map(|&w| perm.to_new(w))
                .collect();
            assert_eq!(
                g1.neighbors(perm.to_new(v)),
                &mapped[..],
                "{policy}: neighbor list of {old} diverges"
            );
        }

        let arm = CpuBackend::from_partitioned(pg1.clone());
        for seed in [1u64, 9, 41] {
            let req0 = request(&roots, seed);
            let req1 = request(&map_roots(&roots, &perm), seed);
            let want = base.sample_block(&req0);
            let got = arm.sample_block(&req1);

            // Back-map the relabeled answer: hop structure identical,
            // every sampled id the old name of the same node.
            assert_eq!(got.hop_offsets, want.hop_offsets, "{policy} seed {seed}");
            let back: Vec<NodeId> = got.nodes.iter().map(|&v| perm.to_old(v)).collect();
            assert_eq!(back, want.nodes, "{policy} seed {seed}: samples diverge");

            // Attribute rows travel with their nodes.
            assert_eq!(
                arm.gather_attributes(&got.nodes),
                base.gather_attributes(&want.nodes),
                "{policy} seed {seed}: attrs diverge"
            );
        }

        // Exact-id coalesce accounting is invariant under relabeling:
        // the same node repeats in the same positions, whatever its id.
        let (s0, s1) = (base.stats(), arm.stats());
        assert_eq!(s0.coalesce_lookups, s1.coalesce_lookups, "{policy}");
        assert_eq!(s0.coalesce_hits, s1.coalesce_hits, "{policy}");
        assert_eq!(
            s0.attr_coalesce_lookups, s1.attr_coalesce_lookups,
            "{policy}"
        );
        assert_eq!(s0.attr_coalesce_hits, s1.attr_coalesce_hits, "{policy}");
        assert_eq!(s0.nodes_expanded, s1.nodes_expanded, "{policy}");
    }
}

#[test]
fn wire_plane_is_accounting_only() {
    // Same placement, same requests: the wired cluster answers
    // digest-identically to the plain one — packing and compression
    // meter the remote legs, they never touch the replies.
    let pg = baseline(5, 4);
    let plain = CpuBackend::from_partitioned(pg.clone());
    let wired = CpuBackend::from_partitioned_wired(pg, WireConfig::default());
    let roots: Vec<NodeId> = (0..8).map(|r| NodeId(r * 17 % NODES)).collect();
    for seed in [2u64, 23] {
        let req = request(&roots, seed);
        assert_eq!(plain.sample_block(&req), wired.sample_block(&req));
    }
    let nodes: Vec<NodeId> = (0..64).map(|i| NodeId(i * 11 % NODES)).collect();
    assert_eq!(
        plain.gather_attributes(&nodes),
        wired.gather_attributes(&nodes)
    );
    assert!(
        plain.wire_snapshot().is_none(),
        "plain spawns meter nothing"
    );
    let snap = wired.wire_snapshot().expect("wired cluster meters");
    assert!(snap.remote_legs > 0);
    assert!(snap.packed_requests > 0);
    assert!(
        snap.wire_request_bytes < snap.raw_request_bytes,
        "packing must beat the unpacked baseline: {} vs {}",
        snap.wire_request_bytes,
        snap.raw_request_bytes
    );
    assert!(
        snap.compression_ratio() > 1.0,
        "BDI must shrink id-heavy responses, got {}",
        snap.compression_ratio()
    );
}

#[test]
fn stale_keyed_cache_serves_wrong_rows_and_rekey_fixes_it() {
    let pg0 = baseline(11, 2);
    let (pg1, perm) = pg0.reorder(ReorderPolicy::Random { seed: 3 });
    let warm_nodes: Vec<NodeId> = (0..50).map(NodeId).collect();
    let new_nodes = map_roots(&warm_nodes, &perm);
    let truth = CpuBackend::from_partitioned(pg1.clone()).gather_attributes(&new_nodes);

    // Warm a cache under the old labeling.
    let warm = |cache: &CachedBackend| {
        let _ = cache.gather_attributes(&warm_nodes);
    };

    // Arm 1 — the bug: swap in the relabeled backend but keep the old
    // keys. Any key that collides with a *different* node's new id
    // serves that node's stale row.
    let stale = CachedBackend::new(
        Box::new(CpuBackend::from_partitioned(pg0.clone())),
        256,
        ATTR_LEN,
    );
    warm(&stale);
    let stale = stale.into_reordered(
        Box::new(CpuBackend::from_partitioned(pg1.clone())),
        Some, // identity: keys deliberately NOT remapped
    );
    assert_ne!(
        stale.gather_attributes(&new_nodes),
        truth,
        "a stale-keyed cache must not be able to answer correctly under a scramble"
    );

    // Arm 2 — the fix: rekey through the permutation. Warm entries
    // survive under their new names and the answers match the
    // relabeled truth exactly.
    let rekeyed = CachedBackend::new(Box::new(CpuBackend::from_partitioned(pg0)), 256, ATTR_LEN);
    warm(&rekeyed);
    let before_hits = rekeyed.hit_rate();
    let rekeyed = rekeyed.into_reordered(Box::new(CpuBackend::from_partitioned(pg1)), |v| {
        Some(perm.to_new(v))
    });
    assert_eq!(rekeyed.gather_attributes(&new_nodes), truth);
    assert!(
        rekeyed.hit_rate() > before_hits,
        "rekeyed warm entries must hit: {} -> {}",
        before_hits,
        rekeyed.hit_rate()
    );
}
