//! The end-to-end inference pipeline: sample → gather → GraphSAGE-max,
//! as one request path with one latency number.
//!
//! The paper's FaaS architecture exists to serve *inference*: a request
//! names root nodes, the answer is their embeddings, and the SLO is
//! end-to-end per-request latency — not the throughput of any single
//! stage. [`InferenceService`] realizes that path as a three-stage
//! pipeline over the serving stack that already exists:
//!
//! 1. **Sample** — requests go through [`SamplingService`] (bounded
//!    queue, coalesced batches, the full retry/hedge/degrade ladder).
//! 2. **Gather** — the flat blocks' node planes are fed to the coalesced
//!    [`SamplingBackend::gather_attr_rows`] fetch: one attribute row per
//!    *distinct* node plus a slot index, so a hub sampled 40 times is
//!    fetched (and later embedded) once. Concurrent requests fuse into
//!    one fetch (up to [`InferenceConfig::gather_batch`]), deduping the
//!    shared hot head *across* requests and paying each partition
//!    dispatch once per batch.
//! 3. **Compute** — [`SageModel::forward_block_into`] consumes the
//!    block's hop/adjacency offsets and the deduplicated rows directly;
//!    all layer intermediates live in recycled scratch.
//!
//! Stages are connected by *bounded* crossbeam channels: a slow compute
//! stage backpressures the gather stage, which backpressures submission —
//! memory stays bounded under overload, exactly like the sampling
//! service's own queue. Pipelining changes latency, never results: the
//! per-request answer is bitwise-identical to [`run_sequential`]'s
//! one-at-a-time reference execution, which the `bench inference` digest
//! pins down.
//!
//! Degradation composes: a degraded [`SampleReply`] (card down, retries
//! exhausted) flows through gather and compute like any other block —
//! the pipeline *never* errors on a degraded sample — and surfaces as
//! [`InferenceReply::degraded`] with an estimated
//! [`InferenceReply::recall`] quantifying the loss.

use crate::backend::SampleRequest;
use crate::obs::Observability;
use crate::pool::BufferPool;
use crate::service::{SampleReply, SampleTicket, SamplingService};
use crossbeam::channel::{bounded, Receiver, Sender};
use lsdgnn_desim::{Histogram, Time};
use lsdgnn_nn::{Matrix, SageModel, SageScratch};
use lsdgnn_telemetry::ledger::{self, Stage, NO_SHARD};
use lsdgnn_telemetry::{Log2Histogram, MetricSource, Scope};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Tuning knobs of an [`InferenceService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferenceConfig {
    /// Bounded capacity of each inter-stage queue; a full queue blocks
    /// the upstream stage (backpressure, not unbounded buffering).
    pub stage_capacity: usize,
    /// Max requests fused into one attribute fetch by the gather stage.
    /// Concurrent requests share the hot head of a skewed workload, so a
    /// fused fetch dedups their row fetches *across* requests and pays
    /// the per-partition dispatch once per batch instead of once per
    /// request. Values per entry are unchanged — fusing never alters
    /// replies.
    pub gather_batch: usize,
}

impl Default for InferenceConfig {
    fn default() -> Self {
        InferenceConfig {
            stage_capacity: 64,
            // Measured sweet spot on the bench workload: wide enough to
            // amortize partition dispatches, small enough that the fused
            // feature matrix stays cache-resident for the compute stage.
            gather_batch: 4,
        }
    }
}

/// One inference answer: root embeddings plus the degradation provenance
/// inherited from the sampling stage.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceReply {
    /// `num_roots × out_dim` embeddings, root order preserved.
    pub embeddings: Matrix,
    /// True when the underlying sample was partial (an unreachable
    /// shard); the embeddings are an approximation, never an error.
    pub degraded: bool,
    /// Estimated sampling recall in `[0, 1]`: the fraction of the ideal
    /// neighbor sample that was actually aggregated. Exact replies are
    /// `1.0`; a degraded reply charges each unreachable node `fanout`
    /// missing samples, a conservative (lower-bound) estimate.
    pub recall: f64,
    /// Nodes whose owner was unreachable while sampling/gathering.
    pub unreachable: u64,
    /// Sampling attempts spent (see [`SampleReply::attempts`]).
    pub attempts: u32,
    /// A hedged sampling re-dispatch was fired for this request.
    pub hedged: bool,
}

impl InferenceReply {
    /// FNV-1a digest over the embedding bits and the degradation outcome
    /// — the pipelined-vs-sequential equivalence check. Timing-dependent
    /// provenance (attempts, hedges) is excluded; the *answer* is what
    /// must match.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(PRIME);
        };
        let (rows, cols) = self.embeddings.shape();
        mix(rows as u64);
        mix(cols as u64);
        for r in 0..rows {
            for &v in self.embeddings.row(r) {
                mix(u64::from(v.to_bits()));
            }
        }
        mix(u64::from(self.degraded));
        mix(self.unreachable);
        h
    }
}

/// End-to-end serving accounting: the per-request latency histogram is
/// submit-to-embedding (*not* per-stage), which is what an SLO is set
/// on. Registers into a telemetry `Registry` directly.
#[derive(Debug, Clone, Default)]
pub struct InferenceStats {
    /// Requests answered.
    pub requests: u64,
    /// Replies flagged degraded.
    pub degraded: u64,
    /// Submit-to-embedding latency per request, in wall-clock
    /// microseconds.
    pub latency: Histogram,
    /// Requests fused per gather-stage attribute fetch.
    pub gather_batch: Log2Histogram,
}

impl InferenceStats {
    /// Interpolated median end-to-end latency, microseconds.
    pub fn latency_p50_us(&self) -> f64 {
        self.latency.percentile(0.50).as_micros_f64()
    }

    /// Interpolated p99 end-to-end latency, microseconds.
    pub fn latency_p99_us(&self) -> f64 {
        self.latency.percentile(0.99).as_micros_f64()
    }

    /// Fraction of replies that were degraded.
    pub fn degraded_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.degraded as f64 / self.requests as f64
        }
    }
}

impl MetricSource for InferenceStats {
    fn collect(&self, out: &mut Scope<'_>) {
        out.counter("requests", self.requests);
        out.counter("degraded", self.degraded);
        out.histogram("latency_us", self.latency.snapshot_micros());
        out.histogram("gather_batch", self.gather_batch.snapshot());
        out.gauge("degraded_ratio", self.degraded_ratio());
    }
}

/// A pending inference request; [`InferenceTicket::wait`] blocks for the
/// embeddings.
#[derive(Debug)]
pub struct InferenceTicket {
    rx: Receiver<InferenceReply>,
}

impl InferenceTicket {
    /// Blocks until the pipeline replies.
    ///
    /// # Panics
    ///
    /// Panics if the service shut down before serving the request.
    pub fn wait(self) -> InferenceReply {
        self.rx.recv().expect("inference service replies")
    }
}

/// Sample stage → gather stage handoff.
struct GatherJob {
    ticket: SampleTicket,
    fanout: usize,
    submitted: Instant,
    reply: Sender<InferenceReply>,
}

/// One request resolved by the gather stage: its sample reply plus the
/// segment of the fused fetch it owns.
struct Resolved {
    sreply: SampleReply,
    trace: u64,
    slot_start: usize,
    slot_len: usize,
    fanout: usize,
    submitted: Instant,
    reply: Sender<InferenceReply>,
}

/// Gather stage → compute stage handoff. A fused gather batch shares
/// one feature matrix and one slot table across its requests; each job
/// owns a contiguous segment of the slot table (the `Arc`s drop back to
/// the pool when the batch's last job finishes computing).
struct ComputeJob {
    sreply: SampleReply,
    trace: u64,
    feats: Arc<Matrix>,
    slots: Arc<Vec<u32>>,
    slot_start: usize,
    slot_len: usize,
    fanout: usize,
    submitted: Instant,
    enqueued: Instant,
    reply: Sender<InferenceReply>,
}

/// The pipelined sample → gather → compute inference service.
pub struct InferenceService {
    svc: Arc<SamplingService>,
    model: Arc<SageModel>,
    pool: Arc<BufferPool>,
    stats: Arc<Mutex<InferenceStats>>,
    gather_tx: Option<Sender<GatherJob>>,
    gather_handle: Option<JoinHandle<()>>,
    compute_handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for InferenceService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceService")
            .field("layers", &self.model.num_layers())
            .finish()
    }
}

impl InferenceService {
    /// Starts the pipeline over an already-running sampling service
    /// (plain, traced, or faulted — degradation composes transparently).
    ///
    /// The model's layer count fixes the hop count requests must carry;
    /// [`InferenceService::submit`] asserts it.
    pub fn start(svc: SamplingService, model: SageModel, config: InferenceConfig) -> Self {
        let svc = Arc::new(svc);
        let model = Arc::new(model);
        let pool = Arc::new(BufferPool::new());
        let stats = Arc::new(Mutex::new(InferenceStats::default()));
        let (gather_tx, gather_rx) = bounded::<GatherJob>(config.stage_capacity.max(1));
        let (compute_tx, compute_rx) = bounded::<ComputeJob>(config.stage_capacity.max(1));

        // When the sampling service carries an observability bundle, the
        // pipeline becomes the finish authority: a request is only "done"
        // (flight dumps, deadline checks) once its embeddings exist.
        let obs = svc.observability().cloned();
        if let Some(o) = &obs {
            o.defer_sample_finish();
        }

        let gather_handle = {
            let svc = Arc::clone(&svc);
            let pool = Arc::clone(&pool);
            let stats = Arc::clone(&stats);
            let batch = config.gather_batch.max(1);
            let obs = obs.clone();
            std::thread::spawn(move || {
                gather_loop(&svc, &pool, &stats, batch, &gather_rx, &compute_tx, obs)
            })
        };
        let compute_handle = {
            let svc = Arc::clone(&svc);
            let model = Arc::clone(&model);
            let pool = Arc::clone(&pool);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || compute_loop(&svc, &model, &pool, &stats, &compute_rx, obs))
        };

        InferenceService {
            svc,
            model,
            pool,
            stats,
            gather_tx: Some(gather_tx),
            gather_handle: Some(gather_handle),
            compute_handle: Some(compute_handle),
        }
    }

    /// Submits a request; blocks only when the pipeline is saturated
    /// (bounded stage queues). Keeping several tickets in flight is what
    /// lets the sampling stage coalesce batches while older requests
    /// gather and compute — the source of the pipelined speedup.
    ///
    /// # Panics
    ///
    /// Panics if `req.hops` disagrees with the model's layer count or
    /// `req.roots` is empty.
    pub fn submit(&self, req: SampleRequest) -> InferenceTicket {
        assert_eq!(
            req.hops as usize,
            self.model.num_layers(),
            "request hops must match model layers"
        );
        assert!(!req.roots.is_empty(), "need at least one root");
        let fanout = req.fanout;
        let submitted = Instant::now();
        let ticket = self.svc.submit(req);
        let (reply, rx) = bounded(1);
        self.gather_tx
            .as_ref()
            .expect("service running")
            .send(GatherJob {
                ticket,
                fanout,
                submitted,
                reply,
            })
            .expect("pipeline stages alive");
        InferenceTicket { rx }
    }

    /// Submits and waits: the synchronous convenience path.
    pub fn infer(&self, req: SampleRequest) -> InferenceReply {
        self.submit(req).wait()
    }

    /// Returns a finished reply's embedding buffer to the pipeline's
    /// pool, so steady-state serving recycles instead of allocating.
    pub fn recycle(&self, reply: InferenceReply) {
        self.pool.put_floats(reply.embeddings.into_vec());
    }

    /// End-to-end serving stats (p50/p99 are submit-to-embedding).
    pub fn stats(&self) -> InferenceStats {
        self.stats.lock().expect("stats lock").clone()
    }

    /// The sampling service underneath (its stats cover stage 1 only).
    pub fn sampling(&self) -> &SamplingService {
        &self.svc
    }

    /// The model being served.
    pub fn model(&self) -> &SageModel {
        &self.model
    }

    /// Drains in-flight requests and stops the stage threads (the
    /// sampling service shuts down with its last owner).
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // Closing the gather queue cascades: gather drains and drops the
        // compute sender, compute drains and exits.
        drop(self.gather_tx.take());
        if let Some(h) = self.gather_handle.take() {
            let _ = h.join();
        }
        if let Some(h) = self.compute_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for InferenceService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Stage 2: await sample replies in submission order and run the
/// coalesced row gather. Whatever is already queued (up to
/// `gather_batch` requests) is fused into *one* attribute fetch: the
/// requests' fetch lists concatenate, dedup across each other, and pay
/// each partition dispatch once for the whole batch. Runs on its own
/// thread; a full compute queue blocks it (backpressure).
fn gather_loop(
    svc: &SamplingService,
    pool: &BufferPool,
    stats: &Mutex<InferenceStats>,
    gather_batch: usize,
    rx: &Receiver<GatherJob>,
    tx: &Sender<ComputeJob>,
    obs: Option<Observability>,
) {
    loop {
        // Block for one job, then drain peers already in the queue —
        // their samples are in flight (or done), so fusing them costs no
        // added wait.
        let first = match rx.recv() {
            Ok(j) => j,
            Err(_) => return, // submitters gone: shutting down
        };
        let mut jobs = vec![first];
        while jobs.len() < gather_batch {
            match rx.try_recv() {
                Ok(j) => jobs.push(j),
                Err(_) => break,
            }
        }
        stats
            .lock()
            .expect("stats lock")
            .gather_batch
            .record(jobs.len() as u64);

        // Resolve in submission order and build the fused fetch list;
        // remember each request's entry segment.
        let fused = jobs.len() as u64;
        let wait_t0 = obs.as_ref().map(|_| Instant::now());
        let mut fetch = pool.take_nodes();
        let mut resolved = Vec::with_capacity(jobs.len());
        for job in jobs {
            let trace = job.ticket.trace();
            let sreply = job.ticket.wait_reply();
            let slot_start = fetch.len();
            fetch.extend_from_slice(&sreply.block.roots);
            fetch.extend_from_slice(&sreply.block.nodes);
            let slot_len = fetch.len() - slot_start;
            resolved.push(Resolved {
                sreply,
                trace,
                slot_start,
                slot_len,
                fanout: job.fanout,
                submitted: job.submitted,
                reply: job.reply,
            });
        }
        let wait_us = wait_t0.map_or(0.0, |t| t.elapsed().as_secs_f64() * 1e6);
        // The fused fetch runs inside a ledger scope covering every fused
        // request, so the per-partition gather legs underneath attribute
        // to each of them.
        let _scope = obs
            .as_ref()
            .map(|o| ledger::enter_scope(o.ledger(), resolved.iter().map(|r| r.trace).collect()));
        let fetch_t0 = obs.as_ref().map(|_| Instant::now());
        let mut rows = pool.take_floats();
        let mut slot_of = pool.take_offsets();
        let attr_len = svc.gather_attr_rows(&fetch, &mut rows, &mut slot_of);
        if let Some(t0) = fetch_t0 {
            // queue = time spent waiting on the sample tickets; service =
            // the fused coalesced fetch; detail = requests fused.
            ledger::scope_record(
                Stage::Gather,
                NO_SHARD,
                wait_us,
                t0.elapsed().as_secs_f64() * 1e6,
                fused,
            );
        }
        drop(_scope);
        pool.put_nodes(fetch);

        let feats = Arc::new(Matrix::from_vec(
            rows.len() / attr_len.max(1),
            attr_len,
            rows,
        ));
        let slots = Arc::new(slot_of);
        let enqueued = Instant::now();
        for r in resolved {
            let sent = tx.send(ComputeJob {
                sreply: r.sreply,
                trace: r.trace,
                feats: Arc::clone(&feats),
                slots: Arc::clone(&slots),
                slot_start: r.slot_start,
                slot_len: r.slot_len,
                fanout: r.fanout,
                submitted: r.submitted,
                enqueued,
                reply: r.reply,
            });
            if sent.is_err() {
                return; // compute stage gone: shutting down
            }
        }
    }
}

/// Stage 3: layer-wise forward into pooled output, end-to-end latency
/// accounting, reply delivery.
fn compute_loop(
    svc: &SamplingService,
    model: &SageModel,
    pool: &Arc<BufferPool>,
    stats: &Mutex<InferenceStats>,
    rx: &Receiver<ComputeJob>,
    obs: Option<Observability>,
) {
    let mut scratch = SageScratch::new();
    let mut lh = obs.as_ref().map(|o| o.ledger().handle());
    let mut marks: Vec<f64> = Vec::new();
    for job in rx.iter() {
        let queue_us = if lh.is_some() {
            job.enqueued.elapsed().as_secs_f64() * 1e6
        } else {
            0.0
        };
        let compute_t0 = lh.is_some().then(Instant::now);
        marks.clear();
        let out_buf = pool.take_floats();
        let slots = &job.slots[job.slot_start..job.slot_start + job.slot_len];
        let reply = compute_stage(
            model,
            &mut scratch,
            out_buf,
            &job.sreply,
            &job.feats,
            slots,
            job.fanout,
            |_k| {
                if let Some(t0) = compute_t0 {
                    marks.push(t0.elapsed().as_secs_f64() * 1e6);
                }
            },
        );
        // The batch's last job returns the shared buffers to the pool.
        if let Ok(m) = Arc::try_unwrap(job.feats) {
            pool.put_floats(m.into_vec());
        }
        if let Ok(s) = Arc::try_unwrap(job.slots) {
            pool.put_offsets(s);
        }
        svc.backend().recycle(job.sreply.block);
        let elapsed_us = job.submitted.elapsed().as_micros() as u64;
        {
            let mut s = stats.lock().expect("stats lock");
            s.requests += 1;
            if reply.degraded {
                s.degraded += 1;
            }
            s.latency.record(Time::from_micros(elapsed_us));
        }
        if let (Some(o), Some(h)) = (obs.as_ref(), lh.as_mut()) {
            // One ComputeLayer event per layer (service = that layer's
            // share of the forward pass); the compute-queue wait is
            // charged to layer 0.
            let mut prev = 0.0;
            for (k, &m) in marks.iter().enumerate() {
                let q = if k == 0 { queue_us } else { 0.0 };
                h.record(
                    job.trace,
                    Stage::ComputeLayer,
                    NO_SHARD,
                    q,
                    m - prev,
                    k as u64,
                );
                prev = m;
            }
            o.observe_e2e(elapsed_us as f64, reply.degraded);
            h.finish(job.trace, elapsed_us as f64, reply.degraded);
        }
        // A dropped ticket just discards the reply.
        let _ = job.reply.send(reply);
    }
}

/// The gather stage's body, shared verbatim with [`run_sequential`]:
/// fetch one attribute row per distinct entry (roots + node plane) plus
/// the entry → row slot index.
fn gather_stage(
    svc: &SamplingService,
    pool: &BufferPool,
    sreply: &SampleReply,
) -> (Vec<f32>, Vec<u32>, usize) {
    let mut fetch = pool.take_nodes();
    fetch.extend_from_slice(&sreply.block.roots);
    fetch.extend_from_slice(&sreply.block.nodes);
    let mut rows = pool.take_floats();
    let mut slot_of = pool.take_offsets();
    let attr_len = svc.gather_attr_rows(&fetch, &mut rows, &mut slot_of);
    pool.put_nodes(fetch);
    (rows, slot_of, attr_len)
}

/// The compute stage's body, shared verbatim with [`run_sequential`]:
/// forward the block through the model over its slice of the (possibly
/// batch-shared) feature matrix, and attach degradation provenance. The
/// answer depends only on each entry's feature *values*, so a fused
/// gather's global row order produces bitwise-identical embeddings.
/// `after_layer` fires once per finished layer (the observability
/// timing hook); the unobserved path passes a no-op closure that
/// monomorphizes away.
#[allow(clippy::too_many_arguments)]
fn compute_stage<F: FnMut(usize)>(
    model: &SageModel,
    scratch: &mut SageScratch,
    out_buf: Vec<f32>,
    sreply: &SampleReply,
    feats: &Matrix,
    slot_of: &[u32],
    fanout: usize,
    after_layer: F,
) -> InferenceReply {
    let block = &sreply.block;
    assert!(
        block.has_adjacency(),
        "inference requires a flat-data-plane backend (block carries no adjacency)"
    );
    let mut out = Matrix::from_pooled(block.roots.len(), model.out_dim(), out_buf);
    // The block's boundary table carries a trailing end sentinel
    // (`nodes.len()`); the model wants only the per-hop starts.
    let hop_starts = &block.hop_offsets[..block.hop_offsets.len() - 1];
    model.forward_block_observed(
        block.roots.len(),
        hop_starts,
        &block.adj_offsets,
        feats,
        slot_of,
        scratch,
        &mut out,
        after_layer,
    );
    InferenceReply {
        embeddings: out,
        degraded: sreply.degraded,
        recall: estimate_recall(block.nodes.len() as u64, sreply.unreachable, fanout),
        unreachable: sreply.unreachable,
        attempts: sreply.attempts,
        hedged: sreply.hedged,
    }
}

/// Conservative recall estimate: each unreachable node is charged a full
/// `fanout` of missing samples against the `sampled` that did arrive.
fn estimate_recall(sampled: u64, unreachable: u64, fanout: usize) -> f64 {
    if unreachable == 0 {
        return 1.0;
    }
    let missing = unreachable.saturating_mul(fanout.max(1) as u64);
    sampled as f64 / (sampled + missing) as f64
}

/// The unpipelined reference execution: each request runs sample →
/// gather → compute to completion before the next is submitted, through
/// the *same* stage bodies the pipeline uses. Replies are
/// bitwise-identical to the pipelined service's on a deterministic
/// backend — pipelining changes latency, never results.
pub fn run_sequential(
    svc: &SamplingService,
    model: &SageModel,
    reqs: impl IntoIterator<Item = SampleRequest>,
) -> Vec<InferenceReply> {
    let pool = BufferPool::new();
    let mut scratch = SageScratch::new();
    let mut replies = Vec::new();
    for req in reqs {
        let fanout = req.fanout;
        let sreply = svc.sample_reply(req);
        let (rows, slot_of, attr_len) = gather_stage(svc, &pool, &sreply);
        let feats = Matrix::from_vec(rows.len() / attr_len.max(1), attr_len, rows);
        let out_buf = pool.take_floats();
        let reply = compute_stage(
            model,
            &mut scratch,
            out_buf,
            &sreply,
            &feats,
            &slot_of,
            fanout,
            |_| {},
        );
        pool.put_floats(feats.into_vec());
        pool.put_offsets(slot_of);
        svc.backend().recycle(sreply.block);
        replies.push(reply);
    }
    replies
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{CachedBackend, CpuBackend, SamplingBackend};
    use crate::chaos_backend::ChaosBackend;
    use crate::service::ServiceConfig;
    use lsdgnn_chaos::{FaultInjector, FaultPlan, ScenarioSpec};
    use lsdgnn_graph::{generators, AttributeStore, NodeId};
    use lsdgnn_telemetry::Registry;

    const ATTR_LEN: usize = 8;

    fn backend(parts: u32) -> Box<dyn SamplingBackend> {
        let g = generators::power_law(500, 8, 31);
        let a = AttributeStore::synthetic(500, ATTR_LEN, 31);
        Box::new(CpuBackend::new(&g, &a, parts))
    }

    fn model() -> SageModel {
        SageModel::new(&[ATTR_LEN, 8, 4], 77)
    }

    fn req(seed: u64) -> SampleRequest {
        SampleRequest {
            roots: vec![NodeId(seed % 500), NodeId((seed * 7 + 3) % 500)],
            hops: 2,
            fanout: 4,
            seed,
        }
    }

    fn service_cfg(workers: usize) -> ServiceConfig {
        ServiceConfig {
            workers,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn pipelined_matches_sequential_reference() {
        let pipe = InferenceService::start(
            SamplingService::start(backend(2), service_cfg(2)),
            model(),
            InferenceConfig::default(),
        );
        let tickets: Vec<InferenceTicket> = (0..24).map(|s| pipe.submit(req(s))).collect();
        let piped: Vec<InferenceReply> = tickets.into_iter().map(InferenceTicket::wait).collect();

        let seq_svc = SamplingService::start(backend(2), service_cfg(2));
        let seq = run_sequential(&seq_svc, &model(), (0..24).map(req));

        assert_eq!(piped.len(), seq.len());
        for (i, (p, s)) in piped.iter().zip(&seq).enumerate() {
            assert_eq!(p, s, "request {i}");
            assert_eq!(p.digest(), s.digest(), "request {i}");
            assert_eq!(p.embeddings.shape(), (2, 4));
            assert!(!p.degraded);
            assert_eq!(p.recall, 1.0);
        }
        let stats = pipe.stats();
        assert_eq!(stats.requests, 24);
        assert_eq!(stats.degraded, 0);
        assert!(stats.latency_p99_us() >= stats.latency_p50_us());
        assert!(stats.latency_p50_us() > 0.0);
    }

    #[test]
    fn degraded_samples_yield_degraded_replies_not_errors() {
        // Card 1 dies at tick 8: later requests lose its contribution.
        let plan = FaultPlan::build(7, ScenarioSpec::none().with_card_failure(1, 8)).unwrap();
        let make = || {
            let injector = FaultInjector::new(plan.clone());
            let chaos = ChaosBackend::new(backend(2), injector.clone());
            // workers: 1 keeps breaker state in request order, so the
            // sequential arm sees identical degradation decisions.
            SamplingService::start_faulted(Box::new(chaos), service_cfg(1), None, Some(injector))
        };
        let pipe = InferenceService::start(make(), model(), InferenceConfig::default());
        let tickets: Vec<InferenceTicket> = (0..16).map(|s| pipe.submit(req(s))).collect();
        let piped: Vec<InferenceReply> = tickets.into_iter().map(InferenceTicket::wait).collect();
        let seq = run_sequential(&make(), &model(), (0..16).map(req));

        let mut saw_degraded = false;
        for (i, (p, s)) in piped.iter().zip(&seq).enumerate() {
            assert_eq!(p.digest(), s.digest(), "request {i}");
            assert_eq!(p.embeddings.shape(), (2, 4), "degraded is still complete");
            if p.degraded {
                saw_degraded = true;
                assert!(p.recall < 1.0, "degradation must be quantified");
                assert!(p.unreachable > 0);
            } else {
                assert_eq!(p.recall, 1.0);
            }
        }
        assert!(saw_degraded, "the dead card must degrade some replies");
        let stats = pipe.stats();
        assert!(stats.degraded > 0);
        assert!(stats.degraded_ratio() > 0.0);
    }

    #[test]
    fn cached_backend_serves_identical_embeddings() {
        let cached = CachedBackend::new(backend(2), 128, ATTR_LEN);
        let pipe = InferenceService::start(
            SamplingService::start(Box::new(cached), service_cfg(2)),
            model(),
            InferenceConfig::default(),
        );
        let piped: Vec<InferenceReply> = (0..8)
            .map(|s| pipe.submit(req(s)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(InferenceTicket::wait)
            .collect();
        let seq_svc = SamplingService::start(backend(2), service_cfg(2));
        let seq = run_sequential(&seq_svc, &model(), (0..8).map(req));
        for (p, s) in piped.iter().zip(&seq) {
            assert_eq!(p.digest(), s.digest());
        }
        // The cache behind the pipeline is observable from the
        // inference layer: the sampling service surfaces its tiers.
        let cache = pipe
            .sampling()
            .stats()
            .cache
            .expect("cached backend surfaces tier counters");
        let attr = cache.attr.expect("attr tier on");
        assert!(
            attr.hits + attr.misses > 0,
            "gather stage consulted the tier"
        );
    }

    #[test]
    fn tiny_stage_queues_still_drain_under_load() {
        let pipe = InferenceService::start(
            SamplingService::start(backend(2), service_cfg(2)),
            model(),
            InferenceConfig {
                stage_capacity: 1,
                gather_batch: 2,
            },
        );
        // More in-flight requests than any queue can hold: submission
        // must backpressure, not deadlock or drop.
        let replies: Vec<InferenceReply> = (0..40)
            .map(|s| pipe.submit(req(s)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(InferenceTicket::wait)
            .collect();
        assert_eq!(replies.len(), 40);
        assert_eq!(pipe.stats().requests, 40);
    }

    #[test]
    fn stats_register_into_telemetry() {
        let pipe = InferenceService::start(
            SamplingService::start(backend(2), service_cfg(2)),
            model(),
            InferenceConfig::default(),
        );
        for s in 0..4 {
            let reply = pipe.infer(req(s));
            pipe.recycle(reply);
        }
        let mut reg = Registry::new();
        reg.register("inference", &[], Box::new(pipe.stats()));
        let snap = reg.snapshot();
        assert_eq!(snap.get("inference/requests").unwrap().as_f64(), 4.0);
        assert_eq!(snap.get("inference/degraded").unwrap().as_f64(), 0.0);
        let lat = snap
            .get("inference/latency_us")
            .and_then(|v| v.as_histogram().copied())
            .expect("latency histogram exported");
        assert_eq!(lat.count, 4);
        assert!(lat.p99 >= lat.p50);
    }

    #[test]
    fn observed_pipeline_records_causal_ledger_and_matches_plain() {
        let obs = Observability::default();
        let svc = SamplingService::start_observed(
            backend(2),
            service_cfg(1),
            None,
            None,
            Some(obs.clone()),
        );
        let pipe = InferenceService::start(svc, model(), InferenceConfig::default());
        assert!(
            !obs.sample_finish_enabled(),
            "pipeline owns the finish triggers"
        );
        let tickets: Vec<InferenceTicket> = (0..12).map(|s| pipe.submit(req(s))).collect();
        let observed: Vec<InferenceReply> =
            tickets.into_iter().map(InferenceTicket::wait).collect();

        // Observability must never change answers.
        let plain_svc = SamplingService::start(backend(2), service_cfg(1));
        let plain = run_sequential(&plain_svc, &model(), (0..12).map(req));
        for (i, (o, p)) in observed.iter().zip(&plain).enumerate() {
            assert_eq!(o.digest(), p.digest(), "request {i}");
        }

        let snap = obs.ledger().snapshot();
        assert_eq!(snap.finished, 12, "e2e finish per request");
        let stages: Vec<Stage> = snap.events_for(1).iter().map(|e| e.stage).collect();
        for want in [
            Stage::Enqueue,
            Stage::Admission,
            Stage::Sampling,
            Stage::SampleHop,
            Stage::RemoteLeg,
            Stage::SampleDone,
            Stage::Gather,
            Stage::GatherLeg,
            Stage::ComputeLayer,
            Stage::Done,
        ] {
            assert!(
                stages.contains(&want),
                "missing {} in {stages:?}",
                want.name()
            );
        }
        assert_eq!(
            stages.iter().filter(|&&s| s == Stage::ComputeLayer).count(),
            2,
            "one compute event per model layer"
        );
        let blame = snap.blame(0.5);
        assert!(blame.top_stage().is_some());
        assert_eq!(obs.sampling_slo().total(), 12);
        assert_eq!(obs.e2e_slo().total(), 12);
    }

    #[test]
    fn degraded_observed_pipeline_dumps_flights_with_chaos_correlation() {
        // Card 1 dead from tick 0: every reply is degraded, so every
        // finish trips the flight recorder, correlated with the plan.
        let plan = FaultPlan::build(42, ScenarioSpec::none().with_card_failure(1, 0)).unwrap();
        let injector = FaultInjector::new(plan.clone());
        let chaos = ChaosBackend::new(backend(2), injector.clone());
        let obs = Observability::default();
        let svc = SamplingService::start_observed(
            Box::new(chaos),
            service_cfg(1),
            None,
            Some(injector),
            Some(obs.clone()),
        );
        let pipe = InferenceService::start(svc, model(), InferenceConfig::default());
        for s in 0..6 {
            let reply = pipe.infer(req(s));
            assert!(reply.degraded);
        }
        let snap = obs.ledger().snapshot();
        assert_eq!(snap.degraded_finishes, 6);
        assert!(!snap.dumps.is_empty(), "degraded finishes must dump");
        for d in &snap.dumps {
            assert_eq!(d.chaos_seed, Some(plan.seed()), "replay correlation");
            assert_eq!(d.plan_digest, Some(plan.digest()));
            assert!(!d.events.is_empty(), "dump carries the causal tail");
        }
        // The injected fault layer is named by the tail blame.
        let blame = snap.blame(0.0);
        assert_eq!(blame.top_fault(), Some("card_down"));
    }

    #[test]
    fn recall_estimate_is_conservative_and_bounded() {
        assert_eq!(estimate_recall(100, 0, 4), 1.0);
        assert_eq!(estimate_recall(0, 5, 4), 0.0);
        let r = estimate_recall(80, 5, 4);
        assert!(r > 0.0 && r < 1.0);
        assert_eq!(r, 80.0 / 100.0);
    }
}
