//! System-level hot-node caching.
//!
//! The paper's Tech-4 argument rests on the framework already doing its
//! job: "framework (i.e., AliGraph) already provides system-level caching
//! for the most frequently used nodes. Therefore ... caching temporal
//! reuse is not efficient in the hardware." This module is that
//! framework-level cache — an LRU over fetched node attributes — plus the
//! measurement that justifies the paper's split: batch-random sampling
//! over a huge id space sees ~zero reuse, while skewed (hub-heavy)
//! access patterns cache well.

use lsdgnn_graph::NodeId;
use std::collections::HashMap;

/// An LRU cache of node attribute vectors.
#[derive(Debug)]
pub struct HotNodeCache {
    capacity: usize,
    map: HashMap<NodeId, (u64, Vec<f32>)>, // node -> (last-use tick, attrs)
    tick: u64,
    hits: u64,
    misses: u64,
}

impl HotNodeCache {
    /// Creates a cache holding at most `capacity` node entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        HotNodeCache {
            capacity,
            map: HashMap::with_capacity(capacity),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks a node up, refreshing its recency on a hit.
    pub fn get(&mut self, v: NodeId) -> Option<&[f32]> {
        self.tick += 1;
        match self.map.get_mut(&v) {
            Some((t, attrs)) => {
                *t = self.tick;
                self.hits += 1;
                Some(attrs.as_slice())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) a node's attributes, evicting the least
    /// recently used entry when full.
    pub fn insert(&mut self, v: NodeId, attrs: Vec<f32>) {
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&v) {
            if let Some((&evict, _)) = self.map.iter().min_by_key(|(_, (t, _))| *t) {
                self.map.remove(&evict);
            }
        }
        self.map.insert(v, (self.tick, attrs));
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn attrs(v: NodeId) -> Vec<f32> {
        vec![v.0 as f32; 4]
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = HotNodeCache::new(2);
        c.insert(NodeId(1), attrs(NodeId(1)));
        c.insert(NodeId(2), attrs(NodeId(2)));
        assert!(c.get(NodeId(1)).is_some()); // refresh 1
        c.insert(NodeId(3), attrs(NodeId(3))); // evicts 2
        assert!(c.get(NodeId(2)).is_none());
        assert!(c.get(NodeId(1)).is_some());
        assert!(c.get(NodeId(3)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn uniform_batch_sampling_sees_no_reuse() {
        // The paper's Tech-4 premise: 512-node batches against a huge id
        // space — a realistic cache can't help.
        let id_space = 10_000_000u64;
        let mut c = HotNodeCache::new(10_000);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..20 {
            for _ in 0..512 {
                let v = NodeId(rng.gen_range(0..id_space));
                if c.get(v).is_none() {
                    c.insert(v, attrs(v));
                }
            }
        }
        assert!(
            c.hit_rate() < 0.01,
            "uniform sampling hit rate {} should be ~0",
            c.hit_rate()
        );
    }

    #[test]
    fn skewed_hub_access_caches_well() {
        // The flip side: AliGraph's "most frequently used nodes" cache —
        // an 80/20 hub access pattern hits hard.
        let mut c = HotNodeCache::new(1_000);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..20_000 {
            let v = if rng.gen_bool(0.8) {
                NodeId(rng.gen_range(0..500)) // hot set fits the cache
            } else {
                NodeId(rng.gen_range(0..10_000_000))
            };
            if c.get(v).is_none() {
                c.insert(v, attrs(v));
            }
        }
        assert!(
            c.hit_rate() > 0.6,
            "hub-skewed hit rate {} should be high",
            c.hit_rate()
        );
    }

    #[test]
    fn cached_values_are_the_inserted_ones() {
        let mut c = HotNodeCache::new(4);
        c.insert(NodeId(7), vec![1.0, 2.0]);
        assert_eq!(c.get(NodeId(7)).unwrap(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = HotNodeCache::new(0);
    }
}
