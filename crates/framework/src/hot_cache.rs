//! System-level hot-node caching.
//!
//! The paper's Tech-4 argument rests on the framework already doing its
//! job: "framework (i.e., AliGraph) already provides system-level caching
//! for the most frequently used nodes. Therefore ... caching temporal
//! reuse is not efficient in the hardware." This module is that
//! framework-level cache — an LRU over fetched node attributes — plus the
//! measurement that justifies the paper's split: batch-random sampling
//! over a huge id space sees ~zero reuse, while skewed (hub-heavy)
//! access patterns cache well.
//!
//! Storage is a slab: the FNV-keyed map holds slot indices into one
//! `Vec` of entries, and an evicted slot's attribute buffer is reused in
//! place for the incoming entry — steady-state churn (the uniform-batch
//! case above, where every insert evicts) allocates nothing.

use lsdgnn_graph::{FnvHashMap, NodeId};

/// One cached entry: the owning node, its last-use tick, and the
/// attribute vector (reused in place across evictions).
#[derive(Debug)]
struct Slot {
    node: NodeId,
    tick: u64,
    attrs: Vec<f32>,
}

/// An LRU cache of node attribute vectors.
#[derive(Debug)]
pub struct HotNodeCache {
    capacity: usize,
    map: FnvHashMap<NodeId, usize>, // node -> slot index
    slots: Vec<Slot>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl HotNodeCache {
    /// Creates a cache holding at most `capacity` node entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        HotNodeCache {
            capacity,
            map: FnvHashMap::default(),
            slots: Vec::with_capacity(capacity),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks a node up, refreshing its recency on a hit.
    pub fn get(&mut self, v: NodeId) -> Option<&[f32]> {
        self.tick += 1;
        match self.map.get(&v) {
            Some(&i) => {
                let slot = &mut self.slots[i];
                slot.tick = self.tick;
                self.hits += 1;
                Some(slot.attrs.as_slice())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) a node's attributes, evicting the least
    /// recently used entry when full. The evicted slot's buffer is
    /// rewritten in place, so steady-state churn is allocation-free.
    pub fn insert(&mut self, v: NodeId, attrs: &[f32]) {
        self.tick += 1;
        if let Some(&i) = self.map.get(&v) {
            let slot = &mut self.slots[i];
            slot.tick = self.tick;
            slot.attrs.clear();
            slot.attrs.extend_from_slice(attrs);
            return;
        }
        if self.slots.len() < self.capacity {
            self.map.insert(v, self.slots.len());
            self.slots.push(Slot {
                node: v,
                tick: self.tick,
                attrs: attrs.to_vec(),
            });
            return;
        }
        // Full: reuse the least-recently-used slot.
        let i = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.tick)
            .map(|(i, _)| i)
            .expect("capacity > 0 means at least one slot");
        let slot = &mut self.slots[i];
        self.map.remove(&slot.node);
        slot.node = v;
        slot.tick = self.tick;
        slot.attrs.clear();
        slot.attrs.extend_from_slice(attrs);
        self.map.insert(v, i);
    }

    /// Rewrites every cached key through `map` — the hook that keeps the
    /// cache honest across a graph relabeling. Entries whose key maps to
    /// `None` are invalidated (their node no longer exists under the new
    /// layout); if two old keys collide on one new id, the more recently
    /// used entry wins. Hit/miss counters are preserved: a rekey is a
    /// layout change, not a workload change.
    pub fn rekey(&mut self, mut map: impl FnMut(NodeId) -> Option<NodeId>) {
        let old = std::mem::take(&mut self.slots);
        self.map.clear();
        for mut slot in old {
            let Some(new) = map(slot.node) else {
                continue; // invalidated: stale key under the new layout
            };
            slot.node = new;
            match self.map.get(&new).copied() {
                Some(i) if self.slots[i].tick >= slot.tick => {}
                Some(i) => self.slots[i] = slot,
                None => {
                    self.map.insert(new, self.slots.len());
                    self.slots.push(slot);
                }
            }
        }
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn attrs(v: NodeId) -> Vec<f32> {
        vec![v.0 as f32; 4]
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = HotNodeCache::new(2);
        c.insert(NodeId(1), &attrs(NodeId(1)));
        c.insert(NodeId(2), &attrs(NodeId(2)));
        assert!(c.get(NodeId(1)).is_some()); // refresh 1
        c.insert(NodeId(3), &attrs(NodeId(3))); // evicts 2
        assert!(c.get(NodeId(2)).is_none());
        assert!(c.get(NodeId(1)).is_some());
        assert!(c.get(NodeId(3)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn uniform_batch_sampling_sees_no_reuse() {
        // The paper's Tech-4 premise: 512-node batches against a huge id
        // space — a realistic cache can't help.
        let id_space = 10_000_000u64;
        let mut c = HotNodeCache::new(10_000);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..20 {
            for _ in 0..512 {
                let v = NodeId(rng.gen_range(0..id_space));
                if c.get(v).is_none() {
                    c.insert(v, &attrs(v));
                }
            }
        }
        assert!(
            c.hit_rate() < 0.01,
            "uniform sampling hit rate {} should be ~0",
            c.hit_rate()
        );
    }

    #[test]
    fn skewed_hub_access_caches_well() {
        // The flip side: AliGraph's "most frequently used nodes" cache —
        // an 80/20 hub access pattern hits hard.
        let mut c = HotNodeCache::new(1_000);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..20_000 {
            let v = if rng.gen_bool(0.8) {
                NodeId(rng.gen_range(0..500)) // hot set fits the cache
            } else {
                NodeId(rng.gen_range(0..10_000_000))
            };
            if c.get(v).is_none() {
                c.insert(v, &attrs(v));
            }
        }
        assert!(
            c.hit_rate() > 0.6,
            "hub-skewed hit rate {} should be high",
            c.hit_rate()
        );
    }

    #[test]
    fn cached_values_are_the_inserted_ones() {
        let mut c = HotNodeCache::new(4);
        c.insert(NodeId(7), &[1.0, 2.0]);
        assert_eq!(c.get(NodeId(7)).unwrap(), &[1.0, 2.0]);
    }

    #[test]
    fn reinsert_overwrites_and_supports_shorter_vectors() {
        // Slot reuse must not leak stale tail values when an entry is
        // rewritten with a shorter attribute vector.
        let mut c = HotNodeCache::new(1);
        c.insert(NodeId(1), &[1.0, 2.0, 3.0, 4.0]);
        c.insert(NodeId(2), &[9.0]); // evicts 1, reuses its slot
        assert_eq!(c.get(NodeId(2)).unwrap(), &[9.0]);
        assert!(c.get(NodeId(1)).is_none());
        c.insert(NodeId(2), &[5.0, 6.0]); // refresh in place
        assert_eq!(c.get(NodeId(2)).unwrap(), &[5.0, 6.0]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = HotNodeCache::new(0);
    }

    #[test]
    fn rekey_moves_entries_to_their_new_ids() {
        let mut c = HotNodeCache::new(4);
        c.insert(NodeId(1), &[1.0]);
        c.insert(NodeId(2), &[2.0]);
        // Relabel: 1 -> 10, 2 -> 20.
        c.rekey(|v| Some(NodeId(v.0 * 10)));
        assert_eq!(c.get(NodeId(10)).unwrap(), &[1.0]);
        assert_eq!(c.get(NodeId(20)).unwrap(), &[2.0]);
        assert!(c.get(NodeId(1)).is_none(), "stale key must not hit");
        assert!(c.get(NodeId(2)).is_none(), "stale key must not hit");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn rekey_invalidates_dropped_keys() {
        let mut c = HotNodeCache::new(4);
        c.insert(NodeId(1), &[1.0]);
        c.insert(NodeId(2), &[2.0]);
        c.rekey(|v| (v.0 != 2).then_some(v));
        assert!(c.get(NodeId(1)).is_some());
        assert!(c.get(NodeId(2)).is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn rekey_collision_keeps_the_most_recent_entry() {
        let mut c = HotNodeCache::new(4);
        c.insert(NodeId(1), &[1.0]);
        c.insert(NodeId(2), &[2.0]); // newer tick
        c.rekey(|_| Some(NodeId(9)));
        assert_eq!(c.get(NodeId(9)).unwrap(), &[2.0]);
        assert_eq!(c.len(), 1);
    }
}
