//! The sharded hot-set cache of the remote data plane.
//!
//! The paper's Tech-4 argument rests on the framework already doing its
//! job: "framework (i.e., AliGraph) already provides system-level caching
//! for the most frequently used nodes. Therefore ... caching temporal
//! reuse is not efficient in the hardware." This module is that
//! framework-level cache, grown from a single-`Mutex` attribute LRU into
//! the two-tier hot-set cache the cluster data plane consults inline:
//!
//! * **Tier N** ([`NeighborTier`]) caches remote **neighbor-list CSR
//!   spans**. A hit returns byte-identical span data to what the owning
//!   server would have replied, so the sampler's RNG stream — which draws
//!   only from span *lengths* — and every downstream digest are
//!   untouched. Caching structure is safe precisely because the cache
//!   stores the truth, not an approximation of it.
//! * **Tier A** ([`AttrTier`]) caches remote **attribute rows**, subsuming
//!   the old `HotNodeCache` that [`crate::backend::CachedBackend`] kept
//!   behind one global lock.
//!
//! Both tiers are a [`ShardedTier`]: segments selected by node hash, each
//! behind its own small `Mutex`, so concurrent service workers contend
//! only when they touch the same segment ("lock-light", not lock-free —
//! the segment critical sections are a map probe and a row memcpy).
//!
//! **Admission** is frequency-based in the TinyLFU mold: every segment
//! keeps a 4-bit count-min sketch; a candidate only displaces the
//! segment's LRU victim when its estimated frequency is at least the
//! victim's. One-hit wonders bounce off a warm cache instead of flushing
//! it. [`HotSetCache::warm_degree_prior`] seeds the sketch (and the
//! tiers) from vertex degree — the paper's degree-aware hot-node
//! identification — so hubs are admitted from the first request.
//!
//! **Invalidation** is epoch-stamped: every entry records the tier epoch
//! at insert, [`ShardedTier::invalidate_all`] bumps the epoch in O(1) and
//! stale entries read as misses (their slots recycle in place on the next
//! admit). [`ShardedTier::rekey`] instead *rewrites* keys through a
//! relabeling permutation so a warm cache survives a graph reorder, and
//! [`ShardedTier::clear`] releases entries in O(occupied) without
//! dropping a single slot buffer.

use lsdgnn_graph::{FnvHashMap, NodeId, PartitionId, PartitionedGraph};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

/// SplitMix64 — the shard selector and sketch hash. One multiply-xor
/// chain, good dispersion on dense node ids.
#[inline]
fn mix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A 4-bit count-min sketch (4 rows folded into one array) — the
/// TinyLFU frequency estimator behind segment admission.
///
/// Counters saturate at 15 and halve once the op count reaches a sample
/// window proportional to the segment capacity, so the estimate tracks
/// *recent* popularity rather than all of history.
#[derive(Debug)]
struct FreqSketch {
    /// 16 packed 4-bit counters per word.
    words: Vec<u64>,
    mask: u64,
    ops: u32,
    window: u32,
}

impl FreqSketch {
    fn new(capacity: usize) -> Self {
        let counters = (capacity * 8).next_power_of_two().max(64);
        FreqSketch {
            words: vec![0; counters / 16],
            mask: (counters - 1) as u64,
            ops: 0,
            // Floor the sample window so tiny segments don't age their
            // history away mid-scan: aging keeps estimates *recent*, but
            // a window smaller than one adversarial burst erases the
            // hot set's defense exactly when it is needed.
            window: ((capacity as u32) * 16).max(4096),
        }
    }

    #[inline]
    fn get(&self, pos: u64) -> u64 {
        let word = (pos >> 4) as usize;
        let shift = (pos & 15) * 4;
        (self.words[word] >> shift) & 0xf
    }

    #[inline]
    fn put(&mut self, pos: u64, val: u64) {
        let word = (pos >> 4) as usize;
        let shift = (pos & 15) * 4;
        self.words[word] = (self.words[word] & !(0xf << shift)) | (val << shift);
    }

    /// The i-th probe position for hash `h` (double hashing keeps the
    /// four probes independent without four hash functions).
    #[inline]
    fn pos(&self, h: u64, i: u64) -> u64 {
        h.wrapping_add(i.wrapping_mul(h >> 32 | 1)) & self.mask
    }

    /// Counts one access, aging the sketch when the window fills.
    fn increment(&mut self, h: u64) {
        for i in 0..4 {
            let p = self.pos(h, i);
            let c = self.get(p);
            if c < 15 {
                self.put(p, c + 1);
            }
        }
        self.ops += 1;
        if self.ops >= self.window {
            self.age();
        }
    }

    /// Estimated access count (min over the four probes).
    fn estimate(&self, h: u64) -> u64 {
        (0..4).map(|i| self.get(self.pos(h, i))).min().unwrap_or(0)
    }

    /// Raises the estimate to at least `val` — the degree-prior hook:
    /// hub nodes start warm instead of earning admission one miss at a
    /// time.
    fn raise(&mut self, h: u64, val: u64) {
        let val = val.min(15);
        for i in 0..4 {
            let p = self.pos(h, i);
            if self.get(p) < val {
                self.put(p, val);
            }
        }
    }

    /// Halves every counter — the TinyLFU reset that forgets old epochs
    /// of popularity.
    fn age(&mut self) {
        for w in &mut self.words {
            // Halve all 16 packed counters at once: shift, then mask the
            // bit that would leak in from the neighbor's low bit.
            *w = (*w >> 1) & 0x7777_7777_7777_7777;
        }
        self.ops = 0;
    }
}

/// One cached entry: the owning node, its last-use tick (global across
/// segments so rekey collisions resolve by true recency), the tier epoch
/// it was written under, and the payload (reused in place forever).
#[derive(Debug)]
struct Slot<T> {
    node: NodeId,
    tick: u64,
    epoch: u32,
    data: Vec<T>,
}

/// One lock's worth of the tier.
#[derive(Debug)]
struct Segment<T> {
    map: FnvHashMap<NodeId, u32>,
    slots: Vec<Slot<T>>,
    /// Indices of slots not currently in `map` — their buffers are
    /// reused in place by the next admit.
    free: Vec<u32>,
    sketch: FreqSketch,
    cap: usize,
}

impl<T> Segment<T> {
    /// The live slot with the oldest tick — the LRU eviction victim.
    fn victim(&self) -> Option<u32> {
        self.map
            .values()
            .copied()
            .min_by_key(|&i| self.slots[i as usize].tick)
    }
}

/// Counter block shared by a tier's segments (all relaxed atomics — the
/// counters are telemetry, not synchronization).
#[derive(Debug, Default)]
struct TierCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    admits: AtomicU64,
    evicts: AtomicU64,
    rejects: AtomicU64,
    partition_saves: AtomicU64,
    bytes: AtomicU64,
    data_allocs: AtomicU64,
}

/// A point-in-time copy of one tier's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierSnapshot {
    /// Lookups served from the tier.
    pub hits: u64,
    /// Lookups that fell through to the remote leg.
    pub misses: u64,
    /// Entries written (fresh inserts and stale-epoch rewrites).
    pub admits: u64,
    /// Entries displaced (LRU eviction, stale-epoch reclaim, rekey drops).
    pub evicts: u64,
    /// Candidates the admission sketch turned away.
    pub rejects: u64,
    /// Hits that served a node whose owning partition was unreachable —
    /// each one legally avoided a degraded reply.
    pub partition_saves: u64,
    /// Payload bytes currently resident.
    pub bytes: u64,
    /// Entries currently resident.
    pub entries: u64,
}

impl TierSnapshot {
    /// Hit rate over all lookups.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl lsdgnn_telemetry::MetricSource for TierSnapshot {
    fn collect(&self, out: &mut lsdgnn_telemetry::Scope<'_>) {
        out.counter("cache_hit", self.hits);
        out.counter("cache_miss", self.misses);
        out.counter("cache_admit", self.admits);
        out.counter("cache_evict", self.evicts);
        out.counter("cache_reject", self.rejects);
        out.counter("cache_partition_save", self.partition_saves);
        out.counter("cache_bytes", self.bytes);
        out.counter("cache_entries", self.entries);
        out.gauge("cache_hit_rate", self.hit_rate());
    }
}

/// A sharded, epoch-stamped, frequency-admitted cache of per-node
/// payload vectors — the building block behind both hot-set tiers.
#[derive(Debug)]
pub struct ShardedTier<T> {
    segments: Vec<Mutex<Segment<T>>>,
    shard_mask: usize,
    capacity: usize,
    admission: bool,
    epoch: AtomicU32,
    tick: AtomicU64,
    counters: TierCounters,
}

impl<T: Copy> ShardedTier<T> {
    /// A tier holding at most `capacity` entries across `shards`
    /// segments (rounded to a power of two and clamped so every segment
    /// holds at least one entry). `admission` gates inserts through the
    /// frequency sketch; without it the tier degrades to plain
    /// segment-LRU.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, shards: usize, admission: bool) -> Self {
        assert!(capacity > 0, "capacity must be non-zero");
        let shards = shards.clamp(1, capacity).next_power_of_two();
        let shards = if shards > capacity {
            shards / 2
        } else {
            shards
        };
        let shards = shards.max(1);
        let seg_cap = capacity.div_ceil(shards);
        let segments = (0..shards)
            .map(|_| {
                Mutex::new(Segment {
                    map: FnvHashMap::default(),
                    slots: Vec::new(),
                    free: Vec::new(),
                    sketch: FreqSketch::new(seg_cap),
                    cap: seg_cap,
                })
            })
            .collect();
        ShardedTier {
            segments,
            shard_mask: shards - 1,
            capacity,
            admission,
            epoch: AtomicU32::new(0),
            tick: AtomicU64::new(0),
            counters: TierCounters::default(),
        }
    }

    #[inline]
    fn segment(&self, v: NodeId) -> (&Mutex<Segment<T>>, u64) {
        let h = mix(v.0);
        (&self.segments[(h as usize) & self.shard_mask], h)
    }

    #[inline]
    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Maximum entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.segments
            .iter()
            .map(|s| s.lock().expect("segment lock").map.len())
            .sum()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fresh slot buffers ever allocated — the reallocation pin for
    /// [`ShardedTier::clear`]: clear + refill of the same working set
    /// must not move this counter.
    pub fn data_allocs(&self) -> u64 {
        self.counters.data_allocs.load(Ordering::Relaxed)
    }

    /// Hit rate over all lookups so far.
    pub fn hit_rate(&self) -> f64 {
        self.snapshot().hit_rate()
    }

    /// Counter snapshot.
    pub fn snapshot(&self) -> TierSnapshot {
        let c = &self.counters;
        TierSnapshot {
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            admits: c.admits.load(Ordering::Relaxed),
            evicts: c.evicts.load(Ordering::Relaxed),
            rejects: c.rejects.load(Ordering::Relaxed),
            partition_saves: c.partition_saves.load(Ordering::Relaxed),
            bytes: c.bytes.load(Ordering::Relaxed),
            entries: self.len() as u64,
        }
    }

    /// Counts one hit that served a node behind an unreachable
    /// partition — the "cache hit legally avoids a degraded reply"
    /// event the chaos plane wants quantified.
    pub fn note_partition_save(&self) {
        self.counters
            .partition_saves
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Looks `v` up; on a hit the payload is *appended* to `out` and its
    /// length returned. The spans-into-arena shape tier N needs: the
    /// caller owns where cached bytes land.
    pub fn append_to(&self, v: NodeId, out: &mut Vec<T>) -> Option<usize> {
        let epoch = self.epoch.load(Ordering::Relaxed);
        let (seg, h) = self.segment(v);
        let mut seg = seg.lock().expect("segment lock");
        seg.sketch.increment(h);
        match self.lookup(&mut seg, v, epoch) {
            Some(i) => {
                let slot = &seg.slots[i as usize];
                out.extend_from_slice(&slot.data);
                Some(slot.data.len())
            }
            None => None,
        }
    }

    /// Looks `v` up; on a hit the payload is copied into `dst` (which
    /// must be exactly the payload length) and `true` returned. The
    /// fixed-width row shape tier A needs.
    pub fn copy_to(&self, v: NodeId, dst: &mut [T]) -> bool {
        let epoch = self.epoch.load(Ordering::Relaxed);
        let (seg, h) = self.segment(v);
        let mut seg = seg.lock().expect("segment lock");
        seg.sketch.increment(h);
        match self.lookup(&mut seg, v, epoch) {
            Some(i) => {
                let slot = &seg.slots[i as usize];
                debug_assert_eq!(slot.data.len(), dst.len(), "row width mismatch");
                dst.copy_from_slice(&slot.data);
                true
            }
            None => false,
        }
    }

    /// The locked lookup core: refresh + hit count on a live entry,
    /// lazy reclaim + miss count on a stale-epoch one.
    fn lookup(&self, seg: &mut Segment<T>, v: NodeId, epoch: u32) -> Option<u32> {
        match seg.map.get(&v).copied() {
            Some(i) if seg.slots[i as usize].epoch == epoch => {
                seg.slots[i as usize].tick = self.next_tick();
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(i)
            }
            Some(i) => {
                // Invalidated by an epoch bump: reclaim the slot (buffer
                // stays in place for the next admit) and miss.
                seg.map.remove(&v);
                seg.free.push(i);
                self.release_bytes(&seg.slots[i as usize]);
                self.counters.evicts.fetch_add(1, Ordering::Relaxed);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn release_bytes(&self, slot: &Slot<T>) {
        self.counters.bytes.fetch_sub(
            std::mem::size_of_val(slot.data.as_slice()) as u64,
            Ordering::Relaxed,
        );
    }

    fn claim_bytes(&self, data: &[T]) {
        self.counters
            .bytes
            .fetch_add(std::mem::size_of_val(data) as u64, Ordering::Relaxed);
    }

    /// Writes `data` into slot `i` (reusing its buffer), rebinding it to
    /// `v` in the map.
    fn write_slot(
        &self,
        seg: &mut Segment<T>,
        i: u32,
        v: NodeId,
        tick: u64,
        epoch: u32,
        data: &[T],
    ) {
        let slot = &mut seg.slots[i as usize];
        slot.node = v;
        slot.tick = tick;
        slot.epoch = epoch;
        slot.data.clear();
        slot.data.extend_from_slice(data);
        seg.map.insert(v, i);
        self.claim_bytes(data);
    }

    /// Offers `(v, data)` for caching after a remote fetch. Present
    /// entries are refreshed; fresh entries fill free capacity; a full
    /// segment evicts its LRU victim only if the sketch says the
    /// candidate is at least as popular (ties admit, so a cold sketch
    /// behaves like plain LRU).
    pub fn admit(&self, v: NodeId, data: &[T]) {
        let epoch = self.epoch.load(Ordering::Relaxed);
        let (seg, h) = self.segment(v);
        let mut seg = seg.lock().expect("segment lock");
        seg.sketch.increment(h);
        let tick = self.next_tick();
        if let Some(&i) = seg.map.get(&v) {
            let slot = &mut seg.slots[i as usize];
            if slot.epoch == epoch {
                slot.tick = tick;
                return; // cached graph data is immutable: touch, don't copy
            }
            // Stale epoch: rewrite in place under the current epoch.
            self.release_bytes(&seg.slots[i as usize]);
            self.counters.evicts.fetch_add(1, Ordering::Relaxed);
            seg.map.remove(&v);
            self.write_slot(&mut seg, i, v, tick, epoch, data);
            self.counters.admits.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if let Some(i) = seg.free.pop() {
            self.write_slot(&mut seg, i, v, tick, epoch, data);
            self.counters.admits.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if seg.slots.len() < seg.cap {
            let i = seg.slots.len() as u32;
            seg.slots.push(Slot {
                node: v,
                tick,
                epoch,
                data: data.to_vec(),
            });
            seg.map.insert(v, i);
            self.claim_bytes(data);
            self.counters.data_allocs.fetch_add(1, Ordering::Relaxed);
            self.counters.admits.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let Some(vi) = seg.victim() else { return };
        if self.admission {
            let victim = &seg.slots[vi as usize];
            // A stale-epoch victim is free real estate; a live one
            // defends its slot with its own frequency estimate. Strictly
            // greater wins: ties keep the incumbent, which is what makes
            // a warm cache scan-resistant (a one-hit wonder's estimate
            // can tie a decayed resident's, but never beat it).
            let defense = if victim.epoch == epoch {
                seg.sketch.estimate(mix(victim.node.0))
            } else {
                0
            };
            if seg.sketch.estimate(h) <= defense {
                self.counters.rejects.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let victim_node = seg.slots[vi as usize].node;
        seg.map.remove(&victim_node);
        self.release_bytes(&seg.slots[vi as usize]);
        self.counters.evicts.fetch_add(1, Ordering::Relaxed);
        self.write_slot(&mut seg, vi, v, tick, epoch, data);
        self.counters.admits.fetch_add(1, Ordering::Relaxed);
    }

    /// Warmup insert: caches `(v, data)` only while the segment has free
    /// capacity — no eviction, so earlier (higher-priority) warm entries
    /// are never displaced by later ones. Returns whether it stuck.
    pub fn insert_warm(&self, v: NodeId, data: &[T]) -> bool {
        let epoch = self.epoch.load(Ordering::Relaxed);
        let (seg, _) = self.segment(v);
        let mut seg = seg.lock().expect("segment lock");
        if seg.map.contains_key(&v) {
            return true;
        }
        let tick = self.next_tick();
        if let Some(i) = seg.free.pop() {
            self.write_slot(&mut seg, i, v, tick, epoch, data);
        } else if seg.slots.len() < seg.cap {
            let i = seg.slots.len() as u32;
            seg.slots.push(Slot {
                node: v,
                tick,
                epoch,
                data: data.to_vec(),
            });
            seg.map.insert(v, i);
            self.claim_bytes(data);
            self.counters.data_allocs.fetch_add(1, Ordering::Relaxed);
        } else {
            return false;
        }
        self.counters.admits.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Raises `v`'s sketch estimate to at least `level` without caching
    /// anything — the degree-prior half of warmup.
    pub fn raise_prior(&self, v: NodeId, level: u64) {
        let (seg, h) = self.segment(v);
        seg.lock().expect("segment lock").sketch.raise(h, level);
    }

    /// O(1) invalidation: bumps the tier epoch, turning every resident
    /// entry into a miss. Slots are reclaimed lazily as lookups and
    /// admits touch them — nothing is freed here.
    pub fn invalidate_all(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Eager O(occupied) release: every live entry's slot moves to the
    /// free list with its payload buffer intact, so a clear-and-refill
    /// cycle reallocates nothing (pinned by [`ShardedTier::data_allocs`]).
    pub fn clear(&self) {
        for seg in &self.segments {
            let mut seg = seg.lock().expect("segment lock");
            let mut live: Vec<u32> = seg.map.values().copied().collect();
            for &i in &live {
                self.release_bytes(&seg.slots[i as usize]);
                self.counters.evicts.fetch_add(1, Ordering::Relaxed);
            }
            seg.free.append(&mut live);
            seg.map.clear();
        }
    }

    /// Rewrites every cached key through `map` — the hook that keeps a
    /// warm cache honest across a graph relabeling. Entries whose key
    /// maps to `None` are invalidated; when two old keys collide on one
    /// new id, the more recently used entry wins (ticks are global, so
    /// recency compares across segments). Hit/miss counters are
    /// preserved: a rekey is a layout change, not a workload change.
    pub fn rekey(&self, mut map: impl FnMut(NodeId) -> Option<NodeId>) {
        let epoch = self.epoch.load(Ordering::Relaxed);
        // Drain every live entry (payload buffers move out; the empty
        // slot shells stay behind as free capacity)...
        let mut moved: Vec<(NodeId, u64, Vec<T>)> = Vec::new();
        for segm in &self.segments {
            let mut seg = segm.lock().expect("segment lock");
            let mut live: Vec<u32> = seg.map.values().copied().collect();
            for &i in &live {
                let slot = &mut seg.slots[i as usize];
                self.counters.bytes.fetch_sub(
                    (slot.data.len() * std::mem::size_of::<T>()) as u64,
                    Ordering::Relaxed,
                );
                if slot.epoch == epoch {
                    if let Some(new) = map(slot.node) {
                        moved.push((new, slot.tick, std::mem::take(&mut slot.data)));
                        continue;
                    }
                }
                self.counters.evicts.fetch_add(1, Ordering::Relaxed);
            }
            seg.free.append(&mut live);
            seg.map.clear();
        }
        // ...then re-home each one under its new key. Most-recent wins
        // on collision or a full segment.
        for (v, tick, data) in moved {
            self.reinsert(v, tick, epoch, &data);
        }
    }

    fn reinsert(&self, v: NodeId, tick: u64, epoch: u32, data: &[T]) {
        let (seg, _) = self.segment(v);
        let mut seg = seg.lock().expect("segment lock");
        if let Some(&i) = seg.map.get(&v) {
            if seg.slots[i as usize].tick >= tick {
                self.counters.evicts.fetch_add(1, Ordering::Relaxed);
                return; // resident entry is more recent
            }
            self.release_bytes(&seg.slots[i as usize]);
            seg.map.remove(&v);
            self.write_slot(&mut seg, i, v, tick, epoch, data);
            self.counters.evicts.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if let Some(i) = seg.free.pop() {
            self.write_slot(&mut seg, i, v, tick, epoch, data);
            return;
        }
        if seg.slots.len() < seg.cap {
            let i = seg.slots.len() as u32;
            seg.slots.push(Slot {
                node: v,
                tick,
                epoch,
                data: data.to_vec(),
            });
            seg.map.insert(v, i);
            self.claim_bytes(data);
            self.counters.data_allocs.fetch_add(1, Ordering::Relaxed);
            return;
        }
        match seg.victim() {
            Some(vi) if seg.slots[vi as usize].tick < tick => {
                let victim_node = seg.slots[vi as usize].node;
                seg.map.remove(&victim_node);
                self.release_bytes(&seg.slots[vi as usize]);
                self.counters.evicts.fetch_add(1, Ordering::Relaxed);
                self.write_slot(&mut seg, vi, v, tick, epoch, data);
            }
            _ => {
                self.counters.evicts.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Tier N: remote neighbor-list spans, keyed by node.
pub type NeighborTier = ShardedTier<NodeId>;
/// Tier A: remote attribute rows, keyed by node.
pub type AttrTier = ShardedTier<f32>;

/// Sizing and policy of a [`HotSetCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Tier-N capacity in neighbor lists; `0` disables the tier.
    pub neigh_capacity: usize,
    /// Tier-A capacity in attribute rows; `0` disables the tier.
    pub attr_capacity: usize,
    /// Segments per tier (rounded to a power of two, clamped to the
    /// tier capacity).
    pub shards: usize,
    /// Whether the TinyLFU admission sketch gates inserts.
    pub admission: bool,
    /// Degree-prior warmup: boost (and preload) the top-K-degree nodes
    /// at spawn. `0` starts cold.
    pub warm_top_degree: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            neigh_capacity: 4096,
            attr_capacity: 4096,
            shards: 16,
            admission: true,
            warm_top_degree: 0,
        }
    }
}

impl CacheConfig {
    /// A config with both tiers sized to `capacity` each.
    pub fn with_capacity(capacity: usize) -> Self {
        CacheConfig {
            neigh_capacity: capacity,
            attr_capacity: capacity,
            ..Default::default()
        }
    }

    /// Disables tier N, keeping only attribute rows (the attr-only
    /// bench arm).
    pub fn attr_only(mut self) -> Self {
        self.neigh_capacity = 0;
        self
    }
}

/// The two-tier hot-set cache the cluster data plane consults inline.
#[derive(Debug)]
pub struct HotSetCache {
    neigh: Option<NeighborTier>,
    attr: Option<AttrTier>,
}

/// Per-tier counter snapshots, `None` for a disabled tier. Registers
/// into telemetry as `neigh/cache_*` and `attr/cache_*`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheSnapshot {
    /// Tier-N (neighbor span) counters.
    pub neigh: Option<TierSnapshot>,
    /// Tier-A (attribute row) counters.
    pub attr: Option<TierSnapshot>,
}

impl lsdgnn_telemetry::MetricSource for CacheSnapshot {
    fn collect(&self, out: &mut lsdgnn_telemetry::Scope<'_>) {
        if let Some(n) = &self.neigh {
            n.collect(&mut out.nested("neigh"));
        }
        if let Some(a) = &self.attr {
            a.collect(&mut out.nested("attr"));
        }
    }
}

impl HotSetCache {
    /// Builds the cache; a tier with zero capacity is disabled.
    pub fn new(config: CacheConfig) -> Self {
        let neigh = (config.neigh_capacity > 0)
            .then(|| ShardedTier::new(config.neigh_capacity, config.shards, config.admission));
        let attr = (config.attr_capacity > 0)
            .then(|| ShardedTier::new(config.attr_capacity, config.shards, config.admission));
        HotSetCache { neigh, attr }
    }

    /// The neighbor-span tier, if enabled.
    pub fn neigh(&self) -> Option<&NeighborTier> {
        self.neigh.as_ref()
    }

    /// The attribute-row tier, if enabled.
    pub fn attr(&self) -> Option<&AttrTier> {
        self.attr.as_ref()
    }

    /// Per-tier counter snapshots.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            neigh: self.neigh.as_ref().map(|t| t.snapshot()),
            attr: self.attr.as_ref().map(|t| t.snapshot()),
        }
    }

    /// O(occupied) eager release of both tiers (buffers retained).
    pub fn clear(&self) {
        if let Some(t) = &self.neigh {
            t.clear();
        }
        if let Some(t) = &self.attr {
            t.clear();
        }
    }

    /// O(1) epoch-bump invalidation of both tiers.
    pub fn invalidate_all(&self) {
        if let Some(t) = &self.neigh {
            t.invalidate_all();
        }
        if let Some(t) = &self.attr {
            t.invalidate_all();
        }
    }

    /// Rewrites both tiers' keys through a relabeling map — call with
    /// the reorder permutation's old→new mapping so a warm cache keeps
    /// serving *correct* rows after [`PartitionedGraph::reorder`].
    pub fn rekey(&self, mut map: impl FnMut(NodeId) -> Option<NodeId>) {
        if let Some(t) = &self.neigh {
            t.rekey(&mut map);
        }
        if let Some(t) = &self.attr {
            t.rekey(&mut map);
        }
    }

    /// Degree-prior warmup (the paper's degree-aware hot-node
    /// identification): raises the admission-sketch estimate of the
    /// top-`k`-degree nodes proportionally to `log2(degree)`, and
    /// preloads the *remote-owned* ones (owner ≠ `local`) into both
    /// tiers — highest degree first, stopping at tier capacity. Preload
    /// reads the shared graph directly: warmup costs zero channel
    /// round trips and the preloaded bytes are the same truth a server
    /// reply would carry.
    pub fn warm_degree_prior(&self, pg: &PartitionedGraph, local: PartitionId, k: usize) {
        let g = pg.graph();
        let store = pg.attributes();
        let mut neigh_full = false;
        let mut attr_full = false;
        for v in g.top_degree_nodes(k) {
            let level = u64::from(64 - g.degree(v).leading_zeros());
            if let Some(t) = &self.neigh {
                t.raise_prior(v, level);
            }
            if let Some(t) = &self.attr {
                t.raise_prior(v, level);
            }
            if pg.owner(v) == local {
                continue; // local reads never touch the cache
            }
            if let (Some(t), false) = (&self.neigh, neigh_full) {
                neigh_full = !t.insert_warm(v, g.neighbors(v));
            }
            if let (Some(t), Some(s), false) = (&self.attr, store, attr_full) {
                attr_full = !t.insert_warm(v, s.get(v));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdgnn_graph::{generators, AttributeStore};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn attrs(v: NodeId) -> Vec<f32> {
        vec![v.0 as f32; 4]
    }

    /// A single-segment LRU tier without admission: the old
    /// `HotNodeCache` behavior, as a baseline for the semantics tests.
    fn lru(capacity: usize) -> AttrTier {
        ShardedTier::new(capacity, 1, false)
    }

    fn get(c: &AttrTier, v: NodeId) -> Option<Vec<f32>> {
        let mut out = Vec::new();
        c.append_to(v, &mut out).map(|_| out)
    }

    #[test]
    fn lru_evicts_oldest() {
        let c = lru(2);
        c.admit(NodeId(1), &attrs(NodeId(1)));
        c.admit(NodeId(2), &attrs(NodeId(2)));
        assert!(get(&c, NodeId(1)).is_some()); // refresh 1
        c.admit(NodeId(3), &attrs(NodeId(3))); // evicts 2
        assert!(get(&c, NodeId(2)).is_none());
        assert!(get(&c, NodeId(1)).is_some());
        assert!(get(&c, NodeId(3)).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn uniform_batch_sampling_sees_no_reuse() {
        // The paper's Tech-4 premise: 512-node batches against a huge id
        // space — a realistic cache can't help.
        let id_space = 10_000_000u64;
        let c: AttrTier = ShardedTier::new(10_000, 16, true);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..20 {
            for _ in 0..512 {
                let v = NodeId(rng.gen_range(0..id_space));
                if get(&c, v).is_none() {
                    c.admit(v, &attrs(v));
                }
            }
        }
        assert!(
            c.hit_rate() < 0.01,
            "uniform sampling hit rate {} should be ~0",
            c.hit_rate()
        );
    }

    #[test]
    fn skewed_hub_access_caches_well() {
        // The flip side: AliGraph's "most frequently used nodes" cache —
        // an 80/20 hub access pattern hits hard.
        let c: AttrTier = ShardedTier::new(1_000, 16, true);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..20_000 {
            let v = if rng.gen_bool(0.8) {
                NodeId(rng.gen_range(0..500)) // hot set fits the cache
            } else {
                NodeId(rng.gen_range(0..10_000_000))
            };
            if get(&c, v).is_none() {
                c.admit(v, &attrs(v));
            }
        }
        assert!(
            c.hit_rate() > 0.6,
            "hub-skewed hit rate {} should be high",
            c.hit_rate()
        );
    }

    #[test]
    fn admission_sketch_protects_hot_entries_from_scan_churn() {
        // Fill a tiny tier with hot entries, touch them repeatedly, then
        // stream one-hit wonders through. With TinyLFU admission the hot
        // set survives; plain LRU would have been flushed.
        let hot: Vec<NodeId> = (0..8).map(NodeId).collect();
        let c: AttrTier = ShardedTier::new(8, 1, true);
        for &v in &hot {
            c.admit(v, &attrs(v));
        }
        for _ in 0..20 {
            for &v in &hot {
                assert!(get(&c, v).is_some());
            }
        }
        for i in 1000..1200 {
            let v = NodeId(i);
            assert!(get(&c, v).is_none());
            c.admit(v, &attrs(v));
        }
        let survivors = hot.iter().filter(|&&v| get(&c, v).is_some()).count();
        assert!(
            survivors >= 7,
            "scan resistance: {survivors}/8 hot entries survived"
        );
        assert!(c.snapshot().rejects > 0, "the sketch must have rejected");
    }

    #[test]
    fn cached_values_are_the_inserted_ones() {
        let c = lru(4);
        c.admit(NodeId(7), &[1.0, 2.0]);
        assert_eq!(get(&c, NodeId(7)).unwrap(), vec![1.0, 2.0]);
        // The fixed-width copy path answers the same bytes.
        let mut row = [0.0f32; 2];
        assert!(c.copy_to(NodeId(7), &mut row));
        assert_eq!(row, [1.0, 2.0]);
    }

    #[test]
    fn reinsert_overwrites_and_supports_shorter_vectors() {
        // Slot reuse must not leak stale tail values when an entry is
        // rewritten with a shorter payload.
        let c = lru(1);
        c.admit(NodeId(1), &[1.0, 2.0, 3.0, 4.0]);
        c.admit(NodeId(2), &[9.0]); // evicts 1, reuses its slot
        assert_eq!(get(&c, NodeId(2)).unwrap(), vec![9.0]);
        assert!(get(&c, NodeId(1)).is_none());
        assert_eq!(c.len(), 1);
        assert_eq!(c.snapshot().bytes, 4, "one f32 resident");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _: AttrTier = ShardedTier::new(0, 4, true);
    }

    #[test]
    fn rekey_moves_entries_to_their_new_ids() {
        let c = lru(4);
        c.admit(NodeId(1), &[1.0]);
        c.admit(NodeId(2), &[2.0]);
        // Relabel: 1 -> 10, 2 -> 20.
        c.rekey(|v| Some(NodeId(v.0 * 10)));
        assert_eq!(get(&c, NodeId(10)).unwrap(), vec![1.0]);
        assert_eq!(get(&c, NodeId(20)).unwrap(), vec![2.0]);
        assert!(get(&c, NodeId(1)).is_none(), "stale key must not hit");
        assert!(get(&c, NodeId(2)).is_none(), "stale key must not hit");
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn rekey_invalidates_dropped_keys() {
        let c = lru(4);
        c.admit(NodeId(1), &[1.0]);
        c.admit(NodeId(2), &[2.0]);
        c.rekey(|v| (v.0 != 2).then_some(v));
        assert!(get(&c, NodeId(1)).is_some());
        assert!(get(&c, NodeId(2)).is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn rekey_collision_keeps_the_most_recent_entry() {
        // Many shards: ticks are tier-global, so recency comparison
        // works even when colliding keys lived in different segments.
        let c: AttrTier = ShardedTier::new(64, 8, false);
        c.admit(NodeId(1), &[1.0]);
        c.admit(NodeId(2), &[2.0]); // newer tick
        c.rekey(|_| Some(NodeId(9)));
        assert_eq!(get(&c, NodeId(9)).unwrap(), vec![2.0]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_is_in_place_and_refill_reallocates_nothing() {
        let c: AttrTier = ShardedTier::new(32, 4, false);
        for i in 0..32 {
            c.admit(NodeId(i), &attrs(NodeId(i)));
        }
        // Hashing spreads the 32 ids unevenly over the 4 segments, so an
        // overfull segment evicts — resident count is whatever survived.
        let resident = c.len();
        assert!(resident >= 16, "most of the fill survives");
        let allocs = c.data_allocs();
        assert!(allocs > 0);
        assert_eq!(c.snapshot().bytes, resident as u64 * 4 * 4);
        c.clear();
        assert_eq!(c.len(), 0);
        assert_eq!(c.snapshot().bytes, 0, "clear releases all bytes");
        assert!(get(&c, NodeId(3)).is_none(), "cleared entries miss");
        for i in 0..32 {
            c.admit(NodeId(i), &attrs(NodeId(i)));
        }
        assert_eq!(
            c.data_allocs(),
            allocs,
            "refill after clear must reuse every slot buffer"
        );
        assert_eq!(c.len(), resident, "same fill pattern, same residency");
    }

    #[test]
    fn epoch_bump_invalidates_in_o1_and_slots_recycle() {
        let c: AttrTier = ShardedTier::new(8, 2, false);
        for i in 0..8 {
            c.admit(NodeId(i), &attrs(NodeId(i)));
        }
        let allocs = c.data_allocs();
        c.invalidate_all();
        assert!(get(&c, NodeId(0)).is_none(), "stale epoch reads as miss");
        // Readmitting reuses the lazily-reclaimed slot.
        c.admit(NodeId(0), &[5.0]);
        assert_eq!(get(&c, NodeId(0)).unwrap(), vec![5.0]);
        assert_eq!(c.data_allocs(), allocs, "stale slot reused in place");
    }

    #[test]
    fn snapshot_registers_as_metric_source() {
        let cache = HotSetCache::new(CacheConfig::with_capacity(16));
        cache
            .neigh()
            .unwrap()
            .admit(NodeId(1), &[NodeId(2), NodeId(3)]);
        let mut out = Vec::new();
        assert!(cache
            .neigh()
            .unwrap()
            .append_to(NodeId(1), &mut out)
            .is_some());
        cache.attr().unwrap().admit(NodeId(1), &[0.5]);
        let mut reg = lsdgnn_telemetry::Registry::new();
        reg.register("cache", &[], Box::new(cache.snapshot()));
        let snap = reg.snapshot();
        assert_eq!(snap.get("cache/neigh/cache_hit").unwrap().as_f64(), 1.0);
        assert_eq!(snap.get("cache/neigh/cache_admit").unwrap().as_f64(), 1.0);
        assert_eq!(snap.get("cache/attr/cache_admit").unwrap().as_f64(), 1.0);
        assert_eq!(
            snap.get("cache/neigh/cache_bytes").unwrap().as_f64(),
            2.0 * std::mem::size_of::<NodeId>() as f64
        );
        assert!(snap.get("cache/attr/cache_hit_rate").is_some());
    }

    #[test]
    fn disabled_tiers_stay_none() {
        let cache = HotSetCache::new(CacheConfig {
            neigh_capacity: 0,
            attr_capacity: 8,
            ..Default::default()
        });
        assert!(cache.neigh().is_none());
        assert!(cache.attr().is_some());
        let snap = cache.snapshot();
        assert!(snap.neigh.is_none());
        assert!(snap.attr.is_some());
    }

    #[test]
    fn degree_prior_warmup_preloads_remote_hubs_only() {
        let g = generators::power_law(500, 8, 7);
        let store = AttributeStore::synthetic(500, 4, 7);
        let pg = lsdgnn_graph::PartitionedGraph::new(g, 2).with_attributes(store.clone());
        let cache = HotSetCache::new(CacheConfig::with_capacity(64));
        cache.warm_degree_prior(&pg, PartitionId(0), 32);
        let top = pg.graph().top_degree_nodes(32);
        let mut remote_seen = 0;
        for v in top {
            let mut out = Vec::new();
            let hit = cache.neigh().unwrap().append_to(v, &mut out).is_some();
            if pg.owner(v) == PartitionId(0) {
                assert!(!hit, "local node {v:?} must not be preloaded");
            } else if hit {
                remote_seen += 1;
                assert_eq!(out, pg.graph().neighbors(v), "span bytes are the truth");
                let mut row = vec![0.0; 4];
                assert!(cache.attr().unwrap().copy_to(v, &mut row));
                assert_eq!(row, store.get(v), "row bytes are the truth");
            }
        }
        assert!(remote_seen > 0, "some top-degree nodes are remote");
    }

    #[test]
    fn partition_saves_are_counted() {
        let c = lru(4);
        c.admit(NodeId(1), &[1.0]);
        assert!(get(&c, NodeId(1)).is_some());
        c.note_partition_save();
        assert_eq!(c.snapshot().partition_saves, 1);
    }

    #[test]
    fn sketch_ages_without_corrupting_neighbors() {
        let mut s = FreqSketch::new(4);
        let h = mix(42);
        for _ in 0..9 {
            s.increment(h);
        }
        assert!(s.estimate(h) >= 4, "pre-age estimate");
        s.age();
        let e = s.estimate(h);
        assert!(e >= 2 && e <= 7, "aging halves, got {e}");
        s.raise(h, 15);
        assert_eq!(s.estimate(h), 15);
    }
}
