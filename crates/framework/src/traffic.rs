//! Seeded open-loop traffic generation: the offered load the paper's
//! hyperscale setting implies but never models.
//!
//! Closed-loop drivers (submit, wait, submit) hide overload by
//! construction — the client slows down exactly when the service does,
//! so queues never grow. Real FaaS traffic is *open-loop*: millions of
//! independent clients submit on their own schedule, and a service that
//! falls behind eats an unbounded backlog. This module generates such a
//! schedule deterministically:
//!
//! * a **diurnal envelope** — a sinusoidal day/night modulation of the
//!   mean rate (the slow timescale provisioning follows), times
//! * **self-similar bursts** — a b-model multiplicative cascade
//!   (repeatedly splitting each interval's mass `b : 1−b` with a seeded
//!   coin) whose burstiness is scale-free: zooming into any sub-range
//!   shows the same spiky structure, matching measured datacenter
//!   arrivals far better than Poisson, times
//! * a **per-tenant mix** — each tenant has a weight, a priority class,
//!   a FaaS archetype name, and a request shape (roots/hops/fanout) with
//!   a relative deadline.
//!
//! Everything is a pure function of `(seed, config)` via [`ChaosRng`]'s
//! counter-based draws: the same trace replays byte-identically on any
//! thread count, which is what lets `bench traffic` gate on digests.

use crate::admission::Priority;
use crate::backend::SampleRequest;
use lsdgnn_chaos::ChaosRng;
use lsdgnn_graph::NodeId;

/// Local draw streams (namespaced away from the chaos plan's).
mod stream {
    /// Cascade coin flips (entity = level, index = node).
    pub const CASCADE: u64 = 0x7001;
    /// Fractional-count rounding per bucket.
    pub const COUNT: u64 = 0x7002;
    /// Arrival offset within a bucket.
    pub const OFFSET: u64 = 0x7003;
    /// Tenant pick per arrival.
    pub const TENANT: u64 = 0x7004;
    /// Root-node derivation per request.
    pub const ROOTS: u64 = 0x7005;
}

/// One tenant's contract with the traffic model.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name (also its metrics label).
    pub name: String,
    /// FaaS archetype serving this tenant (one of the 8 DSE points,
    /// e.g. `"mem-opt.tc"`); the autoscaler routes by this.
    pub archetype: String,
    /// Priority class of the tenant's traffic.
    pub class: Priority,
    /// Share of total arrivals (normalized over all tenants).
    pub weight: f64,
    /// Relative deadline of each request, µs.
    pub deadline_us: u64,
    /// Request shape: root count.
    pub roots: usize,
    /// Request shape: sampling hops.
    pub hops: u32,
    /// Request shape: per-hop fanout.
    pub fanout: usize,
}

/// Traffic model parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Replay identity: same seed + config → same trace.
    pub seed: u64,
    /// Trace length, µs of virtual time.
    pub duration_us: u64,
    /// Mean arrival rate over the whole trace.
    pub mean_rps: f64,
    /// Diurnal modulation depth in [0, 1): 0 = flat, 0.5 = mean ±50%.
    pub diurnal_depth: f64,
    /// Diurnal cycles across the trace (1.0 = one "day").
    pub diurnal_cycles: f64,
    /// b-model bias in [0.5, 1): 0.5 = smooth (uniform split), 0.9 =
    /// heavily bursty. The larger share of each split goes to a
    /// seeded-coin-chosen half, recursively.
    pub burstiness: f64,
    /// Cascade depth: the trace divides into `2^depth` buckets.
    pub cascade_depth: u32,
    /// The tenant mix.
    pub tenants: Vec<TenantSpec>,
}

/// One scheduled request arrival.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Virtual arrival time, µs from trace start.
    pub at_us: u64,
    /// Index into [`TrafficConfig::tenants`].
    pub tenant: u32,
    /// The tenant's priority class (denormalized for hot-path use).
    pub class: Priority,
    /// Relative deadline, µs.
    pub deadline_us: u64,
    /// Per-request sampling seed (also derives the root set).
    pub seed: u64,
    /// Request shape: root count.
    pub roots: usize,
    /// Request shape: sampling hops.
    pub hops: u32,
    /// Request shape: per-hop fanout.
    pub fanout: usize,
}

impl Arrival {
    /// Materializes the sampling request against a concrete graph: the
    /// roots are a pure function of the arrival seed, folded into the
    /// node range.
    pub fn request(&self, rng: &ChaosRng, graph_nodes: u64) -> SampleRequest {
        let roots = (0..self.roots)
            .map(|i| {
                NodeId(
                    (rng.uniform(stream::ROOTS, self.seed, i as u64) * graph_nodes as f64) as u64
                        % graph_nodes.max(1),
                )
            })
            .collect();
        SampleRequest {
            roots,
            hops: self.hops,
            fanout: self.fanout,
            seed: self.seed,
        }
    }

    /// Worst-case node expansions this request asks for (roots × Σ
    /// fanoutʰ): the work unit the autoscaler's fluid model and the
    /// perf-model capacity share.
    pub fn work_samples(&self) -> f64 {
        let mut per_root = 0.0;
        let mut layer = 1.0;
        for _ in 0..self.hops {
            layer *= self.fanout as f64;
            per_root += layer;
        }
        self.roots as f64 * per_root
    }
}

/// A fully materialized arrival schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficTrace {
    /// Arrivals sorted by time (ties keep generation order).
    pub arrivals: Vec<Arrival>,
    /// Trace length, µs.
    pub duration_us: u64,
    /// The generating seed.
    pub seed: u64,
}

impl TrafficTrace {
    /// Generates the schedule: cascade weights × diurnal envelope give
    /// each bucket an expected count; counts round stochastically; each
    /// arrival gets a uniform offset, a weighted tenant pick, and a
    /// derived per-request seed.
    ///
    /// # Panics
    ///
    /// Panics on an empty tenant mix, zero duration, or a burstiness
    /// outside [0.5, 1).
    pub fn generate(cfg: &TrafficConfig) -> Self {
        assert!(!cfg.tenants.is_empty(), "traffic needs at least one tenant");
        assert!(cfg.duration_us > 0, "trace duration must be non-zero");
        assert!(
            (0.5..1.0).contains(&cfg.burstiness),
            "burstiness must be in [0.5, 1)"
        );
        let rng = ChaosRng::new(cfg.seed);
        let buckets = 1usize << cfg.cascade_depth.min(20);

        // b-model cascade: split each interval's probability mass b:1-b,
        // the coin deciding which half gets the larger share.
        let mut weights = vec![1.0f64];
        for level in 0..cfg.cascade_depth.min(20) {
            let mut next = Vec::with_capacity(weights.len() * 2);
            for (i, w) in weights.iter().enumerate() {
                let heads = rng.uniform(stream::CASCADE, level as u64, i as u64) < 0.5;
                let (a, b) = if heads {
                    (cfg.burstiness, 1.0 - cfg.burstiness)
                } else {
                    (1.0 - cfg.burstiness, cfg.burstiness)
                };
                next.push(w * a);
                next.push(w * b);
            }
            weights = next;
        }

        // Diurnal envelope, renormalized so mean_rps stays the mean.
        let two_pi = std::f64::consts::TAU;
        let envelope: Vec<f64> = (0..buckets)
            .map(|i| {
                let phase = (i as f64 + 0.5) / buckets as f64;
                1.0 + cfg.diurnal_depth * (two_pi * cfg.diurnal_cycles * phase).sin()
            })
            .collect();
        let mut mass: Vec<f64> = weights.iter().zip(&envelope).map(|(w, e)| w * e).collect();
        let total_mass: f64 = mass.iter().sum();
        let target = cfg.mean_rps * cfg.duration_us as f64 / 1e6;
        for m in &mut mass {
            *m *= target / total_mass;
        }

        // Cumulative tenant weights for the per-arrival pick.
        let tenant_total: f64 = cfg.tenants.iter().map(|t| t.weight).sum();
        assert!(tenant_total > 0.0, "tenant weights must sum positive");
        let cum: Vec<f64> = cfg
            .tenants
            .iter()
            .scan(0.0, |acc, t| {
                *acc += t.weight / tenant_total;
                Some(*acc)
            })
            .collect();

        let bucket_us = cfg.duration_us as f64 / buckets as f64;
        let mut arrivals = Vec::with_capacity(target as usize + buckets);
        let mut global_idx = 0u64;
        for (i, expected) in mass.iter().enumerate() {
            let frac = expected.fract();
            let mut count = expected.floor() as u64;
            if rng.uniform(stream::COUNT, i as u64, 0) < frac {
                count += 1;
            }
            let start_us = i as f64 * bucket_us;
            let mut bucket_arrivals: Vec<Arrival> = (0..count)
                .map(|k| {
                    let at_us =
                        (start_us + rng.uniform(stream::OFFSET, i as u64, k) * bucket_us) as u64;
                    let pick = rng.uniform(stream::TENANT, i as u64, k);
                    let tenant = cum.iter().position(|&c| pick < c).unwrap_or(cum.len() - 1);
                    let spec = &cfg.tenants[tenant];
                    let seed = lsdgnn_chaos::plan::fnv1a(
                        &[
                            cfg.seed.to_le_bytes(),
                            global_idx.wrapping_add(k).to_le_bytes(),
                        ]
                        .concat(),
                    );
                    Arrival {
                        at_us: at_us.min(cfg.duration_us.saturating_sub(1)),
                        tenant: tenant as u32,
                        class: spec.class,
                        deadline_us: spec.deadline_us,
                        seed,
                        roots: spec.roots,
                        hops: spec.hops,
                        fanout: spec.fanout,
                    }
                })
                .collect();
            global_idx += count;
            bucket_arrivals.sort_by_key(|a| a.at_us);
            arrivals.extend(bucket_arrivals);
        }
        TrafficTrace {
            arrivals,
            duration_us: cfg.duration_us,
            seed: cfg.seed,
        }
    }

    /// Arrival count.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// True when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Mean arrival rate realized by the trace.
    pub fn mean_rps(&self) -> f64 {
        self.arrivals.len() as f64 / (self.duration_us as f64 / 1e6)
    }

    /// Peak arrival rate over any aligned window of `window_us` — the
    /// burst factor is `peak_rps / mean_rps`.
    pub fn peak_rps(&self, window_us: u64) -> f64 {
        assert!(window_us > 0, "window must be non-zero");
        let windows = self.duration_us.div_ceil(window_us) as usize;
        let mut counts = vec![0u64; windows.max(1)];
        for a in &self.arrivals {
            counts[(a.at_us / window_us) as usize] += 1;
        }
        let peak = counts.iter().copied().max().unwrap_or(0);
        peak as f64 / (window_us as f64 / 1e6)
    }

    /// Total work (node expansions) the trace asks for.
    pub fn total_work(&self) -> f64 {
        self.arrivals.iter().map(Arrival::work_samples).sum()
    }

    /// FNV-1a fingerprint of the full schedule — the replay identity
    /// `bench traffic` gates on.
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.arrivals.len() * 34 + 16);
        bytes.extend_from_slice(&self.seed.to_le_bytes());
        bytes.extend_from_slice(&self.duration_us.to_le_bytes());
        for a in &self.arrivals {
            bytes.extend_from_slice(&a.at_us.to_le_bytes());
            bytes.extend_from_slice(&u64::from(a.tenant).to_le_bytes());
            bytes.extend_from_slice(&a.seed.to_le_bytes());
            bytes.extend_from_slice(&(a.class.index() as u16).to_le_bytes());
        }
        lsdgnn_chaos::plan::fnv1a(&bytes)
    }
}

/// Replays the trace open-loop against wall time, compressed by
/// `time_scale` (50.0 = the trace plays 50× faster than its virtual
/// timestamps). `submit` must not block on the *reply* — an open-loop
/// client fires and moves on; blocking admission (a full inner queue)
/// is precisely the backpressure under measurement and is allowed.
pub fn replay_open_loop<F: FnMut(&Arrival)>(trace: &TrafficTrace, time_scale: f64, mut submit: F) {
    assert!(time_scale > 0.0, "time scale must be positive");
    let start = std::time::Instant::now();
    for a in &trace.arrivals {
        let target_us = a.at_us as f64 / time_scale;
        let elapsed_us = start.elapsed().as_secs_f64() * 1e6;
        if target_us > elapsed_us {
            std::thread::sleep(std::time::Duration::from_micros(
                (target_us - elapsed_us) as u64,
            ));
        }
        submit(a);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> Vec<TenantSpec> {
        vec![
            TenantSpec {
                name: "recsys".into(),
                archetype: "mem-opt.tc".into(),
                class: Priority::Interactive,
                weight: 2.0,
                deadline_us: 20_000,
                roots: 4,
                hops: 2,
                fanout: 4,
            },
            TenantSpec {
                name: "refresh".into(),
                archetype: "base.tc".into(),
                class: Priority::Batch,
                weight: 1.0,
                deadline_us: 200_000,
                roots: 8,
                hops: 2,
                fanout: 8,
            },
            TenantSpec {
                name: "crawler".into(),
                archetype: "cost-opt.decp".into(),
                class: Priority::BestEffort,
                weight: 1.0,
                deadline_us: 500_000,
                roots: 4,
                hops: 1,
                fanout: 4,
            },
        ]
    }

    fn config(seed: u64, burstiness: f64) -> TrafficConfig {
        TrafficConfig {
            seed,
            duration_us: 2_000_000,
            mean_rps: 500.0,
            diurnal_depth: 0.4,
            diurnal_cycles: 1.0,
            burstiness,
            cascade_depth: 8,
            tenants: mix(),
        }
    }

    #[test]
    fn trace_is_deterministic_and_seed_sensitive() {
        let a = TrafficTrace::generate(&config(7, 0.75));
        let b = TrafficTrace::generate(&config(7, 0.75));
        assert_eq!(a, b, "same seed+config → same trace");
        assert_eq!(a.digest(), b.digest());
        let c = TrafficTrace::generate(&config(8, 0.75));
        assert_ne!(a.digest(), c.digest(), "seed is the identity");
    }

    #[test]
    fn mean_rate_tracks_the_config() {
        let t = TrafficTrace::generate(&config(7, 0.75));
        let mean = t.mean_rps();
        assert!(
            (mean - 500.0).abs() / 500.0 < 0.1,
            "realized mean {mean} rps should track the configured 500"
        );
        // Bucket order + within-bucket sort → globally time-sorted.
        assert!(t.arrivals.windows(2).all(|w| w[0].at_us <= w[1].at_us));
    }

    #[test]
    fn burstiness_raises_the_peak_to_mean_ratio() {
        let smooth = TrafficTrace::generate(&config(7, 0.5));
        let bursty = TrafficTrace::generate(&config(7, 0.85));
        let window = 50_000; // 50ms
        let smooth_ratio = smooth.peak_rps(window) / smooth.mean_rps();
        let bursty_ratio = bursty.peak_rps(window) / bursty.mean_rps();
        assert!(
            bursty_ratio > smooth_ratio * 1.5,
            "b=0.85 peak/mean {bursty_ratio:.2} must dwarf b=0.5's {smooth_ratio:.2}"
        );
        assert!(bursty_ratio > 3.0, "bursty trace peaks ≥3× mean");
    }

    #[test]
    fn tenant_mix_respects_weights_and_classes() {
        let t = TrafficTrace::generate(&config(7, 0.7));
        let mut per_tenant = [0u64; 3];
        for a in &t.arrivals {
            per_tenant[a.tenant as usize] += 1;
            assert_eq!(a.class, mix()[a.tenant as usize].class);
            assert_eq!(a.deadline_us, mix()[a.tenant as usize].deadline_us);
        }
        let total = t.len() as f64;
        assert!(
            (per_tenant[0] as f64 / total - 0.5).abs() < 0.1,
            "weight 2/4"
        );
        assert!(
            (per_tenant[1] as f64 / total - 0.25).abs() < 0.1,
            "weight 1/4"
        );
    }

    #[test]
    fn requests_materialize_deterministically_in_range() {
        let t = TrafficTrace::generate(&config(7, 0.7));
        let rng = ChaosRng::new(t.seed);
        let a = &t.arrivals[0];
        let r1 = a.request(&rng, 600);
        let r2 = a.request(&rng, 600);
        assert_eq!(r1, r2);
        assert_eq!(r1.roots.len(), a.roots);
        assert!(r1.roots.iter().all(|n| n.0 < 600));
        assert!(a.work_samples() > 0.0);
    }

    #[test]
    fn open_loop_replay_preserves_order_and_count() {
        let mut cfg = config(7, 0.7);
        cfg.duration_us = 100_000;
        cfg.mean_rps = 300.0;
        let t = TrafficTrace::generate(&cfg);
        let mut seen = Vec::new();
        // 100ms of virtual time at 100x ≈ 1ms of wall time.
        replay_open_loop(&t, 100.0, |a| seen.push(a.at_us));
        assert_eq!(seen.len(), t.len());
        assert!(seen.windows(2).all(|w| w[0] <= w[1]));
    }
}
