//! Serving-stack observability wiring: one [`Observability`] handle
//! bundles the per-request [`RequestLedger`] with the SLO monitors the
//! serving layers evaluate inline.
//!
//! The handle is opt-in and `Option`-shaped everywhere it is threaded
//! (mirroring the existing `Option<Tracer>` idiom): a service started
//! without one takes exactly the code path it always had, and deep
//! layers (cluster data plane, chaos decorator, retry ladder) only pay
//! a thread-local `scope_active()` read when disabled — which is what
//! keeps the instrumented-but-disabled digest identical.
//!
//! Layering of completion triggers: [`SamplingService`] observes its
//! submit→reply latency against the *sampling* SLO and, when it is the
//! outermost layer, runs the ledger's finish triggers (flight dumps).
//! [`InferenceService::start`] calls [`Observability::defer_sample_finish`]
//! so a wrapped sampling stage only contributes events and the pipeline's
//! end-to-end completion is the single finish authority — otherwise every
//! degraded sample would dump twice.
//!
//! [`SamplingService`]: crate::service::SamplingService
//! [`InferenceService::start`]: crate::inference::InferenceService::start

use lsdgnn_telemetry::ledger::LedgerConfig;
use lsdgnn_telemetry::{RequestLedger, SloMonitor};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Policy knobs of an [`Observability`] handle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsConfig {
    /// Ledger sizing and flight-recorder trigger policy.
    pub ledger: LedgerConfig,
    /// Sampling-stage SLO: target p99 of submit→sample-reply, µs.
    pub sampling_target_p99_us: f64,
    /// End-to-end SLO: target p99 of submit→embedding, µs.
    pub e2e_target_p99_us: f64,
    /// Allowed violation fraction (0.01 = a p99 objective).
    pub slo_budget: f64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            ledger: LedgerConfig::default(),
            sampling_target_p99_us: 50_000.0,
            e2e_target_p99_us: 100_000.0,
            slo_budget: 0.01,
        }
    }
}

/// The cloneable observability bundle threaded through the serving
/// stack: ledger + SLO monitors + the finish-authority switch.
#[derive(Debug, Clone)]
pub struct Observability {
    ledger: RequestLedger,
    sampling_slo: Arc<Mutex<SloMonitor>>,
    e2e_slo: Arc<Mutex<SloMonitor>>,
    /// Whether sampling-level completion runs the ledger's finish
    /// triggers; the inference pipeline clears this and takes over.
    sample_finish: Arc<AtomicBool>,
}

impl Default for Observability {
    fn default() -> Self {
        Observability::new(ObsConfig::default())
    }
}

impl Observability {
    /// Builds the bundle from policy knobs.
    pub fn new(cfg: ObsConfig) -> Self {
        Observability {
            ledger: RequestLedger::new(cfg.ledger),
            sampling_slo: Arc::new(Mutex::new(SloMonitor::new(
                cfg.sampling_target_p99_us,
                cfg.slo_budget,
            ))),
            e2e_slo: Arc::new(Mutex::new(SloMonitor::new(
                cfg.e2e_target_p99_us,
                cfg.slo_budget,
            ))),
            sample_finish: Arc::new(AtomicBool::new(true)),
        }
    }

    /// The shared request ledger.
    pub fn ledger(&self) -> &RequestLedger {
        &self.ledger
    }

    /// Marks an outer pipeline layer as the finish authority: sampling
    /// completions keep feeding events and the sampling SLO, but stop
    /// running the ledger's flight-dump/deadline triggers.
    pub fn defer_sample_finish(&self) {
        self.sample_finish.store(false, Ordering::Relaxed);
    }

    /// Whether sampling-level completion still owns the finish triggers.
    pub fn sample_finish_enabled(&self) -> bool {
        self.sample_finish.load(Ordering::Relaxed)
    }

    /// Accounts one sampling completion against the sampling SLO.
    pub fn observe_sampling(&self, latency_us: f64, degraded: bool) {
        self.sampling_slo
            .lock()
            .expect("sampling slo lock")
            .observe(latency_us, degraded);
    }

    /// Accounts one end-to-end completion against the e2e SLO.
    pub fn observe_e2e(&self, latency_us: f64, degraded: bool) {
        self.e2e_slo
            .lock()
            .expect("e2e slo lock")
            .observe(latency_us, degraded);
    }

    /// The sampling SLO's current burn rate (violation rate / budget)
    /// without cloning the monitor — the admission controller's brownout
    /// feed, read on every shaped submission.
    pub fn sampling_burn_rate(&self) -> f64 {
        self.sampling_slo
            .lock()
            .expect("sampling slo lock")
            .burn_rate()
    }

    /// A snapshot of the sampling-stage SLO monitor.
    pub fn sampling_slo(&self) -> SloMonitor {
        self.sampling_slo.lock().expect("sampling slo lock").clone()
    }

    /// A snapshot of the end-to-end SLO monitor.
    pub fn e2e_slo(&self) -> SloMonitor {
        self.e2e_slo.lock().expect("e2e slo lock").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{CpuBackend, SampleRequest};
    use crate::hot_cache::CacheConfig;
    use crate::service::{SamplingService, ServiceConfig};
    use lsdgnn_graph::{generators, AttributeStore, NodeId, PartitionedGraph};
    use lsdgnn_telemetry::ledger::Stage;

    /// A warm cache on an observed service must leave `cache_hit`
    /// events in the ledger — the blame table can tell cache-served
    /// time apart from the remote leg.
    #[test]
    fn cache_hits_reach_the_ledger() {
        let g = generators::power_law(300, 6, 9);
        let a = AttributeStore::synthetic(300, 4, 9);
        let pg = PartitionedGraph::new(g, 3).with_attributes(a);
        let backend = CpuBackend::from_partitioned_cached(pg, CacheConfig::with_capacity(2048));
        let obs = Observability::new(ObsConfig::default());
        let svc = SamplingService::start_observed(
            Box::new(backend),
            ServiceConfig::default(),
            None,
            None,
            Some(obs.clone()),
        );
        // Two rounds over the same roots: round 0 warms, round 1 hits.
        for round in 0..2u64 {
            for s in 0..6u64 {
                let block = svc
                    .submit(SampleRequest {
                        roots: (0..4).map(|i| NodeId((s * 13 + i) % 40)).collect(),
                        hops: 2,
                        fanout: 4,
                        seed: s ^ (round << 8),
                    })
                    .wait_block();
                svc.backend().recycle(block);
            }
        }
        let snap = obs.ledger().snapshot();
        assert!(
            snap.events.iter().any(|e| e.stage == Stage::CacheHit),
            "warm rounds must record cache_hit ledger events"
        );
        svc.shutdown();
    }

    #[test]
    fn defaults_and_finish_authority_toggle() {
        let obs = Observability::default();
        assert!(obs.sample_finish_enabled());
        obs.defer_sample_finish();
        assert!(!obs.sample_finish_enabled());
        // Clones share the switch and the monitors.
        let clone = obs.clone();
        assert!(!clone.sample_finish_enabled());
        clone.observe_sampling(10.0, false);
        clone.observe_e2e(200_000.0, true);
        assert_eq!(obs.sampling_slo().total(), 1);
        let e2e = obs.e2e_slo();
        assert_eq!(e2e.total(), 1);
        assert_eq!(e2e.violations(), 1, "200ms > 100ms target");
        assert!(e2e.budget_exhausted());
    }
}
