//! The distributed graph service: server threads own partitions, workers
//! traverse and sample through channels.

use crossbeam::channel::{bounded, Receiver, Sender};
use lsdgnn_graph::{NodeId, PartitionId, PartitionedGraph};
use lsdgnn_sampler::{NeighborSampler, SampleBatch, StreamingSampler};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Requests a server shard handles.
enum Request {
    /// Neighbor lists for a batch of nodes this server owns.
    Neighbors {
        nodes: Vec<NodeId>,
        reply: Sender<Vec<Vec<NodeId>>>,
    },
    /// Attribute gather for owned nodes.
    Attrs {
        nodes: Vec<NodeId>,
        reply: Sender<Vec<f32>>,
    },
    Shutdown,
}

/// Per-server request-queue depth. Bounded so a storm of workers blocks
/// at the send (backpressure) instead of growing server queues without
/// limit — the serving-layer discipline the §2.4 heavy-traffic scenario
/// requires end to end.
const SERVER_QUEUE_DEPTH: usize = 64;

/// Local/remote request accounting of one operation (feeds the
/// Figure 2(b)/(c) characterization).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestStats {
    /// Batched requests answered by the worker's co-located server.
    pub local_requests: u64,
    /// Batched requests that crossed the (simulated) network.
    pub remote_requests: u64,
    /// Individual nodes whose neighbors were fetched.
    pub nodes_expanded: u64,
    /// Individual attribute vectors gathered.
    pub attrs_fetched: u64,
    /// Nodes whose owning partition was down or excluded: their neighbor
    /// lists came back empty (attributes zeroed). Non-zero marks the
    /// operation's result as *degraded* — structurally valid but missing
    /// the unreachable shard's contribution.
    pub unreachable_nodes: u64,
}

impl RequestStats {
    /// Fraction of batched requests that were remote.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.local_requests + self.remote_requests;
        if total == 0 {
            0.0
        } else {
            self.remote_requests as f64 / total as f64
        }
    }

    /// Folds another operation's accounting into this one (used by
    /// backends accumulating per-request stats into a running total).
    pub fn merge(&mut self, other: RequestStats) {
        self.local_requests += other.local_requests;
        self.remote_requests += other.remote_requests;
        self.nodes_expanded += other.nodes_expanded;
        self.attrs_fetched += other.attrs_fetched;
        self.unreachable_nodes += other.unreachable_nodes;
    }

    /// True when any node's owner was unreachable during the operation.
    pub fn any_unreachable(&self) -> bool {
        self.unreachable_nodes > 0
    }
}

impl lsdgnn_telemetry::MetricSource for RequestStats {
    fn collect(&self, out: &mut lsdgnn_telemetry::Scope<'_>) {
        out.counter("local_requests", self.local_requests);
        out.counter("remote_requests", self.remote_requests);
        out.counter("nodes_expanded", self.nodes_expanded);
        out.counter("attrs_fetched", self.attrs_fetched);
        out.counter("unreachable_nodes", self.unreachable_nodes);
        out.gauge("remote_fraction", self.remote_fraction());
    }
}

/// A running cluster: one server thread per partition, the caller acting
/// as the worker co-located with partition 0.
pub struct Cluster {
    graph: Arc<PartitionedGraph>,
    senders: Vec<Sender<Request>>,
    handles: Vec<JoinHandle<()>>,
    worker_partition: PartitionId,
    /// Partitions whose server has crashed (or been failed by chaos
    /// injection). Requests routed to a down partition are answered with
    /// empty neighbor lists / zeroed attributes and counted as
    /// [`RequestStats::unreachable_nodes`] instead of blocking forever.
    down: Vec<AtomicBool>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("partitions", &self.senders.len())
            .field("worker_partition", &self.worker_partition)
            .finish()
    }
}

fn serve(graph: Arc<PartitionedGraph>, p: PartitionId, rx: Receiver<Request>) {
    while let Ok(req) = rx.recv() {
        match req {
            Request::Neighbors { nodes, reply } => {
                let lists = nodes
                    .iter()
                    .map(|&v| {
                        debug_assert!(graph.is_local(v, p), "misrouted request");
                        graph.graph().neighbors(v).to_vec()
                    })
                    .collect();
                let _ = reply.send(lists);
            }
            Request::Attrs { nodes, reply } => {
                let attrs = graph
                    .attributes()
                    .expect("cluster requires attributes")
                    .gather(&nodes);
                let _ = reply.send(attrs);
            }
            Request::Shutdown => break,
        }
    }
}

impl Cluster {
    /// Spawns one server thread per partition of `graph`.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no attribute store attached.
    pub fn spawn(graph: PartitionedGraph) -> Self {
        assert!(
            graph.attributes().is_some(),
            "cluster requires an attribute store"
        );
        let graph = Arc::new(graph);
        let mut senders = Vec::new();
        let mut handles = Vec::new();
        for p in 0..graph.partitions() {
            let (tx, rx) = bounded(SERVER_QUEUE_DEPTH);
            let g = graph.clone();
            handles.push(std::thread::spawn(move || serve(g, PartitionId(p), rx)));
            senders.push(tx);
        }
        let down = (0..senders.len()).map(|_| AtomicBool::new(false)).collect();
        Cluster {
            graph,
            senders,
            handles,
            worker_partition: PartitionId(0),
            down,
        }
    }

    /// Number of server partitions.
    pub fn partitions(&self) -> u32 {
        self.senders.len() as u32
    }

    /// Crashes partition `p`'s server: its thread stops and every future
    /// request routed to it is answered degraded (empty/zeroed) instead
    /// of blocking. Returns `true` if the partition was alive. Failing is
    /// permanent for the cluster's lifetime — the graceful-degradation
    /// machinery above (service retries, partial replies) is what turns a
    /// crash into bounded quality loss rather than an outage.
    pub fn fail_partition(&self, p: PartitionId) -> bool {
        let i = p.0 as usize;
        if i >= self.down.len() {
            return false;
        }
        let was_up = !self.down[i].swap(true, Ordering::AcqRel);
        if was_up {
            // Best-effort: the serve loop exits on Shutdown; a racing
            // in-flight request still gets its reply first because the
            // channel is FIFO.
            let _ = self.senders[i].send(Request::Shutdown);
        }
        was_up
    }

    /// Whether partition `p` is down (crashed or chaos-failed).
    pub fn partition_down(&self, p: PartitionId) -> bool {
        self.down
            .get(p.0 as usize)
            .is_some_and(|d| d.load(Ordering::Acquire))
    }

    /// Partitions still serving.
    pub fn alive_partitions(&self) -> u32 {
        self.down
            .iter()
            .filter(|d| !d.load(Ordering::Acquire))
            .count() as u32
    }

    fn unreachable(&self, p: usize, excluded: &[u32]) -> bool {
        excluded.contains(&(p as u32)) || self.down[p].load(Ordering::Acquire)
    }

    /// The partitioned graph being served.
    pub fn graph(&self) -> &PartitionedGraph {
        &self.graph
    }

    /// Runs a full multi-hop sampling operation (worker-side traversal,
    /// server-side storage) and returns the batch plus request stats.
    pub fn sample_batch(
        &self,
        roots: &[NodeId],
        hops: u32,
        fanout: usize,
        seed: u64,
    ) -> (SampleBatch, RequestStats) {
        self.sample_batch_excluding(roots, hops, fanout, seed, &[])
    }

    /// Like [`Cluster::sample_batch`], but additionally treats the
    /// `excluded` partitions as unreachable *for this operation only* —
    /// the per-request shard mask the chaos layer uses to model a card
    /// crash deterministically. Frontier nodes owned by an excluded (or
    /// genuinely down) partition expand to nothing; the result is a
    /// structurally valid partial sample with
    /// [`RequestStats::unreachable_nodes`] quantifying what was missed.
    pub fn sample_batch_excluding(
        &self,
        roots: &[NodeId],
        hops: u32,
        fanout: usize,
        seed: u64,
        excluded: &[u32],
    ) -> (SampleBatch, RequestStats) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut stats = RequestStats::default();
        let mut frontier = roots.to_vec();
        let mut hop_results = Vec::with_capacity(hops as usize);
        for _ in 0..hops {
            let (lists, s) = self.fetch_neighbors_masked(&frontier, excluded);
            stats.merge(s);
            let mut next = Vec::with_capacity(frontier.len() * fanout);
            for list in lists {
                next.extend(StreamingSampler.sample(&mut rng, &list, fanout));
            }
            hop_results.push(next.clone());
            frontier = next;
        }
        let batch = SampleBatch {
            roots: roots.to_vec(),
            hops: hop_results,
        };
        // Attribute fetch for roots + samples.
        let fetch = batch.attr_fetch_list();
        let (_, s) = self.fetch_attrs_masked(&fetch, excluded);
        stats.merge(s);
        (batch, stats)
    }

    /// Gathers attributes for arbitrary nodes (order preserved),
    /// deduplicating repeated nodes before hitting the servers — the
    /// request-fusion optimization AliGraph applies (a 2-hop batch
    /// re-samples popular nodes constantly).
    pub fn fetch_attrs_deduped(&self, nodes: &[NodeId]) -> (Vec<f32>, RequestStats) {
        use std::collections::HashMap;
        let attr_len = self
            .graph
            .attributes()
            .expect("cluster requires attributes")
            .attr_len();
        // Unique nodes in first-appearance order.
        let mut index: HashMap<NodeId, usize> = HashMap::new();
        let mut unique: Vec<NodeId> = Vec::new();
        for &v in nodes {
            index.entry(v).or_insert_with(|| {
                unique.push(v);
                unique.len() - 1
            });
        }
        let (fetched, stats) = self.fetch_attrs(&unique);
        let mut out = vec![0.0f32; nodes.len() * attr_len];
        for (i, v) in nodes.iter().enumerate() {
            let u = index[v];
            out[i * attr_len..(i + 1) * attr_len]
                .copy_from_slice(&fetched[u * attr_len..(u + 1) * attr_len]);
        }
        (out, stats)
    }

    /// Gathers attributes for arbitrary nodes (order preserved).
    pub fn fetch_attrs(&self, nodes: &[NodeId]) -> (Vec<f32>, RequestStats) {
        self.fetch_attrs_masked(nodes, &[])
    }

    /// [`Cluster::fetch_attrs`] with a per-operation shard exclusion
    /// mask; unreachable nodes' rows stay zeroed and are counted.
    pub fn fetch_attrs_masked(
        &self,
        nodes: &[NodeId],
        excluded: &[u32],
    ) -> (Vec<f32>, RequestStats) {
        let attr_len = self
            .graph
            .attributes()
            .expect("cluster requires attributes")
            .attr_len();
        let mut stats = RequestStats {
            attrs_fetched: nodes.len() as u64,
            ..Default::default()
        };
        let parts = self.senders.len();
        let mut groups: Vec<(Vec<NodeId>, Vec<usize>)> = vec![(Vec::new(), Vec::new()); parts];
        for (i, &v) in nodes.iter().enumerate() {
            let p = self.graph.owner(v).0 as usize;
            groups[p].0.push(v);
            groups[p].1.push(i);
        }
        let mut out = vec![0.0f32; nodes.len() * attr_len];
        for (p, (group, pos)) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            if self.unreachable(p, excluded) {
                stats.unreachable_nodes += group.len() as u64;
                continue; // rows stay zeroed: a degraded partial gather
            }
            let (reply_tx, reply_rx) = bounded(1);
            let sent = self.senders[p].send(Request::Attrs {
                nodes: group,
                reply: reply_tx,
            });
            let attrs = match sent.ok().and_then(|()| reply_rx.recv().ok()) {
                Some(attrs) => attrs,
                None => {
                    // The server died between the down-check and the
                    // send/recv: same degraded answer, no panic.
                    stats.unreachable_nodes += pos.len() as u64;
                    continue;
                }
            };
            if PartitionId(p as u32) == self.worker_partition {
                stats.local_requests += 1;
            } else {
                stats.remote_requests += 1;
            }
            for (j, &orig) in pos.iter().enumerate() {
                out[orig * attr_len..(orig + 1) * attr_len]
                    .copy_from_slice(&attrs[j * attr_len..(j + 1) * attr_len]);
            }
        }
        (out, stats)
    }

    /// Like `fetch_neighbors`, with per-group reply channels so responses
    /// are matched to their request groups.
    pub fn fetch_neighbors_indexed(&self, nodes: &[NodeId]) -> (Vec<Vec<NodeId>>, RequestStats) {
        self.fetch_neighbors_masked(nodes, &[])
    }

    /// [`Cluster::fetch_neighbors_indexed`] with a per-operation shard
    /// exclusion mask; unreachable nodes get empty lists and are counted.
    pub fn fetch_neighbors_masked(
        &self,
        nodes: &[NodeId],
        excluded: &[u32],
    ) -> (Vec<Vec<NodeId>>, RequestStats) {
        let mut stats = RequestStats {
            nodes_expanded: nodes.len() as u64,
            ..Default::default()
        };
        let parts = self.senders.len();
        let mut groups: Vec<(Vec<NodeId>, Vec<usize>)> = vec![(Vec::new(), Vec::new()); parts];
        for (i, &v) in nodes.iter().enumerate() {
            let p = self.graph.owner(v).0 as usize;
            groups[p].0.push(v);
            groups[p].1.push(i);
        }
        let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); nodes.len()];
        for (p, (group, pos)) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            if self.unreachable(p, excluded) {
                stats.unreachable_nodes += group.len() as u64;
                continue; // lists stay empty: the frontier loses this shard
            }
            let (reply_tx, reply_rx) = bounded(1);
            let sent = self.senders[p].send(Request::Neighbors {
                nodes: group,
                reply: reply_tx,
            });
            let lists = match sent.ok().and_then(|()| reply_rx.recv().ok()) {
                Some(lists) => lists,
                None => {
                    stats.unreachable_nodes += pos.len() as u64;
                    continue;
                }
            };
            if PartitionId(p as u32) == self.worker_partition {
                stats.local_requests += 1;
            } else {
                stats.remote_requests += 1;
            }
            for (list, &orig) in lists.into_iter().zip(&pos) {
                out[orig] = list;
            }
        }
        (out, stats)
    }

    /// Stops all server threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Request::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // Dropping without an explicit shutdown still stops the server
        // threads (C-DTOR: destructors never fail, teardown is lossless
        // here since requests are synchronous).
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdgnn_graph::{generators, AttributeStore};

    fn cluster(partitions: u32) -> Cluster {
        let g = generators::power_law(800, 8, 60);
        let attrs = AttributeStore::synthetic(800, 8, 60);
        Cluster::spawn(PartitionedGraph::new(g, partitions).with_attributes(attrs))
    }

    #[test]
    fn neighbors_match_source_graph() {
        let c = cluster(4);
        let nodes: Vec<NodeId> = (0..50).map(NodeId).collect();
        let (lists, stats) = c.fetch_neighbors_indexed(&nodes);
        for (i, list) in lists.iter().enumerate() {
            assert_eq!(list.as_slice(), c.graph().graph().neighbors(nodes[i]));
        }
        assert_eq!(stats.nodes_expanded, 50);
        assert!(stats.remote_requests > 0);
        c.shutdown();
    }

    #[test]
    fn attrs_match_source_store_in_order() {
        let c = cluster(3);
        let nodes = vec![NodeId(700), NodeId(3), NodeId(250)];
        let (attrs, stats) = c.fetch_attrs(&nodes);
        let expect = c.graph().attributes().unwrap().gather(&nodes);
        assert_eq!(attrs, expect);
        assert_eq!(stats.attrs_fetched, 3);
        c.shutdown();
    }

    #[test]
    fn sample_batch_produces_real_edges() {
        let c = cluster(4);
        let roots: Vec<NodeId> = (0..8).map(NodeId).collect();
        let (batch, stats) = c.sample_batch(&roots, 2, 5, 9);
        assert_eq!(batch.hops.len(), 2);
        assert!(batch.total_sampled() > 0);
        for v in &batch.hops[0] {
            assert!(roots.iter().any(|&r| c.graph().graph().has_edge(r, *v)));
        }
        assert!(stats.attrs_fetched > 0);
        c.shutdown();
    }

    #[test]
    fn single_partition_cluster_is_all_local() {
        let c = cluster(1);
        let roots: Vec<NodeId> = (0..4).map(NodeId).collect();
        let (_, stats) = c.sample_batch(&roots, 2, 5, 10);
        assert_eq!(stats.remote_requests, 0);
        assert_eq!(stats.remote_fraction(), 0.0);
        c.shutdown();
    }

    #[test]
    fn remote_fraction_grows_with_partitions() {
        let c2 = cluster(2);
        let c8 = cluster(8);
        let roots: Vec<NodeId> = (0..16).map(NodeId).collect();
        let (_, s2) = c2.sample_batch(&roots, 2, 5, 11);
        let (_, s8) = c8.sample_batch(&roots, 2, 5, 11);
        assert!(s8.remote_fraction() > s2.remote_fraction());
        c2.shutdown();
        c8.shutdown();
    }

    #[test]
    fn deduped_fetch_matches_plain_fetch_with_fewer_requests() {
        let c = cluster(4);
        // A fetch list with heavy repetition (hub re-sampling).
        let nodes: Vec<NodeId> = (0..200).map(|i| NodeId(i % 10)).collect();
        let (plain, s_plain) = c.fetch_attrs(&nodes);
        let (deduped, s_dedup) = c.fetch_attrs_deduped(&nodes);
        assert_eq!(plain, deduped);
        assert!(
            s_dedup.attrs_fetched < s_plain.attrs_fetched / 10,
            "dedup fetched {} vs plain {}",
            s_dedup.attrs_fetched,
            s_plain.attrs_fetched
        );
        c.shutdown();
    }

    #[test]
    fn deterministic_given_seed() {
        let c = cluster(4);
        let roots: Vec<NodeId> = (0..8).map(NodeId).collect();
        let (b1, _) = c.sample_batch(&roots, 2, 5, 42);
        let (b2, _) = c.sample_batch(&roots, 2, 5, 42);
        assert_eq!(b1, b2);
        c.shutdown();
    }

    #[test]
    fn failed_partition_degrades_instead_of_hanging() {
        let c = cluster(4);
        assert!(c.fail_partition(PartitionId(1)));
        assert!(!c.fail_partition(PartitionId(1)), "second fail is a no-op");
        assert_eq!(c.alive_partitions(), 3);
        assert!(c.partition_down(PartitionId(1)));
        let nodes: Vec<NodeId> = (0..100).map(NodeId).collect();
        let (lists, stats) = c.fetch_neighbors_indexed(&nodes);
        assert!(stats.unreachable_nodes > 0, "partition 1 owns some nodes");
        assert!(stats.any_unreachable());
        for (i, list) in lists.iter().enumerate() {
            if c.graph().owner(nodes[i]) == PartitionId(1) {
                assert!(list.is_empty(), "down shard answers empty");
            } else {
                assert_eq!(list.as_slice(), c.graph().graph().neighbors(nodes[i]));
            }
        }
        c.shutdown();
    }

    #[test]
    fn excluded_shards_mask_only_the_one_operation() {
        let c = cluster(4);
        let roots: Vec<NodeId> = (0..16).map(NodeId).collect();
        let (full, s_full) = c.sample_batch(&roots, 2, 5, 7);
        let (partial, s_part) = c.sample_batch_excluding(&roots, 2, 5, 7, &[2]);
        assert_eq!(s_full.unreachable_nodes, 0);
        assert!(s_part.unreachable_nodes > 0);
        assert!(partial.total_sampled() <= full.total_sampled());
        // The mask is per-operation: the next unmasked call is exact again.
        let (again, s_again) = c.sample_batch(&roots, 2, 5, 7);
        assert_eq!(again, full);
        assert_eq!(s_again.unreachable_nodes, 0);
        c.shutdown();
    }

    #[test]
    fn masked_sampling_is_deterministic() {
        let c = cluster(4);
        let roots: Vec<NodeId> = (0..8).map(NodeId).collect();
        let (b1, s1) = c.sample_batch_excluding(&roots, 2, 5, 42, &[1, 3]);
        let (b2, s2) = c.sample_batch_excluding(&roots, 2, 5, 42, &[1, 3]);
        assert_eq!(b1, b2);
        assert_eq!(s1.unreachable_nodes, s2.unreachable_nodes);
        c.shutdown();
    }

    #[test]
    fn all_partitions_down_still_answers() {
        let c = cluster(2);
        c.fail_partition(PartitionId(0));
        c.fail_partition(PartitionId(1));
        assert_eq!(c.alive_partitions(), 0);
        let roots: Vec<NodeId> = (0..4).map(NodeId).collect();
        let (batch, stats) = c.sample_batch(&roots, 2, 5, 1);
        assert_eq!(batch.total_sampled(), 0, "nothing reachable");
        assert!(stats.unreachable_nodes >= 4);
        c.shutdown();
    }
}
