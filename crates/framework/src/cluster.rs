//! The distributed graph service: server threads own partitions, workers
//! traverse and sample through channels.
//!
//! # The flat-buffer data plane
//!
//! The hot serving path ([`Cluster::sample_block`]) is built around three
//! ideas, mirroring how the paper's AxE moves data:
//!
//! * **Flat buffers** — servers answer neighbor requests with one
//!   `offsets` array plus one flat `nodes` array (CSR shape), and the
//!   sampled result is a [`SampleBlock`] in the same shape. No
//!   `Vec<Vec<_>>` per batch, no per-node allocations.
//! * **Request coalescing** — each hop's frontier is deduplicated before
//!   shard dispatch (the software analogue of the AxE's 8 KB coalescing
//!   cache): a hub node appearing 40 times in a frontier is fetched once.
//!   Sampling still runs per frontier *entry* with the per-request RNG,
//!   so results are byte-identical to the uncoalesced path.
//! * **Zero-copy local reads** — frontier nodes owned by the worker's
//!   co-located partition never cross a channel: their neighbor lists are
//!   [`Span::Csr`] ranges borrowed straight from the shared CSR target
//!   array.
//!
//! All transient buffers (frontier scratch, server replies, attribute
//! gathers, the result blocks) recycle through the cluster's shared
//! [`BufferPool`]. The nested-`Vec` path ([`Cluster::sample_batch`])
//! remains as the legacy arm; the `dataplane` differential tests pin both
//! paths to identical samples.

use crate::backend::SampleRequest;
use crate::hot_cache::{CacheConfig, CacheSnapshot, HotSetCache};
use crate::pool::BufferPool;
use crossbeam::channel::{bounded, Receiver, Sender};
use lsdgnn_graph::mem::prefetch_read;
use lsdgnn_graph::{NodeId, NodeMap, PartitionId, PartitionedGraph};
use lsdgnn_memfabric::LinkModel;
use lsdgnn_mof::{
    pack_read_requests, BdiStreamSizer, CRC_BYTES, HEADER_BYTES, MAX_REQUESTS_PER_PACKAGE,
};
use lsdgnn_sampler::{NeighborSampler, SampleBatch, SampleBlock, StreamingSampler};
use lsdgnn_telemetry::ledger::{self, Stage};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// A server's answer to a neighbor request: CSR-shaped (one boundary per
/// requested node into one flat array), plus the request buffer handed
/// back for recycling.
struct NeighborsReply {
    /// `nodes.len() + 1` boundaries starting at 0.
    offsets: Vec<u32>,
    /// All neighbor lists, concatenated in request order.
    flat: Vec<NodeId>,
    /// The request's node buffer, returned for the pool.
    request: Vec<NodeId>,
}

/// A server's answer to an attribute gather, with the request buffer
/// handed back for recycling.
struct AttrsReply {
    attrs: Vec<f32>,
    request: Vec<NodeId>,
}

/// Requests a server shard handles.
enum Request {
    /// Neighbor lists for a batch of nodes this server owns, answered
    /// as one flat buffer.
    Neighbors {
        nodes: Vec<NodeId>,
        reply: Sender<NeighborsReply>,
    },
    /// The pre-flat-buffer wire format: one allocated `Vec<NodeId>` per
    /// requested node. Kept verbatim for the legacy shim so the
    /// `bench dataplane` before/after comparison measures the data plane
    /// this PR replaced, not a retrofitted hybrid.
    NeighborsNested {
        nodes: Vec<NodeId>,
        reply: Sender<Vec<Vec<NodeId>>>,
    },
    /// Attribute gather for owned nodes.
    Attrs {
        nodes: Vec<NodeId>,
        reply: Sender<AttrsReply>,
    },
    Shutdown,
}

/// Per-server request-queue depth. Bounded so a storm of workers blocks
/// at the send (backpressure) instead of growing server queues without
/// limit — the serving-layer discipline the §2.4 heavy-traffic scenario
/// requires end to end.
const SERVER_QUEUE_DEPTH: usize = 64;

/// Local/remote request accounting of one operation (feeds the
/// Figure 2(b)/(c) characterization).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestStats {
    /// Batched requests answered by the worker's co-located server.
    pub local_requests: u64,
    /// Batched requests that crossed the (simulated) network.
    pub remote_requests: u64,
    /// Individual nodes whose neighbors were fetched.
    pub nodes_expanded: u64,
    /// Individual attribute vectors gathered.
    pub attrs_fetched: u64,
    /// Nodes whose owning partition was down or excluded: their neighbor
    /// lists came back empty (attributes zeroed). Non-zero marks the
    /// operation's result as *degraded* — structurally valid but missing
    /// the unreachable shard's contribution.
    pub unreachable_nodes: u64,
    /// Frontier neighbor-list lookups on the coalescing path.
    pub coalesce_lookups: u64,
    /// Lookups answered by the per-batch coalescing table instead of a
    /// fresh fetch (a hub appearing twice in a frontier is one fetch,
    /// one hit).
    pub coalesce_hits: u64,
    /// Attribute rows requested on the coalescing gather path.
    pub attr_coalesce_lookups: u64,
    /// Attribute rows answered by the per-gather coalescing table
    /// instead of a fresh fetch (a hub sampled 40 times in a mini-batch
    /// is one row fetch, 39 hits).
    pub attr_coalesce_hits: u64,
    /// Frontier lookups at 64-byte-line granularity
    /// ([`FRONTIER_LINE_NODES`] ids per line). The exact-id coalesce
    /// counters above depend only on topology and roots — they are
    /// *invariant* under node relabeling — whereas a line hit needs two
    /// frontier ids to be numerically close, so this pair is the counter
    /// that moves when locality-aware reordering works.
    pub frontier_line_lookups: u64,
    /// Frontier lookups whose 64-byte line was already touched this hop.
    pub frontier_line_hits: u64,
    /// Attribute-row lookups at page granularity ([`ATTR_PAGE_ROWS`]
    /// rows per page) — the layout-sensitive analogue of
    /// `attr_coalesce_lookups`.
    pub attr_page_lookups: u64,
    /// Attribute-row lookups whose page was already touched this gather.
    pub attr_page_hits: u64,
}

impl RequestStats {
    /// Fraction of batched requests that were remote.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.local_requests + self.remote_requests;
        if total == 0 {
            0.0
        } else {
            self.remote_requests as f64 / total as f64
        }
    }

    /// Fraction of coalescing-path lookups served without a fetch.
    pub fn coalesce_hit_rate(&self) -> f64 {
        if self.coalesce_lookups == 0 {
            0.0
        } else {
            self.coalesce_hits as f64 / self.coalesce_lookups as f64
        }
    }

    /// Fraction of attribute-row lookups served without a fetch.
    pub fn attr_coalesce_hit_rate(&self) -> f64 {
        if self.attr_coalesce_lookups == 0 {
            0.0
        } else {
            self.attr_coalesce_hits as f64 / self.attr_coalesce_lookups as f64
        }
    }

    /// Fraction of frontier lookups landing on a 64-byte line already
    /// touched this hop — layout locality, not just id duplication (see
    /// [`RequestStats::frontier_line_lookups`]).
    pub fn frontier_line_hit_rate(&self) -> f64 {
        if self.frontier_line_lookups == 0 {
            0.0
        } else {
            self.frontier_line_hits as f64 / self.frontier_line_lookups as f64
        }
    }

    /// Fraction of attribute-row lookups landing on a page already
    /// touched this gather.
    pub fn attr_page_hit_rate(&self) -> f64 {
        if self.attr_page_lookups == 0 {
            0.0
        } else {
            self.attr_page_hits as f64 / self.attr_page_lookups as f64
        }
    }

    /// Folds another operation's accounting into this one (used by
    /// backends accumulating per-request stats into a running total).
    pub fn merge(&mut self, other: RequestStats) {
        self.local_requests += other.local_requests;
        self.remote_requests += other.remote_requests;
        self.nodes_expanded += other.nodes_expanded;
        self.attrs_fetched += other.attrs_fetched;
        self.unreachable_nodes += other.unreachable_nodes;
        self.coalesce_lookups += other.coalesce_lookups;
        self.coalesce_hits += other.coalesce_hits;
        self.attr_coalesce_lookups += other.attr_coalesce_lookups;
        self.attr_coalesce_hits += other.attr_coalesce_hits;
        self.frontier_line_lookups += other.frontier_line_lookups;
        self.frontier_line_hits += other.frontier_line_hits;
        self.attr_page_lookups += other.attr_page_lookups;
        self.attr_page_hits += other.attr_page_hits;
    }

    /// True when any node's owner was unreachable during the operation.
    pub fn any_unreachable(&self) -> bool {
        self.unreachable_nodes > 0
    }
}

impl lsdgnn_telemetry::MetricSource for RequestStats {
    fn collect(&self, out: &mut lsdgnn_telemetry::Scope<'_>) {
        out.counter("local_requests", self.local_requests);
        out.counter("remote_requests", self.remote_requests);
        out.counter("nodes_expanded", self.nodes_expanded);
        out.counter("attrs_fetched", self.attrs_fetched);
        out.counter("unreachable_nodes", self.unreachable_nodes);
        out.counter("coalesce_lookups", self.coalesce_lookups);
        out.counter("coalesce_hits", self.coalesce_hits);
        out.counter("attr_coalesce_lookups", self.attr_coalesce_lookups);
        out.counter("attr_coalesce_hits", self.attr_coalesce_hits);
        out.counter("frontier_line_lookups", self.frontier_line_lookups);
        out.counter("frontier_line_hits", self.frontier_line_hits);
        out.counter("attr_page_lookups", self.attr_page_lookups);
        out.counter("attr_page_hits", self.attr_page_hits);
        out.gauge("remote_fraction", self.remote_fraction());
        out.gauge("coalesce_hit_rate", self.coalesce_hit_rate());
        out.gauge("attr_coalesce_hit_rate", self.attr_coalesce_hit_rate());
        out.gauge("frontier_line_hit_rate", self.frontier_line_hit_rate());
        out.gauge("attr_page_hit_rate", self.attr_page_hit_rate());
    }
}

/// Node ids per 64-byte memory line (8 × 8-byte ids) — the granularity
/// of [`RequestStats::frontier_line_lookups`].
pub const FRONTIER_LINE_NODES: u64 = 8;

/// Attribute rows per locality page for
/// [`RequestStats::attr_page_lookups`]: 16 rows ≈ one 4 KB page at the
/// serving workload's 64-float rows.
pub const ATTR_PAGE_ROWS: u64 = 16;

/// A Gen-Z-style *unpacked* read request (header + full 8-byte address +
/// CRC, one package per request) — the baseline MoF Tech-1 packing is
/// measured against, per the paper's ~33 % small-read utilization figure.
pub const UNPACKED_REQUEST_BYTES: u64 = HEADER_BYTES + 8 + CRC_BYTES;

/// Configuration of the MoF wire accounting plane (see [`WirePlane`]).
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// Route remote read addresses through MoF multi-request packing
    /// (§4.3 Tech-1: up to 64 requests share one base address; spans
    /// beyond the 4-byte offset range split into extra packages).
    pub packing: bool,
    /// BDI-compress response payloads per 64-byte line (§4.3 Tech-2)
    /// and charge the link with compressed bytes.
    pub compression: bool,
    /// The link model charged with every leg's wire bytes.
    pub link: LinkModel,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            packing: true,
            compression: true,
            link: LinkModel::mof(3),
        }
    }
}

/// Which remote verb a wire leg served — BDI behaves very differently
/// on the two payload kinds (node-id streams compress, float rows
/// mostly do not), so response bytes are also accounted per leg.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WireLeg {
    /// A neighbor-list fetch: the payload is node ids.
    Sampling,
    /// An attribute-row gather: the payload is packed f32 rows.
    Attrs,
}

/// Shared counters of the wire plane (atomics: server legs run on the
/// worker thread but service workers share one cluster).
#[derive(Debug, Default)]
struct WireCounters {
    remote_legs: AtomicU64,
    request_packages: AtomicU64,
    packed_requests: AtomicU64,
    overflow_splits: AtomicU64,
    raw_request_bytes: AtomicU64,
    wire_request_bytes: AtomicU64,
    raw_response_bytes: AtomicU64,
    wire_response_bytes: AtomicU64,
    sampling_raw_response_bytes: AtomicU64,
    sampling_wire_response_bytes: AtomicU64,
    attr_raw_response_bytes: AtomicU64,
    attr_wire_response_bytes: AtomicU64,
    simulated_wire_ns: AtomicU64,
}

/// A point-in-time copy of the wire plane's accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireSnapshot {
    /// Remote legs accounted (one per per-partition dispatch).
    pub remote_legs: u64,
    /// Request packages emitted (equals `packed_requests` with packing
    /// off).
    pub request_packages: u64,
    /// Read requests carried by those packages.
    pub packed_requests: u64,
    /// Packages closed early because the next address exceeded the
    /// 4-byte offset range from the open package's base.
    pub overflow_splits: u64,
    /// Request bytes at the unpacked Gen-Z-style baseline.
    pub raw_request_bytes: u64,
    /// Request bytes actually charged to the link.
    pub wire_request_bytes: u64,
    /// Response bytes before compression (payload + package framing).
    pub raw_response_bytes: u64,
    /// Response bytes actually charged to the link.
    pub wire_response_bytes: u64,
    /// Raw response bytes on neighbor-fetch (sampling) legs only.
    pub sampling_raw_response_bytes: u64,
    /// Wire response bytes on neighbor-fetch (sampling) legs only.
    pub sampling_wire_response_bytes: u64,
    /// Raw response bytes on attribute-gather legs only.
    pub attr_raw_response_bytes: u64,
    /// Wire response bytes on attribute-gather legs only.
    pub attr_wire_response_bytes: u64,
    /// Link-model time for every leg's round trip at wire size,
    /// accumulated in nanoseconds — *simulated* latency, reported rather
    /// than asserted.
    pub simulated_wire_ns: u64,
}

impl WireSnapshot {
    /// Measured response-payload compression ratio (raw / wire); > 1
    /// means BDI shrank the responses.
    pub fn compression_ratio(&self) -> f64 {
        ratio(self.raw_response_bytes, self.wire_response_bytes)
    }

    /// Compression ratio on sampled remote traffic only (neighbor-id
    /// payloads — the Table 6 measurement): BDI earns its keep here,
    /// while float attribute rows mostly ride raw-fallback lines.
    pub fn sampling_compression_ratio(&self) -> f64 {
        ratio(
            self.sampling_raw_response_bytes,
            self.sampling_wire_response_bytes,
        )
    }

    /// Compression ratio on attribute-gather responses only.
    pub fn attr_compression_ratio(&self) -> f64 {
        ratio(self.attr_raw_response_bytes, self.attr_wire_response_bytes)
    }

    /// Request-side packing ratio (unpacked baseline / wire).
    pub fn request_packing_ratio(&self) -> f64 {
        if self.wire_request_bytes == 0 {
            1.0
        } else {
            self.raw_request_bytes as f64 / self.wire_request_bytes as f64
        }
    }

    /// Mean requests per package relative to the 64-request capacity —
    /// the Table 5 utilization figure, measured on serving traffic.
    pub fn packing_occupancy(&self) -> f64 {
        if self.request_packages == 0 {
            0.0
        } else {
            self.packed_requests as f64
                / (self.request_packages as f64 * MAX_REQUESTS_PER_PACKAGE as f64)
        }
    }

    /// Total bytes charged to the link (requests + responses).
    pub fn wire_bytes(&self) -> u64 {
        self.wire_request_bytes + self.wire_response_bytes
    }

    /// Total bytes the same traffic would cost unpacked and uncompressed.
    pub fn raw_bytes(&self) -> u64 {
        self.raw_request_bytes + self.raw_response_bytes
    }
}

/// Raw/wire byte ratio, 1.0 when no bytes moved.
fn ratio(raw: u64, wire: u64) -> f64 {
    if wire == 0 {
        1.0
    } else {
        raw as f64 / wire as f64
    }
}

impl lsdgnn_telemetry::MetricSource for WireSnapshot {
    fn collect(&self, out: &mut lsdgnn_telemetry::Scope<'_>) {
        out.counter("remote_legs", self.remote_legs);
        out.counter("request_packages", self.request_packages);
        out.counter("packed_requests", self.packed_requests);
        out.counter("overflow_splits", self.overflow_splits);
        out.counter("raw_request_bytes", self.raw_request_bytes);
        out.counter("wire_request_bytes", self.wire_request_bytes);
        out.counter("raw_response_bytes", self.raw_response_bytes);
        out.counter("wire_response_bytes", self.wire_response_bytes);
        out.counter(
            "sampling_raw_response_bytes",
            self.sampling_raw_response_bytes,
        );
        out.counter(
            "sampling_wire_response_bytes",
            self.sampling_wire_response_bytes,
        );
        out.counter("attr_raw_response_bytes", self.attr_raw_response_bytes);
        out.counter("attr_wire_response_bytes", self.attr_wire_response_bytes);
        out.counter("simulated_wire_ns", self.simulated_wire_ns);
        out.gauge("compression_ratio", self.compression_ratio());
        out.gauge(
            "sampling_compression_ratio",
            self.sampling_compression_ratio(),
        );
        out.gauge("attr_compression_ratio", self.attr_compression_ratio());
        out.gauge("request_packing_ratio", self.request_packing_ratio());
        out.gauge("packing_occupancy", self.packing_occupancy());
    }
}

/// The MoF wire accounting plane: when a cluster is spawned with
/// [`Cluster::spawn_wired`], every remote leg's read addresses run
/// through real [`pack_read_requests`] packing and every response
/// payload through the real per-line BDI sizer
/// ([`BdiStreamSizer`]) — *measured on the actual serving
/// traffic*, with the link model charged the wire (compressed) byte
/// count. Replies themselves are untouched, so sampled results are
/// byte-identical with the plane on or off; only the accounting and the
/// simulated latency differ.
struct WirePlane {
    config: WireConfig,
    counters: WireCounters,
}

impl WirePlane {
    fn new(config: WireConfig) -> Self {
        WirePlane {
            config,
            counters: WireCounters::default(),
        }
    }

    /// Accounts one remote leg: `addrs` are the leg's read addresses in
    /// dispatch order, `request_bytes` the nominal per-read size,
    /// `payload` the response payload as 64-bit words, and
    /// `incompressible` extra response bytes BDI does not touch (the
    /// CSR boundary array of a neighbor reply).
    fn account_leg(
        &self,
        leg: WireLeg,
        addrs: &[u64],
        request_bytes: u16,
        payload: impl ExactSizeIterator<Item = u64>,
        incompressible: u64,
    ) {
        let c = &self.counters;
        let raw_req = UNPACKED_REQUEST_BYTES * addrs.len() as u64;
        let wire_req = if self.config.packing {
            let packed = pack_read_requests(addrs, request_bytes, 0);
            c.request_packages
                .fetch_add(packed.packages.len() as u64, Ordering::Relaxed);
            c.packed_requests
                .fetch_add(packed.requests, Ordering::Relaxed);
            c.overflow_splits
                .fetch_add(packed.overflow_splits, Ordering::Relaxed);
            packed.wire_bytes()
        } else {
            c.request_packages
                .fetch_add(addrs.len() as u64, Ordering::Relaxed);
            c.packed_requests
                .fetch_add(addrs.len() as u64, Ordering::Relaxed);
            raw_req
        };
        // Response: framing (header + CRC per 64-response package) plus
        // the payload, compressed per 64-byte line when enabled.
        let framing = (addrs.len() as u64).div_ceil(MAX_REQUESTS_PER_PACKAGE as u64)
            * (HEADER_BYTES + CRC_BYTES);
        let (raw_payload, wire_payload) = if self.config.compression {
            let mut sizer = BdiStreamSizer::new();
            for w in payload {
                sizer.push(w);
            }
            sizer.finish()
        } else {
            let n = 8 * payload.len() as u64;
            (n, n)
        };
        let raw_resp = framing + incompressible + raw_payload;
        let wire_resp = framing + incompressible + wire_payload;
        c.raw_request_bytes.fetch_add(raw_req, Ordering::Relaxed);
        c.wire_request_bytes.fetch_add(wire_req, Ordering::Relaxed);
        c.raw_response_bytes.fetch_add(raw_resp, Ordering::Relaxed);
        c.wire_response_bytes
            .fetch_add(wire_resp, Ordering::Relaxed);
        let (raw_by_leg, wire_by_leg) = match leg {
            WireLeg::Sampling => (
                &c.sampling_raw_response_bytes,
                &c.sampling_wire_response_bytes,
            ),
            WireLeg::Attrs => (&c.attr_raw_response_bytes, &c.attr_wire_response_bytes),
        };
        raw_by_leg.fetch_add(raw_resp, Ordering::Relaxed);
        wire_by_leg.fetch_add(wire_resp, Ordering::Relaxed);
        let ns = self
            .config
            .link
            .round_trip(wire_req + wire_resp)
            .as_nanos_f64() as u64;
        c.simulated_wire_ns.fetch_add(ns, Ordering::Relaxed);
        c.remote_legs.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> WireSnapshot {
        let c = &self.counters;
        WireSnapshot {
            remote_legs: c.remote_legs.load(Ordering::Relaxed),
            request_packages: c.request_packages.load(Ordering::Relaxed),
            packed_requests: c.packed_requests.load(Ordering::Relaxed),
            overflow_splits: c.overflow_splits.load(Ordering::Relaxed),
            raw_request_bytes: c.raw_request_bytes.load(Ordering::Relaxed),
            wire_request_bytes: c.wire_request_bytes.load(Ordering::Relaxed),
            raw_response_bytes: c.raw_response_bytes.load(Ordering::Relaxed),
            wire_response_bytes: c.wire_response_bytes.load(Ordering::Relaxed),
            sampling_raw_response_bytes: c.sampling_raw_response_bytes.load(Ordering::Relaxed),
            sampling_wire_response_bytes: c.sampling_wire_response_bytes.load(Ordering::Relaxed),
            attr_raw_response_bytes: c.attr_raw_response_bytes.load(Ordering::Relaxed),
            attr_wire_response_bytes: c.attr_wire_response_bytes.load(Ordering::Relaxed),
            simulated_wire_ns: c.simulated_wire_ns.load(Ordering::Relaxed),
        }
    }
}

/// Where one node's neighbor list lives in a [`NeighborTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Span {
    /// A range of the shared CSR target array — the zero-copy local path.
    Csr {
        /// Start index into `CsrGraph::targets()`.
        start: usize,
        /// Neighbor count.
        len: usize,
    },
    /// A range of one of the table's arena buffers (a remote server's
    /// flat reply, moved into the table without another copy).
    Flat {
        /// Arena index within the table.
        arena: usize,
        /// Start index into that arena.
        start: usize,
        /// Neighbor count.
        len: usize,
    },
    /// The owner was unreachable: there is no list and the lookup counts
    /// toward [`RequestStats::unreachable_nodes`].
    Down,
}

impl Span {
    /// The spanned list's length — available without touching the list
    /// data, which is what lets pick generation run ahead of the reads.
    /// `None` for an unreachable owner.
    fn known_len(&self) -> Option<usize> {
        match *self {
            Span::Csr { len, .. } | Span::Flat { len, .. } => Some(len),
            Span::Down => None,
        }
    }
}

/// One hop's coalesced neighbor lookup table: a span per *distinct*
/// frontier node, resolving either into the shared CSR (local shard,
/// zero-copy) or into an arena — a remote server's flat reply buffer,
/// moved into the table as-is rather than copied again.
struct NeighborTable {
    spans: Vec<Span>,
    arenas: Vec<Vec<NodeId>>,
}

impl NeighborTable {
    fn from_pool(pool: &BufferPool) -> Self {
        NeighborTable {
            spans: pool.take_spans(),
            arenas: Vec::new(),
        }
    }

    /// Clears the table and sizes it for `n` distinct nodes, all
    /// initially unreachable until a fetch fills them in. Spent arena
    /// buffers return to the pool.
    fn reset(&mut self, pool: &BufferPool, n: usize) {
        self.spans.clear();
        self.spans.resize(n, Span::Down);
        for arena in self.arenas.drain(..) {
            pool.put_nodes(arena);
        }
    }

    /// The neighbor list of distinct-node `i`, or `None` if its owner
    /// was unreachable. `csr` is the graph's shared target array.
    fn list<'a>(&'a self, csr: &'a [NodeId], i: usize) -> Option<&'a [NodeId]> {
        match self.spans[i] {
            Span::Csr { start, len } => Some(&csr[start..start + len]),
            Span::Flat { arena, start, len } => Some(&self.arenas[arena][start..start + len]),
            Span::Down => None,
        }
    }

    fn recycle(self, pool: &BufferPool) {
        pool.put_spans(self.spans);
        for arena in self.arenas {
            pool.put_nodes(arena);
        }
    }
}

/// How many frontier entries the resolution pass prefetches ahead of
/// the one it is consuming.
const PICK_LOOKAHEAD: usize = 8;

/// Pass one of a hop: draw every frontier entry's pick positions from
/// the request RNG, using only each list's *length* (known from its
/// span without reading the list). RNG consumption is identical to
/// sampling in place — nothing for an unreachable or short list,
/// `fanout` draws otherwise — so the resolution pass reproduces the
/// one-pass samples byte-for-byte.
fn generate_picks(
    rng: &mut SmallRng,
    table: &NeighborTable,
    slots: &[u32],
    fanout: usize,
    picks: &mut Vec<u32>,
) {
    for &slot in slots {
        if let Some(n) = table.spans[slot as usize].known_len() {
            if n > fanout {
                StreamingSampler.pick_into(rng, n, fanout, picks);
            }
        }
    }
}

/// Pass two of a hop: read the picked neighbors into `out`. The hop's
/// reads are random gathers into arrays far larger than cache (the CSR
/// target array, remote reply arenas); with the picks already drawn,
/// every address is known early, so the loop issues the loads for
/// entries [`PICK_LOOKAHEAD`] positions ahead and the miss latency
/// overlaps with the current entry's work instead of serializing.
///
/// This is also the only place each frontier entry's sampled-child count
/// exists (full short lists, `fanout` picks from long ones, nothing from
/// an unreachable owner), so the pass records one end offset per entry
/// into `adj` — the per-parent adjacency table the GNN compute stage
/// aggregates over ([`SampleBlock::adj_offsets`]).
#[allow(clippy::too_many_arguments)]
fn resolve_picks(
    csr: &[NodeId],
    table: &NeighborTable,
    slots: &[u32],
    picks: &[u32],
    fanout: usize,
    out: &mut Vec<NodeId>,
    adj: &mut Vec<u32>,
    stats: &mut RequestStats,
) {
    // `cur` walks the picks consumed by resolved entries; `ahead` walks
    // the picks of prefetched entries, `PICK_LOOKAHEAD` entries further
    // along the frontier.
    let mut cur = 0usize;
    let mut ahead = 0usize;
    let mut ahead_i = 0usize;
    for (i, &slot) in slots.iter().enumerate() {
        while ahead_i < slots.len() && ahead_i <= i + PICK_LOOKAHEAD {
            if let Some(list) = table.list(csr, slots[ahead_i] as usize) {
                if list.len() > fanout {
                    for j in 0..fanout {
                        prefetch_read(&list[picks[ahead + j] as usize]);
                    }
                    ahead += fanout;
                } else {
                    prefetch_read(list.as_ptr());
                }
            }
            ahead_i += 1;
        }
        match table.list(csr, slot as usize) {
            Some(list) if list.len() > fanout => {
                out.extend(picks[cur..cur + fanout].iter().map(|&p| list[p as usize]));
                cur += fanout;
            }
            Some(list) => out.extend_from_slice(list),
            None => stats.unreachable_nodes += 1,
        }
        adj.push(out.len() as u32);
    }
}

/// A running cluster: one server thread per partition, the caller acting
/// as the worker co-located with partition 0.
pub struct Cluster {
    graph: Arc<PartitionedGraph>,
    pool: Arc<BufferPool>,
    senders: Vec<Sender<Request>>,
    handles: Vec<JoinHandle<()>>,
    worker_partition: PartitionId,
    /// Partitions whose server has crashed (or been failed by chaos
    /// injection). Requests routed to a down partition are answered with
    /// empty neighbor lists / zeroed attributes and counted as
    /// [`RequestStats::unreachable_nodes`] instead of blocking forever.
    down: Vec<AtomicBool>,
    /// The MoF wire accounting plane, present when spawned via
    /// [`Cluster::spawn_wired`]. `None` keeps the remote legs entirely
    /// free of wire bookkeeping.
    wire: Option<WirePlane>,
    /// The two-tier hot-set cache consulted inline on the remote data
    /// plane, present when spawned via [`Cluster::spawn_cached`]. A tier
    /// hit serves byte-identical data while skipping the remote leg *and*
    /// its wire accounting.
    cache: Option<Arc<HotSetCache>>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("partitions", &self.senders.len())
            .field("worker_partition", &self.worker_partition)
            .finish()
    }
}

fn serve(
    graph: Arc<PartitionedGraph>,
    pool: Arc<BufferPool>,
    p: PartitionId,
    rx: Receiver<Request>,
) {
    while let Ok(req) = rx.recv() {
        match req {
            Request::Neighbors { nodes, reply } => {
                let mut offsets = pool.take_offsets();
                let mut flat = pool.take_nodes();
                offsets.push(0);
                for (i, &v) in nodes.iter().enumerate() {
                    debug_assert!(graph.is_local(v, p), "misrouted request");
                    // The per-node lists are random ranges of a CSR far
                    // larger than cache; touch a few nodes ahead so the
                    // copies below overlap their miss latency.
                    if let Some(&w) = nodes.get(i + 4) {
                        prefetch_read(graph.graph().neighbors(w).as_ptr());
                    }
                    flat.extend_from_slice(graph.graph().neighbors(v));
                    offsets.push(flat.len() as u32);
                }
                let _ = reply.send(NeighborsReply {
                    offsets,
                    flat,
                    request: nodes,
                });
            }
            Request::NeighborsNested { nodes, reply } => {
                let lists = nodes
                    .iter()
                    .map(|&v| {
                        debug_assert!(graph.is_local(v, p), "misrouted request");
                        graph.graph().neighbors(v).to_vec()
                    })
                    .collect();
                let _ = reply.send(lists);
            }
            Request::Attrs { nodes, reply } => {
                let mut attrs = pool.take_floats();
                graph
                    .attributes()
                    .expect("cluster requires attributes")
                    .gather_into(&nodes, &mut attrs);
                let _ = reply.send(AttrsReply {
                    attrs,
                    request: nodes,
                });
            }
            Request::Shutdown => break,
        }
    }
}

impl Cluster {
    /// Spawns one server thread per partition of `graph`.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no attribute store attached.
    pub fn spawn(graph: PartitionedGraph) -> Self {
        Self::spawn_with_wire(graph, None)
    }

    /// [`Cluster::spawn`] with the MoF wire accounting plane attached:
    /// remote sampling and gather legs are routed through real request
    /// packing and per-line BDI sizing, with `config.link` charged the
    /// wire bytes. Replies are untouched — sampled results stay
    /// byte-identical to an unwired cluster.
    pub fn spawn_wired(graph: PartitionedGraph, config: WireConfig) -> Self {
        Self::spawn_inner(graph, Some(config), None)
    }

    /// [`Cluster::spawn`] with the two-tier hot-set cache mounted inline:
    /// remote neighbor-list and attribute fetches consult the tiers
    /// before dispatching, and replies warm them. When
    /// `cache.warm_top_degree > 0`, the degree prior is applied (and the
    /// top-degree remote hot set preloaded) before the first request.
    pub fn spawn_cached(graph: PartitionedGraph, cache: CacheConfig) -> Self {
        Self::spawn_inner(graph, None, Some(cache))
    }

    /// Wire plane and hot-set cache together.
    pub fn spawn_wired_cached(
        graph: PartitionedGraph,
        wire: WireConfig,
        cache: CacheConfig,
    ) -> Self {
        Self::spawn_inner(graph, Some(wire), Some(cache))
    }

    fn spawn_with_wire(graph: PartitionedGraph, wire: Option<WireConfig>) -> Self {
        Self::spawn_inner(graph, wire, None)
    }

    fn spawn_inner(
        graph: PartitionedGraph,
        wire: Option<WireConfig>,
        cache: Option<CacheConfig>,
    ) -> Self {
        assert!(
            graph.attributes().is_some(),
            "cluster requires an attribute store"
        );
        let graph = Arc::new(graph);
        let pool = Arc::new(BufferPool::new());
        let mut senders = Vec::new();
        let mut handles = Vec::new();
        for p in 0..graph.partitions() {
            let (tx, rx) = bounded(SERVER_QUEUE_DEPTH);
            let g = graph.clone();
            let pl = pool.clone();
            handles.push(std::thread::spawn(move || serve(g, pl, PartitionId(p), rx)));
            senders.push(tx);
        }
        let down = (0..senders.len()).map(|_| AtomicBool::new(false)).collect();
        let worker_partition = PartitionId(0);
        let cache = cache.map(|cfg| {
            let c = HotSetCache::new(cfg);
            if cfg.warm_top_degree > 0 {
                c.warm_degree_prior(&graph, worker_partition, cfg.warm_top_degree);
            }
            Arc::new(c)
        });
        Cluster {
            graph,
            pool,
            senders,
            handles,
            worker_partition,
            down,
            wire: wire.map(WirePlane::new),
            cache,
        }
    }

    /// The inline hot-set cache, when mounted.
    pub fn cache(&self) -> Option<&Arc<HotSetCache>> {
        self.cache.as_ref()
    }

    /// Per-tier cache counters, or `None` for an uncached cluster.
    pub fn cache_snapshot(&self) -> Option<CacheSnapshot> {
        self.cache.as_ref().map(|c| c.snapshot())
    }

    /// A copy of the wire plane's accounting, or `None` for an unwired
    /// cluster.
    pub fn wire_snapshot(&self) -> Option<WireSnapshot> {
        self.wire.as_ref().map(|w| w.snapshot())
    }

    /// Number of server partitions.
    pub fn partitions(&self) -> u32 {
        self.senders.len() as u32
    }

    /// Attribute vector width of the cluster's store.
    ///
    /// # Panics
    ///
    /// Panics if the cluster carries no attributes.
    pub fn attr_len(&self) -> usize {
        self.graph
            .attributes()
            .expect("cluster requires attributes")
            .attr_len()
    }

    /// The shared buffer pool the data plane recycles through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Crashes partition `p`'s server: its thread stops and every future
    /// request routed to it is answered degraded (empty/zeroed) instead
    /// of blocking. Returns `true` if the partition was alive. Failing is
    /// permanent for the cluster's lifetime — the graceful-degradation
    /// machinery above (service retries, partial replies) is what turns a
    /// crash into bounded quality loss rather than an outage.
    pub fn fail_partition(&self, p: PartitionId) -> bool {
        let i = p.0 as usize;
        if i >= self.down.len() {
            return false;
        }
        let was_up = !self.down[i].swap(true, Ordering::AcqRel);
        if was_up {
            // Best-effort: the serve loop exits on Shutdown; a racing
            // in-flight request still gets its reply first because the
            // channel is FIFO.
            let _ = self.senders[i].send(Request::Shutdown);
        }
        was_up
    }

    /// Whether partition `p` is down (crashed or chaos-failed).
    pub fn partition_down(&self, p: PartitionId) -> bool {
        self.down
            .get(p.0 as usize)
            .is_some_and(|d| d.load(Ordering::Acquire))
    }

    /// Partitions still serving.
    pub fn alive_partitions(&self) -> u32 {
        self.down
            .iter()
            .filter(|d| !d.load(Ordering::Acquire))
            .count() as u32
    }

    fn unreachable(&self, p: usize, excluded: &[u32]) -> bool {
        excluded.contains(&(p as u32)) || self.down[p].load(Ordering::Acquire)
    }

    /// The partitioned graph being served.
    pub fn graph(&self) -> &PartitionedGraph {
        &self.graph
    }

    /// Runs a full multi-hop sampling operation on the flat-buffer data
    /// plane — coalesced fetches, pooled buffers, zero-copy local reads —
    /// and returns the flat block plus request stats. Byte-identical
    /// samples to [`Cluster::sample_batch`] for the same arguments.
    pub fn sample_block(
        &self,
        roots: &[NodeId],
        hops: u32,
        fanout: usize,
        seed: u64,
    ) -> (SampleBlock, RequestStats) {
        self.sample_block_excluding(roots, hops, fanout, seed, &[])
    }

    /// [`Cluster::sample_block`] with a per-operation shard exclusion
    /// mask (see [`Cluster::sample_batch_excluding`] for the semantics).
    pub fn sample_block_excluding(
        &self,
        roots: &[NodeId],
        hops: u32,
        fanout: usize,
        seed: u64,
        excluded: &[u32],
    ) -> (SampleBlock, RequestStats) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut stats = RequestStats::default();
        let mut block = self.pool.take_block();
        block.roots.extend_from_slice(roots);
        let mut unique = self.pool.take_nodes();
        let mut slot_of = self.pool.take_offsets();
        let mut picks = self.pool.take_offsets();
        let mut index = self.pool.take_stamps();
        let mut line_index = self.pool.take_stamps();
        let mut table = NeighborTable::from_pool(&self.pool);
        let csr = self.graph.graph().targets();
        let num_nodes = self.graph.graph().num_nodes() as usize;
        // The frontier lives inside the block: hop h's samples land at
        // the tail of `block.nodes` and become hop h+1's frontier — no
        // scratch buffers to fill, swap, or copy into the block.
        let obs_on = ledger::scope_active();
        let mut frontier_start = 0usize;
        for h in 0..hops {
            let hop_t0 = obs_on.then(Instant::now);
            // Coalesce: fetch each distinct frontier node once, then
            // sample per frontier *entry* so RNG consumption (and thus
            // the result) matches the uncoalesced legacy path exactly.
            // `slot_of` remembers each entry's table slot so the passes
            // below never hash.
            unique.clear();
            slot_of.clear();
            index.begin(num_nodes);
            line_index.begin(num_nodes / FRONTIER_LINE_NODES as usize + 1);
            let frontier: &[NodeId] = if h == 0 {
                &block.roots
            } else {
                &block.nodes[frontier_start..]
            };
            for &v in frontier {
                let slot = match index.get(v.index()) {
                    Some(s) => s,
                    None => {
                        let s = unique.len() as u32;
                        index.set(v.index(), s);
                        unique.push(v);
                        s
                    }
                };
                slot_of.push(slot);
                let line = v.index() / FRONTIER_LINE_NODES as usize;
                if line_index.get(line).is_some() {
                    stats.frontier_line_hits += 1;
                } else {
                    line_index.set(line, 0);
                }
            }
            stats.nodes_expanded += frontier.len() as u64;
            stats.coalesce_lookups += frontier.len() as u64;
            stats.coalesce_hits += (frontier.len() - unique.len()) as u64;
            stats.frontier_line_lookups += frontier.len() as u64;
            self.fetch_neighbors_table(&unique, excluded, &mut stats, &mut table);
            picks.clear();
            generate_picks(&mut rng, &table, &slot_of, fanout, &mut picks);
            frontier_start = block.nodes.len();
            resolve_picks(
                csr,
                &table,
                &slot_of,
                &picks,
                fanout,
                &mut block.nodes,
                &mut block.adj_offsets,
                &mut stats,
            );
            block.hop_offsets.push(block.nodes.len() as u32);
            if let Some(t0) = hop_t0 {
                ledger::scope_record(
                    Stage::SampleHop,
                    self.worker_partition.0,
                    0.0,
                    t0.elapsed().as_secs_f64() * 1e6,
                    u64::from(h),
                );
            }
        }
        table.recycle(&self.pool);
        self.pool.put_nodes(unique);
        self.pool.put_offsets(slot_of);
        self.pool.put_offsets(picks);
        self.pool.put_stamps(index);
        self.pool.put_stamps(line_index);
        // Attribute fetch for roots + samples, in deduplicated row form
        // through pooled buffers: hub rows move once no matter how often
        // the mini-batch resampled them.
        let mut fetch = self.pool.take_nodes();
        block.attr_fetch_into(&mut fetch);
        let mut rows = self.pool.take_floats();
        let mut row_of = self.pool.take_offsets();
        let s = self.fetch_attr_rows_into(&fetch, excluded, &mut rows, &mut row_of);
        stats.merge(s);
        self.pool.put_floats(rows);
        self.pool.put_offsets(row_of);
        self.pool.put_nodes(fetch);
        (block, stats)
    }

    /// The batch-level data plane: samples every request of a service
    /// batch through *one* coalesced fetch per hop per partition.
    ///
    /// Where [`Cluster::sample_block_excluding`] dedupes within one
    /// request's frontier, this dedupes the union of every active
    /// request's frontier — a hub two requests both reached is fetched
    /// once — and amortizes the per-hop channel round trips across the
    /// whole batch. Each request still consumes its own seeded RNG per
    /// frontier entry in order, so every block is byte-identical to a
    /// solo [`Cluster::sample_block`] call with the same request.
    pub fn sample_blocks_excluding(
        &self,
        reqs: &[&SampleRequest],
        excluded: &[u32],
    ) -> (Vec<SampleBlock>, RequestStats) {
        let mut stats = RequestStats::default();
        let mut rngs: Vec<SmallRng> = reqs
            .iter()
            .map(|r| SmallRng::seed_from_u64(r.seed))
            .collect();
        let mut blocks: Vec<SampleBlock> = reqs
            .iter()
            .map(|r| {
                let mut b = self.pool.take_block();
                b.roots.extend_from_slice(&r.roots);
                b
            })
            .collect();
        let mut unique = self.pool.take_nodes();
        let mut slot_of = self.pool.take_offsets();
        let mut picks = self.pool.take_offsets();
        let mut index = self.pool.take_stamps();
        let mut line_index = self.pool.take_stamps();
        let mut table = NeighborTable::from_pool(&self.pool);
        let csr = self.graph.graph().targets();
        let num_nodes = self.graph.graph().num_nodes() as usize;
        // Per-request frontier start: each request's frontier is the
        // tail of its own block, exactly as in the solo path.
        let obs_on = ledger::scope_active();
        let mut frontier_starts = vec![0usize; reqs.len()];
        let max_hops = reqs.iter().map(|r| r.hops).max().unwrap_or(0);
        for h in 0..max_hops {
            let hop_t0 = obs_on.then(Instant::now);
            // Coalesce the union of every active request's frontier.
            unique.clear();
            slot_of.clear();
            index.begin(num_nodes);
            line_index.begin(num_nodes / FRONTIER_LINE_NODES as usize + 1);
            let mut total = 0usize;
            for (i, r) in reqs.iter().enumerate() {
                if r.hops <= h {
                    continue;
                }
                let frontier: &[NodeId] = if h == 0 {
                    &blocks[i].roots
                } else {
                    &blocks[i].nodes[frontier_starts[i]..]
                };
                total += frontier.len();
                for &v in frontier {
                    let slot = match index.get(v.index()) {
                        Some(s) => s,
                        None => {
                            let s = unique.len() as u32;
                            index.set(v.index(), s);
                            unique.push(v);
                            s
                        }
                    };
                    slot_of.push(slot);
                    let line = v.index() / FRONTIER_LINE_NODES as usize;
                    if line_index.get(line).is_some() {
                        stats.frontier_line_hits += 1;
                    } else {
                        line_index.set(line, 0);
                    }
                }
            }
            stats.nodes_expanded += total as u64;
            stats.coalesce_lookups += total as u64;
            stats.coalesce_hits += (total - unique.len()) as u64;
            stats.frontier_line_lookups += total as u64;
            self.fetch_neighbors_table(&unique, excluded, &mut stats, &mut table);
            // Sample per request, per frontier entry, in order — the
            // exact RNG consumption of the solo path.
            let mut cursor = 0usize;
            for (i, r) in reqs.iter().enumerate() {
                if r.hops <= h {
                    continue;
                }
                let flen = if h == 0 {
                    blocks[i].roots.len()
                } else {
                    blocks[i].nodes.len() - frontier_starts[i]
                };
                let slots = &slot_of[cursor..cursor + flen];
                cursor += flen;
                picks.clear();
                generate_picks(&mut rngs[i], &table, slots, r.fanout, &mut picks);
                frontier_starts[i] = blocks[i].nodes.len();
                let b = &mut blocks[i];
                resolve_picks(
                    csr,
                    &table,
                    slots,
                    &picks,
                    r.fanout,
                    &mut b.nodes,
                    &mut b.adj_offsets,
                    &mut stats,
                );
                let end = b.nodes.len() as u32;
                b.hop_offsets.push(end);
            }
            if let Some(t0) = hop_t0 {
                ledger::scope_record(
                    Stage::SampleHop,
                    self.worker_partition.0,
                    0.0,
                    t0.elapsed().as_secs_f64() * 1e6,
                    u64::from(h),
                );
            }
        }
        table.recycle(&self.pool);
        self.pool.put_nodes(unique);
        self.pool.put_offsets(slot_of);
        self.pool.put_offsets(picks);
        self.pool.put_stamps(index);
        self.pool.put_stamps(line_index);
        // One combined attribute gather for the whole batch, in
        // deduplicated row form: a hub any request resampled moves once
        // for the entire batch.
        let mut fetch = self.pool.take_nodes();
        for b in &blocks {
            b.attr_fetch_into(&mut fetch);
        }
        let mut rows = self.pool.take_floats();
        let mut row_of = self.pool.take_offsets();
        let s = self.fetch_attr_rows_into(&fetch, excluded, &mut rows, &mut row_of);
        stats.merge(s);
        self.pool.put_floats(rows);
        self.pool.put_offsets(row_of);
        self.pool.put_nodes(fetch);
        (blocks, stats)
    }

    /// Fills `table` with one span per node of `unique`: local nodes
    /// resolve to zero-copy CSR ranges without touching a channel,
    /// remote nodes are fetched per partition as one flat reply, and
    /// unreachable owners leave [`Span::Down`].
    fn fetch_neighbors_table(
        &self,
        unique: &[NodeId],
        excluded: &[u32],
        stats: &mut RequestStats,
        table: &mut NeighborTable,
    ) {
        table.reset(&self.pool, unique.len());
        let parts = self.senders.len();
        let local = self.worker_partition.0 as usize;
        let local_up = !self.unreachable(local, excluded);
        let g = self.graph.graph();
        // One pass over the frontier: local nodes resolve to zero-copy
        // CSR spans on the spot (no channel, no copy); remote positions
        // are grouped for per-partition dispatch below — unless the
        // hot-set neighbor tier already holds the span, in which case the
        // cached bytes land in a pooled arena and the node never joins a
        // remote leg (nor its wire accounting). A hit while the owner
        // partition is unreachable is counted as a partition save: the
        // cached span is the same truth the dead server would have sent,
        // so the reply legally avoids degrading.
        let obs_on = ledger::scope_active();
        let neigh_tier = self.cache.as_deref().and_then(HotSetCache::neigh);
        let cache_t0 = (obs_on && neigh_tier.is_some()).then(Instant::now);
        let mut cache_hits: u64 = 0;
        let mut cache_flat = self.pool.take_nodes();
        let mut cache_spans: Vec<(u32, usize, usize)> = Vec::new();
        let mut remote = self.pool.take_groups(parts);
        let mut local_seen = false;
        for (i, &v) in unique.iter().enumerate() {
            let p = self.graph.owner(v).0 as usize;
            if p == local {
                local_seen = true;
                if local_up {
                    let r = g.neighbor_range(v);
                    table.spans[i] = Span::Csr {
                        start: r.start,
                        len: r.end - r.start,
                    };
                }
            } else {
                if let Some(tier) = neigh_tier {
                    let start = cache_flat.len();
                    if let Some(len) = tier.append_to(v, &mut cache_flat) {
                        cache_spans.push((i as u32, start, len));
                        cache_hits += 1;
                        if self.unreachable(p, excluded) {
                            tier.note_partition_save();
                        }
                        continue;
                    }
                }
                remote[p].push(i as u32);
            }
        }
        if local_seen && local_up {
            stats.local_requests += 1;
        }
        if cache_spans.is_empty() {
            self.pool.put_nodes(cache_flat);
        } else {
            let arena = table.arenas.len();
            for &(i, start, len) in &cache_spans {
                table.spans[i as usize] = Span::Flat { arena, start, len };
            }
            table.arenas.push(cache_flat);
        }
        if let (Some(t0), true) = (cache_t0, cache_hits > 0) {
            ledger::scope_record(
                Stage::CacheHit,
                ledger::NO_SHARD,
                0.0,
                t0.elapsed().as_secs_f64() * 1e6,
                cache_hits,
            );
        }
        for (p, pos) in remote.iter().enumerate() {
            if pos.is_empty() {
                continue;
            }
            if self.unreachable(p, excluded) {
                continue; // spans stay Down
            }
            let leg_t0 = obs_on.then(Instant::now);
            let (reply_tx, reply_rx) = bounded(1);
            let mut req_buf = self.pool.take_nodes();
            req_buf.extend(pos.iter().map(|&i| unique[i as usize]));
            let sent = self.senders[p].send(Request::Neighbors {
                nodes: req_buf,
                reply: reply_tx,
            });
            let got = sent.ok().and_then(|()| reply_rx.recv().ok());
            if let Some(t0) = leg_t0 {
                ledger::scope_record(
                    Stage::RemoteLeg,
                    p as u32,
                    0.0,
                    t0.elapsed().as_secs_f64() * 1e6,
                    pos.len() as u64,
                );
            }
            match got {
                Some(NeighborsReply {
                    offsets,
                    flat,
                    request,
                }) => {
                    if let Some(wire) = &self.wire {
                        // Request addresses are the byte offsets of each
                        // node's neighbor list in the remote CSR; the
                        // payload is the flat neighbor-id buffer plus the
                        // per-node offsets header (incompressible here).
                        let addrs: Vec<u64> = pos
                            .iter()
                            .map(|&i| (g.neighbor_range(unique[i as usize]).start as u64) * 8)
                            .collect();
                        wire.account_leg(
                            WireLeg::Sampling,
                            &addrs,
                            64,
                            flat.iter().map(|v| v.0),
                            4 * offsets.len() as u64,
                        );
                    }
                    // The reply buffer becomes a table arena as-is: no
                    // second copy of the adjacency data.
                    let arena = table.arenas.len();
                    for (w, &i) in offsets.windows(2).zip(pos.iter()) {
                        table.spans[i as usize] = Span::Flat {
                            arena,
                            start: w[0] as usize,
                            len: (w[1] - w[0]) as usize,
                        };
                        // Offer the fetched span to the neighbor tier —
                        // the next request for this hub skips the leg.
                        if let Some(tier) = neigh_tier {
                            tier.admit(unique[i as usize], &flat[w[0] as usize..w[1] as usize]);
                        }
                    }
                    table.arenas.push(flat);
                    self.pool.put_offsets(offsets);
                    self.pool.put_nodes(request);
                    stats.remote_requests += 1;
                }
                None => {
                    // The server died between the down-check and the
                    // send/recv: spans stay Down, same degraded answer.
                }
            }
        }
        self.pool.put_groups(remote);
    }

    /// Gathers attributes on the flat data plane, in the deduplicated
    /// row format the plane delivers: the row list is coalesced first (a
    /// hub sampled 40 times in a mini-batch is one fetch), each distinct
    /// row is gathered once — local rows straight out of the shared
    /// store, remote rows through pooled reply buffers. `rows` is
    /// cleared and filled with one `attr_len` row per *distinct* node
    /// (unreachable rows zeroed), and `slot_of` maps each of `nodes`
    /// back to its row index — consumers keep the compact table and
    /// index into it, instead of receiving (and paying the memory
    /// traffic for) a buffer with every hub row duplicated per
    /// occurrence.
    pub fn fetch_attr_rows_into(
        &self,
        nodes: &[NodeId],
        excluded: &[u32],
        rows: &mut Vec<f32>,
        slot_of: &mut Vec<u32>,
    ) -> RequestStats {
        let store = self
            .graph
            .attributes()
            .expect("cluster requires attributes");
        let attr_len = store.attr_len();
        let mut stats = RequestStats {
            attrs_fetched: nodes.len() as u64,
            ..Default::default()
        };
        let parts = self.senders.len();
        let local = self.worker_partition.0 as usize;
        let local_up = !self.unreachable(local, excluded);
        // Coalesce: one slot per distinct row, one array load per
        // lookup (no hashing — the stamp table resets in O(1) between
        // gathers and recycles through the pool).
        let num_nodes = self.graph.graph().num_nodes() as usize;
        let mut table = self.pool.take_stamps();
        table.begin(num_nodes);
        let mut page_index = self.pool.take_stamps();
        page_index.begin(num_nodes / ATTR_PAGE_ROWS as usize + 1);
        let mut unique = self.pool.take_nodes();
        slot_of.clear();
        slot_of.reserve(nodes.len());
        for &v in nodes {
            let slot = match table.get(v.index()) {
                Some(s) => s,
                None => {
                    let s = unique.len() as u32;
                    table.set(v.index(), s);
                    unique.push(v);
                    s
                }
            };
            slot_of.push(slot);
            let page = v.index() / ATTR_PAGE_ROWS as usize;
            if page_index.get(page).is_some() {
                stats.attr_page_hits += 1;
            } else {
                page_index.set(page, 0);
            }
        }
        stats.attr_coalesce_lookups += nodes.len() as u64;
        stats.attr_coalesce_hits += (nodes.len() - unique.len()) as u64;
        stats.attr_page_lookups += nodes.len() as u64;
        // Gather each distinct row once into `rows` (slot order): local
        // rows straight out of the shared store, remote positions
        // grouped for per-partition dispatch. `down` marks slots whose
        // owner was unreachable.
        rows.clear();
        rows.resize(unique.len() * attr_len, 0.0);
        let mut down = self.pool.take_offsets();
        down.resize(unique.len(), 0);
        // Remote rows consult the hot-set attribute tier before joining
        // a dispatch group: a hit copies the row straight into place and
        // skips the gather leg, its wire accounting, and — when the
        // owner partition is down — the degraded marking (the cached row
        // is the truth; count the save).
        let obs_on = ledger::scope_active();
        let attr_tier = self.cache.as_deref().and_then(HotSetCache::attr);
        let cache_t0 = (obs_on && attr_tier.is_some()).then(Instant::now);
        let mut cache_hits: u64 = 0;
        let mut remote = self.pool.take_groups(parts);
        let mut local_seen = false;
        for (i, &v) in unique.iter().enumerate() {
            // Distinct rows are a random walk over a store larger than
            // cache; touch a few ahead so the copies overlap misses.
            if let Some(&w) = unique.get(i + 8) {
                if self.graph.owner(w).0 as usize == local {
                    prefetch_read(store.get(w).as_ptr());
                }
            }
            let p = self.graph.owner(v).0 as usize;
            if p == local {
                local_seen = true;
                if local_up {
                    rows[i * attr_len..(i + 1) * attr_len].copy_from_slice(store.get(v));
                } else {
                    down[i] = 1; // row unreachable: zeroed, degraded
                }
            } else {
                if let Some(tier) = attr_tier {
                    if tier.copy_to(v, &mut rows[i * attr_len..(i + 1) * attr_len]) {
                        cache_hits += 1;
                        if self.unreachable(p, excluded) {
                            tier.note_partition_save();
                        }
                        continue;
                    }
                }
                remote[p].push(i as u32);
            }
        }
        if local_seen && local_up {
            stats.local_requests += 1;
        }
        if let (Some(t0), true) = (cache_t0, cache_hits > 0) {
            ledger::scope_record(
                Stage::CacheHit,
                ledger::NO_SHARD,
                0.0,
                t0.elapsed().as_secs_f64() * 1e6,
                cache_hits,
            );
        }
        for (p, pos) in remote.iter().enumerate() {
            if pos.is_empty() {
                continue;
            }
            if self.unreachable(p, excluded) {
                for &i in pos.iter() {
                    down[i as usize] = 1;
                }
                continue; // rows stay zeroed: a degraded partial gather
            }
            let leg_t0 = obs_on.then(Instant::now);
            let (reply_tx, reply_rx) = bounded(1);
            let mut req_buf = self.pool.take_nodes();
            req_buf.extend(pos.iter().map(|&i| unique[i as usize]));
            let sent = self.senders[p].send(Request::Attrs {
                nodes: req_buf,
                reply: reply_tx,
            });
            let got = sent.ok().and_then(|()| reply_rx.recv().ok());
            if let Some(t0) = leg_t0 {
                ledger::scope_record(
                    Stage::GatherLeg,
                    p as u32,
                    0.0,
                    t0.elapsed().as_secs_f64() * 1e6,
                    pos.len() as u64,
                );
            }
            match got {
                Some(AttrsReply { attrs, request }) => {
                    if let Some(wire) = &self.wire {
                        // One request per distinct row; the payload is
                        // the row data itself, packed two f32 per word.
                        let addrs: Vec<u64> = pos
                            .iter()
                            .map(|&i| unique[i as usize].index() as u64 * attr_len as u64 * 4)
                            .collect();
                        wire.account_leg(
                            WireLeg::Attrs,
                            &addrs,
                            (attr_len * 4).min(u16::MAX as usize) as u16,
                            attrs.chunks(2).map(|c| {
                                let lo = c[0].to_bits() as u64;
                                let hi = c.get(1).map_or(0, |v| v.to_bits()) as u64;
                                lo | (hi << 32)
                            }),
                            0,
                        );
                    }
                    for (j, &slot) in pos.iter().enumerate() {
                        let slot = slot as usize;
                        let fetched = &attrs[j * attr_len..(j + 1) * attr_len];
                        rows[slot * attr_len..(slot + 1) * attr_len].copy_from_slice(fetched);
                        // Offer the fetched row to the attribute tier.
                        if let Some(tier) = attr_tier {
                            tier.admit(unique[slot], fetched);
                        }
                    }
                    self.pool.put_floats(attrs);
                    self.pool.put_nodes(request);
                    stats.remote_requests += 1;
                }
                None => {
                    for &i in pos.iter() {
                        down[i as usize] = 1;
                    }
                }
            }
        }
        self.pool.put_groups(remote);
        // Unreachable rows count per *occurrence*, matching the
        // uncoalesced accounting — a flag read per entry, not a row
        // copy.
        for &slot in slot_of.iter() {
            stats.unreachable_nodes += u64::from(down[slot as usize]);
        }
        self.pool.put_stamps(table);
        self.pool.put_stamps(page_index);
        self.pool.put_nodes(unique);
        self.pool.put_offsets(down);
        stats
    }

    /// [`Cluster::fetch_attr_rows_into`] expanded back to the legacy
    /// answer shape: `out` is cleared and filled with `nodes.len()` rows
    /// in request order (unreachable rows zeroed), exactly as the
    /// uncoalesced [`Cluster::fetch_attrs_masked`] path answers. The
    /// expansion is a sequential append from the dense unique-row
    /// buffer — kept for callers (and differential tests) that want the
    /// per-occurrence layout; the sampling data plane itself stays in
    /// row form.
    pub fn fetch_attrs_into(
        &self,
        nodes: &[NodeId],
        excluded: &[u32],
        out: &mut Vec<f32>,
    ) -> RequestStats {
        let attr_len = self
            .graph
            .attributes()
            .expect("cluster requires attributes")
            .attr_len();
        let mut rows = self.pool.take_floats();
        let mut slot_of = self.pool.take_offsets();
        let stats = self.fetch_attr_rows_into(nodes, excluded, &mut rows, &mut slot_of);
        out.clear();
        out.reserve(nodes.len() * attr_len);
        for &slot in slot_of.iter() {
            let s = slot as usize;
            out.extend_from_slice(&rows[s * attr_len..(s + 1) * attr_len]);
        }
        self.pool.put_floats(rows);
        self.pool.put_offsets(slot_of);
        stats
    }

    /// Runs a full multi-hop sampling operation (worker-side traversal,
    /// server-side storage) and returns the batch plus request stats —
    /// the legacy nested-`Vec` arm kept for differential testing and
    /// before/after benchmarking of the flat data plane.
    pub fn sample_batch(
        &self,
        roots: &[NodeId],
        hops: u32,
        fanout: usize,
        seed: u64,
    ) -> (SampleBatch, RequestStats) {
        self.sample_batch_excluding(roots, hops, fanout, seed, &[])
    }

    /// Like [`Cluster::sample_batch`], but additionally treats the
    /// `excluded` partitions as unreachable *for this operation only* —
    /// the per-request shard mask the chaos layer uses to model a card
    /// crash deterministically. Frontier nodes owned by an excluded (or
    /// genuinely down) partition expand to nothing; the result is a
    /// structurally valid partial sample with
    /// [`RequestStats::unreachable_nodes`] quantifying what was missed.
    pub fn sample_batch_excluding(
        &self,
        roots: &[NodeId],
        hops: u32,
        fanout: usize,
        seed: u64,
        excluded: &[u32],
    ) -> (SampleBatch, RequestStats) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut stats = RequestStats::default();
        let mut hop_results: Vec<Vec<NodeId>> = Vec::with_capacity(hops as usize);
        for h in 0..hops as usize {
            // Each hop's frontier is borrowed from the previous hop's
            // result — no per-hop clone of the frontier vector.
            let frontier: &[NodeId] = if h == 0 { roots } else { &hop_results[h - 1] };
            let (lists, s) = self.fetch_neighbors_masked(frontier, excluded);
            stats.merge(s);
            let mut next = Vec::with_capacity(frontier.len() * fanout);
            for list in lists {
                next.extend(StreamingSampler.sample(&mut rng, &list, fanout));
            }
            hop_results.push(next);
        }
        let batch = SampleBatch {
            roots: roots.to_vec(),
            hops: hop_results,
        };
        // Attribute fetch for roots + samples.
        let fetch = batch.attr_fetch_list();
        let (_, s) = self.fetch_attrs_masked(&fetch, excluded);
        stats.merge(s);
        (batch, stats)
    }

    /// Gathers attributes for arbitrary nodes (order preserved),
    /// deduplicating repeated nodes before hitting the servers — the
    /// request-fusion optimization AliGraph applies (a 2-hop batch
    /// re-samples popular nodes constantly).
    pub fn fetch_attrs_deduped(&self, nodes: &[NodeId]) -> (Vec<f32>, RequestStats) {
        let attr_len = self
            .graph
            .attributes()
            .expect("cluster requires attributes")
            .attr_len();
        // Unique nodes in first-appearance order.
        let mut index: NodeMap<usize> = NodeMap::default();
        let mut unique: Vec<NodeId> = Vec::new();
        for &v in nodes {
            index.entry(v).or_insert_with(|| {
                unique.push(v);
                unique.len() - 1
            });
        }
        let (fetched, stats) = self.fetch_attrs(&unique);
        let mut out = vec![0.0f32; nodes.len() * attr_len];
        for (i, v) in nodes.iter().enumerate() {
            let u = index[v];
            out[i * attr_len..(i + 1) * attr_len]
                .copy_from_slice(&fetched[u * attr_len..(u + 1) * attr_len]);
        }
        (out, stats)
    }

    /// Gathers attributes for arbitrary nodes (order preserved).
    pub fn fetch_attrs(&self, nodes: &[NodeId]) -> (Vec<f32>, RequestStats) {
        self.fetch_attrs_masked(nodes, &[])
    }

    /// [`Cluster::fetch_attrs`] with a per-operation shard exclusion
    /// mask; unreachable nodes' rows stay zeroed and are counted. The
    /// legacy arm: every partition — the local one included — is reached
    /// over its channel.
    pub fn fetch_attrs_masked(
        &self,
        nodes: &[NodeId],
        excluded: &[u32],
    ) -> (Vec<f32>, RequestStats) {
        let attr_len = self
            .graph
            .attributes()
            .expect("cluster requires attributes")
            .attr_len();
        let mut stats = RequestStats {
            attrs_fetched: nodes.len() as u64,
            ..Default::default()
        };
        let parts = self.senders.len();
        let mut groups: Vec<(Vec<NodeId>, Vec<usize>)> = vec![(Vec::new(), Vec::new()); parts];
        for (i, &v) in nodes.iter().enumerate() {
            let p = self.graph.owner(v).0 as usize;
            groups[p].0.push(v);
            groups[p].1.push(i);
        }
        let mut out = vec![0.0f32; nodes.len() * attr_len];
        for (p, (group, pos)) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            if self.unreachable(p, excluded) {
                stats.unreachable_nodes += group.len() as u64;
                continue; // rows stay zeroed: a degraded partial gather
            }
            let (reply_tx, reply_rx) = bounded(1);
            let sent = self.senders[p].send(Request::Attrs {
                nodes: group,
                reply: reply_tx,
            });
            let reply = match sent.ok().and_then(|()| reply_rx.recv().ok()) {
                Some(reply) => reply,
                None => {
                    // The server died between the down-check and the
                    // send/recv: same degraded answer, no panic.
                    stats.unreachable_nodes += pos.len() as u64;
                    continue;
                }
            };
            if PartitionId(p as u32) == self.worker_partition {
                stats.local_requests += 1;
            } else {
                stats.remote_requests += 1;
            }
            for (j, &orig) in pos.iter().enumerate() {
                out[orig * attr_len..(orig + 1) * attr_len]
                    .copy_from_slice(&reply.attrs[j * attr_len..(j + 1) * attr_len]);
            }
            self.pool.put_floats(reply.attrs);
            self.pool.put_nodes(reply.request);
        }
        (out, stats)
    }

    /// Like `fetch_neighbors`, with per-group reply channels so responses
    /// are matched to their request groups.
    pub fn fetch_neighbors_indexed(&self, nodes: &[NodeId]) -> (Vec<Vec<NodeId>>, RequestStats) {
        self.fetch_neighbors_masked(nodes, &[])
    }

    /// [`Cluster::fetch_neighbors_indexed`] with a per-operation shard
    /// exclusion mask; unreachable nodes get empty lists and are counted.
    ///
    /// This is the legacy nested-`Vec` shape: the servers answer flat
    /// (offsets + one array) and this shim splits the reply back into one
    /// `Vec` per node — exactly the per-node allocation cost the flat
    /// data plane removes.
    pub fn fetch_neighbors_masked(
        &self,
        nodes: &[NodeId],
        excluded: &[u32],
    ) -> (Vec<Vec<NodeId>>, RequestStats) {
        let mut stats = RequestStats {
            nodes_expanded: nodes.len() as u64,
            ..Default::default()
        };
        let parts = self.senders.len();
        let mut groups: Vec<(Vec<NodeId>, Vec<usize>)> = vec![(Vec::new(), Vec::new()); parts];
        for (i, &v) in nodes.iter().enumerate() {
            let p = self.graph.owner(v).0 as usize;
            groups[p].0.push(v);
            groups[p].1.push(i);
        }
        let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); nodes.len()];
        for (p, (group, pos)) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            if self.unreachable(p, excluded) {
                stats.unreachable_nodes += group.len() as u64;
                continue; // lists stay empty: the frontier loses this shard
            }
            let (reply_tx, reply_rx) = bounded(1);
            let sent = self.senders[p].send(Request::NeighborsNested {
                nodes: group,
                reply: reply_tx,
            });
            let lists = match sent.ok().and_then(|()| reply_rx.recv().ok()) {
                Some(lists) => lists,
                None => {
                    stats.unreachable_nodes += pos.len() as u64;
                    continue;
                }
            };
            if PartitionId(p as u32) == self.worker_partition {
                stats.local_requests += 1;
            } else {
                stats.remote_requests += 1;
            }
            for (list, &orig) in lists.into_iter().zip(&pos) {
                out[orig] = list;
            }
        }
        (out, stats)
    }

    /// Stops all server threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for tx in &self.senders {
            let _ = tx.send(Request::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        // Dropping without an explicit shutdown still stops the server
        // threads (C-DTOR: destructors never fail, teardown is lossless
        // here since requests are synchronous).
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdgnn_graph::{generators, AttributeStore};

    fn cluster(partitions: u32) -> Cluster {
        let g = generators::power_law(800, 8, 60);
        let attrs = AttributeStore::synthetic(800, 8, 60);
        Cluster::spawn(PartitionedGraph::new(g, partitions).with_attributes(attrs))
    }

    #[test]
    fn neighbors_match_source_graph() {
        let c = cluster(4);
        let nodes: Vec<NodeId> = (0..50).map(NodeId).collect();
        let (lists, stats) = c.fetch_neighbors_indexed(&nodes);
        for (i, list) in lists.iter().enumerate() {
            assert_eq!(list.as_slice(), c.graph().graph().neighbors(nodes[i]));
        }
        assert_eq!(stats.nodes_expanded, 50);
        assert!(stats.remote_requests > 0);
        c.shutdown();
    }

    #[test]
    fn attrs_match_source_store_in_order() {
        let c = cluster(3);
        let nodes = vec![NodeId(700), NodeId(3), NodeId(250)];
        let (attrs, stats) = c.fetch_attrs(&nodes);
        let expect = c.graph().attributes().unwrap().gather(&nodes);
        assert_eq!(attrs, expect);
        assert_eq!(stats.attrs_fetched, 3);
        c.shutdown();
    }

    #[test]
    fn sample_batch_produces_real_edges() {
        let c = cluster(4);
        let roots: Vec<NodeId> = (0..8).map(NodeId).collect();
        let (batch, stats) = c.sample_batch(&roots, 2, 5, 9);
        assert_eq!(batch.hops.len(), 2);
        assert!(batch.total_sampled() > 0);
        for v in &batch.hops[0] {
            assert!(roots.iter().any(|&r| c.graph().graph().has_edge(r, *v)));
        }
        assert!(stats.attrs_fetched > 0);
        c.shutdown();
    }

    #[test]
    fn single_partition_cluster_is_all_local() {
        let c = cluster(1);
        let roots: Vec<NodeId> = (0..4).map(NodeId).collect();
        let (_, stats) = c.sample_batch(&roots, 2, 5, 10);
        assert_eq!(stats.remote_requests, 0);
        assert_eq!(stats.remote_fraction(), 0.0);
        c.shutdown();
    }

    #[test]
    fn remote_fraction_grows_with_partitions() {
        let c2 = cluster(2);
        let c8 = cluster(8);
        let roots: Vec<NodeId> = (0..16).map(NodeId).collect();
        let (_, s2) = c2.sample_batch(&roots, 2, 5, 11);
        let (_, s8) = c8.sample_batch(&roots, 2, 5, 11);
        assert!(s8.remote_fraction() > s2.remote_fraction());
        c2.shutdown();
        c8.shutdown();
    }

    #[test]
    fn deduped_fetch_matches_plain_fetch_with_fewer_requests() {
        let c = cluster(4);
        // A fetch list with heavy repetition (hub re-sampling).
        let nodes: Vec<NodeId> = (0..200).map(|i| NodeId(i % 10)).collect();
        let (plain, s_plain) = c.fetch_attrs(&nodes);
        let (deduped, s_dedup) = c.fetch_attrs_deduped(&nodes);
        assert_eq!(plain, deduped);
        assert!(
            s_dedup.attrs_fetched < s_plain.attrs_fetched / 10,
            "dedup fetched {} vs plain {}",
            s_dedup.attrs_fetched,
            s_plain.attrs_fetched
        );
        c.shutdown();
    }

    #[test]
    fn deterministic_given_seed() {
        let c = cluster(4);
        let roots: Vec<NodeId> = (0..8).map(NodeId).collect();
        let (b1, _) = c.sample_batch(&roots, 2, 5, 42);
        let (b2, _) = c.sample_batch(&roots, 2, 5, 42);
        assert_eq!(b1, b2);
        c.shutdown();
    }

    #[test]
    fn flat_block_matches_legacy_batch_exactly() {
        // The data-plane contract: same cluster, same request, the flat
        // and nested paths produce byte-identical samples and agree on
        // the degradation accounting.
        let c = cluster(4);
        let roots: Vec<NodeId> = (0..16).map(NodeId).collect();
        for seed in [0u64, 7, 42, 1_000_003] {
            let (batch, s_legacy) = c.sample_batch(&roots, 2, 5, seed);
            let (block, s_flat) = c.sample_block(&roots, 2, 5, seed);
            assert_eq!(block, SampleBlock::from_batch(&batch), "seed {seed}");
            assert_eq!(block.digest(), SampleBlock::from_batch(&batch).digest());
            assert_eq!(s_flat.nodes_expanded, s_legacy.nodes_expanded);
            assert_eq!(s_flat.attrs_fetched, s_legacy.attrs_fetched);
            assert_eq!(s_flat.unreachable_nodes, s_legacy.unreachable_nodes);
            assert_eq!(s_flat.local_requests, s_legacy.local_requests);
            assert_eq!(s_flat.remote_requests, s_legacy.remote_requests);
        }
        c.shutdown();
    }

    #[test]
    fn batched_blocks_match_solo_blocks_exactly() {
        // Batch-level coalescing (one fetch per hop per partition for
        // the whole batch) must not change any request's samples, even
        // with mixed hop counts, fanouts and seeds, or under exclusion.
        let c = cluster(4);
        let reqs: Vec<SampleRequest> = (0..5)
            .map(|s| SampleRequest {
                roots: (0..8).map(|r| NodeId((s * 31 + r) % 800)).collect(),
                hops: 1 + (s % 3) as u32,
                fanout: 3 + s as usize % 4,
                seed: s,
            })
            .collect();
        let refs: Vec<&SampleRequest> = reqs.iter().collect();
        for excluded in [&[][..], &[2u32][..]] {
            let (batched, stats) = c.sample_blocks_excluding(&refs, excluded);
            for (r, block) in reqs.iter().zip(&batched) {
                let (solo, _) =
                    c.sample_block_excluding(&r.roots, r.hops, r.fanout, r.seed, excluded);
                assert_eq!(block, &solo, "seed {} excluded {excluded:?}", r.seed);
            }
            assert_eq!(
                stats.coalesce_lookups,
                reqs.iter()
                    .zip(&batched)
                    .map(|(r, b)| r.roots.len() as u64
                        + b.hops()
                            .take(r.hops as usize - 1)
                            .map(|h| h.len() as u64)
                            .sum::<u64>())
                    .sum::<u64>(),
                "every frontier entry goes through the coalescing table"
            );
        }
        c.shutdown();
    }

    #[test]
    fn flat_block_matches_legacy_under_exclusion() {
        let c = cluster(4);
        let roots: Vec<NodeId> = (0..16).map(NodeId).collect();
        let (batch, s_legacy) = c.sample_batch_excluding(&roots, 2, 5, 13, &[2]);
        let (block, s_flat) = c.sample_block_excluding(&roots, 2, 5, 13, &[2]);
        assert_eq!(block, SampleBlock::from_batch(&batch));
        assert!(s_flat.unreachable_nodes > 0);
        assert_eq!(s_flat.unreachable_nodes, s_legacy.unreachable_nodes);
        c.shutdown();
    }

    #[test]
    fn coalescing_counts_duplicate_lookups_without_changing_samples() {
        let c = cluster(2);
        // Duplicate roots force coalescing hits on the very first hop.
        let roots = vec![NodeId(5), NodeId(5), NodeId(5), NodeId(9)];
        let (batch, _) = c.sample_batch(&roots, 2, 4, 3);
        let (block, stats) = c.sample_block(&roots, 2, 4, 3);
        assert_eq!(block, SampleBlock::from_batch(&batch));
        assert!(stats.coalesce_hits >= 2, "dup roots must hit the table");
        assert!(stats.coalesce_lookups >= stats.coalesce_hits);
        assert!(stats.coalesce_hit_rate() > 0.0);
        // Each duplicate root still drew its own samples.
        assert_eq!(block.hop(0).len(), batch.hops[0].len());
        c.shutdown();
    }

    #[test]
    fn flat_blocks_carry_a_valid_adjacency_table() {
        // The flat plane records per-parent child spans; they must tile
        // each hop exactly, respect parent order, contain only genuine
        // neighbors of their parent, and stay valid (empty spans for
        // frontier entries on an excluded shard) under degradation.
        let c = cluster(4);
        let roots: Vec<NodeId> = (0..16).map(NodeId).collect();
        for excluded in [&[][..], &[2u32][..]] {
            let (block, _) = c.sample_block_excluding(&roots, 2, 5, 17, excluded);
            assert!(block.has_adjacency());
            assert_eq!(block.num_parents(), roots.len() + block.hop(0).len());
            // Spans are monotone and end exactly at each hop boundary.
            let mut prev = 0u32;
            for &end in &block.adj_offsets {
                assert!(end >= prev);
                prev = end;
            }
            assert_eq!(
                block.adj_offsets[roots.len() - 1],
                block.hop_offsets[1],
                "root spans tile hop 0"
            );
            assert_eq!(*block.adj_offsets.last().unwrap(), block.hop_offsets[2]);
            // Every recorded child really neighbors its parent.
            let g = c.graph().graph();
            for (j, &parent) in roots.iter().chain(block.hop(0)).enumerate() {
                let parent_list = g.neighbors(parent);
                for &child in block.children(j) {
                    assert!(
                        parent_list.contains(&child),
                        "child {child:?} not a neighbor of parent {parent:?}"
                    );
                }
            }
        }
        // Batched sampling records the identical table.
        let req = SampleRequest {
            roots: roots.clone(),
            hops: 2,
            fanout: 5,
            seed: 17,
        };
        let (batched, _) = c.sample_blocks_excluding(&[&req], &[]);
        let (solo, _) = c.sample_block(&roots, 2, 5, 17);
        assert_eq!(batched[0].adj_offsets, solo.adj_offsets);
        c.shutdown();
    }

    #[test]
    fn pool_recycles_across_block_operations() {
        let c = cluster(2);
        let roots: Vec<NodeId> = (0..8).map(NodeId).collect();
        for seed in 0..6 {
            let (block, _) = c.sample_block(&roots, 2, 5, seed);
            c.pool().put_block(block);
        }
        let s = c.pool().stats();
        assert!(s.reuses > 0, "steady state must reuse buffers: {s:?}");
        assert!(s.reuse_rate() > 0.3, "reuse rate {}", s.reuse_rate());
        c.shutdown();
    }

    #[test]
    fn fetch_attrs_into_matches_masked_path() {
        let c = cluster(3);
        let nodes: Vec<NodeId> = (0..60).map(|i| NodeId(i * 13 % 800)).collect();
        let (want, s_want) = c.fetch_attrs_masked(&nodes, &[1]);
        let mut got = Vec::new();
        let s_got = c.fetch_attrs_into(&nodes, &[1], &mut got);
        assert_eq!(got, want);
        assert_eq!(s_got.attrs_fetched, s_want.attrs_fetched);
        assert_eq!(s_got.unreachable_nodes, s_want.unreachable_nodes);
        c.shutdown();
    }

    #[test]
    fn failed_partition_degrades_instead_of_hanging() {
        let c = cluster(4);
        assert!(c.fail_partition(PartitionId(1)));
        assert!(!c.fail_partition(PartitionId(1)), "second fail is a no-op");
        assert_eq!(c.alive_partitions(), 3);
        assert!(c.partition_down(PartitionId(1)));
        let nodes: Vec<NodeId> = (0..100).map(NodeId).collect();
        let (lists, stats) = c.fetch_neighbors_indexed(&nodes);
        assert!(stats.unreachable_nodes > 0, "partition 1 owns some nodes");
        assert!(stats.any_unreachable());
        for (i, list) in lists.iter().enumerate() {
            if c.graph().owner(nodes[i]) == PartitionId(1) {
                assert!(list.is_empty(), "down shard answers empty");
            } else {
                assert_eq!(list.as_slice(), c.graph().graph().neighbors(nodes[i]));
            }
        }
        c.shutdown();
    }

    #[test]
    fn excluded_shards_mask_only_the_one_operation() {
        let c = cluster(4);
        let roots: Vec<NodeId> = (0..16).map(NodeId).collect();
        let (full, s_full) = c.sample_batch(&roots, 2, 5, 7);
        let (partial, s_part) = c.sample_batch_excluding(&roots, 2, 5, 7, &[2]);
        assert_eq!(s_full.unreachable_nodes, 0);
        assert!(s_part.unreachable_nodes > 0);
        assert!(partial.total_sampled() <= full.total_sampled());
        // The mask is per-operation: the next unmasked call is exact again.
        let (again, s_again) = c.sample_batch(&roots, 2, 5, 7);
        assert_eq!(again, full);
        assert_eq!(s_again.unreachable_nodes, 0);
        c.shutdown();
    }

    #[test]
    fn masked_sampling_is_deterministic() {
        let c = cluster(4);
        let roots: Vec<NodeId> = (0..8).map(NodeId).collect();
        let (b1, s1) = c.sample_batch_excluding(&roots, 2, 5, 42, &[1, 3]);
        let (b2, s2) = c.sample_batch_excluding(&roots, 2, 5, 42, &[1, 3]);
        assert_eq!(b1, b2);
        assert_eq!(s1.unreachable_nodes, s2.unreachable_nodes);
        c.shutdown();
    }

    #[test]
    fn all_partitions_down_still_answers() {
        let c = cluster(2);
        c.fail_partition(PartitionId(0));
        c.fail_partition(PartitionId(1));
        assert_eq!(c.alive_partitions(), 0);
        let roots: Vec<NodeId> = (0..4).map(NodeId).collect();
        let (batch, stats) = c.sample_batch(&roots, 2, 5, 1);
        assert_eq!(batch.total_sampled(), 0, "nothing reachable");
        assert!(stats.unreachable_nodes >= 4);
        // The flat path agrees on total outage too.
        let (block, s_flat) = c.sample_block(&roots, 2, 5, 1);
        assert_eq!(block.total_sampled(), 0);
        assert_eq!(s_flat.unreachable_nodes, stats.unreachable_nodes);
        c.shutdown();
    }
}
