//! An end-to-end link-prediction training driver.
//!
//! This is the workflow LSD-GNN exists for, wired through this
//! repository's own stack: mini-batches sampled through a
//! [`GraphLearnSession`] (CPU cluster or AxE offload), attributes
//! embedded and aggregated with the graphSAGE-max layer, and a logistic
//! link predictor updated per batch with sampled negatives. The trainer
//! reports per-epoch loss so callers can assert convergence — including
//! that it converges identically-well under streaming (Tech-2) sampling.

use crate::offload::{GraphLearnSession, SamplerBackend};
use lsdgnn_graph::{AttributeStore, CsrGraph, NodeId};
use lsdgnn_nn::{LinkPredictor, Matrix, SageMaxLayer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// L2-normalizes an embedding (no-op on zero vectors) so the logistic
/// head sees unit-scale features regardless of layer magnitudes.
fn l2_normalized(v: &[f32]) -> Vec<f32> {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm < 1e-9 {
        v.to_vec()
    } else {
        v.iter().map(|x| x / norm).collect()
    }
}

/// Configuration of a training job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Mini-batch size in root nodes.
    pub batch_size: usize,
    /// Neighbors sampled per root (one hop).
    pub fanout: usize,
    /// Negatives per positive pair.
    pub negative_rate: usize,
    /// Embedding width.
    pub embed_dim: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            batch_size: 32,
            fanout: 5,
            negative_rate: 2,
            embed_dim: 16,
            learning_rate: 0.2,
            seed: 1,
        }
    }
}

/// Progress of one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochReport {
    /// Mean log-loss over the epoch's batches.
    pub mean_loss: f32,
    /// Root nodes processed.
    pub roots: usize,
    /// Nodes sampled.
    pub sampled: usize,
}

/// The training job: owns the model and its sampling session, borrows
/// the graph for structure checks.
pub struct TrainingJob<'a> {
    graph: &'a CsrGraph,
    session: GraphLearnSession,
    sage: SageMaxLayer,
    predictor: LinkPredictor,
    embed: lsdgnn_nn::Linear,
    cfg: TrainerConfig,
    rng: SmallRng,
}

impl std::fmt::Debug for TrainingJob<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainingJob")
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl<'a> TrainingJob<'a> {
    /// Builds a job over a graph + attributes with the chosen sampling
    /// backend.
    pub fn new(
        graph: &'a CsrGraph,
        attributes: &'a AttributeStore,
        backend: SamplerBackend,
        partitions: u32,
        cfg: TrainerConfig,
    ) -> Self {
        let session = GraphLearnSession::open(graph, attributes, backend, partitions, cfg.seed);
        TrainingJob {
            graph,
            sage: SageMaxLayer::new(cfg.embed_dim, cfg.embed_dim, cfg.seed),
            predictor: LinkPredictor::new(cfg.embed_dim, cfg.learning_rate),
            embed: lsdgnn_nn::Linear::new(attributes.attr_len(), cfg.embed_dim, true, cfg.seed),
            cfg,
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0xBEEF),
            session,
        }
    }

    /// Runs one epoch of `batches` mini-batches; returns the report.
    pub fn run_epoch(&mut self, batches: usize) -> EpochReport {
        let n = self.graph.num_nodes();
        let mut total_loss = 0.0f32;
        let mut total_pairs = 0u32;
        let mut total_roots = 0usize;
        let mut total_sampled = 0usize;
        for _ in 0..batches {
            let roots: Vec<NodeId> = (0..self.cfg.batch_size)
                .map(|_| NodeId(self.rng.gen_range(0..n)))
                .collect();
            let batch = self.session.sample(&roots, 1, self.cfg.fanout);
            total_roots += roots.len();
            total_sampled += batch.total_sampled();

            // Embed roots and sampled neighbors.
            let fetch = batch.attr_fetch_list();
            let feats = Matrix::from_vec(
                fetch.len(),
                self.session.attributes().attr_len(),
                self.session.node_attributes(&fetch),
            );
            let emb = self.embed.forward(&feats);

            // Aggregate each root over its sampled run (parent-major
            // layout: roots first, then hop-1 samples in root order).
            let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); roots.len()];
            let mut cursor = roots.len();
            for (i, &root) in roots.iter().enumerate() {
                let take = (self.graph.degree(root) as usize).min(self.cfg.fanout);
                for _ in 0..take {
                    if cursor < fetch.len() {
                        adjacency[i].push(cursor);
                        cursor += 1;
                    }
                }
            }
            let hidden = self.sage.forward(
                &Matrix::from_vec(
                    roots.len(),
                    self.cfg.embed_dim,
                    (0..roots.len()).flat_map(|r| emb.row(r).to_vec()).collect(),
                ),
                &emb,
                &adjacency,
            );

            // Positives: (root, sampled neighbor); negatives: random
            // non-neighbors at the configured rate.
            for (i, &root) in roots.iter().enumerate() {
                if let Some(&first) = adjacency[i].first() {
                    let h_root = l2_normalized(hidden.row(i));
                    total_loss +=
                        self.predictor
                            .train_pair(&h_root, &l2_normalized(emb.row(first)), 1.0);
                    total_pairs += 1;
                    for _ in 0..self.cfg.negative_rate {
                        let neg = NodeId(self.rng.gen_range(0..n));
                        if !self.graph.has_edge(root, neg) {
                            let neg_row = fetch.iter().position(|&v| v == neg);
                            // If the negative was coincidentally in the
                            // batch use its embedding; otherwise embed
                            // its attributes directly.
                            let neg_emb = match neg_row {
                                Some(r) => emb.row(r).to_vec(),
                                None => {
                                    let attrs = self.session.node_attributes(&[neg]);
                                    let m = Matrix::from_vec(
                                        1,
                                        self.session.attributes().attr_len(),
                                        attrs,
                                    );
                                    self.embed.forward(&m).row(0).to_vec()
                                }
                            };
                            let h_root = l2_normalized(hidden.row(i));
                            total_loss +=
                                self.predictor
                                    .train_pair(&h_root, &l2_normalized(&neg_emb), 0.0);
                            total_pairs += 1;
                        }
                    }
                }
            }
        }
        EpochReport {
            mean_loss: if total_pairs == 0 {
                0.0
            } else {
                total_loss / total_pairs as f32
            },
            roots: total_roots,
            sampled: total_sampled,
        }
    }

    /// The trained predictor.
    pub fn predictor(&self) -> &LinkPredictor {
        &self.predictor
    }

    /// Closes the underlying session.
    pub fn finish(self) {
        self.session.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdgnn_graph::generators;

    fn setup() -> (CsrGraph, AttributeStore) {
        let g = generators::power_law(500, 8, 90);
        let a = AttributeStore::synthetic(500, 8, 90);
        (g, a)
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let (g, a) = setup();
        let mut job = TrainingJob::new(&g, &a, SamplerBackend::Axe, 1, TrainerConfig::default());
        let first = job.run_epoch(4);
        let mut last = first;
        for _ in 0..5 {
            last = job.run_epoch(4);
        }
        assert!(first.mean_loss > 0.0);
        assert!(
            last.mean_loss < first.mean_loss,
            "loss did not improve: {} -> {}",
            first.mean_loss,
            last.mean_loss
        );
        assert!(first.roots > 0 && first.sampled > 0);
        job.finish();
    }

    #[test]
    fn cpu_and_axe_backends_both_train() {
        let (g, a) = setup();
        for backend in [SamplerBackend::Cpu, SamplerBackend::Axe] {
            let mut job = TrainingJob::new(&g, &a, backend, 2, TrainerConfig::default());
            let r1 = job.run_epoch(3);
            let mut r2 = r1;
            for _ in 0..4 {
                r2 = job.run_epoch(3);
            }
            assert!(
                r2.mean_loss <= r1.mean_loss * 1.05,
                "{backend:?}: {} -> {}",
                r1.mean_loss,
                r2.mean_loss
            );
            job.finish();
        }
    }

    #[test]
    fn predictor_is_accessible_after_training() {
        let (g, a) = setup();
        let mut job = TrainingJob::new(&g, &a, SamplerBackend::Axe, 1, TrainerConfig::default());
        job.run_epoch(2);
        assert_eq!(job.predictor().dim(), TrainerConfig::default().embed_dim);
        job.finish();
    }
}
