//! Multi-tenant admission control and priority lanes: the overload
//! half of the robustness story (the chaos layer handles *faults*;
//! this module handles *too much load*).
//!
//! The paper's FaaS DSE sizes cards per archetype against a cost model
//! but assumes the offered load is what the provisioning planned for.
//! Under bursty open-loop traffic ([`crate::traffic`]) a fixed-capacity
//! [`SamplingService`] queues unboundedly and blows every SLO at once.
//! The [`ShapedService`] wrapper in this module puts three defenses in
//! front of the same service, each *strictly opt-in* — the unlimited
//! configuration forwards every request untouched and is digest-identical
//! to the unshaped service:
//!
//! 1. **Per-tenant token buckets** — a tenant that exceeds its contracted
//!    rate gets an explicit [`Verdict::Reject`] with a `retry_after_us`
//!    hint instead of silently queueing behind everyone else. The bucket
//!    is checked *first*, in virtual time supplied by the caller, so
//!    rate-limit decisions are a pure function of the arrival sequence —
//!    that is what the `admission_property` proptest pins as "bucket
//!    arithmetic".
//! 2. **Brownout load shedding** — driven by the sampling
//!    [`SloMonitor`]'s burn rate ([`AdmissionController::set_burn`]):
//!    once the error budget burns faster than contracted, best-effort
//!    traffic is shed outright; burn harder and admitted requests are
//!    degraded to a reduced fanout (an approximate sample now beats an
//!    exact sample after the deadline — the same trade the
//!    `DegradeConfig` fallback makes under faults).
//! 3. **Bounded per-class queues with priority lanes** — admitted
//!    requests wait in one of three lanes (interactive / batch /
//!    best-effort) drained strictly in priority order; a full lane is an
//!    explicit [`Verdict::Reject`] with [`RejectReason::QueueFull`],
//!    never unbounded memory.
//!
//! Every decision is recorded in the [`RequestLedger`] as a `Stage`
//! event (`reject` / `shed` / `brownout`), so blame reports name
//! *admission* — not just faults — when requests die at the front door.
//!
//! [`SloMonitor`]: lsdgnn_telemetry::SloMonitor
//! [`RequestLedger`]: lsdgnn_telemetry::RequestLedger

use crate::backend::{SampleRequest, SamplingBackend};
use crate::obs::Observability;
use crate::service::{SampleReply, SampleTicket, SamplingService, ServiceConfig, ServiceStats};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use lsdgnn_telemetry::ledger::{Stage, NO_SHARD};
use lsdgnn_telemetry::{MetricSource, Scope};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Request priority class, in descending order of importance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// A user is waiting on the answer (recommendation, fraud check).
    Interactive,
    /// Deadline-tolerant bulk work (nightly embedding refresh).
    Batch,
    /// Opportunistic traffic: first to be shed under overload.
    BestEffort,
}

/// Number of priority classes (lane count).
pub const CLASSES: usize = 3;

impl Priority {
    /// All classes, highest priority first (lane drain order).
    pub const ALL: [Priority; CLASSES] =
        [Priority::Interactive, Priority::Batch, Priority::BestEffort];

    /// Stable lane index (0 = interactive).
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Batch => 1,
            Priority::BestEffort => 2,
        }
    }

    /// Human-readable class name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
            Priority::BestEffort => "best-effort",
        }
    }
}

/// Token-bucket parameters of one tenant's admission contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketConfig {
    /// Sustained admission rate (tokens refill at this rate).
    pub rate_per_sec: f64,
    /// Bucket depth: the burst admitted above the sustained rate.
    pub burst: f64,
}

impl BucketConfig {
    /// A bucket that never rejects (the no-shaping contract).
    pub fn unlimited() -> Self {
        BucketConfig {
            rate_per_sec: 1e15,
            burst: 1e15,
        }
    }
}

/// A classic token bucket in caller-supplied virtual time.
///
/// Public so tests can replay the exact arithmetic the controller runs:
/// the rejected count of a trace is `try_take` failures over the same
/// `(arrival time, config)` sequence — no float-drift between the
/// controller and its oracle.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    tokens: f64,
    last_us: u64,
}

impl TokenBucket {
    /// A full bucket (a tenant starts with its whole burst allowance).
    pub fn new(cfg: &BucketConfig) -> Self {
        TokenBucket {
            tokens: cfg.burst,
            last_us: 0,
        }
    }

    /// Refills for the elapsed virtual time and takes one token, or
    /// reports how long (µs) until a token will be available. Time may
    /// arrive slightly out of order (concurrent submitters); refill is
    /// computed against the high-water mark so the decision sequence
    /// stays deterministic for a fixed arrival order.
    pub fn try_take(&mut self, cfg: &BucketConfig, now_us: u64) -> Result<(), u64> {
        let dt_s = now_us.saturating_sub(self.last_us) as f64 / 1e6;
        self.last_us = self.last_us.max(now_us);
        self.tokens = (self.tokens + dt_s * cfg.rate_per_sec).min(cfg.burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else if cfg.rate_per_sec > 0.0 {
            let wait_us = ((1.0 - self.tokens) / cfg.rate_per_sec * 1e6).ceil() as u64;
            Err(wait_us.max(1))
        } else {
            Err(u64::MAX)
        }
    }

    /// Tokens currently available.
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

/// One tenant's admission contract.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantConfig {
    /// Tenant name (label in metrics and bench tables).
    pub name: String,
    /// The tenant's token bucket.
    pub bucket: BucketConfig,
}

/// Burn-rate-driven brownout policy: how aggressively to shed as the
/// SLO error budget burns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutConfig {
    /// Burn rate at which best-effort traffic is shed (1.0 = burning
    /// exactly at budget).
    pub shed_burn: f64,
    /// Burn rate at which admitted requests are additionally degraded
    /// to a reduced fanout.
    pub degrade_burn: f64,
    /// Fanout divisor applied to brownout-degraded requests.
    pub degrade_fanout_div: usize,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            shed_burn: 1.0,
            degrade_burn: 2.0,
            degrade_fanout_div: 2,
        }
    }
}

/// Full admission policy: tenant contracts, lane bounds, brownout.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionConfig {
    /// Per-tenant contracts; a request's `tenant` indexes this list.
    pub tenants: Vec<TenantConfig>,
    /// Per-class lane bounds (admitted-but-not-yet-dispatched requests).
    pub queue_bounds: [usize; CLASSES],
    /// Brownout policy; `None` disables burn-driven shedding.
    pub brownout: Option<BrownoutConfig>,
}

impl AdmissionConfig {
    /// The no-shaping policy: unlimited buckets, unbounded lanes, no
    /// brownout. A [`ShapedService`] with this config admits everything
    /// and is digest-identical to the unshaped service.
    pub fn unlimited(tenants: usize) -> Self {
        AdmissionConfig {
            tenants: (0..tenants)
                .map(|t| TenantConfig {
                    name: format!("tenant{t}"),
                    bucket: BucketConfig::unlimited(),
                })
                .collect(),
            queue_bounds: [usize::MAX; CLASSES],
            brownout: None,
        }
    }
}

/// Why a request was rejected at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's token bucket is empty.
    RateLimit,
    /// The priority class's lane is full.
    QueueFull,
}

impl RejectReason {
    /// Ledger `detail` code (matches the `Stage::Reject` docs).
    pub fn code(self) -> u64 {
        match self {
            RejectReason::RateLimit => 1,
            RejectReason::QueueFull => 2,
        }
    }

    /// Human-readable reason.
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::RateLimit => "rate-limit",
            RejectReason::QueueFull => "queue-full",
        }
    }
}

/// The admission decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Admitted into its class lane; `degrade_fanout` marks a brownout
    /// admit that should sample at reduced fanout.
    Admit { degrade_fanout: bool },
    /// Explicitly rejected — the client should retry after the hint.
    Reject {
        /// Why.
        reason: RejectReason,
        /// Earliest useful retry, µs from now (virtual time).
        retry_after_us: u64,
    },
    /// Dropped by brownout load shedding (no retry hint: the system is
    /// telling this class to go away until the budget recovers).
    Shed,
}

/// Per-class admission counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounters {
    /// Requests admitted (including brownout-degraded admits).
    pub accepted: u64,
    /// Requests rejected (rate limit or full lane).
    pub rejected: u64,
    /// Requests dropped by brownout shedding.
    pub shed: u64,
    /// Admits degraded to reduced fanout by brownout.
    pub brownout: u64,
}

/// A snapshot of the controller's accounting, exportable as a
/// [`MetricSource`]: `admission_{accepted,rejected,shed,brownout}`
/// per tenant per class, plus global reject-reason and lane-occupancy
/// counters.
#[derive(Debug, Clone, Default)]
pub struct AdmissionStats {
    /// Per-tenant, per-class counters (tenant order = config order).
    pub tenants: Vec<(String, [ClassCounters; CLASSES])>,
    /// Rejections whose reason was an empty token bucket.
    pub rate_limited: u64,
    /// Rejections whose reason was a full lane.
    pub queue_full: u64,
    /// High-water lane occupancy per class.
    pub max_queue: [u64; CLASSES],
    /// Configured lane bounds (for bound-respected assertions).
    pub queue_bounds: [usize; CLASSES],
}

impl AdmissionStats {
    /// Sums one counter kind across tenants for a class.
    fn class_total(&self, class: Priority, pick: fn(&ClassCounters) -> u64) -> u64 {
        self.tenants
            .iter()
            .map(|(_, c)| pick(&c[class.index()]))
            .sum()
    }

    /// Total admitted across tenants for a class.
    pub fn accepted(&self, class: Priority) -> u64 {
        self.class_total(class, |c| c.accepted)
    }

    /// Total rejected across tenants for a class.
    pub fn rejected(&self, class: Priority) -> u64 {
        self.class_total(class, |c| c.rejected)
    }

    /// Total shed across tenants for a class.
    pub fn shed(&self, class: Priority) -> u64 {
        self.class_total(class, |c| c.shed)
    }

    /// Total brownout-degraded admits across tenants for a class.
    pub fn brownout(&self, class: Priority) -> u64 {
        self.class_total(class, |c| c.brownout)
    }

    /// True when no lane's high-water mark ever exceeded its bound.
    pub fn bounds_respected(&self) -> bool {
        self.max_queue
            .iter()
            .zip(self.queue_bounds)
            .all(|(&hw, bound)| hw as usize <= bound)
    }
}

impl MetricSource for AdmissionStats {
    fn collect(&self, out: &mut Scope<'_>) {
        out.counter("admission_rate_limited", self.rate_limited);
        out.counter("admission_queue_full", self.queue_full);
        for class in Priority::ALL {
            out.gauge(
                &format!("lane_max_depth_{}", class.name()),
                self.max_queue[class.index()] as f64,
            );
        }
        for (tenant, classes) in &self.tenants {
            let mut t = out.nested(tenant);
            for class in Priority::ALL {
                let c = &classes[class.index()];
                let mut s = t.nested(class.name());
                s.counter("admission_accepted", c.accepted);
                s.counter("admission_rejected", c.rejected);
                s.counter("admission_shed", c.shed);
                s.counter("admission_brownout", c.brownout);
            }
        }
    }
}

/// The decision core: token buckets + brownout level + lane bounds.
///
/// Deliberately *pure* — virtual time comes from the caller, the SLO
/// burn rate is fed via [`AdmissionController::set_burn`], and no clock
/// or lock is touched inside. [`ShapedService`] drives it with wall-or-
/// trace time and the live [`SloMonitor`]; the `faas` autoscaler drives
/// the same type with simulated time and a simulated monitor.
///
/// [`SloMonitor`]: lsdgnn_telemetry::SloMonitor
#[derive(Debug, Clone)]
pub struct AdmissionController {
    cfg: AdmissionConfig,
    buckets: Vec<TokenBucket>,
    queue_len: [usize; CLASSES],
    burn: f64,
    stats: AdmissionStats,
}

impl AdmissionController {
    /// Builds the controller from a policy.
    ///
    /// # Panics
    ///
    /// Panics if the config names no tenants.
    pub fn new(cfg: AdmissionConfig) -> Self {
        assert!(
            !cfg.tenants.is_empty(),
            "admission needs at least one tenant"
        );
        let buckets = cfg
            .tenants
            .iter()
            .map(|t| TokenBucket::new(&t.bucket))
            .collect();
        let stats = AdmissionStats {
            tenants: cfg
                .tenants
                .iter()
                .map(|t| (t.name.clone(), [ClassCounters::default(); CLASSES]))
                .collect(),
            queue_bounds: cfg.queue_bounds,
            ..AdmissionStats::default()
        };
        AdmissionController {
            cfg,
            buckets,
            queue_len: [0; CLASSES],
            burn: 0.0,
            stats,
        }
    }

    /// Feeds the current SLO burn rate (violation rate / budget); the
    /// brownout ladder reads this on every decision.
    pub fn set_burn(&mut self, burn: f64) {
        self.burn = burn;
    }

    /// Current brownout level: 0 = none, 1 = shed best-effort,
    /// 2 = also degrade admitted fanout.
    pub fn brownout_level(&self) -> u8 {
        match self.cfg.brownout {
            None => 0,
            Some(b) => {
                if self.burn >= b.degrade_burn {
                    2
                } else if self.burn >= b.shed_burn {
                    1
                } else {
                    0
                }
            }
        }
    }

    /// Decides one request's fate. Order matters and is part of the
    /// contract: (1) token bucket — so rate-limit verdicts are a pure
    /// function of the tenant's arrival times; (2) brownout shedding;
    /// (3) lane bound. Exactly one counter is bumped per call.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn decide(&mut self, tenant: usize, class: Priority, now_us: u64) -> Verdict {
        let bucket_cfg = self.cfg.tenants[tenant].bucket;
        let bucket = self.buckets[tenant].try_take(&bucket_cfg, now_us);
        let level = self.brownout_level();
        let lane = class.index();
        if let Err(retry_after_us) = bucket {
            self.stats.tenants[tenant].1[lane].rejected += 1;
            self.stats.rate_limited += 1;
            return Verdict::Reject {
                reason: RejectReason::RateLimit,
                retry_after_us,
            };
        }
        if level >= 1 && class == Priority::BestEffort {
            self.stats.tenants[tenant].1[lane].shed += 1;
            return Verdict::Shed;
        }
        if self.queue_len[lane] >= self.cfg.queue_bounds[lane] {
            self.stats.tenants[tenant].1[lane].rejected += 1;
            self.stats.queue_full += 1;
            // A full lane clears at the service rate; the bucket refill
            // interval is the natural pacing hint we have on hand.
            let retry_after_us = if bucket_cfg.rate_per_sec > 0.0 {
                ((1.0 / bucket_cfg.rate_per_sec) * 1e6).ceil() as u64
            } else {
                1_000
            };
            return Verdict::Reject {
                reason: RejectReason::QueueFull,
                retry_after_us: retry_after_us.max(1),
            };
        }
        self.queue_len[lane] += 1;
        self.stats.max_queue[lane] = self.stats.max_queue[lane].max(self.queue_len[lane] as u64);
        let counters = &mut self.stats.tenants[tenant].1[lane];
        counters.accepted += 1;
        let degrade_fanout = level >= 2;
        if degrade_fanout {
            counters.brownout += 1;
        }
        Verdict::Admit { degrade_fanout }
    }

    /// A request left its lane (dispatched to the service).
    pub fn dequeued(&mut self, class: Priority) {
        let lane = class.index();
        debug_assert!(self.queue_len[lane] > 0, "dequeue from an empty lane");
        self.queue_len[lane] = self.queue_len[lane].saturating_sub(1);
    }

    /// Current lane occupancy.
    pub fn queue_len(&self, class: Priority) -> usize {
        self.queue_len[class.index()]
    }

    /// The policy this controller enforces.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Snapshot of the accounting.
    pub fn stats(&self) -> AdmissionStats {
        self.stats.clone()
    }
}

/// A request as the shaped front door sees it: payload + tenancy +
/// class + deadline.
#[derive(Debug, Clone)]
pub struct ShapedRequest {
    /// The sampling payload.
    pub req: SampleRequest,
    /// Index into [`AdmissionConfig::tenants`].
    pub tenant: usize,
    /// Priority class (lane).
    pub class: Priority,
    /// Relative deadline from submission; drives slack-based batch
    /// close in the inner service.
    pub deadline: Duration,
}

/// What [`ShapedService::submit`] hands back: exactly one terminal
/// outcome per submission (the proptest's conservation law).
#[derive(Debug)]
pub enum SubmitVerdict {
    /// Admitted: wait on the ticket for the (possibly degraded) reply.
    Admitted(SampleTicket),
    /// Rejected with an explicit retry hint — nothing was queued.
    Rejected {
        /// Why.
        reason: RejectReason,
        /// Earliest useful retry, µs.
        retry_after_us: u64,
    },
    /// Dropped by brownout shedding — nothing was queued.
    Shed,
}

struct LaneJob {
    req: SampleRequest,
    submitted: Instant,
    deadline: Duration,
    class: Priority,
    trace: u64,
    reply: Sender<SampleReply>,
}

/// [`SamplingService`] behind admission control and priority lanes.
///
/// Three lanes sit between [`ShapedService::submit`] and the inner
/// service's bounded queue; a pump thread drains them strictly
/// interactive → batch → best-effort, so under overload the inner
/// queue's backpressure lands on the lowest class first. Lane bounds
/// are enforced by the [`AdmissionController`] (channel capacity is
/// logical, not physical), and every admission decision is both counted
/// and — with observability installed — recorded in the request ledger.
pub struct ShapedService {
    inner: Option<Arc<SamplingService>>,
    ctrl: Arc<Mutex<AdmissionController>>,
    /// Lane senders plus the wake doorbell: exactly one token per
    /// admitted job, so the pump never busy-polls.
    lanes: Option<([Sender<LaneJob>; CLASSES], Sender<()>)>,
    pump: Option<JoinHandle<()>>,
    obs: Option<Observability>,
}

impl std::fmt::Debug for ShapedService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShapedService")
            .field("config", &self.service().config())
            .finish()
    }
}

fn pump_loop(
    lanes: [Receiver<LaneJob>; CLASSES],
    wake: Receiver<()>,
    inner: Arc<SamplingService>,
    ctrl: Arc<Mutex<AdmissionController>>,
) {
    // One doorbell token is sent *after* its job, so every received
    // token finds at least one queued job somewhere; the pump takes the
    // highest-priority one available right now (strict priority without
    // busy-polling). The doorbell disconnects only after every lane
    // sender is dropped, and `recv` drains buffered tokens first, so
    // disconnect implies the lanes are empty.
    while wake.recv().is_ok() {
        let (lane, job) = lanes
            .iter()
            .enumerate()
            .find_map(|(i, rx)| rx.try_recv().ok().map(|job| (i, job)))
            .expect("doorbell token implies a queued job");
        ctrl.lock()
            .expect("admission lock")
            .dequeued(Priority::ALL[lane]);
        // Forward into the inner bounded queue. This blocks when the
        // service is saturated — by construction the wait is charged to
        // the lowest-priority job the pump picked, because higher lanes
        // were empty when it was chosen.
        inner.submit_routed(
            job.req,
            job.submitted,
            Some(job.submitted + job.deadline),
            job.class,
            job.trace,
            job.reply,
        );
    }
}

impl ShapedService {
    /// Starts the inner service and the lane pump.
    ///
    /// # Panics
    ///
    /// Panics on a zero-sized service config or an empty tenant list.
    pub fn start(
        backend: Box<dyn SamplingBackend>,
        config: ServiceConfig,
        admission: AdmissionConfig,
        obs: Option<Observability>,
    ) -> Self {
        let inner = Arc::new(SamplingService::start_observed(
            backend,
            config,
            None,
            None,
            obs.clone(),
        ));
        let ctrl = Arc::new(Mutex::new(AdmissionController::new(admission)));
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..CLASSES).map(|_| unbounded()).unzip();
        let lanes: [Sender<LaneJob>; CLASSES] =
            txs.try_into().expect("exactly CLASSES lane senders");
        let rxs: [Receiver<LaneJob>; CLASSES] =
            rxs.try_into().expect("exactly CLASSES lane receivers");
        let (wake_tx, wake_rx) = unbounded();
        let pump = {
            let inner = inner.clone();
            let ctrl = ctrl.clone();
            std::thread::spawn(move || pump_loop(rxs, wake_rx, inner, ctrl))
        };
        ShapedService {
            inner: Some(inner),
            ctrl,
            lanes: Some((lanes, wake_tx)),
            pump: Some(pump),
            obs,
        }
    }

    /// The inner service (valid until shutdown).
    fn service(&self) -> &SamplingService {
        self.inner.as_ref().expect("service running")
    }

    /// Submits one request through admission at virtual time `now_us`
    /// (callers replaying a trace pass the arrival timestamp; wall-clock
    /// callers pass any monotonic µs reading). Returns exactly one
    /// terminal verdict; only `Admitted` occupies any queue.
    pub fn submit(&self, sr: ShapedRequest, now_us: u64) -> SubmitVerdict {
        let burn = self.obs.as_ref().map_or(0.0, |o| o.sampling_burn_rate());
        let verdict = {
            let mut ctrl = self.ctrl.lock().expect("admission lock");
            ctrl.set_burn(burn);
            ctrl.decide(sr.tenant, sr.class, now_us)
        };
        match verdict {
            Verdict::Reject {
                reason,
                retry_after_us,
            } => {
                self.record_refusal(Stage::Reject, reason.code());
                SubmitVerdict::Rejected {
                    reason,
                    retry_after_us,
                }
            }
            Verdict::Shed => {
                self.record_refusal(Stage::Shed, sr.class.index() as u64);
                SubmitVerdict::Shed
            }
            Verdict::Admit { degrade_fanout } => {
                let mut req = sr.req;
                if degrade_fanout {
                    let div = self
                        .ctrl
                        .lock()
                        .expect("admission lock")
                        .config()
                        .brownout
                        .map_or(2, |b| b.degrade_fanout_div.max(1));
                    req.fanout = (req.fanout / div).max(1);
                }
                let trace = self.service().register_submit(&req);
                if degrade_fanout && trace != 0 {
                    if let Some(o) = &self.obs {
                        let mut h = o.ledger().handle();
                        h.record(
                            trace,
                            Stage::Brownout,
                            NO_SHARD,
                            0.0,
                            0.0,
                            sr.class.index() as u64,
                        );
                    }
                }
                let (reply, rx) = bounded(1);
                let (lanes, wake) = self.lanes.as_ref().expect("service running");
                lanes[sr.class.index()]
                    .send(LaneJob {
                        req,
                        submitted: Instant::now(),
                        deadline: sr.deadline,
                        class: sr.class,
                        trace,
                        reply,
                    })
                    .expect("lane pump alive");
                // Job first, then its doorbell token (the pump's
                // token-implies-job invariant).
                wake.send(()).expect("lane pump alive");
                SubmitVerdict::Admitted(SampleTicket::from_parts(rx, trace))
            }
        }
    }

    /// Ledger event for a refused request: it never got a service trace,
    /// so it gets a fresh one holding only the refusal stage.
    fn record_refusal(&self, stage: Stage, detail: u64) {
        if let Some(o) = &self.obs {
            let trace = o.ledger().next_trace();
            let mut h = o.ledger().handle();
            h.record(trace, stage, NO_SHARD, 0.0, 0.0, detail);
        }
    }

    /// Inner service stats.
    pub fn stats(&self) -> ServiceStats {
        self.service().stats()
    }

    /// Admission accounting snapshot.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.ctrl.lock().expect("admission lock").stats()
    }

    /// The observability bundle, if installed.
    pub fn observability(&self) -> Option<&Observability> {
        self.obs.as_ref()
    }

    /// Drains the lanes and the inner service, then stops both.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        drop(self.lanes.take()); // close lanes: pump drains and exits
        if let Some(pump) = self.pump.take() {
            let _ = pump.join();
        }
        // The pump's clone is gone; unwrap the Arc and stop the service.
        // (If unwrapping somehow fails, SamplingService's own Drop still
        // shuts it down when the last clone dies.)
        if let Some(inner) = self.inner.take().and_then(Arc::into_inner) {
            inner.shutdown();
        }
    }
}

impl Drop for ShapedService {
    fn drop(&mut self) {
        if self.pump.is_some() {
            self.shutdown_inner();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::CpuBackend;
    use lsdgnn_graph::{generators, AttributeStore, NodeId};

    fn req(seed: u64) -> SampleRequest {
        SampleRequest {
            roots: (0..6).map(NodeId).collect(),
            hops: 2,
            fanout: 4,
            seed,
        }
    }

    fn shaped(admission: AdmissionConfig) -> ShapedService {
        let g = generators::power_law(400, 8, 17);
        let a = AttributeStore::synthetic(400, 8, 17);
        ShapedService::start(
            Box::new(CpuBackend::new(&g, &a, 2)),
            ServiceConfig::default(),
            admission,
            None,
        )
    }

    fn shaped_req(seed: u64, tenant: usize, class: Priority) -> ShapedRequest {
        ShapedRequest {
            req: req(seed),
            tenant,
            class,
            deadline: Duration::from_millis(50),
        }
    }

    #[test]
    fn unlimited_config_admits_everything_with_exact_replies() {
        let svc = shaped(AdmissionConfig::unlimited(1));
        let g = generators::power_law(400, 8, 17);
        let a = AttributeStore::synthetic(400, 8, 17);
        let direct = CpuBackend::new(&g, &a, 2);
        for seed in 0..6 {
            match svc.submit(shaped_req(seed, 0, Priority::Interactive), seed * 100) {
                SubmitVerdict::Admitted(t) => {
                    assert_eq!(t.wait(), direct.sample_neighbors(&req(seed)));
                }
                other => panic!("unlimited config must admit, got {other:?}"),
            }
        }
        let st = svc.admission_stats();
        assert_eq!(st.accepted(Priority::Interactive), 6);
        assert_eq!(st.rejected(Priority::Interactive), 0);
        assert!(st.bounds_respected());
        svc.shutdown();
    }

    #[test]
    fn empty_bucket_rejects_with_retry_hint() {
        let mut cfg = AdmissionConfig::unlimited(1);
        cfg.tenants[0].bucket = BucketConfig {
            rate_per_sec: 10.0,
            burst: 2.0,
        };
        let svc = shaped(cfg);
        // Burst of 2 admitted at t=0, the third rejected ~100ms out.
        let mut verdicts = Vec::new();
        for seed in 0..3 {
            verdicts.push(svc.submit(shaped_req(seed, 0, Priority::Interactive), 0));
        }
        assert!(matches!(verdicts[0], SubmitVerdict::Admitted(_)));
        assert!(matches!(verdicts[1], SubmitVerdict::Admitted(_)));
        match &verdicts[2] {
            SubmitVerdict::Rejected {
                reason,
                retry_after_us,
            } => {
                assert_eq!(*reason, RejectReason::RateLimit);
                assert_eq!(*retry_after_us, 100_000, "1 token at 10/s = 100ms");
            }
            other => panic!("third burst request must be rate-limited, got {other:?}"),
        }
        // Virtual time heals the bucket.
        assert!(matches!(
            svc.submit(shaped_req(9, 0, Priority::Interactive), 150_000),
            SubmitVerdict::Admitted(_)
        ));
        let st = svc.admission_stats();
        assert_eq!(st.rate_limited, 1);
        assert_eq!(st.rejected(Priority::Interactive), 1);
        svc.shutdown();
    }

    #[test]
    fn brownout_sheds_best_effort_then_degrades_fanout() {
        let mut ctrl = AdmissionController::new(AdmissionConfig {
            brownout: Some(BrownoutConfig::default()),
            ..AdmissionConfig::unlimited(1)
        });
        // Budget intact: everything admitted exactly.
        assert_eq!(
            ctrl.decide(0, Priority::BestEffort, 0),
            Verdict::Admit {
                degrade_fanout: false
            }
        );
        ctrl.dequeued(Priority::BestEffort);
        // Burning at budget: best-effort shed, others exact.
        ctrl.set_burn(1.0);
        assert_eq!(ctrl.brownout_level(), 1);
        assert_eq!(ctrl.decide(0, Priority::BestEffort, 1), Verdict::Shed);
        assert_eq!(
            ctrl.decide(0, Priority::Interactive, 2),
            Verdict::Admit {
                degrade_fanout: false
            }
        );
        ctrl.dequeued(Priority::Interactive);
        // Burning at 2x budget: survivors degraded.
        ctrl.set_burn(2.5);
        assert_eq!(ctrl.brownout_level(), 2);
        assert_eq!(
            ctrl.decide(0, Priority::Interactive, 3),
            Verdict::Admit {
                degrade_fanout: true
            }
        );
        let st = ctrl.stats();
        assert_eq!(st.shed(Priority::BestEffort), 1);
        assert_eq!(st.brownout(Priority::Interactive), 1);
    }

    #[test]
    fn lane_bound_rejects_queue_full() {
        let mut ctrl = AdmissionController::new(AdmissionConfig {
            queue_bounds: [1, 1, 1],
            ..AdmissionConfig::unlimited(1)
        });
        assert!(matches!(
            ctrl.decide(0, Priority::Batch, 0),
            Verdict::Admit { .. }
        ));
        match ctrl.decide(0, Priority::Batch, 1) {
            Verdict::Reject { reason, .. } => assert_eq!(reason, RejectReason::QueueFull),
            other => panic!("full lane must reject, got {other:?}"),
        }
        // Other lanes are unaffected.
        assert!(matches!(
            ctrl.decide(0, Priority::Interactive, 2),
            Verdict::Admit { .. }
        ));
        ctrl.dequeued(Priority::Batch);
        assert!(matches!(
            ctrl.decide(0, Priority::Batch, 3),
            Verdict::Admit { .. }
        ));
        let st = ctrl.stats();
        assert_eq!(st.queue_full, 1);
        assert_eq!(st.max_queue, [1, 1, 0], "best-effort lane saw no traffic");
        assert!(st.bounds_respected());
    }

    #[test]
    fn stats_export_per_tenant_per_class_counters() {
        let mut cfg = AdmissionConfig::unlimited(2);
        cfg.tenants[1].bucket = BucketConfig {
            rate_per_sec: 1.0,
            burst: 1.0,
        };
        let mut ctrl = AdmissionController::new(cfg);
        assert!(matches!(
            ctrl.decide(0, Priority::Interactive, 0),
            Verdict::Admit { .. }
        ));
        assert!(matches!(
            ctrl.decide(1, Priority::Batch, 0),
            Verdict::Admit { .. }
        ));
        assert!(matches!(
            ctrl.decide(1, Priority::Batch, 0),
            Verdict::Reject { .. }
        ));
        let mut reg = lsdgnn_telemetry::Registry::new();
        reg.register("admission", &[], Box::new(ctrl.stats()));
        let snap = reg.snapshot();
        assert_eq!(
            snap.get("admission/tenant0/interactive/admission_accepted")
                .unwrap()
                .as_f64(),
            1.0
        );
        assert_eq!(
            snap.get("admission/tenant1/batch/admission_rejected")
                .unwrap()
                .as_f64(),
            1.0
        );
        assert_eq!(
            snap.get("admission/admission_rate_limited")
                .unwrap()
                .as_f64(),
            1.0
        );
        assert_eq!(
            snap.get("admission/tenant1/best-effort/admission_shed")
                .unwrap()
                .as_f64(),
            0.0
        );
    }

    #[test]
    fn ledger_records_refusal_stages() {
        let obs = Observability::default();
        let mut cfg = AdmissionConfig::unlimited(1);
        cfg.tenants[0].bucket = BucketConfig {
            rate_per_sec: 1.0,
            burst: 1.0,
        };
        let g = generators::power_law(400, 8, 17);
        let a = AttributeStore::synthetic(400, 8, 17);
        let svc = ShapedService::start(
            Box::new(CpuBackend::new(&g, &a, 2)),
            ServiceConfig::default(),
            cfg,
            Some(obs.clone()),
        );
        match svc.submit(shaped_req(0, 0, Priority::Interactive), 0) {
            SubmitVerdict::Admitted(t) => {
                t.wait_reply();
            }
            other => panic!("first request admitted, got {other:?}"),
        }
        assert!(matches!(
            svc.submit(shaped_req(1, 0, Priority::Interactive), 0),
            SubmitVerdict::Rejected { .. }
        ));
        svc.shutdown();
        let snap = obs.ledger().snapshot();
        assert!(
            snap.events.iter().any(|e| e.stage == Stage::Reject),
            "refusals must land in the ledger"
        );
    }
}
