//! [`ChaosBackend`]: deterministic fault injection wrapped around any
//! [`SamplingBackend`].
//!
//! The decorator consults a [`lsdgnn_chaos::FaultPlan`] on every
//! fallible attempt and translates scheduled faults into the backend
//! vocabulary the serving layer already degrades around:
//!
//! * **request loss** — the attempt returns [`BackendError::Injected`];
//!   the loss decision is a pure function of `(plan seed, request seed,
//!   attempt)`, so a retry can succeed where the first try vanished.
//! * **card failure at time T** — requests whose *virtual tick* is past
//!   T see those cards excluded via
//!   [`SamplingBackend::sample_excluding`], yielding a partial, degraded
//!   outcome.
//! * **stragglers** — the serving card's scheduled slowdown becomes a
//!   real `thread::sleep`, stretching latency without touching results.
//!
//! Virtual time: a request's tick is its `seed`. The bench harness
//! assigns seeds as per-request sequence numbers, so "card 2 dies at
//! tick 300" means requests 300+ lose card 2 — regardless of thread
//! interleaving, worker count, or wall-clock noise. That is what makes a
//! chaos run replayable byte for byte.

use crate::backend::{BackendError, SampleOutcome, SampleRequest, SamplingBackend};
use crate::cluster::RequestStats;
use lsdgnn_chaos::FaultInjector;
use lsdgnn_graph::NodeId;
use lsdgnn_sampler::SampleBlock;
use lsdgnn_telemetry::ledger::{self, faults, Stage, NO_SHARD};
use std::time::Duration;

/// A fault-injecting decorator over any sampling backend.
pub struct ChaosBackend {
    inner: Box<dyn SamplingBackend>,
    injector: FaultInjector,
}

impl std::fmt::Debug for ChaosBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosBackend")
            .field("plan_digest", &self.injector.plan().digest())
            .finish()
    }
}

impl ChaosBackend {
    /// Wraps `inner`, injecting the faults `injector`'s plan schedules.
    pub fn new(inner: Box<dyn SamplingBackend>, injector: FaultInjector) -> Self {
        ChaosBackend { inner, injector }
    }

    /// The injector (shared counters + plan) driving this backend.
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Cards the plan has down at virtual tick `now`.
    fn downs_at(&self, now: u64) -> Vec<u32> {
        (0..self.inner.shards())
            .filter(|&c| self.injector.plan().card_down(c, now))
            .collect()
    }

    /// Sleeps out the serving card's scheduled straggler delay, if any.
    fn straggle(&self, req: &SampleRequest) {
        let card = (req.seed % self.inner.shards().max(1) as u64) as u32;
        let delay_us = self.injector.straggler_delay_us(card, req.seed);
        if delay_us > 0 {
            if ledger::scope_active() {
                ledger::scope_record(Stage::Fault, card, delay_us as f64, 0.0, faults::STRAGGLER);
            }
            std::thread::sleep(Duration::from_micros(delay_us));
        }
    }
}

impl SamplingBackend for ChaosBackend {
    /// The fault-free path stays fault-free: parity tests compare this
    /// against the bare backend.
    fn sample_block(&self, req: &SampleRequest) -> SampleBlock {
        self.inner.sample_block(req)
    }

    fn recycle(&self, block: SampleBlock) {
        self.inner.recycle(block);
    }

    fn gather_attributes(&self, nodes: &[NodeId]) -> Vec<f32> {
        self.inner.gather_attributes(nodes)
    }

    fn gather_attr_rows(
        &self,
        nodes: &[NodeId],
        rows: &mut Vec<f32>,
        slot_of: &mut Vec<u32>,
    ) -> usize {
        self.inner.gather_attr_rows(nodes, rows, slot_of)
    }

    fn stats(&self) -> RequestStats {
        self.inner.stats()
    }

    fn flush(&self) {
        self.inner.flush();
    }

    fn try_sample(&self, req: &SampleRequest, attempt: u32) -> Result<SampleOutcome, BackendError> {
        self.straggle(req);
        if self.injector.drop_request(req.seed, attempt) {
            if ledger::scope_active() {
                ledger::scope_record(Stage::Fault, NO_SHARD, 0.0, 0.0, faults::REQUEST_LOSS);
            }
            return Err(BackendError::Injected);
        }
        let now = req.seed;
        let downs = self.downs_at(now);
        if downs.is_empty() {
            self.inner.try_sample(req, attempt)
        } else {
            self.injector.note_cards_down(&downs);
            if ledger::scope_active() {
                for &card in &downs {
                    ledger::scope_record(Stage::Fault, card, 0.0, 0.0, faults::CARD_DOWN);
                }
            }
            Ok(self.inner.sample_excluding(req, &downs))
        }
    }

    /// The fallback path: immune to request loss (it models local
    /// recomputation, not another trip over the faulty transport) but
    /// still honest about down cards — they stay excluded.
    fn sample_excluding(&self, req: &SampleRequest, excluded: &[u32]) -> SampleOutcome {
        let mut downs = self.downs_at(req.seed);
        if ledger::scope_active() {
            for &card in &downs {
                ledger::scope_record(Stage::Fault, card, 0.0, 0.0, faults::CARD_DOWN);
            }
        }
        for &e in excluded {
            if !downs.contains(&e) {
                downs.push(e);
            }
        }
        downs.sort_unstable();
        if !downs.is_empty() {
            self.injector.note_cards_down(&downs);
        }
        self.inner.sample_excluding(req, &downs)
    }

    fn fail_shard(&self, shard: u32) -> bool {
        self.inner.fail_shard(shard)
    }

    fn shards(&self) -> u32 {
        self.inner.shards()
    }

    fn cache_snapshot(&self) -> Option<crate::hot_cache::CacheSnapshot> {
        self.inner.cache_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::CpuBackend;
    use lsdgnn_chaos::{FaultPlan, ScenarioSpec};
    use lsdgnn_graph::{generators, AttributeStore};

    fn cpu() -> Box<dyn SamplingBackend> {
        let g = generators::power_law(400, 8, 21);
        let a = AttributeStore::synthetic(400, 8, 21);
        Box::new(CpuBackend::new(&g, &a, 4))
    }

    fn req(seed: u64) -> SampleRequest {
        SampleRequest {
            roots: (0..8).map(NodeId).collect(),
            hops: 2,
            fanout: 5,
            seed,
        }
    }

    fn chaos(spec: ScenarioSpec) -> ChaosBackend {
        let plan = FaultPlan::build(99, spec).unwrap();
        ChaosBackend::new(cpu(), FaultInjector::new(plan))
    }

    #[test]
    fn zero_fault_plan_is_transparent() {
        let bare = cpu();
        let wrapped = chaos(ScenarioSpec::none());
        for s in 0..6 {
            let outcome = wrapped.try_sample(&req(s), 0).unwrap();
            assert!(!outcome.degraded);
            assert_eq!(outcome.block, bare.sample_block(&req(s)));
        }
        assert_eq!(wrapped.injector().stats().requests_dropped, 0);
    }

    #[test]
    fn request_loss_fails_some_attempts_and_retries_recover() {
        let b = chaos(ScenarioSpec::none().with_request_loss(0.5));
        let mut dropped = 0;
        for s in 0..64 {
            match b.try_sample(&req(s), 0) {
                Ok(_) => {}
                Err(BackendError::Injected) => {
                    dropped += 1;
                    // Retries draw fresh coordinates; one of the next few
                    // succeeds with probability 1 - 0.5^n.
                    let recovered = (1..12).any(|a| b.try_sample(&req(s), a).is_ok());
                    assert!(recovered, "seed {s} never recovered");
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(dropped > 10, "50% loss must drop a fair share: {dropped}");
        // The recovery probes above also count their own failed attempts.
        assert!(b.injector().stats().requests_dropped >= dropped);
    }

    #[test]
    fn card_failure_degrades_requests_past_its_tick() {
        let b = chaos(ScenarioSpec::none().with_card_failure(1, 100));
        let before = b.try_sample(&req(50), 0).unwrap();
        assert!(!before.degraded, "card still up at tick 50");
        let after = b.try_sample(&req(150), 0).unwrap();
        assert!(after.degraded, "card 1 down at tick 150");
        assert!(after.unreachable > 0);
        assert!(b.injector().stats().cards_downed >= 1);
        // Deterministic: the same request degrades identically again.
        assert_eq!(b.try_sample(&req(150), 0).unwrap(), after);
    }

    #[test]
    fn fallback_bypasses_request_loss_but_not_down_cards() {
        let b = chaos(
            ScenarioSpec::none()
                .with_request_loss(1.0)
                .with_card_failure(2, 0),
        );
        // Every try_sample attempt is swallowed...
        assert_eq!(b.try_sample(&req(9), 0), Err(BackendError::Injected));
        // ...but the fallback still answers, degraded by the dead card.
        let outcome = b.sample_excluding(&req(9), &[]);
        assert!(outcome.degraded);
        assert!(outcome.unreachable > 0);
    }
}
