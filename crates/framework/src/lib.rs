//! Mini-AliGraph: the industrial framework layer of the reproduction
//! (paper §2.4 and §5).
//!
//! The serving stack, bottom to top:
//!
//! * [`cluster`] — a real multi-threaded distributed graph service in the
//!   AliGraph mold: one *server* thread per partition owning that shard's
//!   adjacency + attributes, *workers* driving traversal/sampling through
//!   bounded message channels. Local/remote request accounting feeds the
//!   Figure 2(b)/(c) characterization.
//! * [`backend`] — the hardware-abstraction layer: the
//!   [`SamplingBackend`] trait plus its implementations — `CpuBackend`
//!   (the cluster), `AxeBackend` (the Access Engine, in [`offload`]) and
//!   the `CachedBackend` decorator folding a [`hot_cache`] attribute tier
//!   in front of any of them; the cluster itself can mount the full
//!   two-tier [`hot_cache::HotSetCache`] inline on its remote data plane.
//! * [`service`] — the batched, backpressured [`SamplingService`]:
//!   worker shards coalescing `SampleRequest`s from a bounded queue into
//!   deadline-bounded batches, with queue/batch/latency histograms.
//! * [`cpu_model`] — the calibrated CPU-baseline timing model: per-vCPU
//!   sampling rate and the sub-linear server-scaling curve of
//!   Figure 2(b).
//! * [`offload`] — the near-transparent user interface of §5: a
//!   `GraphLearnSession` whose sampling calls route through the service
//!   over either backend, unchanged for the caller.
//!
//! # Example
//!
//! ```
//! use lsdgnn_framework::{CpuBackend, SampleRequest, SamplingService};
//! use lsdgnn_graph::{generators, AttributeStore, NodeId};
//!
//! let g = generators::power_law(500, 8, 1);
//! let attrs = AttributeStore::synthetic(500, 16, 1);
//! // The one-line backend choice: swap CpuBackend for AxeBackend and
//! // the rest of this snippet is unchanged.
//! let service = SamplingService::with_defaults(Box::new(CpuBackend::new(&g, &attrs, 4)));
//! let batch = service.sample(SampleRequest {
//!     roots: vec![NodeId(1), NodeId(2)],
//!     hops: 2,
//!     fanout: 5,
//!     seed: 7,
//! });
//! assert_eq!(batch.hops.len(), 2);
//! assert!(service.stats().backend.remote_requests > 0);
//! service.shutdown();
//! ```

pub mod admission;
pub mod backend;
pub mod breaker;
pub mod chaos_backend;
pub mod cluster;
pub mod cpu_model;
pub mod hot_cache;
pub mod inference;
pub mod obs;
pub mod offload;
pub mod pool;
pub mod service;
pub mod traffic;
pub mod trainer;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionStats, BrownoutConfig, BucketConfig,
    ClassCounters, Priority, RejectReason, ShapedRequest, ShapedService, SubmitVerdict,
    TenantConfig, TokenBucket, Verdict, CLASSES,
};
pub use backend::{
    BackendError, CachedBackend, CpuBackend, SampleOutcome, SampleRequest, SamplingBackend,
};
pub use breaker::{BreakerState, CircuitBreaker};
pub use chaos_backend::ChaosBackend;
pub use cluster::{
    Cluster, RequestStats, Span, WireConfig, WireSnapshot, ATTR_PAGE_ROWS, FRONTIER_LINE_NODES,
    UNPACKED_REQUEST_BYTES,
};
pub use cpu_model::CpuClusterModel;
pub use hot_cache::{
    AttrTier, CacheConfig, CacheSnapshot, HotSetCache, NeighborTier, ShardedTier, TierSnapshot,
};
pub use inference::{
    run_sequential, InferenceConfig, InferenceReply, InferenceService, InferenceStats,
    InferenceTicket,
};
pub use lsdgnn_sampler::SampleBlock;
pub use obs::{ObsConfig, Observability};
pub use offload::{AxeBackend, GraphLearnSession, SamplerBackend};
pub use pool::{BufferPool, PoolStats};
pub use service::{
    BatchPolicy, DegradeConfig, SampleReply, SampleTicket, SamplingService, ServiceConfig,
    ServiceStats,
};
pub use traffic::{replay_open_loop, Arrival, TenantSpec, TrafficConfig, TrafficTrace};
pub use trainer::{EpochReport, TrainerConfig, TrainingJob};
