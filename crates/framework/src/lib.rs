//! Mini-AliGraph: the industrial framework layer of the reproduction
//! (paper §2.4 and §5).
//!
//! Three pieces:
//!
//! * [`cluster`] — a real multi-threaded distributed graph service in the
//!   AliGraph mold: one *server* thread per partition owning that shard's
//!   adjacency + attributes, *workers* driving traversal/sampling through
//!   message channels. Local/remote request accounting feeds the
//!   Figure 2(b)/(c) characterization.
//! * [`cpu_model`] — the calibrated CPU-baseline timing model: per-vCPU
//!   sampling rate and the sub-linear server-scaling curve of
//!   Figure 2(b).
//! * [`offload`] — the near-transparent user interface of §5: a
//!   `GraphLearnSession` whose sampling calls route to either the CPU
//!   path or the AxE accelerator, unchanged for the caller.
//!
//! # Example
//!
//! ```
//! use lsdgnn_framework::cluster::Cluster;
//! use lsdgnn_graph::{generators, AttributeStore, NodeId, PartitionedGraph};
//!
//! let g = generators::power_law(500, 8, 1);
//! let attrs = AttributeStore::synthetic(500, 16, 1);
//! let pg = PartitionedGraph::new(g, 4).with_attributes(attrs);
//! let cluster = Cluster::spawn(pg);
//! let (batch, stats) = cluster.sample_batch(&[NodeId(1), NodeId(2)], 2, 5, 7);
//! assert_eq!(batch.hops.len(), 2);
//! assert!(stats.remote_requests > 0);
//! cluster.shutdown();
//! ```

pub mod cluster;
pub mod cpu_model;
pub mod hot_cache;
pub mod offload;
pub mod trainer;

pub use cluster::{Cluster, RequestStats};
pub use cpu_model::CpuClusterModel;
pub use hot_cache::HotNodeCache;
pub use offload::{GraphLearnSession, SamplerBackend};
pub use trainer::{EpochReport, TrainerConfig, TrainingJob};
