//! The hardware-abstraction layer of §5: one [`SamplingBackend`] trait
//! in front of every sampling substrate.
//!
//! The paper's near-transparent offload story only works if the framework
//! talks to *an interface* rather than a device: the AliGraph CPU cluster
//! ([`CpuBackend`]), the Access Engine ([`AxeBackend`], see
//! `crate::offload`), and the system-level hot-node cache
//! ([`CachedBackend`]) all serve the same four verbs — sample, gather,
//! report, flush. [`crate::service::SamplingService`] then batches and
//! schedules over any of them, so a CPU-vs-AxE comparison is a one-line
//! backend swap.
//!
//! The primary sampling verb is [`SamplingBackend::sample_block`],
//! returning the flat [`SampleBlock`] the zero-copy data plane produces;
//! [`SamplingBackend::sample_neighbors`] remains as a nested-`Vec`
//! conversion shim for callers that still want a [`SampleBatch`].
//!
//! Determinism contract: a backend must produce the same
//! [`SampleBlock`] for the same [`SampleRequest`] (including its `seed`),
//! regardless of when or on which worker thread the request executes.
//! Both shipped backends honor it by seeding a fresh RNG per request and
//! expanding frontiers in identical parent-major order, which is what the
//! `integration_backend_parity` test pins down.

use crate::cluster::{Cluster, RequestStats, WireConfig, WireSnapshot};
use crate::hot_cache::{AttrTier, CacheConfig, CacheSnapshot, ShardedTier};
use lsdgnn_graph::{AttributeStore, CsrGraph, NodeId, PartitionedGraph};
use lsdgnn_sampler::{SampleBatch, SampleBlock};
use lsdgnn_telemetry::ledger::{self, Stage, NO_SHARD};
use std::sync::Mutex;
use std::time::Instant;

/// One sampling request: expand `roots` through `hops` levels at `fanout`
/// samples per node, with all randomness derived from `seed`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleRequest {
    /// Root (seed) nodes of the mini-batch.
    pub roots: Vec<NodeId>,
    /// Number of hop levels.
    pub hops: u32,
    /// Samples per node per hop.
    pub fanout: usize,
    /// RNG seed; equal seeds must yield equal batches on every backend.
    pub seed: u64,
}

/// One sampling answer with its degradation provenance: the flat block
/// plus whether any shard was unreachable while producing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleOutcome {
    /// The sampled mini-batch in flat-buffer form (possibly partial).
    pub block: SampleBlock,
    /// True when the block is missing an unreachable shard's
    /// contribution — still structurally valid, but approximate.
    pub degraded: bool,
    /// Nodes whose owner could not be reached (quantifies the quality
    /// loss behind `degraded`).
    pub unreachable: u64,
}

impl SampleOutcome {
    /// Wraps a fault-free result.
    pub fn exact(block: SampleBlock) -> Self {
        SampleOutcome {
            block,
            degraded: false,
            unreachable: 0,
        }
    }
}

/// Why a [`SamplingBackend::try_sample`] attempt failed. Transient by
/// contract: the serving layer is entitled to retry, hedge, or fall back
/// to [`SamplingBackend::sample_excluding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendError {
    /// A shard/card the request needed is down.
    ShardDown(u32),
    /// The attempt exceeded its time budget.
    Timeout,
    /// A fault-injection layer swallowed the attempt (chaos testing).
    Injected,
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::ShardDown(s) => write!(f, "shard {s} down"),
            BackendError::Timeout => write!(f, "attempt timed out"),
            BackendError::Injected => write!(f, "attempt lost to fault injection"),
        }
    }
}

impl std::error::Error for BackendError {}

/// A sampling substrate the serving layer can dispatch to.
///
/// Implementations are shared across the service's worker shards, so all
/// methods take `&self`; stats accumulation uses interior mutability.
pub trait SamplingBackend: Send + Sync {
    /// Expands one request into a flat sampled mini-batch — the primary
    /// sampling verb on the zero-copy data plane.
    fn sample_block(&self, req: &SampleRequest) -> SampleBlock;

    /// Expands one request into the legacy nested-`Vec` batch shape. The
    /// default converts the flat block; samples are identical either way.
    fn sample_neighbors(&self, req: &SampleRequest) -> SampleBatch {
        self.sample_block(req).into_batch()
    }

    /// Gathers attribute vectors for `nodes`, order preserved.
    fn gather_attributes(&self, nodes: &[NodeId]) -> Vec<f32>;

    /// Gathers attributes in deduplicated row form — the gather verb of
    /// the inference data plane. `rows` is cleared and filled with one
    /// attribute row per *distinct* node in first-appearance order, and
    /// `slot_of[i]` names the row of `nodes[i]`; returns the attribute
    /// width. Consumers index the compact table instead of paying for a
    /// buffer with every hub row duplicated per occurrence. The default
    /// dedups in front of [`SamplingBackend::gather_attributes`];
    /// cluster-backed backends answer from the coalesced fetch directly.
    fn gather_attr_rows(
        &self,
        nodes: &[NodeId],
        rows: &mut Vec<f32>,
        slot_of: &mut Vec<u32>,
    ) -> usize {
        let mut index: std::collections::HashMap<NodeId, u32> = std::collections::HashMap::new();
        let mut unique: Vec<NodeId> = Vec::new();
        slot_of.clear();
        slot_of.reserve(nodes.len());
        for &v in nodes {
            let slot = *index.entry(v).or_insert_with(|| {
                unique.push(v);
                (unique.len() - 1) as u32
            });
            slot_of.push(slot);
        }
        let fetched = self.gather_attributes(&unique);
        rows.clear();
        rows.extend_from_slice(&fetched);
        if unique.is_empty() {
            0
        } else {
            fetched.len() / unique.len()
        }
    }

    /// Cumulative request accounting since the backend was created.
    fn stats(&self) -> RequestStats;

    /// Releases transient state (caches, in-flight buffers). Called by
    /// the service on shutdown; a no-op for stateless backends.
    fn flush(&self) {}

    /// Dispatches a coalesced batch of requests, borrowed from the
    /// service's queue — no per-batch request clone. The default executes
    /// them in order; hardware backends may overlap them.
    fn sample_many(&self, reqs: &[&SampleRequest]) -> Vec<SampleBlock> {
        reqs.iter().map(|r| self.sample_block(r)).collect()
    }

    /// Hands a finished block back for arena recycling. Callers that are
    /// done with a reply can return it here; the default drops it.
    fn recycle(&self, block: SampleBlock) {
        let _ = block;
    }

    /// The fallible sampling verb behind the service's retry/hedge
    /// machinery. `attempt` numbers retries of the same request from 0 so
    /// fault injectors can make a retry succeed where the first try
    /// failed. The default cannot fail and returns an exact outcome —
    /// fault-free backends pay nothing for the degradation machinery.
    fn try_sample(&self, req: &SampleRequest, attempt: u32) -> Result<SampleOutcome, BackendError> {
        let _ = attempt;
        Ok(SampleOutcome::exact(self.sample_block(req)))
    }

    /// The degraded fallback: sample while treating `excluded` shards as
    /// unreachable, never failing — an incomplete neighbor set from the
    /// reachable shards is still a valid approximate sample. Backends
    /// without shard structure ignore the mask.
    fn sample_excluding(&self, req: &SampleRequest, excluded: &[u32]) -> SampleOutcome {
        let _ = excluded;
        SampleOutcome::exact(self.sample_block(req))
    }

    /// Marks a shard as crashed (chaos hook). Returns `true` if the
    /// backend has such a shard and it was alive; the default has no
    /// shard structure to fail.
    fn fail_shard(&self, shard: u32) -> bool {
        let _ = shard;
        false
    }

    /// Shards/cards behind this backend (1 for monolithic devices).
    fn shards(&self) -> u32 {
        1
    }

    /// Hot-set cache counters, when a cache sits on this backend's data
    /// plane (`None` for uncached backends). Decorators forward to their
    /// inner backend's tiers where they have none of their own.
    fn cache_snapshot(&self) -> Option<CacheSnapshot> {
        None
    }
}

/// The AliGraph CPU path: a [`Cluster`] of server threads behind the
/// backend interface.
///
/// By default requests run on the cluster's flat-buffer data plane
/// (coalesced, pooled, zero-copy local reads). [`CpuBackend::new_legacy`]
/// builds the same backend pinned to the nested-`Vec` path instead — the
/// before/after arm of the `dataplane` bench and differential tests.
pub struct CpuBackend {
    cluster: Cluster,
    stats: Mutex<RequestStats>,
    legacy: bool,
}

impl std::fmt::Debug for CpuBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CpuBackend")
            .field("cluster", &self.cluster)
            .field("legacy", &self.legacy)
            .finish()
    }
}

/// Requests fused per coalesced batch fetch in
/// [`CpuBackend::sample_many`] — sized so a full service batch coalesces
/// in one fused fetch.
const COALESCE_WIDTH: usize = 32;

impl CpuBackend {
    /// Spawns a `partitions`-way cluster over copies of the graph data.
    pub fn new(graph: &CsrGraph, attributes: &AttributeStore, partitions: u32) -> Self {
        let pg =
            PartitionedGraph::new(graph.clone(), partitions).with_attributes(attributes.clone());
        Self::from_cluster(Cluster::spawn(pg))
    }

    /// Like [`CpuBackend::new`], but every sample runs on the legacy
    /// nested-`Vec` path (converted to a block at the boundary). Samples
    /// are byte-identical to the flat path; only the data movement
    /// differs.
    pub fn new_legacy(graph: &CsrGraph, attributes: &AttributeStore, partitions: u32) -> Self {
        let mut b = Self::new(graph, attributes, partitions);
        b.legacy = true;
        b
    }

    /// Spawns a cluster over an already-partitioned graph — used when
    /// the caller controls placement (e.g. pinning the hot head of a
    /// skewed workload onto the worker-local shard).
    pub fn from_partitioned(pg: PartitionedGraph) -> Self {
        Self::from_cluster(Cluster::spawn(pg))
    }

    /// Like [`CpuBackend::from_partitioned`], on the legacy nested-`Vec`
    /// path.
    pub fn from_partitioned_legacy(pg: PartitionedGraph) -> Self {
        let mut b = Self::from_partitioned(pg);
        b.legacy = true;
        b
    }

    /// Like [`CpuBackend::from_partitioned`], with the MoF wire plane
    /// enabled: every remote sampling and gather leg is accounted through
    /// request packing and BDI compression per `config`. Replies are
    /// byte-identical to the unwired path — the plane measures, it does
    /// not transform.
    pub fn from_partitioned_wired(pg: PartitionedGraph, config: WireConfig) -> Self {
        Self::from_cluster(Cluster::spawn_wired(pg, config))
    }

    /// Like [`CpuBackend::from_partitioned`], with the two-tier hot-set
    /// cache mounted inline on the cluster's remote data plane.
    pub fn from_partitioned_cached(pg: PartitionedGraph, cache: CacheConfig) -> Self {
        Self::from_cluster(Cluster::spawn_cached(pg, cache))
    }

    /// Wire plane *and* hot-set cache together — the arm that shows
    /// sampled wire bytes dropping with the neighbor-tier hit rate.
    pub fn from_partitioned_wired_cached(
        pg: PartitionedGraph,
        wire: WireConfig,
        cache: CacheConfig,
    ) -> Self {
        Self::from_cluster(Cluster::spawn_wired_cached(pg, wire, cache))
    }

    /// Wire-plane telemetry so far, when spawned wired.
    pub fn wire_snapshot(&self) -> Option<WireSnapshot> {
        self.cluster.wire_snapshot()
    }

    /// Wraps an already-running cluster.
    pub fn from_cluster(cluster: Cluster) -> Self {
        CpuBackend {
            cluster,
            stats: Mutex::new(RequestStats::default()),
            legacy: false,
        }
    }

    /// The underlying cluster (for partition-level introspection).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    fn record(&self, s: RequestStats) {
        self.stats.lock().expect("stats lock").merge(s);
    }

    fn run(&self, req: &SampleRequest, excluded: &[u32]) -> (SampleBlock, RequestStats) {
        if self.legacy {
            let (batch, s) = self
                .cluster
                .sample_batch_excluding(&req.roots, req.hops, req.fanout, req.seed, excluded);
            (SampleBlock::from_batch(&batch), s)
        } else {
            self.cluster
                .sample_block_excluding(&req.roots, req.hops, req.fanout, req.seed, excluded)
        }
    }
}

impl SamplingBackend for CpuBackend {
    fn sample_block(&self, req: &SampleRequest) -> SampleBlock {
        let (block, s) = self.run(req, &[]);
        self.record(s);
        block
    }

    fn sample_many(&self, reqs: &[&SampleRequest]) -> Vec<SampleBlock> {
        if self.legacy {
            // The legacy arm dispatches each request on its own, as the
            // pre-flat-buffer service did.
            return reqs.iter().map(|r| self.sample_block(r)).collect();
        }
        // Coalesce in chunks: a wider union frontier dedups more (the
        // skewed head repeats across requests), but its lookup table and
        // reply arenas eventually outgrow the cache, so the fused fetch
        // is capped rather than unbounded.
        let obs_on = ledger::scope_active();
        let mut blocks = Vec::with_capacity(reqs.len());
        for chunk in reqs.chunks(COALESCE_WIDTH) {
            let t0 = obs_on.then(Instant::now);
            let (mut b, s) = self.cluster.sample_blocks_excluding(chunk, &[]);
            self.record(s);
            if let Some(t0) = t0 {
                ledger::scope_record(
                    Stage::Sampling,
                    NO_SHARD,
                    0.0,
                    t0.elapsed().as_secs_f64() * 1e6,
                    chunk.len() as u64,
                );
            }
            blocks.append(&mut b);
        }
        blocks
    }

    fn gather_attributes(&self, nodes: &[NodeId]) -> Vec<f32> {
        if self.legacy {
            // The legacy arm keeps the channel-based scatter wrapper for
            // before/after comparison; it records no coalesce telemetry.
            let (attrs, s) = self.cluster.fetch_attrs_deduped(nodes);
            self.record(s);
            return attrs;
        }
        let mut out = Vec::new();
        let s = self.cluster.fetch_attrs_into(nodes, &[], &mut out);
        self.record(s);
        out
    }

    fn gather_attr_rows(
        &self,
        nodes: &[NodeId],
        rows: &mut Vec<f32>,
        slot_of: &mut Vec<u32>,
    ) -> usize {
        let s = self.cluster.fetch_attr_rows_into(nodes, &[], rows, slot_of);
        self.record(s);
        self.cluster.attr_len()
    }

    fn stats(&self) -> RequestStats {
        *self.stats.lock().expect("stats lock")
    }

    fn recycle(&self, block: SampleBlock) {
        self.cluster.pool().put_block(block);
    }

    fn try_sample(&self, req: &SampleRequest, attempt: u32) -> Result<SampleOutcome, BackendError> {
        let t0 = ledger::scope_active().then(Instant::now);
        let (block, s) = self.run(req, &[]);
        self.record(s);
        if let Some(t0) = t0 {
            ledger::scope_record(
                Stage::Sampling,
                NO_SHARD,
                0.0,
                t0.elapsed().as_secs_f64() * 1e6,
                u64::from(attempt),
            );
        }
        Ok(SampleOutcome {
            block,
            degraded: s.any_unreachable(),
            unreachable: s.unreachable_nodes,
        })
    }

    fn sample_excluding(&self, req: &SampleRequest, excluded: &[u32]) -> SampleOutcome {
        let (block, s) = self.run(req, excluded);
        self.record(s);
        SampleOutcome {
            block,
            degraded: s.any_unreachable(),
            unreachable: s.unreachable_nodes,
        }
    }

    fn fail_shard(&self, shard: u32) -> bool {
        self.cluster
            .fail_partition(lsdgnn_graph::PartitionId(shard))
    }

    fn shards(&self) -> u32 {
        self.cluster.partitions()
    }

    fn cache_snapshot(&self) -> Option<CacheSnapshot> {
        self.cluster.cache_snapshot()
    }
}

/// A decorator folding a framework-level attribute tier in front of any
/// backend's attribute path (the paper's Tech-4 premise: system-level
/// caching lives in the framework, not the hardware). The tier is the
/// same sharded [`AttrTier`] the cluster's inline cache uses — no global
/// lock around the whole cache.
pub struct CachedBackend {
    inner: Box<dyn SamplingBackend>,
    tier: AttrTier,
    attr_len: usize,
}

impl std::fmt::Debug for CachedBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedBackend")
            .field("attr_len", &self.attr_len)
            .finish()
    }
}

impl CachedBackend {
    /// Wraps `inner`, caching up to `capacity` attribute vectors of
    /// `attr_len` floats each.
    pub fn new(inner: Box<dyn SamplingBackend>, capacity: usize, attr_len: usize) -> Self {
        CachedBackend {
            inner,
            tier: ShardedTier::new(capacity, 16, true),
            attr_len,
        }
    }

    /// Attribute-cache hit rate so far.
    pub fn hit_rate(&self) -> f64 {
        self.tier.hit_rate()
    }

    /// Rebuilds the decorator over a relabeled inner backend, carrying
    /// the warm cache across the reorder: every cached key is rewritten
    /// through `map` (old id → new id), and keys the map drops are
    /// invalidated. Without this step a cache warmed on the old labeling
    /// would serve node `k`'s attributes for whatever node now holds id
    /// `k` — the correctness hazard the relabeling regression test pins.
    pub fn into_reordered(
        self,
        inner: Box<dyn SamplingBackend>,
        map: impl FnMut(NodeId) -> Option<NodeId>,
    ) -> Self {
        self.tier.rekey(map);
        CachedBackend {
            inner,
            tier: self.tier,
            attr_len: self.attr_len,
        }
    }
}

impl SamplingBackend for CachedBackend {
    fn sample_block(&self, req: &SampleRequest) -> SampleBlock {
        // Structure traversal bypasses the cache: batch-random frontier
        // expansion sees ~zero temporal reuse (Tech-4 measurement in
        // `hot_cache`); only attribute gathers are worth caching.
        self.inner.sample_block(req)
    }

    fn sample_many(&self, reqs: &[&SampleRequest]) -> Vec<SampleBlock> {
        self.inner.sample_many(reqs)
    }

    fn recycle(&self, block: SampleBlock) {
        self.inner.recycle(block);
    }

    fn gather_attributes(&self, nodes: &[NodeId]) -> Vec<f32> {
        let mut out = vec![0.0f32; nodes.len() * self.attr_len];
        // Serve hits; collect each missing node once, in first-appearance
        // order (the dedup the cluster path also applies).
        let mut missing: Vec<NodeId> = Vec::new();
        let mut miss_slots: Vec<(usize, usize)> = Vec::new(); // (out row, missing idx)
        for (i, &v) in nodes.iter().enumerate() {
            if !self
                .tier
                .copy_to(v, &mut out[i * self.attr_len..(i + 1) * self.attr_len])
            {
                let idx = match missing.iter().position(|&m| m == v) {
                    Some(idx) => idx,
                    None => {
                        missing.push(v);
                        missing.len() - 1
                    }
                };
                miss_slots.push((i, idx));
            }
        }
        if !missing.is_empty() {
            let fetched = self.inner.gather_attributes(&missing);
            for (row, idx) in miss_slots {
                out[row * self.attr_len..(row + 1) * self.attr_len]
                    .copy_from_slice(&fetched[idx * self.attr_len..(idx + 1) * self.attr_len]);
            }
            for (idx, &v) in missing.iter().enumerate() {
                self.tier
                    .admit(v, &fetched[idx * self.attr_len..(idx + 1) * self.attr_len]);
            }
        }
        out
    }

    fn gather_attr_rows(
        &self,
        nodes: &[NodeId],
        rows: &mut Vec<f32>,
        slot_of: &mut Vec<u32>,
    ) -> usize {
        let mut index: std::collections::HashMap<NodeId, u32> = std::collections::HashMap::new();
        let mut unique: Vec<NodeId> = Vec::new();
        slot_of.clear();
        slot_of.reserve(nodes.len());
        for &v in nodes {
            let slot = *index.entry(v).or_insert_with(|| {
                unique.push(v);
                (unique.len() - 1) as u32
            });
            slot_of.push(slot);
        }
        // Serve hits row-natively; fetch each miss once through the inner
        // backend, then remember it.
        rows.clear();
        rows.resize(unique.len() * self.attr_len, 0.0);
        let mut missing: Vec<NodeId> = Vec::new();
        let mut miss_rows: Vec<usize> = Vec::new();
        for (i, &v) in unique.iter().enumerate() {
            if !self
                .tier
                .copy_to(v, &mut rows[i * self.attr_len..(i + 1) * self.attr_len])
            {
                missing.push(v);
                miss_rows.push(i);
            }
        }
        if !missing.is_empty() {
            let fetched = self.inner.gather_attributes(&missing);
            for (j, &i) in miss_rows.iter().enumerate() {
                rows[i * self.attr_len..(i + 1) * self.attr_len]
                    .copy_from_slice(&fetched[j * self.attr_len..(j + 1) * self.attr_len]);
            }
            for (j, &v) in missing.iter().enumerate() {
                self.tier
                    .admit(v, &fetched[j * self.attr_len..(j + 1) * self.attr_len]);
            }
        }
        self.attr_len
    }

    fn stats(&self) -> RequestStats {
        self.inner.stats()
    }

    fn flush(&self) {
        // Release cached entries in place — O(occupied), every slot
        // buffer retained for the refill — and flush whatever is
        // underneath. (The old implementation rebuilt a whole new cache
        // under its global lock.)
        self.tier.clear();
        self.inner.flush();
    }

    // Degradation verbs pass straight through: the cache sits only on the
    // attribute path, shard structure and faults belong to the inner
    // backend.
    fn try_sample(&self, req: &SampleRequest, attempt: u32) -> Result<SampleOutcome, BackendError> {
        self.inner.try_sample(req, attempt)
    }

    fn sample_excluding(&self, req: &SampleRequest, excluded: &[u32]) -> SampleOutcome {
        self.inner.sample_excluding(req, excluded)
    }

    fn fail_shard(&self, shard: u32) -> bool {
        self.inner.fail_shard(shard)
    }

    fn shards(&self) -> u32 {
        self.inner.shards()
    }

    fn cache_snapshot(&self) -> Option<CacheSnapshot> {
        // The decorator owns the attribute tier; a neighbor tier can only
        // come from an inline cluster cache underneath.
        Some(CacheSnapshot {
            neigh: self.inner.cache_snapshot().and_then(|s| s.neigh),
            attr: Some(self.tier.snapshot()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdgnn_graph::generators;

    fn setup() -> (CsrGraph, AttributeStore) {
        (
            generators::power_law(400, 8, 21),
            AttributeStore::synthetic(400, 8, 21),
        )
    }

    fn req(seed: u64) -> SampleRequest {
        SampleRequest {
            roots: (0..8).map(NodeId).collect(),
            hops: 2,
            fanout: 5,
            seed,
        }
    }

    #[test]
    fn cpu_backend_is_deterministic_per_seed() {
        let (g, a) = setup();
        let b = CpuBackend::new(&g, &a, 4);
        assert_eq!(b.sample_neighbors(&req(3)), b.sample_neighbors(&req(3)));
        assert!(b.stats().nodes_expanded > 0);
    }

    #[test]
    fn cached_backend_preserves_attribute_values() {
        let (g, a) = setup();
        let plain = CpuBackend::new(&g, &a, 2);
        let cached = CachedBackend::new(Box::new(CpuBackend::new(&g, &a, 2)), 64, a.attr_len());
        // Repeated nodes: second pass should hit the cache, values equal.
        let nodes: Vec<NodeId> = (0..40).map(|i| NodeId(i % 7)).collect();
        let want = plain.gather_attributes(&nodes);
        assert_eq!(cached.gather_attributes(&nodes), want);
        assert_eq!(cached.gather_attributes(&nodes), want);
        assert!(cached.hit_rate() > 0.4, "hit rate {}", cached.hit_rate());
    }

    #[test]
    fn cached_backend_delegates_sampling_unchanged() {
        let (g, a) = setup();
        let plain = CpuBackend::new(&g, &a, 2);
        let cached = CachedBackend::new(Box::new(CpuBackend::new(&g, &a, 2)), 64, a.attr_len());
        assert_eq!(
            plain.sample_neighbors(&req(9)),
            cached.sample_neighbors(&req(9))
        );
    }

    #[test]
    fn try_sample_is_exact_on_a_healthy_backend() {
        let (g, a) = setup();
        let b = CpuBackend::new(&g, &a, 4);
        let outcome = b.try_sample(&req(5), 0).expect("healthy");
        assert!(!outcome.degraded);
        assert_eq!(outcome.unreachable, 0);
        assert_eq!(outcome.block, b.sample_block(&req(5)));
        assert_eq!(outcome.block.to_batch(), b.sample_neighbors(&req(5)));
    }

    #[test]
    fn failed_shard_turns_try_sample_degraded() {
        let (g, a) = setup();
        let b = CpuBackend::new(&g, &a, 4);
        let exact = b.sample_neighbors(&req(5));
        assert!(b.fail_shard(1));
        assert!(!b.fail_shard(1), "already down");
        let outcome = b.try_sample(&req(5), 0).expect("degrades, not errors");
        assert!(outcome.degraded);
        assert!(outcome.unreachable > 0);
        assert!(outcome.block.total_sampled() <= exact.total_sampled());
        assert_eq!(b.shards(), 4);
    }

    #[test]
    fn sample_excluding_matches_persistent_failure() {
        // The per-request mask and a real crash of the same shard must
        // produce the same degraded batch — the chaos layer relies on it.
        let (g, a) = setup();
        let masked = CpuBackend::new(&g, &a, 4);
        let crashed = CpuBackend::new(&g, &a, 4);
        crashed.fail_shard(2);
        let via_mask = masked.sample_excluding(&req(11), &[2]);
        let via_crash = crashed.try_sample(&req(11), 0).unwrap();
        assert_eq!(via_mask, via_crash);
        assert!(via_mask.degraded);
    }

    #[test]
    fn sample_many_matches_individual_calls() {
        let (g, a) = setup();
        let b = CpuBackend::new(&g, &a, 2);
        let reqs = [req(1), req(2), req(3)];
        let refs: Vec<&SampleRequest> = reqs.iter().collect();
        let many = b.sample_many(&refs);
        for (r, block) in reqs.iter().zip(&many) {
            assert_eq!(&b.sample_block(r), block);
        }
    }

    #[test]
    fn legacy_backend_matches_flat_backend_exactly() {
        let (g, a) = setup();
        let flat = CpuBackend::new(&g, &a, 4);
        let legacy = CpuBackend::new_legacy(&g, &a, 4);
        for seed in [0u64, 5, 99] {
            let fb = flat.sample_block(&req(seed));
            let lb = legacy.sample_block(&req(seed));
            assert_eq!(fb, lb, "seed {seed}");
            assert_eq!(fb.digest(), lb.digest());
        }
        // Coalescing only happens on the flat plane.
        assert!(flat.stats().coalesce_lookups > 0);
        assert_eq!(legacy.stats().coalesce_lookups, 0);
    }

    #[test]
    fn gather_attributes_routes_through_the_coalesced_path() {
        let (g, a) = setup();
        let flat = CpuBackend::new(&g, &a, 2);
        let legacy = CpuBackend::new_legacy(&g, &a, 2);
        let nodes: Vec<NodeId> = (0..40).map(|i| NodeId(i % 7)).collect();
        // Same answer either way; only the flat arm records coalesce
        // telemetry.
        assert_eq!(
            flat.gather_attributes(&nodes),
            legacy.gather_attributes(&nodes)
        );
        let s = flat.stats();
        assert_eq!(s.attr_coalesce_lookups, 40);
        assert_eq!(s.attr_coalesce_hits, 33);
        assert_eq!(legacy.stats().attr_coalesce_lookups, 0);
    }

    #[test]
    fn gather_attr_rows_agrees_with_expanded_gather() {
        let (g, a) = setup();
        let b = CpuBackend::new(&g, &a, 2);
        let nodes: Vec<NodeId> = (0..40).map(|i| NodeId(i % 7)).collect();
        let mut rows = Vec::new();
        let mut slot_of = Vec::new();
        let attr_len = b.gather_attr_rows(&nodes, &mut rows, &mut slot_of);
        assert_eq!(attr_len, a.attr_len());
        assert_eq!(slot_of.len(), nodes.len());
        assert_eq!(rows.len(), 7 * attr_len, "one row per distinct node");
        let expanded = b.gather_attributes(&nodes);
        for (i, &s) in slot_of.iter().enumerate() {
            let s = s as usize;
            assert_eq!(
                &expanded[i * attr_len..(i + 1) * attr_len],
                &rows[s * attr_len..(s + 1) * attr_len],
                "occurrence {i}"
            );
        }

        // The cached decorator's row-native path answers identically,
        // cold and warm.
        let cached = CachedBackend::new(Box::new(CpuBackend::new(&g, &a, 2)), 64, a.attr_len());
        for pass in 0..2 {
            let mut crows = Vec::new();
            let mut cslots = Vec::new();
            assert_eq!(
                cached.gather_attr_rows(&nodes, &mut crows, &mut cslots),
                attr_len
            );
            assert_eq!(crows, rows, "pass {pass}");
            assert_eq!(cslots, slot_of, "pass {pass}");
        }
        assert!(cached.hit_rate() > 0.0, "second pass must hit");
    }

    #[test]
    fn recycled_blocks_feed_the_cluster_pool() {
        let (g, a) = setup();
        let b = CpuBackend::new(&g, &a, 2);
        for seed in 0..4 {
            let block = b.sample_block(&req(seed));
            b.recycle(block);
        }
        assert!(b.cluster().pool().stats().reuses > 0);
    }
}
