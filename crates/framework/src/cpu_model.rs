//! The calibrated CPU-baseline timing model.
//!
//! AliGraph's software sampling path costs microseconds per sampled node:
//! RPC serialization, hash lookups, thread scheduling and the remote
//! round trip. This model captures that with three constants and yields
//! both the per-vCPU sampling rate the paper normalizes Figure 14 against
//! and the sub-linear scaling curve of Figure 2(b).

use lsdgnn_graph::{DatasetConfig, FootprintModel};
use rand::Rng;

/// The CPU cluster timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuClusterModel {
    /// Software path cost per sampled node in ns (hashing, framework
    /// layers, serialization).
    pub software_ns: f64,
    /// Extra amortized cost per *remote* sampled node in ns (batched RPC
    /// + NIC round trip share).
    pub remote_penalty_ns: f64,
    /// Cross-server coordination overhead per sampled node per extra
    /// server in ns (barrier/shuffle costs that grow with the cluster).
    pub coordination_ns: f64,
    /// Sampling vCPUs (workers) per server.
    pub workers_per_server: u32,
}

impl Default for CpuClusterModel {
    fn default() -> Self {
        CpuClusterModel {
            software_ns: 15_000.0,
            remote_penalty_ns: 15_000.0,
            coordination_ns: 250.0,
            workers_per_server: 24,
        }
    }
}

impl CpuClusterModel {
    /// Per-sample cost on an `s`-server deployment, in ns.
    ///
    /// # Panics
    ///
    /// Panics if `s` is zero.
    pub fn per_sample_ns(&self, servers: u64) -> f64 {
        assert!(servers > 0, "need at least one server");
        let s = servers as f64;
        let remote_fraction = (s - 1.0) / s;
        self.software_ns
            + remote_fraction * self.remote_penalty_ns
            + (s - 1.0) * self.coordination_ns
    }

    /// Sampling rate of one vCPU, in samples/second.
    pub fn vcpu_rate(&self, servers: u64) -> f64 {
        1e9 / self.per_sample_ns(servers)
    }

    /// Aggregate cluster sampling rate in samples/second.
    pub fn cluster_rate(&self, servers: u64) -> f64 {
        self.vcpu_rate(servers) * self.workers_per_server as f64 * servers as f64
    }

    /// Speedup over the single-server deployment — the Figure 2(b) curve.
    pub fn scaling_curve(&self, server_counts: &[u64]) -> Vec<f64> {
        let base = self.cluster_rate(1);
        server_counts
            .iter()
            .map(|&s| self.cluster_rate(s) / base)
            .collect()
    }

    /// Per-vCPU rate for a paper dataset: the server count comes from the
    /// footprint model (bigger graphs force more servers and hence more
    /// remote traffic).
    pub fn vcpu_rate_for(&self, d: &DatasetConfig, fm: &FootprintModel) -> f64 {
        self.vcpu_rate(fm.min_servers(d))
    }

    /// Executes the model "in the small": walks `samples` sampled nodes,
    /// spinning the modelled per-sample cost scaled down by `scale` to
    /// keep wall-clock reasonable, and returns the measured samples/sec
    /// (scaled back). Used to sanity-check the analytic numbers against
    /// real execution.
    pub fn execute_scaled<R: Rng>(
        &self,
        rng: &mut R,
        servers: u64,
        samples: u64,
        scale: f64,
    ) -> f64 {
        assert!(scale >= 1.0, "scale must be >= 1");
        let per_ns = self.per_sample_ns(servers) / scale;
        let start = std::time::Instant::now();
        let mut sink = 0u64;
        for _ in 0..samples {
            // Spin for the modelled cost.
            let t0 = std::time::Instant::now();
            while (t0.elapsed().as_nanos() as f64) < per_ns {
                sink = sink.wrapping_add(rng.gen::<u64>());
            }
        }
        std::hint::black_box(sink);
        let elapsed = start.elapsed().as_secs_f64();
        samples as f64 / elapsed / scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdgnn_graph::PAPER_DATASETS;

    #[test]
    fn figure_2b_scaling_is_sublinear() {
        let m = CpuClusterModel::default();
        let curve = m.scaling_curve(&[1, 5, 15]);
        assert_eq!(curve[0], 1.0);
        // 5 servers: well below 5x; 15 servers: well below 15x.
        assert!(
            (2.0..4.5).contains(&curve[1]),
            "5-server speedup {}",
            curve[1]
        );
        assert!(
            (4.0..9.0).contains(&curve[2]),
            "15-server speedup {}",
            curve[2]
        );
        assert!(curve[1] < curve[2]);
    }

    #[test]
    fn vcpu_rate_declines_with_cluster_size() {
        let m = CpuClusterModel::default();
        assert!(m.vcpu_rate(1) > m.vcpu_rate(5));
        assert!(m.vcpu_rate(5) > m.vcpu_rate(15));
        // Order of magnitude: tens of thousands of samples/s/vCPU.
        let r = m.vcpu_rate(5);
        assert!((3e4..2e5).contains(&r), "vcpu rate {r}");
    }

    #[test]
    fn dataset_server_counts_drive_rates() {
        let m = CpuClusterModel::default();
        let fm = FootprintModel::default();
        let ss = m.vcpu_rate_for(&PAPER_DATASETS[0], &fm); // 1 server
        let syn = m.vcpu_rate_for(&PAPER_DATASETS[5], &fm); // many servers
        assert!(ss > syn, "single-server graph samples faster per vCPU");
    }

    #[test]
    fn executed_model_matches_analytic_rate() {
        use rand::SeedableRng;
        let m = CpuClusterModel::default();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        // Scale 1000x: ~9ns spins, 2000 samples => ~20us wall clock.
        let measured = m.execute_scaled(&mut rng, 5, 2_000, 1_000.0);
        let analytic = m.vcpu_rate(5);
        let ratio = measured / analytic;
        // Wall-clock spin timing is load-sensitive; only the order of
        // magnitude is asserted.
        assert!(
            (0.05..4.0).contains(&ratio),
            "measured {measured} vs analytic {analytic}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_panics() {
        CpuClusterModel::default().per_sample_ns(0);
    }
}
