//! A per-shard circuit breaker: the serving layer's guard against
//! hammering a backend that keeps failing.
//!
//! Classic three-state machine. **Closed**: requests flow; consecutive
//! failures are counted and `threshold` of them trip the breaker.
//! **Open**: the fault path is skipped entirely — requests go straight to
//! the degraded fallback — for `cooldown` dispatch decisions. **Half
//! open**: a *bounded quota* of probe requests is let through; success
//! closes the breaker, failure re-opens it.
//!
//! Cooldown is measured in *dispatch decisions*, not wall-clock time: the
//! breaker's trajectory is then a pure function of the success/failure
//! sequence it observes, which keeps chaos runs replayable.
//!
//! # Priority lanes
//!
//! With multi-tenant shaping ([`crate::admission`]) in front, the probe
//! quota is a scarce recovery resource and must not be burned by traffic
//! nobody is waiting on. [`CircuitBreaker::allow_for`] therefore accounts
//! probes by [`Priority`]:
//!
//! * **Interactive** traffic may consume every probe, including the last.
//! * **Batch** traffic may probe only while *more than one* probe
//!   remains — the final probe is reserved for interactive traffic.
//! * **Best-effort** traffic never probes: while the breaker is open or
//!   half-open it goes straight to the degraded fallback.
//!
//! The class-less [`CircuitBreaker::allow`] is interactive by definition
//! (the pre-lanes serving path), and with the default quota of one probe
//! per half-open episode its trajectory is identical to the historical
//! breaker.

use crate::admission::Priority;

/// The breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, failures are counted.
    Closed,
    /// Tripped: the fault path is skipped until the cooldown elapses.
    Open,
    /// Probing: a bounded quota of requests is allowed through to test
    /// recovery.
    HalfOpen,
}

/// A deterministic closed/open/half-open circuit breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: BreakerState,
    threshold: u32,
    cooldown: u32,
    /// Probes admitted per half-open episode.
    probe_quota: u32,
    /// Probes left in the current half-open episode.
    probes_left: u32,
    failures: u32,
    waited: u32,
    opens: u64,
}

impl CircuitBreaker {
    /// Creates a closed breaker tripping after `threshold` consecutive
    /// failures and staying open for `cooldown` dispatch decisions, with
    /// a single probe per half-open episode (the historical behavior).
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero (a breaker that trips on nothing).
    pub fn new(threshold: u32, cooldown: u32) -> Self {
        Self::with_probes(threshold, cooldown, 1)
    }

    /// Like [`CircuitBreaker::new`] with an explicit half-open probe
    /// quota.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` or `probe_quota` is zero.
    pub fn with_probes(threshold: u32, cooldown: u32, probe_quota: u32) -> Self {
        assert!(threshold > 0, "threshold must be non-zero");
        assert!(probe_quota > 0, "probe quota must be non-zero");
        CircuitBreaker {
            state: BreakerState::Closed,
            threshold,
            cooldown,
            probe_quota,
            probes_left: 0,
            failures: 0,
            waited: 0,
            opens: 0,
        }
    }

    /// One dispatch decision: may this request take the normal (fault-
    /// prone) path? `false` means go straight to the degraded fallback.
    /// Interactive by definition — see [`CircuitBreaker::allow_for`].
    pub fn allow(&mut self) -> bool {
        self.allow_for(Priority::Interactive)
    }

    /// One dispatch decision for a request of the given priority class.
    /// While open, each call counts toward the cooldown regardless of
    /// class (the trajectory stays a pure function of the decision
    /// sequence); once it elapses the breaker half-opens with
    /// `probe_quota` probes, consumed interactive-first: best-effort
    /// never probes, batch leaves the last probe for interactive.
    pub fn allow_for(&mut self, class: Priority) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => self.take_probe(class),
            BreakerState::Open => {
                self.waited += 1;
                if self.waited >= self.cooldown {
                    self.state = BreakerState::HalfOpen;
                    self.probes_left = self.probe_quota;
                    self.take_probe(class)
                } else {
                    false
                }
            }
        }
    }

    /// Consumes one half-open probe if this class is entitled to it.
    fn take_probe(&mut self, class: Priority) -> bool {
        let entitled = match class {
            Priority::Interactive => self.probes_left > 0,
            // The last probe is reserved for interactive traffic.
            Priority::Batch => self.probes_left > 1,
            Priority::BestEffort => false,
        };
        if entitled {
            self.probes_left -= 1;
        }
        entitled
    }

    /// The guarded path succeeded: a half-open probe (or any success)
    /// closes the breaker and clears the failure count.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.failures = 0;
    }

    /// The guarded path failed. Enough consecutive failures while closed
    /// — or any failure of a half-open probe — (re)opens the breaker.
    pub fn record_failure(&mut self) {
        match self.state {
            BreakerState::Closed => {
                self.failures += 1;
                if self.failures >= self.threshold {
                    self.trip();
                }
            }
            BreakerState::HalfOpen => self.trip(),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.failures = 0;
        self.waited = 0;
        self.probes_left = 0;
        self.opens += 1;
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Probes left in the current half-open episode (0 unless half-open).
    pub fn probes_left(&self) -> u32 {
        self.probes_left
    }

    /// Times the breaker has tripped open (including re-opens from a
    /// failed probe).
    pub fn opens(&self) -> u64 {
        self.opens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(3, 4);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn success_resets_the_failure_count() {
        let mut b = CircuitBreaker::new(2, 4);
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak was broken");
    }

    #[test]
    fn open_breaker_blocks_until_cooldown_then_probes() {
        let mut b = CircuitBreaker::new(1, 3);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
        assert!(!b.allow());
        assert!(b.allow(), "cooldown elapsed: half-open probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn probe_success_closes_probe_failure_reopens() {
        let trip = |outcome_ok: bool| {
            let mut b = CircuitBreaker::new(1, 1);
            b.record_failure();
            assert!(b.allow(), "cooldown of 1 admits the next probe");
            if outcome_ok {
                b.record_success();
                assert_eq!(b.state(), BreakerState::Closed);
            } else {
                b.record_failure();
                assert_eq!(b.state(), BreakerState::Open);
                assert_eq!(b.opens(), 2);
            }
        };
        trip(true);
        trip(false);
    }

    #[test]
    fn same_observation_sequence_same_trajectory() {
        let drive = || {
            let mut b = CircuitBreaker::new(2, 2);
            let mut trace = Vec::new();
            for i in 0..32u32 {
                if b.allow() {
                    if i % 3 == 0 {
                        b.record_success();
                    } else {
                        b.record_failure();
                    }
                }
                trace.push((b.state(), b.opens()));
            }
            trace
        };
        assert_eq!(drive(), drive());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_threshold_panics() {
        let _ = CircuitBreaker::new(0, 1);
    }

    /// Opens a breaker and burns the cooldown with best-effort decisions
    /// (which count toward it but never probe).
    fn half_open(probes: u32) -> CircuitBreaker {
        let mut b = CircuitBreaker::with_probes(1, 1, probes);
        b.record_failure();
        assert!(
            !b.allow_for(Priority::BestEffort),
            "best-effort advanced the cooldown but must not probe"
        );
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b
    }

    #[test]
    fn best_effort_never_consumes_the_probe_quota() {
        let mut b = half_open(2);
        assert_eq!(b.probes_left(), 2);
        for _ in 0..4 {
            assert!(!b.allow_for(Priority::BestEffort));
        }
        assert_eq!(
            b.probes_left(),
            2,
            "best-effort probes are rejected, not counted"
        );
        assert!(
            b.allow_for(Priority::Interactive),
            "quota intact for interactive"
        );
    }

    #[test]
    fn batch_leaves_the_last_probe_for_interactive() {
        // Quota 2: batch may take the first probe, not the last.
        let mut b = half_open(2);
        assert!(b.allow_for(Priority::Batch), "batch takes probe 1 of 2");
        assert_eq!(b.probes_left(), 1);
        assert!(
            !b.allow_for(Priority::Batch),
            "the final probe is reserved for interactive"
        );
        assert_eq!(
            b.probes_left(),
            1,
            "the denied batch probe was not consumed"
        );
        assert!(
            b.allow_for(Priority::Interactive),
            "interactive takes the last probe"
        );
        assert_eq!(b.probes_left(), 0);
        assert!(
            !b.allow_for(Priority::Interactive),
            "quota exhausted until the probe outcome is recorded"
        );
    }

    #[test]
    fn probe_quota_resets_per_half_open_episode() {
        let mut b = half_open(3);
        assert!(b.allow_for(Priority::Interactive));
        b.record_failure(); // probe failed: re-open, quota cleared
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.probes_left(), 0);
        assert_eq!(b.opens(), 2);
        assert!(
            b.allow_for(Priority::Interactive),
            "cooldown 1: next decision probes"
        );
        assert_eq!(b.probes_left(), 2, "fresh episode starts with a full quota");
    }

    #[test]
    fn default_quota_matches_the_legacy_single_probe_breaker() {
        // The class-less path is interactive with quota 1: one probe per
        // episode, exactly the historical trajectory.
        let mut b = CircuitBreaker::new(1, 2);
        b.record_failure();
        assert!(!b.allow());
        assert!(b.allow());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }
}
