//! A per-shard circuit breaker: the serving layer's guard against
//! hammering a backend that keeps failing.
//!
//! Classic three-state machine. **Closed**: requests flow; consecutive
//! failures are counted and `threshold` of them trip the breaker.
//! **Open**: the fault path is skipped entirely — requests go straight to
//! the degraded fallback — for `cooldown` dispatch decisions. **Half
//! open**: one probe request is let through; success closes the breaker,
//! failure re-opens it.
//!
//! Cooldown is measured in *dispatch decisions*, not wall-clock time: the
//! breaker's trajectory is then a pure function of the success/failure
//! sequence it observes, which keeps chaos runs replayable.

/// The breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow, failures are counted.
    Closed,
    /// Tripped: the fault path is skipped until the cooldown elapses.
    Open,
    /// Probing: one request is allowed through to test recovery.
    HalfOpen,
}

/// A deterministic closed/open/half-open circuit breaker.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: BreakerState,
    threshold: u32,
    cooldown: u32,
    failures: u32,
    waited: u32,
    opens: u64,
}

impl CircuitBreaker {
    /// Creates a closed breaker tripping after `threshold` consecutive
    /// failures and staying open for `cooldown` dispatch decisions.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero (a breaker that trips on nothing).
    pub fn new(threshold: u32, cooldown: u32) -> Self {
        assert!(threshold > 0, "threshold must be non-zero");
        CircuitBreaker {
            state: BreakerState::Closed,
            threshold,
            cooldown,
            failures: 0,
            waited: 0,
            opens: 0,
        }
    }

    /// One dispatch decision: may this request take the normal (fault-
    /// prone) path? `false` means go straight to the degraded fallback.
    /// While open, each call counts toward the cooldown; once it elapses
    /// the breaker half-opens and admits a probe.
    pub fn allow(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                self.waited += 1;
                if self.waited >= self.cooldown {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// The guarded path succeeded: a half-open probe (or any success)
    /// closes the breaker and clears the failure count.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.failures = 0;
    }

    /// The guarded path failed. Enough consecutive failures while closed
    /// — or any failure of a half-open probe — (re)opens the breaker.
    pub fn record_failure(&mut self) {
        match self.state {
            BreakerState::Closed => {
                self.failures += 1;
                if self.failures >= self.threshold {
                    self.trip();
                }
            }
            BreakerState::HalfOpen => self.trip(),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.failures = 0;
        self.waited = 0;
        self.opens += 1;
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has tripped open (including re-opens from a
    /// failed probe).
    pub fn opens(&self) -> u64 {
        self.opens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = CircuitBreaker::new(3, 4);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn success_resets_the_failure_count() {
        let mut b = CircuitBreaker::new(2, 4);
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak was broken");
    }

    #[test]
    fn open_breaker_blocks_until_cooldown_then_probes() {
        let mut b = CircuitBreaker::new(1, 3);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
        assert!(!b.allow());
        assert!(b.allow(), "cooldown elapsed: half-open probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn probe_success_closes_probe_failure_reopens() {
        let trip = |outcome_ok: bool| {
            let mut b = CircuitBreaker::new(1, 1);
            b.record_failure();
            assert!(b.allow(), "cooldown of 1 admits the next probe");
            if outcome_ok {
                b.record_success();
                assert_eq!(b.state(), BreakerState::Closed);
            } else {
                b.record_failure();
                assert_eq!(b.state(), BreakerState::Open);
                assert_eq!(b.opens(), 2);
            }
        };
        trip(true);
        trip(false);
    }

    #[test]
    fn same_observation_sequence_same_trajectory() {
        let drive = || {
            let mut b = CircuitBreaker::new(2, 2);
            let mut trace = Vec::new();
            for i in 0..32u32 {
                if b.allow() {
                    if i % 3 == 0 {
                        b.record_success();
                    } else {
                        b.record_failure();
                    }
                }
                trace.push((b.state(), b.opens()));
            }
            trace
        };
        assert_eq!(drive(), drive());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_threshold_panics() {
        let _ = CircuitBreaker::new(0, 1);
    }
}
