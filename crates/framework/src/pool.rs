//! Pooled arenas for the serving data plane.
//!
//! The hot sampling path allocates the same handful of buffer shapes per
//! request — frontier scratch, flat neighbor/offset arrays for server
//! replies, attribute gather output, and the [`SampleBlock`] result
//! itself. A [`BufferPool`] keeps bounded free lists of each shape so a
//! steady-state service recycles capacity instead of round-tripping the
//! allocator per mini-batch (the software analogue of the AxE's fixed
//! on-card buffers). Cluster workers and server threads share one pool
//! through an `Arc`; request buffers travel to the server inside the
//! request and come back inside the reply, so ownership never needs a
//! second channel.
//!
//! The pool is deliberately dumb: `take_*` pops a cleared buffer or makes
//! a fresh one, `put_*` clears and returns it unless the free list is at
//! capacity (then the buffer just drops — the pool bounds memory, it
//! doesn't grow it). Alloc/reuse counters register into telemetry so the
//! dataplane bench can report the recycle rate.

use crate::cluster::Span;
use lsdgnn_graph::NodeId;
use lsdgnn_sampler::SampleBlock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Free lists per buffer class are capped at this many entries by
/// default — enough for every worker/server thread to have a couple of
/// buffers in flight without the pool becoming a leak.
const DEFAULT_MAX_PER_CLASS: usize = 64;

/// A thread-safe pool of the serving path's recyclable buffers.
pub struct BufferPool {
    nodes: Mutex<Vec<Vec<NodeId>>>,
    offsets: Mutex<Vec<Vec<u32>>>,
    floats: Mutex<Vec<Vec<f32>>>,
    spans: Mutex<Vec<Vec<Span>>>,
    blocks: Mutex<Vec<SampleBlock>>,
    stamps: Mutex<Vec<StampTable>>,
    groups: Mutex<Vec<Vec<Vec<u32>>>>,
    max_per_class: usize,
    allocs: AtomicU64,
    reuses: AtomicU64,
    recycled: AtomicU64,
}

/// An epoch-stamped slot index over dense node ids — the O(1)-reset
/// dedup table behind request coalescing.
///
/// A hash map over a mini-batch's node ids pays a hash per lookup; a
/// plain array pays a full clear per batch. This table pays neither:
/// each entry records the epoch that wrote it, [`StampTable::begin`]
/// bumps the epoch, and entries stamped by older scopes simply read as
/// absent. A lookup is one array load. The table recycles through the
/// pool *without* clearing — stale stamps are inert by construction.
#[derive(Debug, Default)]
pub struct StampTable {
    /// `stamps[v] = (epoch << 32) | slot`.
    stamps: Vec<u64>,
    epoch: u32,
}

impl StampTable {
    /// Opens a fresh dedup scope covering ids `0..n`. Previous scopes'
    /// entries become absent without touching memory (except on the
    /// ~4-billionth scope, when the epoch wraps and the table clears).
    pub fn begin(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamps.fill(0);
                1
            }
        };
    }

    /// The slot assigned to id `v` in the current scope, if any.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the range [`StampTable::begin`] opened.
    #[inline]
    pub fn get(&self, v: usize) -> Option<u32> {
        let s = self.stamps[v];
        ((s >> 32) as u32 == self.epoch).then_some(s as u32)
    }

    /// Assigns `slot` to id `v` in the current scope.
    #[inline]
    pub fn set(&mut self, v: usize, slot: u32) {
        self.stamps[v] = (u64::from(self.epoch) << 32) | u64::from(slot);
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("BufferPool")
            .field("allocs", &s.allocs)
            .field("reuses", &s.reuses)
            .field("recycled", &s.recycled)
            .finish()
    }
}

/// A snapshot of pool activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers newly allocated because the free list was empty.
    pub allocs: u64,
    /// Buffers served from a free list.
    pub reuses: u64,
    /// Buffers accepted back into a free list.
    pub recycled: u64,
}

impl PoolStats {
    /// Fraction of takes served without allocating.
    pub fn reuse_rate(&self) -> f64 {
        let total = self.allocs + self.reuses;
        if total == 0 {
            0.0
        } else {
            self.reuses as f64 / total as f64
        }
    }
}

macro_rules! pool_class {
    ($take:ident, $put:ident, $field:ident, $ty:ty, $fresh:expr) => {
        /// Pops a cleared buffer of this class, or allocates one.
        pub fn $take(&self) -> $ty {
            match self.$field.lock().expect("pool lock").pop() {
                Some(buf) => {
                    self.reuses.fetch_add(1, Ordering::Relaxed);
                    buf
                }
                None => {
                    self.allocs.fetch_add(1, Ordering::Relaxed);
                    $fresh
                }
            }
        }

        /// Clears and returns a buffer, dropping it if the class is full.
        pub fn $put(&self, mut buf: $ty) {
            buf.clear();
            let mut list = self.$field.lock().expect("pool lock");
            if list.len() < self.max_per_class {
                self.recycled.fetch_add(1, Ordering::Relaxed);
                list.push(buf);
            }
        }
    };
}

impl BufferPool {
    /// A pool with the default per-class free-list cap.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_MAX_PER_CLASS)
    }

    /// A pool keeping at most `max_per_class` free buffers per class.
    pub fn with_capacity(max_per_class: usize) -> Self {
        BufferPool {
            nodes: Mutex::new(Vec::new()),
            offsets: Mutex::new(Vec::new()),
            floats: Mutex::new(Vec::new()),
            spans: Mutex::new(Vec::new()),
            blocks: Mutex::new(Vec::new()),
            stamps: Mutex::new(Vec::new()),
            groups: Mutex::new(Vec::new()),
            max_per_class,
            allocs: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
        }
    }

    pool_class!(take_nodes, put_nodes, nodes, Vec<NodeId>, Vec::new());
    pool_class!(take_offsets, put_offsets, offsets, Vec<u32>, Vec::new());
    pool_class!(take_floats, put_floats, floats, Vec<f32>, Vec::new());
    pool_class!(take_spans, put_spans, spans, Vec<Span>, Vec::new());
    pool_class!(
        take_block,
        put_block,
        blocks,
        SampleBlock,
        SampleBlock::new()
    );

    /// Pops a stamp table, or makes an empty one. Unlike the other
    /// classes the table comes back *uncleared* — its epoch discipline
    /// makes old entries unreadable, so recycling it keeps both the
    /// allocation and the (large) zero-fill amortized across requests.
    pub fn take_stamps(&self) -> StampTable {
        match self.stamps.lock().expect("pool lock").pop() {
            Some(t) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                t
            }
            None => {
                self.allocs.fetch_add(1, Ordering::Relaxed);
                StampTable::default()
            }
        }
    }

    /// Returns a stamp table to the pool (dropped if the class is full).
    pub fn put_stamps(&self, table: StampTable) {
        let mut list = self.stamps.lock().expect("pool lock");
        if list.len() < self.max_per_class {
            self.recycled.fetch_add(1, Ordering::Relaxed);
            list.push(table);
        }
    }

    /// Pops a group buffer — `parts` empty inner `Vec<u32>`s, as the
    /// per-partition remote-position scratch of the fetch paths — or
    /// allocates one. Inner vectors keep their capacities across
    /// recycling, so steady-state classification loops stop paying
    /// `parts` allocations per call.
    pub fn take_groups(&self, parts: usize) -> Vec<Vec<u32>> {
        let mut groups = match self.groups.lock().expect("pool lock").pop() {
            Some(g) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                g
            }
            None => {
                self.allocs.fetch_add(1, Ordering::Relaxed);
                Vec::new()
            }
        };
        groups.resize_with(parts, Vec::new);
        groups
    }

    /// Returns a group buffer, clearing each inner vector in place
    /// (capacities retained). Dropped if the class is full.
    pub fn put_groups(&self, mut groups: Vec<Vec<u32>>) {
        for g in &mut groups {
            g.clear();
        }
        let mut list = self.groups.lock().expect("pool lock");
        if list.len() < self.max_per_class {
            self.recycled.fetch_add(1, Ordering::Relaxed);
            list.push(groups);
        }
    }

    /// Activity counters since the pool was created.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            allocs: self.allocs.load(Ordering::Relaxed),
            reuses: self.reuses.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
        }
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl lsdgnn_telemetry::MetricSource for PoolStats {
    fn collect(&self, out: &mut lsdgnn_telemetry::Scope<'_>) {
        out.counter("allocs", self.allocs);
        out.counter("reuses", self.reuses);
        out.counter("recycled", self.recycled);
        out.gauge("reuse_rate", self.reuse_rate());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_come_back_cleared_with_capacity() {
        let pool = BufferPool::new();
        let mut v = pool.take_nodes();
        v.extend((0..100).map(NodeId));
        let cap = v.capacity();
        pool.put_nodes(v);
        let v = pool.take_nodes();
        assert!(v.is_empty());
        assert!(v.capacity() >= cap, "recycled buffer keeps its capacity");
        let s = pool.stats();
        assert_eq!((s.allocs, s.reuses, s.recycled), (1, 1, 1));
        assert_eq!(s.reuse_rate(), 0.5);
    }

    #[test]
    fn blocks_recycle_with_invariants_intact() {
        let pool = BufferPool::new();
        let mut b = pool.take_block();
        b.roots.push(NodeId(1));
        b.push_hop(&[NodeId(2), NodeId(3)]);
        pool.put_block(b);
        let b = pool.take_block();
        assert_eq!(b, SampleBlock::new());
        assert_eq!(b.num_hops(), 0);
    }

    #[test]
    fn full_free_list_drops_instead_of_growing() {
        let pool = BufferPool::with_capacity(2);
        for _ in 0..5 {
            pool.put_offsets(vec![1, 2, 3]);
        }
        assert_eq!(pool.stats().recycled, 2, "cap bounds the free list");
        // Only the two retained buffers are reusable.
        for _ in 0..2 {
            pool.take_offsets();
        }
        assert_eq!(pool.stats().reuses, 2);
        pool.take_offsets();
        assert_eq!(pool.stats().allocs, 1);
    }

    #[test]
    fn stamp_table_scopes_are_independent_without_clearing() {
        let pool = BufferPool::new();
        let mut t = pool.take_stamps();
        t.begin(10);
        assert_eq!(t.get(3), None);
        t.set(3, 7);
        t.set(9, 0);
        assert_eq!(t.get(3), Some(7));
        assert_eq!(t.get(9), Some(0));
        // A new scope forgets everything in O(1).
        t.begin(10);
        assert_eq!(t.get(3), None);
        assert_eq!(t.get(9), None);
        // Recycling keeps the table usable and the old entries unreadable.
        pool.put_stamps(t);
        let mut t = pool.take_stamps();
        t.begin(20);
        assert_eq!(t.get(3), None);
        assert_eq!(t.get(19), None, "begin() grows the id range");
        assert_eq!(pool.stats().reuses, 1);
    }

    #[test]
    fn group_buffers_keep_inner_capacities_across_recycling() {
        let pool = BufferPool::new();
        let mut g = pool.take_groups(4);
        assert_eq!(g.len(), 4);
        g[0].extend(0..100);
        g[3].extend(0..50);
        let caps: Vec<usize> = g.iter().map(Vec::capacity).collect();
        pool.put_groups(g);
        // A smaller partition count truncates; inner capacities survive.
        let g = pool.take_groups(2);
        assert_eq!(g.len(), 2);
        assert!(g.iter().all(Vec::is_empty), "inner vecs come back cleared");
        assert!(g[0].capacity() >= caps[0], "inner capacity retained");
        let s = pool.stats();
        assert_eq!((s.allocs, s.reuses, s.recycled), (1, 1, 1));
    }

    #[test]
    fn stats_register_as_metric_source() {
        let pool = BufferPool::new();
        pool.put_floats(pool.take_floats());
        let mut reg = lsdgnn_telemetry::Registry::new();
        reg.register("pool", &[], Box::new(pool.stats()));
        let snap = reg.snapshot();
        assert_eq!(snap.get("pool/allocs").unwrap().as_f64(), 1.0);
        assert!(snap.get("pool/reuse_rate").is_some());
    }
}
