//! The batched, backpressured sampling service: the serving layer the
//! ROADMAP's production north-star asks for, built on
//! [`SamplingBackend`].
//!
//! Worker shards pull [`SampleRequest`]s from a *bounded* queue (a full
//! queue blocks producers — backpressure, not unbounded memory growth),
//! coalesce them into size/deadline-bounded batches, dispatch the batch
//! to the backend with [`SamplingBackend::sample_many`], and return each
//! result through its per-request reply channel. Because every request
//! carries its own seed and backends are deterministic per seed, the
//! answer is independent of which shard serves it or how batches form —
//! batching changes latency, never results.
//!
//! [`ServiceStats`] extends the backend's [`RequestStats`] with the
//! queue-depth, batch-size and latency histograms an operator of the
//! paper's heavy-traffic scenario (§2.4) would alarm on.

use crate::backend::{SampleRequest, SamplingBackend};
use crate::cluster::RequestStats;
use crossbeam::channel::{bounded, Receiver, Sender};
use lsdgnn_desim::{Histogram, Time};
use lsdgnn_graph::NodeId;
use lsdgnn_sampler::SampleBatch;
use lsdgnn_telemetry::{pids, Log2Histogram, MetricSource, Scope, Tracer};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service-level accounting: request/batch totals plus the three
/// operational histograms, and a snapshot of the backend's own stats.
///
/// Registers into a telemetry `Registry` directly (it is a
/// [`MetricSource`]), exporting `queue_depth`, `batch_size` and
/// `latency_us` percentile summaries plus the nested `backend/*`
/// counters.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Requests completed.
    pub requests: u64,
    /// Dispatches to the backend (each serving >= 1 request).
    pub dispatches: u64,
    /// Queue depth observed at each dispatch (requests left waiting).
    pub queue_depth: Log2Histogram,
    /// Coalesced batch size per dispatch.
    pub batch_size: Log2Histogram,
    /// Submit-to-reply latency per request (recorded as wall-clock
    /// microseconds via [`Time::from_micros`]).
    pub latency: Histogram,
    /// The backend's cumulative request accounting.
    pub backend: RequestStats,
}

impl ServiceStats {
    /// Interpolated p99 of the submit-to-reply latency, in microseconds
    /// (the operator alarm threshold of the §2.4 heavy-traffic scenario).
    pub fn latency_p99_us(&self) -> f64 {
        self.latency.percentile(0.99).as_micros_f64()
    }
}

impl MetricSource for ServiceStats {
    fn collect(&self, out: &mut Scope<'_>) {
        out.counter("requests", self.requests);
        out.counter("dispatches", self.dispatches);
        out.histogram("queue_depth", self.queue_depth.snapshot());
        out.histogram("batch_size", self.batch_size.snapshot());
        out.histogram("latency_us", self.latency.snapshot_micros());
        let mut backend = out.nested("backend");
        self.backend.collect(&mut backend);
    }
}

/// Tuning knobs of a [`SamplingService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker shards pulling from the shared queue.
    pub workers: usize,
    /// Bounded queue capacity; submits block (backpressure) when full.
    pub queue_capacity: usize,
    /// Most requests coalesced into one backend dispatch.
    pub max_batch: usize,
    /// How long a shard waits to grow a batch before dispatching.
    pub batch_deadline: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 16,
            batch_deadline: Duration::from_micros(200),
        }
    }
}

struct Job {
    req: SampleRequest,
    reply: Sender<SampleBatch>,
    submitted: Instant,
}

/// A pending request's handle; [`SampleTicket::wait`] blocks for the
/// result.
#[derive(Debug)]
pub struct SampleTicket {
    rx: Receiver<SampleBatch>,
}

impl SampleTicket {
    /// Blocks until the service replies.
    ///
    /// # Panics
    ///
    /// Panics if the service shut down before serving the request.
    pub fn wait(self) -> SampleBatch {
        self.rx.recv().expect("sampling service replies")
    }
}

/// The running service: worker shards over one shared backend.
pub struct SamplingService {
    backend: Arc<dyn SamplingBackend>,
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<Mutex<ServiceStats>>,
    config: ServiceConfig,
    tracer: Option<Tracer>,
}

impl std::fmt::Debug for SamplingService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SamplingService")
            .field("config", &self.config)
            .finish()
    }
}

fn shard_loop(
    backend: Arc<dyn SamplingBackend>,
    rx: Receiver<Job>,
    stats: Arc<Mutex<ServiceStats>>,
    cfg: ServiceConfig,
    tracer: Option<Tracer>,
    shard: u32,
) {
    // A closed queue (sender dropped) ends the shard once drained.
    while let Ok(first) = rx.recv() {
        let mut jobs = vec![first];
        let deadline = Instant::now() + cfg.batch_deadline;
        while jobs.len() < cfg.max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => jobs.push(job),
                Err(_) => break, // deadline hit or queue closed
            }
        }
        let queue_depth = rx.len() as u64;
        let dispatch_start = tracer.as_ref().map(|t| t.wall_us());
        let reqs: Vec<SampleRequest> = jobs.iter().map(|j| j.req.clone()).collect();
        let results = backend.sample_many(&reqs);
        if let (Some(tracer), Some(start)) = (&tracer, dispatch_start) {
            tracer.span_args(
                "service",
                "dispatch",
                pids::SERVICE,
                shard,
                start,
                tracer.wall_us() - start,
                &[
                    ("batch", jobs.len() as f64),
                    ("queue_depth", queue_depth as f64),
                ],
            );
        }
        {
            let mut s = stats.lock().expect("stats lock");
            s.dispatches += 1;
            s.requests += jobs.len() as u64;
            s.queue_depth.record(queue_depth);
            s.batch_size.record(jobs.len() as u64);
            for job in &jobs {
                let elapsed_us = job.submitted.elapsed().as_micros() as u64;
                s.latency.record(Time::from_micros(elapsed_us));
                if let Some(tracer) = &tracer {
                    // Submit→reply lifecycle, anchored at submit time.
                    tracer.span(
                        "service",
                        "request",
                        pids::SERVICE,
                        shard,
                        tracer.us_of(job.submitted),
                        elapsed_us as f64,
                    );
                }
            }
        }
        for (job, batch) in jobs.into_iter().zip(results) {
            // A dropped ticket (caller gave up) is not an error.
            let _ = job.reply.send(batch);
        }
    }
}

impl SamplingService {
    /// Starts worker shards over `backend`.
    ///
    /// # Panics
    ///
    /// Panics if `workers`, `queue_capacity` or `max_batch` is zero.
    pub fn start(backend: Box<dyn SamplingBackend>, config: ServiceConfig) -> Self {
        Self::start_traced(backend, config, None)
    }

    /// Like [`SamplingService::start`], but records wall-clock
    /// `service`-category spans into `tracer`: one `dispatch` span per
    /// backend call and one `request` span per submit→reply lifecycle,
    /// on the shard's thread track.
    ///
    /// # Panics
    ///
    /// Panics if `workers`, `queue_capacity` or `max_batch` is zero.
    pub fn start_traced(
        backend: Box<dyn SamplingBackend>,
        config: ServiceConfig,
        tracer: Option<Tracer>,
    ) -> Self {
        assert!(config.workers > 0, "need at least one worker shard");
        assert!(config.queue_capacity > 0, "queue capacity must be non-zero");
        assert!(config.max_batch > 0, "max batch must be non-zero");
        if let Some(tracer) = &tracer {
            tracer.name_process(pids::SERVICE, "sampling-service");
            for shard in 0..config.workers {
                tracer.name_thread(pids::SERVICE, shard as u32, &format!("shard{shard}"));
            }
            tracer.name_thread(pids::SERVICE, config.workers as u32, "clients");
        }
        let backend: Arc<dyn SamplingBackend> = Arc::from(backend);
        let stats = Arc::new(Mutex::new(ServiceStats::default()));
        let (tx, rx) = bounded(config.queue_capacity);
        let workers = (0..config.workers)
            .map(|shard| {
                let backend = backend.clone();
                let rx = rx.clone();
                let stats = stats.clone();
                let tracer = tracer.clone();
                std::thread::spawn(move || {
                    shard_loop(backend, rx, stats, config, tracer, shard as u32)
                })
            })
            .collect();
        SamplingService {
            backend,
            tx: Some(tx),
            workers,
            stats,
            config,
            tracer,
        }
    }

    /// Starts the service with default tuning.
    pub fn with_defaults(backend: Box<dyn SamplingBackend>) -> Self {
        Self::start(backend, ServiceConfig::default())
    }

    /// The service configuration.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// Enqueues a request, blocking while the queue is full
    /// (backpressure), and returns a ticket for the result.
    pub fn submit(&self, req: SampleRequest) -> SampleTicket {
        if let Some(tracer) = &self.tracer {
            tracer.instant(
                "service",
                "submit",
                pids::SERVICE,
                self.config.workers as u32,
                tracer.wall_us(),
            );
        }
        let (reply, rx) = bounded(1);
        self.tx
            .as_ref()
            .expect("service running")
            .send(Job {
                req,
                reply,
                submitted: Instant::now(),
            })
            .expect("worker shards alive");
        SampleTicket { rx }
    }

    /// Submits and waits: the synchronous convenience path.
    pub fn sample(&self, req: SampleRequest) -> SampleBatch {
        self.submit(req).wait()
    }

    /// Gathers attributes straight through the backend (attribute reads
    /// are already batched by the caller's fetch list).
    pub fn gather_attributes(&self, nodes: &[NodeId]) -> Vec<f32> {
        self.backend.gather_attributes(nodes)
    }

    /// A snapshot of service-level stats, with the backend's own
    /// accounting folded in.
    pub fn stats(&self) -> ServiceStats {
        let mut s = self.stats.lock().expect("stats lock").clone();
        s.backend = self.backend.stats();
        s
    }

    /// The backend being served (for decorator introspection in tests).
    pub fn backend(&self) -> &dyn SamplingBackend {
        &*self.backend
    }

    /// Stops the shards after draining queued requests.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // Closing the queue lets shards drain and exit.
        drop(self.tx.take());
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.backend.flush();
    }
}

impl Drop for SamplingService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::CpuBackend;
    use lsdgnn_graph::{generators, AttributeStore};

    fn service(workers: usize) -> SamplingService {
        let g = generators::power_law(500, 8, 31);
        let a = AttributeStore::synthetic(500, 8, 31);
        SamplingService::start(
            Box::new(CpuBackend::new(&g, &a, 2)),
            ServiceConfig {
                workers,
                ..ServiceConfig::default()
            },
        )
    }

    fn req(seed: u64) -> SampleRequest {
        SampleRequest {
            roots: (0..8).map(NodeId).collect(),
            hops: 2,
            fanout: 4,
            seed,
        }
    }

    #[test]
    fn served_results_match_direct_backend_calls() {
        let g = generators::power_law(500, 8, 31);
        let a = AttributeStore::synthetic(500, 8, 31);
        let direct = CpuBackend::new(&g, &a, 2);
        let svc = service(2);
        for seed in 0..8 {
            assert_eq!(svc.sample(req(seed)), direct.sample_neighbors(&req(seed)));
        }
        svc.shutdown();
    }

    #[test]
    fn concurrent_submissions_all_complete_with_stats() {
        let svc = service(3);
        let tickets: Vec<_> = (0..40).map(|s| svc.submit(req(s))).collect();
        let batches: Vec<_> = tickets.into_iter().map(SampleTicket::wait).collect();
        assert_eq!(batches.len(), 40);
        // Per-seed determinism holds through the pool: re-ask one.
        assert_eq!(svc.sample(req(7)), batches[7]);
        let s = svc.stats();
        assert_eq!(s.requests, 41);
        assert!(s.dispatches >= 1 && s.dispatches <= 41);
        assert_eq!(s.latency.count(), 41);
        assert!(s.latency_p99_us() >= s.latency.percentile(0.5).as_micros_f64());
        assert!(s.backend.nodes_expanded > 0);
        svc.shutdown();
    }

    #[test]
    fn deadline_coalescing_batches_queued_requests() {
        // One worker, long deadline: a burst should coalesce.
        let g = generators::power_law(300, 8, 32);
        let a = AttributeStore::synthetic(300, 8, 32);
        let svc = SamplingService::start(
            Box::new(CpuBackend::new(&g, &a, 1)),
            ServiceConfig {
                workers: 1,
                queue_capacity: 64,
                max_batch: 8,
                batch_deadline: Duration::from_millis(20),
            },
        );
        let tickets: Vec<_> = (0..16).map(|s| svc.submit(req(s))).collect();
        for t in tickets {
            t.wait();
        }
        let s = svc.stats();
        assert_eq!(s.requests, 16);
        assert!(
            s.dispatches < 16,
            "no coalescing happened: {} dispatches",
            s.dispatches
        );
        assert!(s.batch_size.max() > 1);
        svc.shutdown();
    }

    #[test]
    fn drop_shuts_the_pool_down() {
        let svc = service(2);
        svc.sample(req(1));
        drop(svc); // must not hang or leak threads
    }

    #[test]
    fn stats_register_as_metric_source() {
        let svc = service(2);
        for s in 0..4 {
            svc.sample(req(s));
        }
        let mut reg = lsdgnn_telemetry::Registry::new();
        reg.register("service", &[("backend", "cpu")], Box::new(svc.stats()));
        let snap = reg.snapshot();
        assert_eq!(snap.get("service/requests").unwrap().as_f64(), 4.0);
        let lat = snap
            .get("service/latency_us")
            .and_then(|v| v.as_histogram().copied())
            .expect("latency histogram exported");
        assert_eq!(lat.count, 4);
        assert!(lat.p99 >= lat.p50);
        assert!(
            snap.get("service/backend/nodes_expanded").unwrap().as_f64() > 0.0,
            "backend stats nest under the service scope"
        );
        svc.shutdown();
    }

    #[test]
    fn traced_service_records_lifecycle_spans() {
        let g = generators::power_law(300, 8, 33);
        let a = AttributeStore::synthetic(300, 8, 33);
        let tracer = Tracer::new();
        let svc = SamplingService::start_traced(
            Box::new(CpuBackend::new(&g, &a, 2)),
            ServiceConfig::default(),
            Some(tracer.clone()),
        );
        for s in 0..3 {
            svc.sample(req(s));
        }
        svc.shutdown();
        let events = tracer.events();
        let requests = events
            .iter()
            .filter(|e| e.ph == 'X' && e.name == "request" && e.cat == "service")
            .count();
        assert_eq!(requests, 3);
        assert!(
            events.iter().any(|e| e.ph == 'X' && e.name == "dispatch"),
            "dispatch spans present"
        );
        assert!(
            events.iter().any(|e| e.ph == 'i' && e.name == "submit"),
            "submit instants present"
        );
    }
}
