//! The batched, backpressured sampling service: the serving layer the
//! ROADMAP's production north-star asks for, built on
//! [`SamplingBackend`].
//!
//! Worker shards pull [`SampleRequest`]s from a *bounded* queue (a full
//! queue blocks producers — backpressure, not unbounded memory growth),
//! coalesce them into size/deadline-bounded batches, dispatch the batch
//! to the backend with [`SamplingBackend::sample_many`], and return each
//! result through its per-request reply channel. Because every request
//! carries its own seed and backends are deterministic per seed, the
//! answer is independent of which shard serves it or how batches form —
//! batching changes latency, never results.
//!
//! # Graceful degradation
//!
//! Started with a [`FaultInjector`] ([`SamplingService::start_faulted`]),
//! the service serves each request through the fallible
//! [`SamplingBackend::try_sample`] path behind a ladder of defenses:
//! bounded retries with exponential backoff and deterministic jitter, a
//! hedged re-dispatch after repeated failures, a per-shard
//! [`CircuitBreaker`] that stops hammering a failing backend, and — when
//! everything above ran out — the never-failing
//! [`SamplingBackend::sample_excluding`] fallback whose partial answer is
//! returned flagged [`SampleReply::degraded`] instead of erroring. An
//! incomplete neighbor sample from the reachable shards is still a valid
//! approximate sample; the reply quantifies the loss via
//! [`SampleReply::unreachable`].
//!
//! Pay for what you use: with no injector — or a zero-fault plan — the
//! service takes the exact batched dispatch path it always had.
//!
//! [`ServiceStats`] extends the backend's [`RequestStats`] with the
//! queue-depth, batch-size and latency histograms an operator of the
//! paper's heavy-traffic scenario (§2.4) would alarm on, plus the
//! degradation counters (degraded replies, retries, hedges, breaker
//! trips) the fault model adds.

use crate::admission::Priority;
use crate::backend::{SampleOutcome, SampleRequest, SamplingBackend};
use crate::breaker::CircuitBreaker;
use crate::cluster::RequestStats;
use crate::hot_cache::CacheSnapshot;
use crate::obs::Observability;
use crossbeam::channel::{bounded, Receiver, Sender};
use lsdgnn_chaos::{rng::stream, ChaosRng, FaultInjector};
use lsdgnn_desim::{Histogram, Time};
use lsdgnn_graph::NodeId;
use lsdgnn_sampler::{SampleBatch, SampleBlock};
use lsdgnn_telemetry::ledger::{self, faults, Stage, NO_SHARD};
use lsdgnn_telemetry::{pids, Log2Histogram, MetricSource, Scope, Tracer};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service-level accounting: request/batch totals plus the three
/// operational histograms, degradation counters, and a snapshot of the
/// backend's own stats.
///
/// Registers into a telemetry `Registry` directly (it is a
/// [`MetricSource`]), exporting `queue_depth`, `batch_size` and
/// `latency_us` percentile summaries plus the nested `backend/*`
/// counters.
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Requests completed.
    pub requests: u64,
    /// Dispatches to the backend (each serving >= 1 request).
    pub dispatches: u64,
    /// Queue depth observed at each dispatch (requests left waiting).
    pub queue_depth: Log2Histogram,
    /// Coalesced batch size per dispatch.
    pub batch_size: Log2Histogram,
    /// Submit-to-reply latency per request (recorded as wall-clock
    /// microseconds via [`Time::from_micros`]).
    pub latency: Histogram,
    /// Replies flagged degraded (partial results from reachable shards).
    pub degraded: u64,
    /// Backend attempts that failed (retried or degraded around).
    pub faults: u64,
    /// `try_sample` attempts per request (1 = first try succeeded).
    pub retries: Log2Histogram,
    /// Hedged re-dispatches fired.
    pub hedges: u64,
    /// Requests answered by the degraded fallback after the retry ladder
    /// ran out.
    pub fallbacks: u64,
    /// Circuit-breaker open transitions across shards.
    pub breaker_opens: u64,
    /// Requests short-circuited to the fallback by an open breaker.
    pub breaker_fastpaths: u64,
    /// The backend's cumulative request accounting.
    pub backend: RequestStats,
    /// Hot-set cache counters, when a cache sits on the backend's data
    /// plane (`None` for uncached backends).
    pub cache: Option<CacheSnapshot>,
}

impl ServiceStats {
    /// Interpolated p99 of the submit-to-reply latency, in microseconds
    /// (the operator alarm threshold of the §2.4 heavy-traffic scenario).
    pub fn latency_p99_us(&self) -> f64 {
        self.latency.percentile(0.99).as_micros_f64()
    }

    /// Fraction of completed requests whose reply was degraded.
    pub fn degraded_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.degraded as f64 / self.requests as f64
        }
    }
}

impl MetricSource for ServiceStats {
    fn collect(&self, out: &mut Scope<'_>) {
        out.counter("requests", self.requests);
        out.counter("dispatches", self.dispatches);
        out.histogram("queue_depth", self.queue_depth.snapshot());
        out.histogram("batch_size", self.batch_size.snapshot());
        out.histogram("latency_us", self.latency.snapshot_micros());
        out.counter("degraded", self.degraded);
        out.counter("faults", self.faults);
        out.histogram("retries", self.retries.snapshot());
        out.counter("hedges", self.hedges);
        out.counter("fallbacks", self.fallbacks);
        out.counter("breaker_opens", self.breaker_opens);
        out.counter("breaker_fastpaths", self.breaker_fastpaths);
        out.gauge("degraded_ratio", self.degraded_ratio());
        let mut backend = out.nested("backend");
        self.backend.collect(&mut backend);
        if let Some(cache) = &self.cache {
            cache.collect(&mut out.nested("cache"));
        }
    }
}

/// Degradation policy of a [`SamplingService`]: how hard to fight for an
/// exact answer before settling for a partial one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeConfig {
    /// Per-request time budget: once exceeded, no further retries — the
    /// request falls back to a degraded answer rather than blowing its
    /// deadline.
    pub deadline: Duration,
    /// Retries after the first attempt before falling back.
    pub max_retries: u32,
    /// Backoff before retry `n` sleeps `backoff_base * 2^(n-1)`, scaled
    /// by a deterministic jitter in [0.5, 1.5).
    pub backoff_base: Duration,
    /// Failed attempts before a hedged re-dispatch is fired alongside
    /// the retry ladder.
    pub hedge_threshold: u32,
    /// Consecutive backend failures that trip a shard's breaker open.
    pub breaker_threshold: u32,
    /// Dispatch decisions an open breaker waits before half-opening.
    pub breaker_cooldown: u32,
    /// Probes a half-open breaker admits, consumed interactive-first
    /// (see [`CircuitBreaker::allow_for`]); 1 = the classic single-probe
    /// breaker.
    pub breaker_probes: u32,
    /// Seed of the deterministic backoff-jitter stream.
    pub jitter_seed: u64,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            deadline: Duration::from_millis(100),
            max_retries: 4,
            backoff_base: Duration::from_micros(50),
            hedge_threshold: 2,
            breaker_threshold: 8,
            breaker_cooldown: 16,
            breaker_probes: 1,
            jitter_seed: 0x5eed_cafe,
        }
    }
}

/// How a shard decides a growing batch is done waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Close `batch_deadline` after the batch's first request arrived —
    /// the original fixed-timer path, retained for differential tests.
    FixedDeadline,
    /// Deadline-aware close: keep growing only while every admitted
    /// request still has *slack* — `deadline − elapsed − est_service` —
    /// left. The batch closes the moment the tightest request's slack
    /// runs out, so coalescing can never be the reason a request misses
    /// its deadline. Requests without a deadline contribute the fixed
    /// `batch_deadline` wait, making the two policies identical on
    /// deadline-less traffic.
    SlackDriven {
        /// Estimated service time of one dispatched batch (reserved out
        /// of every request's slack).
        est_service: Duration,
    },
}

/// Tuning knobs of a [`SamplingService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Worker shards pulling from the shared queue.
    pub workers: usize,
    /// Bounded queue capacity; submits block (backpressure) when full.
    pub queue_capacity: usize,
    /// Most requests coalesced into one backend dispatch.
    pub max_batch: usize,
    /// How long a shard waits to grow a batch before dispatching.
    pub batch_deadline: Duration,
    /// Batch-close rule (fixed timer vs deadline slack).
    pub batch: BatchPolicy,
    /// The degradation policy (only exercised under faults).
    pub degrade: DegradeConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            max_batch: 16,
            batch_deadline: Duration::from_micros(200),
            batch: BatchPolicy::FixedDeadline,
            degrade: DegradeConfig::default(),
        }
    }
}

/// One served answer with its degradation provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleReply {
    /// The sampled mini-batch in flat-buffer form (possibly partial).
    pub block: SampleBlock,
    /// True when the block is missing an unreachable shard's
    /// contribution; the caller decides whether approximate is enough.
    pub degraded: bool,
    /// Nodes whose owner was unreachable (the size of the quality loss).
    pub unreachable: u64,
    /// `try_sample` attempts spent (0 when an open breaker short-
    /// circuited straight to the fallback).
    pub attempts: u32,
    /// A hedged re-dispatch was fired for this request.
    pub hedged: bool,
}

impl SampleReply {
    fn exact(block: SampleBlock) -> Self {
        SampleReply {
            block,
            degraded: false,
            unreachable: 0,
            attempts: 1,
            hedged: false,
        }
    }

    fn from_outcome(outcome: SampleOutcome, attempts: u32, hedged: bool) -> Self {
        SampleReply {
            block: outcome.block,
            degraded: outcome.degraded,
            unreachable: outcome.unreachable,
            attempts,
            hedged,
        }
    }
}

struct Job {
    req: SampleRequest,
    reply: Sender<SampleReply>,
    submitted: Instant,
    /// Absolute deadline for slack-driven batch close; `None` means the
    /// request tolerates the full fixed `batch_deadline` wait.
    deadline: Option<Instant>,
    /// Priority class, consulted by the breaker's probe accounting.
    class: Priority,
    /// Ledger trace id (0 = untraced: no observability installed).
    trace: u64,
}

/// A pending request's handle; [`SampleTicket::wait`] blocks for the
/// result.
#[derive(Debug)]
pub struct SampleTicket {
    rx: Receiver<SampleReply>,
    trace: u64,
}

impl SampleTicket {
    /// Assembles a ticket from a reply channel and trace id (the shaped
    /// front door creates the channel at admission time so the ticket
    /// exists before the request reaches the service queue).
    pub(crate) fn from_parts(rx: Receiver<SampleReply>, trace: u64) -> Self {
        SampleTicket { rx, trace }
    }

    /// The request's ledger trace id (0 when the service was started
    /// without observability). Outer pipeline layers use this to append
    /// their own stages to the same causal record.
    pub fn trace(&self) -> u64 {
        self.trace
    }
    /// Blocks until the service replies, discarding degradation
    /// metadata — the legacy synchronous path, in nested-`Vec` form.
    ///
    /// # Panics
    ///
    /// Panics if the service shut down before serving the request.
    pub fn wait(self) -> SampleBatch {
        self.wait_reply().block.into_batch()
    }

    /// Blocks until the service replies, keeping the flat block shape
    /// and discarding degradation metadata.
    ///
    /// # Panics
    ///
    /// Panics if the service shut down before serving the request.
    pub fn wait_block(self) -> SampleBlock {
        self.wait_reply().block
    }

    /// Blocks until the service replies, with degradation provenance.
    ///
    /// # Panics
    ///
    /// Panics if the service shut down before serving the request.
    pub fn wait_reply(self) -> SampleReply {
        self.rx.recv().expect("sampling service replies")
    }
}

/// Per-batch accounting a shard folds into [`ServiceStats`] under one
/// lock acquisition.
#[derive(Debug, Default)]
struct ServeAcct {
    faults: u64,
    hedges: u64,
    fallbacks: u64,
    fastpaths: u64,
}

/// Serves one request through the full degradation ladder:
/// breaker gate → retry loop (backoff + hedge) → degraded fallback.
/// The request's priority class governs breaker probe accounting:
/// best-effort traffic never consumes a half-open probe.
#[allow(clippy::too_many_arguments)]
fn serve_one(
    backend: &Arc<dyn SamplingBackend>,
    req: &SampleRequest,
    submitted: Instant,
    class: Priority,
    degrade: &DegradeConfig,
    breaker: &mut CircuitBreaker,
    jitter: &ChaosRng,
    acct: &mut ServeAcct,
) -> SampleReply {
    // Hedged attempts draw from a far-away attempt coordinate so their
    // fault decision is decorrelated from the retry ladder's.
    const HEDGE_SALT: u32 = 0x8000_0000;

    // Ladder events land in whatever recording scope the shard
    // installed for this request; without one (observability off) no
    // clocks are read and every record call is a no-op.
    let obs_on = ledger::scope_active();
    let us_since = |t0: Option<Instant>| t0.map_or(0.0, |t| t.elapsed().as_secs_f64() * 1e6);

    if !breaker.allow_for(class) {
        // Open breaker: don't touch the failing path at all. The
        // fallback still reflects genuinely-down shards, so the answer
        // is as good as retries would have eventually produced.
        acct.fastpaths += 1;
        acct.fallbacks += 1;
        if obs_on {
            ledger::scope_record(Stage::BreakerTrip, NO_SHARD, 0.0, 0.0, 0);
        }
        let t0 = obs_on.then(Instant::now);
        let outcome = backend.sample_excluding(req, &[]);
        if obs_on {
            ledger::scope_record(Stage::Fallback, NO_SHARD, 0.0, us_since(t0), 0);
        }
        return SampleReply::from_outcome(outcome, 0, false);
    }

    let mut attempts = 0u32;
    let mut hedged = false;
    loop {
        attempts += 1;
        let t0 = obs_on.then(Instant::now);
        match backend.try_sample(req, attempts - 1) {
            Ok(outcome) => {
                breaker.record_success();
                return SampleReply::from_outcome(outcome, attempts, hedged);
            }
            Err(_) => {
                acct.faults += 1;
                breaker.record_failure();
            }
        }
        let failed_us = us_since(t0);
        let exhausted = attempts > degrade.max_retries;
        let over_deadline = submitted.elapsed() >= degrade.deadline;
        if exhausted || over_deadline || !breaker.allow_for(class) {
            if obs_on {
                ledger::scope_record(Stage::Retry, NO_SHARD, 0.0, failed_us, attempts as u64);
            }
            break;
        }
        if attempts >= degrade.hedge_threshold && !hedged {
            hedged = true;
            acct.hedges += 1;
            let h0 = obs_on.then(Instant::now);
            match backend.try_sample(req, HEDGE_SALT + attempts) {
                Ok(outcome) => {
                    breaker.record_success();
                    if obs_on {
                        ledger::scope_record(
                            Stage::Hedge,
                            NO_SHARD,
                            0.0,
                            us_since(h0),
                            attempts as u64,
                        );
                        ledger::scope_record(
                            Stage::Retry,
                            NO_SHARD,
                            0.0,
                            failed_us,
                            attempts as u64,
                        );
                    }
                    return SampleReply::from_outcome(outcome, attempts, true);
                }
                Err(_) => {
                    acct.faults += 1;
                    breaker.record_failure();
                    if obs_on {
                        ledger::scope_record(
                            Stage::Hedge,
                            NO_SHARD,
                            0.0,
                            us_since(h0),
                            attempts as u64,
                        );
                    }
                }
            }
        }
        // Exponential backoff with deterministic jitter in [0.5, 1.5).
        let factor = 1u32 << (attempts - 1).min(10);
        let scale = 0.5 + jitter.uniform(stream::BACKOFF_JITTER, req.seed, attempts as u64);
        let sleep = degrade.backoff_base.mul_f64(factor as f64 * scale);
        if obs_on {
            // The failed attempt and the backoff it bought: service time
            // is the attempt, queue time the deliberate wait after it.
            ledger::scope_record(
                Stage::Retry,
                NO_SHARD,
                sleep.as_secs_f64() * 1e6,
                failed_us,
                attempts as u64,
            );
        }
        if !sleep.is_zero() {
            std::thread::sleep(sleep);
        }
    }
    // The ladder ran out: answer from the never-failing degraded path.
    acct.fallbacks += 1;
    let t0 = obs_on.then(Instant::now);
    let outcome = backend.sample_excluding(req, &[]);
    if obs_on {
        ledger::scope_record(
            Stage::Fallback,
            NO_SHARD,
            0.0,
            us_since(t0),
            attempts as u64,
        );
    }
    SampleReply::from_outcome(outcome, attempts, hedged)
}

/// The running service: worker shards over one shared backend.
pub struct SamplingService {
    backend: Arc<dyn SamplingBackend>,
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<Mutex<ServiceStats>>,
    config: ServiceConfig,
    tracer: Option<Tracer>,
    injector: Option<FaultInjector>,
    obs: Option<Observability>,
}

impl std::fmt::Debug for SamplingService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SamplingService")
            .field("config", &self.config)
            .finish()
    }
}

#[allow(clippy::too_many_arguments)]
fn shard_loop(
    backend: Arc<dyn SamplingBackend>,
    rx: Receiver<Job>,
    stats: Arc<Mutex<ServiceStats>>,
    cfg: ServiceConfig,
    tracer: Option<Tracer>,
    shard: u32,
    injector: Option<FaultInjector>,
    obs: Option<Observability>,
) {
    // Faults flow through serve_one only when a non-trivial plan is
    // installed; otherwise the exact batched dispatch below runs,
    // bit-identical to a service started without chaos.
    let chaos = injector
        .as_ref()
        .filter(|inj| !inj.plan().is_zero_fault())
        .cloned();
    let mut breaker = CircuitBreaker::with_probes(
        cfg.degrade.breaker_threshold,
        cfg.degrade.breaker_cooldown.max(1),
        cfg.degrade.breaker_probes.max(1),
    );
    let jitter = ChaosRng::new(cfg.degrade.jitter_seed);
    let panic_after = chaos
        .as_ref()
        .and_then(|inj| inj.plan().worker_panic_after(shard));
    // The shard's private ledger buffer: events accumulate lock-free and
    // merge into the shared ring once per batch.
    let mut lh = obs.as_ref().map(|o| o.ledger().handle());
    let mut dispatch_no = 0u64;
    // A closed queue (sender dropped) ends the shard once drained.
    // Slack-driven batching: a joining job may only *shrink* the close
    // time, to the latest instant at which dispatching still leaves
    // `est_service` before that job's deadline. A job with no deadline
    // tolerates the full fixed wait — on deadline-less traffic the two
    // policies close identically.
    let job_close = |job: &Job, fallback: Instant| match (cfg.batch, job.deadline) {
        (BatchPolicy::SlackDriven { est_service }, Some(deadline)) => {
            deadline.checked_sub(est_service).unwrap_or(fallback)
        }
        _ => fallback,
    };
    while let Ok(first) = rx.recv() {
        let fixed_close = Instant::now() + cfg.batch_deadline;
        let mut close_at = job_close(&first, fixed_close).min(fixed_close);
        let mut jobs = vec![first];
        while jobs.len() < cfg.max_batch {
            let now = Instant::now();
            if now >= close_at {
                break;
            }
            match rx.recv_timeout(close_at - now) {
                Ok(job) => {
                    close_at = close_at.min(job_close(&job, fixed_close));
                    jobs.push(job);
                }
                Err(_) => break, // close time hit or queue closed
            }
        }
        dispatch_no += 1;
        if let Some(inj) = &chaos {
            if let Some(us) = inj.plan().queue_stall_us(shard, dispatch_no) {
                inj.note_queue_stall();
                if let Some(h) = &mut lh {
                    for job in &jobs {
                        h.record(job.trace, Stage::Stall, shard, us as f64, 0.0, 0);
                        h.record(
                            job.trace,
                            Stage::Fault,
                            shard,
                            0.0,
                            0.0,
                            faults::QUEUE_STALL,
                        );
                    }
                }
                std::thread::sleep(Duration::from_micros(us));
            }
        }
        let queue_depth = rx.len() as u64;
        let dispatch_start = tracer.as_ref().map(|t| t.wall_us());
        if let Some(h) = &mut lh {
            // Batch admission: the submit→dispatch wait is pure queueing.
            let admitted = Instant::now();
            for job in &jobs {
                let wait_us = admitted
                    .saturating_duration_since(job.submitted)
                    .as_secs_f64()
                    * 1e6;
                h.record(
                    job.trace,
                    Stage::Admission,
                    shard,
                    wait_us,
                    0.0,
                    jobs.len() as u64,
                );
            }
        }
        let mut acct = ServeAcct::default();
        let breaker_opens_before = breaker.opens();
        let replies: Vec<SampleReply> = match &chaos {
            None => {
                // Shared batch work (the fused dispatch and everything
                // the data plane does inside it) attributes to every
                // request in the batch.
                let _scope = obs.as_ref().map(|o| {
                    ledger::enter_scope(o.ledger(), jobs.iter().map(|j| j.trace).collect())
                });
                // Borrowed dispatch: the batch hands the backend
                // references into the queued jobs, not request clones.
                let reqs: Vec<&SampleRequest> = jobs.iter().map(|j| &j.req).collect();
                backend
                    .sample_many(&reqs)
                    .into_iter()
                    .map(SampleReply::exact)
                    .collect()
            }
            Some(inj) => jobs
                .iter()
                .map(|job| {
                    // Per-request scope: the retry ladder's events must
                    // attribute to the one request being served.
                    let _scope = obs
                        .as_ref()
                        .map(|o| ledger::enter_scope(o.ledger(), vec![job.trace]));
                    let reply = serve_one(
                        &backend,
                        &job.req,
                        job.submitted,
                        job.class,
                        &cfg.degrade,
                        &mut breaker,
                        &jitter,
                        &mut acct,
                    );
                    if reply.degraded {
                        inj.note_degraded_reply();
                    } else {
                        inj.note_exact_reply();
                    }
                    reply
                })
                .collect(),
        };
        if let (Some(tracer), Some(start)) = (&tracer, dispatch_start) {
            tracer.span_args(
                "service",
                "dispatch",
                pids::SERVICE,
                shard,
                start,
                tracer.wall_us() - start,
                &[
                    ("batch", jobs.len() as f64),
                    ("queue_depth", queue_depth as f64),
                ],
            );
        }
        {
            let mut s = stats.lock().expect("stats lock");
            s.dispatches += 1;
            s.requests += jobs.len() as u64;
            s.queue_depth.record(queue_depth);
            s.batch_size.record(jobs.len() as u64);
            s.faults += acct.faults;
            s.hedges += acct.hedges;
            s.fallbacks += acct.fallbacks;
            s.breaker_fastpaths += acct.fastpaths;
            s.breaker_opens += breaker.opens() - breaker_opens_before;
            for reply in &replies {
                if reply.degraded {
                    s.degraded += 1;
                }
                s.retries.record(reply.attempts as u64);
            }
            for (job, reply) in jobs.iter().zip(&replies) {
                let elapsed_us = job.submitted.elapsed().as_micros() as u64;
                s.latency.record(Time::from_micros(elapsed_us));
                if let Some(tracer) = &tracer {
                    // Submit→reply lifecycle, anchored at submit time.
                    tracer.span(
                        "service",
                        "request",
                        pids::SERVICE,
                        shard,
                        tracer.us_of(job.submitted),
                        elapsed_us as f64,
                    );
                }
                if let (Some(o), Some(h)) = (obs.as_ref(), lh.as_mut()) {
                    h.record(
                        job.trace,
                        Stage::SampleDone,
                        shard,
                        0.0,
                        elapsed_us as f64,
                        u64::from(reply.degraded),
                    );
                    o.observe_sampling(elapsed_us as f64, reply.degraded);
                    if o.sample_finish_enabled() {
                        // Outermost layer: run the flight-dump/deadline
                        // triggers here. (A wrapping pipeline defers
                        // this to its own end-to-end completion.)
                        h.flush();
                        o.ledger()
                            .finish(job.trace, elapsed_us as f64, reply.degraded);
                    }
                }
            }
        }
        if let Some(h) = &mut lh {
            // Batch boundary: merge this dispatch's events off the hot
            // path in one lock acquisition.
            h.flush();
        }
        for (job, reply) in jobs.into_iter().zip(replies) {
            // A dropped ticket (caller gave up) is not an error.
            let _ = job.reply.send(reply);
        }
        if let Some(after) = panic_after {
            if dispatch_no >= after {
                // Injected worker crash: the shard dies *between* batches
                // so no accepted job is lost; surviving shards keep
                // draining the shared queue.
                chaos
                    .as_ref()
                    .expect("panic implies chaos")
                    .note_worker_panic();
                return;
            }
        }
    }
}

impl SamplingService {
    /// Starts worker shards over `backend`.
    ///
    /// # Panics
    ///
    /// Panics if `workers`, `queue_capacity` or `max_batch` is zero.
    pub fn start(backend: Box<dyn SamplingBackend>, config: ServiceConfig) -> Self {
        Self::start_faulted(backend, config, None, None)
    }

    /// Like [`SamplingService::start`], but records wall-clock
    /// `service`-category spans into `tracer`: one `dispatch` span per
    /// backend call and one `request` span per submit→reply lifecycle,
    /// on the shard's thread track.
    ///
    /// # Panics
    ///
    /// Panics if `workers`, `queue_capacity` or `max_batch` is zero.
    pub fn start_traced(
        backend: Box<dyn SamplingBackend>,
        config: ServiceConfig,
        tracer: Option<Tracer>,
    ) -> Self {
        Self::start_faulted(backend, config, tracer, None)
    }

    /// The chaos entry point: like [`SamplingService::start_traced`] but
    /// with a [`FaultInjector`] whose plan schedules worker panics and
    /// queue stalls at the service layer and whose counters receive the
    /// degraded/exact reply tallies. A zero-fault plan leaves the exact
    /// batched dispatch path untouched.
    ///
    /// # Panics
    ///
    /// Panics if `workers`, `queue_capacity` or `max_batch` is zero.
    pub fn start_faulted(
        backend: Box<dyn SamplingBackend>,
        config: ServiceConfig,
        tracer: Option<Tracer>,
        injector: Option<FaultInjector>,
    ) -> Self {
        Self::start_observed(backend, config, tracer, injector, None)
    }

    /// The fully-instrumented entry point: [`SamplingService::start_faulted`]
    /// plus an optional [`Observability`] bundle. With one installed,
    /// every request gets a ledger trace id and the shards record
    /// enqueue/admission/dispatch/degradation events with queue-wait vs
    /// service-time split; without one (`None`, what every other
    /// constructor passes) the service runs the exact code path it
    /// always had.
    ///
    /// When a chaos injector with a non-trivial plan is also installed,
    /// the ledger is correlated with the plan's seed and digest so
    /// flight dumps name the replay coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `workers`, `queue_capacity` or `max_batch` is zero.
    pub fn start_observed(
        backend: Box<dyn SamplingBackend>,
        config: ServiceConfig,
        tracer: Option<Tracer>,
        injector: Option<FaultInjector>,
        obs: Option<Observability>,
    ) -> Self {
        assert!(config.workers > 0, "need at least one worker shard");
        assert!(config.queue_capacity > 0, "queue capacity must be non-zero");
        assert!(config.max_batch > 0, "max batch must be non-zero");
        if let Some(tracer) = &tracer {
            tracer.name_process(pids::SERVICE, "sampling-service");
            for shard in 0..config.workers {
                tracer.name_thread(pids::SERVICE, shard as u32, &format!("shard{shard}"));
            }
            tracer.name_thread(pids::SERVICE, config.workers as u32, "clients");
        }
        if let (Some(o), Some(inj)) = (&obs, &injector) {
            let plan = inj.plan();
            if !plan.is_zero_fault() {
                o.ledger().set_chaos(plan.seed(), plan.digest());
            }
        }
        let backend: Arc<dyn SamplingBackend> = Arc::from(backend);
        let stats = Arc::new(Mutex::new(ServiceStats::default()));
        let (tx, rx) = bounded(config.queue_capacity);
        let workers = (0..config.workers)
            .map(|shard| {
                let backend = backend.clone();
                let rx = rx.clone();
                let stats = stats.clone();
                let tracer = tracer.clone();
                let injector = injector.clone();
                let obs = obs.clone();
                std::thread::spawn(move || {
                    shard_loop(
                        backend,
                        rx,
                        stats,
                        config,
                        tracer,
                        shard as u32,
                        injector,
                        obs,
                    )
                })
            })
            .collect();
        SamplingService {
            backend,
            tx: Some(tx),
            workers,
            stats,
            config,
            tracer,
            injector,
            obs,
        }
    }

    /// Starts the service with default tuning.
    pub fn with_defaults(backend: Box<dyn SamplingBackend>) -> Self {
        Self::start(backend, ServiceConfig::default())
    }

    /// The service configuration.
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// The fault injector this service was started with, if any.
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// The observability bundle this service was started with, if any.
    /// Outer layers (the inference pipeline) thread their own events
    /// through the same ledger.
    pub fn observability(&self) -> Option<&Observability> {
        self.obs.as_ref()
    }

    /// Registers a client submission with the tracer and ledger,
    /// returning the request's trace id (0 with observability off).
    /// The shaped front door calls this at *admission* time so lane
    /// waits are part of the request's causal record; the plain
    /// [`SamplingService::submit`] calls it inline.
    pub fn register_submit(&self, req: &SampleRequest) -> u64 {
        if let Some(tracer) = &self.tracer {
            tracer.instant(
                "service",
                "submit",
                pids::SERVICE,
                self.config.workers as u32,
                tracer.wall_us(),
            );
        }
        match &self.obs {
            None => 0,
            Some(o) => {
                let trace = o.ledger().next_trace();
                // Transient handle: one buffered event, flushed on drop.
                let mut h = o.ledger().handle();
                h.record(
                    trace,
                    Stage::Enqueue,
                    NO_SHARD,
                    0.0,
                    0.0,
                    req.roots.len() as u64,
                );
                trace
            }
        }
    }

    /// Enqueues a request, blocking while the queue is full
    /// (backpressure), and returns a ticket for the result.
    pub fn submit(&self, req: SampleRequest) -> SampleTicket {
        let trace = self.register_submit(&req);
        let (reply, rx) = bounded(1);
        self.submit_routed(
            req,
            Instant::now(),
            None,
            Priority::Interactive,
            trace,
            reply,
        );
        SampleTicket { rx, trace }
    }

    /// Like [`SamplingService::submit`], but with a relative deadline:
    /// slack-driven batch formation will not let coalescing push this
    /// request past `deadline`.
    pub fn submit_with_deadline(&self, req: SampleRequest, deadline: Duration) -> SampleTicket {
        let trace = self.register_submit(&req);
        let (reply, rx) = bounded(1);
        let now = Instant::now();
        self.submit_routed(
            req,
            now,
            Some(now + deadline),
            Priority::Interactive,
            trace,
            reply,
        );
        SampleTicket { rx, trace }
    }

    /// The routed enqueue the shaped front door uses: the caller owns
    /// the reply channel (the ticket was handed out at admission), the
    /// original submission instant (so lane waits count toward latency),
    /// the absolute deadline, the priority class, and a pre-registered
    /// trace id. Blocks while the queue is full (backpressure).
    pub fn submit_routed(
        &self,
        req: SampleRequest,
        submitted: Instant,
        deadline: Option<Instant>,
        class: Priority,
        trace: u64,
        reply: Sender<SampleReply>,
    ) {
        self.tx
            .as_ref()
            .expect("service running")
            .send(Job {
                req,
                reply,
                submitted,
                deadline,
                class,
                trace,
            })
            .expect("worker shards alive");
    }

    /// Submits and waits: the synchronous convenience path.
    pub fn sample(&self, req: SampleRequest) -> SampleBatch {
        self.submit(req).wait()
    }

    /// Submits and waits, keeping the flat block shape.
    pub fn sample_block(&self, req: SampleRequest) -> SampleBlock {
        self.submit(req).wait_block()
    }

    /// Submits and waits, keeping the degradation provenance.
    pub fn sample_reply(&self, req: SampleRequest) -> SampleReply {
        self.submit(req).wait_reply()
    }

    /// Gathers attributes straight through the backend (attribute reads
    /// are already batched by the caller's fetch list). Cluster-backed
    /// backends answer through the coalesced row fetch, so repeated hubs
    /// surface in `attr_coalesce_*` telemetry.
    pub fn gather_attributes(&self, nodes: &[NodeId]) -> Vec<f32> {
        self.backend.gather_attributes(nodes)
    }

    /// Gathers attributes in deduplicated row form (see
    /// [`SamplingBackend::gather_attr_rows`]); the inference pipeline's
    /// gather stage feeds these rows and the slot index straight into
    /// layer-0 aggregation. Returns the attribute width.
    pub fn gather_attr_rows(
        &self,
        nodes: &[NodeId],
        rows: &mut Vec<f32>,
        slot_of: &mut Vec<u32>,
    ) -> usize {
        self.backend.gather_attr_rows(nodes, rows, slot_of)
    }

    /// A snapshot of service-level stats, with the backend's own
    /// accounting folded in.
    pub fn stats(&self) -> ServiceStats {
        let mut s = self.stats.lock().expect("stats lock").clone();
        s.backend = self.backend.stats();
        s.cache = self.backend.cache_snapshot();
        s
    }

    /// The backend being served (for decorator introspection in tests).
    pub fn backend(&self) -> &dyn SamplingBackend {
        &*self.backend
    }

    /// Stops the shards after draining queued requests.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        // Closing the queue lets shards drain and exit.
        drop(self.tx.take());
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.backend.flush();
    }
}

impl Drop for SamplingService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::CpuBackend;
    use crate::chaos_backend::ChaosBackend;
    use lsdgnn_chaos::{FaultPlan, ScenarioSpec};
    use lsdgnn_graph::{generators, AttributeStore};

    fn service(workers: usize) -> SamplingService {
        let g = generators::power_law(500, 8, 31);
        let a = AttributeStore::synthetic(500, 8, 31);
        SamplingService::start(
            Box::new(CpuBackend::new(&g, &a, 2)),
            ServiceConfig {
                workers,
                ..ServiceConfig::default()
            },
        )
    }

    fn req(seed: u64) -> SampleRequest {
        SampleRequest {
            roots: (0..8).map(NodeId).collect(),
            hops: 2,
            fanout: 4,
            seed,
        }
    }

    /// A chaos-wrapped service over a 4-partition CPU cluster.
    fn chaos_service(spec: ScenarioSpec, config: ServiceConfig) -> SamplingService {
        let g = generators::power_law(500, 8, 31);
        let a = AttributeStore::synthetic(500, 8, 31);
        let plan = FaultPlan::build(7, spec).unwrap();
        let injector = FaultInjector::new(plan);
        let backend = ChaosBackend::new(Box::new(CpuBackend::new(&g, &a, 4)), injector.clone());
        SamplingService::start_faulted(Box::new(backend), config, None, Some(injector))
    }

    #[test]
    fn served_results_match_direct_backend_calls() {
        let g = generators::power_law(500, 8, 31);
        let a = AttributeStore::synthetic(500, 8, 31);
        let direct = CpuBackend::new(&g, &a, 2);
        let svc = service(2);
        for seed in 0..8 {
            assert_eq!(svc.sample(req(seed)), direct.sample_neighbors(&req(seed)));
        }
        svc.shutdown();
    }

    #[test]
    fn concurrent_submissions_all_complete_with_stats() {
        let svc = service(3);
        let tickets: Vec<_> = (0..40).map(|s| svc.submit(req(s))).collect();
        let batches: Vec<_> = tickets.into_iter().map(SampleTicket::wait).collect();
        assert_eq!(batches.len(), 40);
        // Per-seed determinism holds through the pool: re-ask one.
        assert_eq!(svc.sample(req(7)), batches[7]);
        let s = svc.stats();
        assert_eq!(s.requests, 41);
        assert!(s.dispatches >= 1 && s.dispatches <= 41);
        assert_eq!(s.latency.count(), 41);
        assert!(s.latency_p99_us() >= s.latency.percentile(0.5).as_micros_f64());
        assert!(s.backend.nodes_expanded > 0);
        assert_eq!(s.degraded, 0, "no faults: nothing degrades");
        assert_eq!(s.degraded_ratio(), 0.0);
        svc.shutdown();
    }

    #[test]
    fn deadline_coalescing_batches_queued_requests() {
        // One worker, long deadline: a burst should coalesce.
        let g = generators::power_law(300, 8, 32);
        let a = AttributeStore::synthetic(300, 8, 32);
        let svc = SamplingService::start(
            Box::new(CpuBackend::new(&g, &a, 1)),
            ServiceConfig {
                workers: 1,
                queue_capacity: 64,
                max_batch: 8,
                batch_deadline: Duration::from_millis(20),
                ..ServiceConfig::default()
            },
        );
        let tickets: Vec<_> = (0..16).map(|s| svc.submit(req(s))).collect();
        for t in tickets {
            t.wait();
        }
        let s = svc.stats();
        assert_eq!(s.requests, 16);
        assert!(
            s.dispatches < 16,
            "no coalescing happened: {} dispatches",
            s.dispatches
        );
        assert!(s.batch_size.max() > 1);
        svc.shutdown();
    }

    #[test]
    fn slack_driven_close_dispatches_tight_deadlines_immediately() {
        // Same long fixed wait in both arms; the slack arm's requests
        // carry deadlines with no slack left, so batches close at once
        // instead of sitting out the 20ms growth timer.
        let g = generators::power_law(300, 8, 32);
        let a = AttributeStore::synthetic(300, 8, 32);
        let build = |policy| {
            SamplingService::start(
                Box::new(CpuBackend::new(&g, &a, 1)),
                ServiceConfig {
                    workers: 1,
                    // Larger than the burst so the fixed arm cannot close
                    // early on batch size and must sit out the timer.
                    max_batch: 16,
                    batch_deadline: Duration::from_millis(20),
                    batch: policy,
                    ..ServiceConfig::default()
                },
            )
        };
        let fixed = build(BatchPolicy::FixedDeadline);
        let t0 = Instant::now();
        let tickets: Vec<_> = (0..8)
            .map(|s| fixed.submit_with_deadline(req(s), Duration::from_millis(1)))
            .collect();
        tickets.into_iter().for_each(|t| {
            t.wait();
        });
        let fixed_elapsed = t0.elapsed();
        let fixed_dispatches = fixed.stats().dispatches;
        fixed.shutdown();

        let slack = build(BatchPolicy::SlackDriven {
            est_service: Duration::from_millis(5),
        });
        let t0 = Instant::now();
        let tickets: Vec<_> = (0..8)
            .map(|s| slack.submit_with_deadline(req(s), Duration::from_millis(1)))
            .collect();
        tickets.into_iter().for_each(|t| {
            t.wait();
        });
        let slack_elapsed = t0.elapsed();
        let slack_dispatches = slack.stats().dispatches;
        slack.shutdown();

        assert!(
            slack_dispatches > fixed_dispatches,
            "zero-slack requests must stop coalescing ({slack_dispatches} vs {fixed_dispatches})"
        );
        assert!(
            slack_elapsed < fixed_elapsed,
            "slack close must not sit out the growth timer ({slack_elapsed:?} vs {fixed_elapsed:?})"
        );
    }

    #[test]
    fn slack_policy_matches_fixed_on_deadline_less_traffic() {
        // Requests without deadlines contribute the fixed wait, so the
        // slack policy still coalesces a queued burst.
        let g = generators::power_law(300, 8, 32);
        let a = AttributeStore::synthetic(300, 8, 32);
        let svc = SamplingService::start(
            Box::new(CpuBackend::new(&g, &a, 1)),
            ServiceConfig {
                workers: 1,
                queue_capacity: 64,
                max_batch: 8,
                batch_deadline: Duration::from_millis(20),
                batch: BatchPolicy::SlackDriven {
                    est_service: Duration::from_millis(5),
                },
                ..ServiceConfig::default()
            },
        );
        let tickets: Vec<_> = (0..16).map(|s| svc.submit(req(s))).collect();
        for t in tickets {
            t.wait();
        }
        let s = svc.stats();
        assert_eq!(s.requests, 16);
        assert!(
            s.dispatches < 16,
            "deadline-less traffic still coalesces: {} dispatches",
            s.dispatches
        );
        assert!(s.batch_size.max() > 1);
        svc.shutdown();
    }

    #[test]
    fn drop_shuts_the_pool_down() {
        let svc = service(2);
        svc.sample(req(1));
        drop(svc); // must not hang or leak threads
    }

    #[test]
    fn stats_register_as_metric_source() {
        let svc = service(2);
        for s in 0..4 {
            svc.sample(req(s));
        }
        let mut reg = lsdgnn_telemetry::Registry::new();
        reg.register("service", &[("backend", "cpu")], Box::new(svc.stats()));
        let snap = reg.snapshot();
        assert_eq!(snap.get("service/requests").unwrap().as_f64(), 4.0);
        let lat = snap
            .get("service/latency_us")
            .and_then(|v| v.as_histogram().copied())
            .expect("latency histogram exported");
        assert_eq!(lat.count, 4);
        assert!(lat.p99 >= lat.p50);
        assert!(
            snap.get("service/backend/nodes_expanded").unwrap().as_f64() > 0.0,
            "backend stats nest under the service scope"
        );
        assert_eq!(snap.get("service/degraded").unwrap().as_f64(), 0.0);
        assert!(snap.get("service/retries").is_some());
        assert_eq!(snap.get("service/breaker_opens").unwrap().as_f64(), 0.0);
        svc.shutdown();
    }

    #[test]
    fn traced_service_records_lifecycle_spans() {
        let g = generators::power_law(300, 8, 33);
        let a = AttributeStore::synthetic(300, 8, 33);
        let tracer = Tracer::new();
        let svc = SamplingService::start_traced(
            Box::new(CpuBackend::new(&g, &a, 2)),
            ServiceConfig::default(),
            Some(tracer.clone()),
        );
        for s in 0..3 {
            svc.sample(req(s));
        }
        svc.shutdown();
        let events = tracer.events();
        let requests = events
            .iter()
            .filter(|e| e.ph == 'X' && e.name == "request" && e.cat == "service")
            .count();
        assert_eq!(requests, 3);
        assert!(
            events.iter().any(|e| e.ph == 'X' && e.name == "dispatch"),
            "dispatch spans present"
        );
        assert!(
            events.iter().any(|e| e.ph == 'i' && e.name == "submit"),
            "submit instants present"
        );
    }

    #[test]
    fn zero_fault_injector_changes_nothing() {
        let svc = chaos_service(ScenarioSpec::none(), ServiceConfig::default());
        let plain = service(2);
        for s in 0..6 {
            let reply = svc.sample_reply(req(s));
            assert!(!reply.degraded);
            assert_eq!(reply.attempts, 1);
            assert_eq!(reply.block.to_batch(), plain.sample(req(s)));
        }
        let st = svc.stats();
        assert_eq!(st.faults, 0);
        assert_eq!(st.fallbacks, 0);
        svc.shutdown();
        plain.shutdown();
    }

    #[test]
    fn request_loss_is_retried_into_answers() {
        let svc = chaos_service(
            ScenarioSpec::none().with_request_loss(0.4),
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        let replies: Vec<_> = (0..32).map(|s| svc.sample_reply(req(s))).collect();
        let st = svc.stats();
        assert_eq!(st.requests, 32, "every request answered");
        assert!(st.faults > 0, "40% loss must fail some attempts");
        assert!(
            replies.iter().any(|r| r.attempts > 1),
            "some request needed a retry"
        );
        // Retried requests still produce the exact per-seed answer.
        for (s, r) in replies.iter().enumerate() {
            if !r.degraded {
                assert_eq!(
                    r.block,
                    svc.backend().sample_block(&req(s as u64)),
                    "seed {s}"
                );
            }
        }
        svc.shutdown();
    }

    #[test]
    fn card_failure_yields_degraded_replies_not_errors() {
        let svc = chaos_service(
            ScenarioSpec::none().with_card_failure(1, 8),
            ServiceConfig::default(),
        );
        let mut degraded = 0;
        for s in 0..24 {
            let reply = svc.sample_reply(req(s));
            if reply.degraded {
                degraded += 1;
                assert!(reply.unreachable > 0, "degraded replies quantify loss");
            }
        }
        assert!(degraded > 0, "requests past tick 8 lose card 1");
        let st = svc.stats();
        assert_eq!(st.degraded, degraded);
        assert!(st.degraded_ratio() > 0.0);
        let inj_stats = svc.injector().unwrap().stats();
        assert_eq!(inj_stats.degraded_replies, degraded);
        assert!(inj_stats.cards_downed >= 1);
        svc.shutdown();
    }

    #[test]
    fn total_loss_falls_back_to_degraded_or_fallback_replies() {
        // 100% request loss: the retry ladder always runs dry, every
        // reply comes from the fallback path — and still arrives.
        let svc = chaos_service(
            ScenarioSpec::none().with_request_loss(1.0),
            ServiceConfig {
                workers: 1,
                degrade: DegradeConfig {
                    max_retries: 2,
                    backoff_base: Duration::from_micros(1),
                    ..DegradeConfig::default()
                },
                ..ServiceConfig::default()
            },
        );
        for s in 0..8 {
            let reply = svc.sample_reply(req(s));
            // Fallback bypasses the lossy transport; with no cards down
            // the answer is exact.
            assert!(!reply.degraded);
            assert_eq!(reply.block, svc.backend().sample_block(&req(s)));
        }
        let st = svc.stats();
        assert_eq!(st.fallbacks, 8);
        assert!(st.hedges > 0, "hedges fire before the ladder runs dry");
        assert!(
            st.breaker_opens > 0,
            "sustained failure must trip the breaker"
        );
        assert!(st.breaker_fastpaths > 0, "open breaker short-circuits");
        svc.shutdown();
    }

    #[test]
    fn injected_worker_panic_does_not_lose_requests() {
        // Shard 0 dies after 2 dispatches; shard 1 keeps serving.
        let svc = chaos_service(
            ScenarioSpec::none().with_worker_panic(0, 2),
            ServiceConfig {
                workers: 2,
                max_batch: 1,
                batch_deadline: Duration::ZERO,
                ..ServiceConfig::default()
            },
        );
        for s in 0..24 {
            let _ = svc.sample_reply(req(s));
        }
        let st = svc.stats();
        assert_eq!(st.requests, 24, "the surviving shard answered them all");
        assert_eq!(svc.injector().unwrap().stats().worker_panics, 1);
        svc.shutdown();
    }

    #[test]
    fn queue_stall_delays_but_answers() {
        let svc = chaos_service(
            ScenarioSpec::none().with_queue_stall(0, 1, 2_000),
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        for s in 0..4 {
            let _ = svc.sample_reply(req(s));
        }
        assert!(svc.injector().unwrap().stats().queue_stalls >= 1);
        svc.shutdown();
    }
}
