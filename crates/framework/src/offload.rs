//! The near-transparent user interface of §5: one session API, two
//! sampling backends (CPU cluster path or AxE offload).

use crate::cluster::Cluster;
use lsdgnn_axe::{AxeCommand, AxeResponse, CommandExecutor};
use lsdgnn_axe::command::SampleMethod;
use lsdgnn_graph::{AttributeStore, CsrGraph, NodeId};
use lsdgnn_sampler::SampleBatch;

/// Where sampling requests execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerBackend {
    /// The AliGraph CPU path (distributed server/worker cluster).
    Cpu,
    /// Offloaded to the Access Engine.
    Axe,
}

/// A Graph-Learn-style session: the user calls `sample` and
/// `node_attributes`; the backend choice is invisible in the results.
pub struct GraphLearnSession<'a> {
    graph: &'a CsrGraph,
    attributes: &'a AttributeStore,
    backend: SamplerBackend,
    cluster: Option<Cluster>,
    executor: CommandExecutor<'a>,
    seed: u64,
}

impl std::fmt::Debug for GraphLearnSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphLearnSession")
            .field("backend", &self.backend)
            .finish()
    }
}

impl<'a> GraphLearnSession<'a> {
    /// Opens a session over a graph + attributes with the chosen backend.
    /// The CPU backend spawns a `partitions`-way cluster.
    pub fn open(
        graph: &'a CsrGraph,
        attributes: &'a AttributeStore,
        backend: SamplerBackend,
        partitions: u32,
        seed: u64,
    ) -> Self {
        let cluster = match backend {
            SamplerBackend::Cpu => {
                let pg = lsdgnn_graph::PartitionedGraph::new(graph.clone(), partitions)
                    .with_attributes(attributes.clone());
                Some(Cluster::spawn(pg))
            }
            SamplerBackend::Axe => None,
        };
        GraphLearnSession {
            graph,
            attributes,
            backend,
            cluster,
            executor: CommandExecutor::new(graph, attributes, seed),
            seed,
        }
    }

    /// The active backend.
    pub fn backend(&self) -> SamplerBackend {
        self.backend
    }

    /// Samples a mini-batch (`hops` levels, `fanout` per node).
    pub fn sample(&mut self, roots: &[NodeId], hops: u32, fanout: usize) -> SampleBatch {
        match self.backend {
            SamplerBackend::Cpu => {
                let (batch, _) = self
                    .cluster
                    .as_ref()
                    .expect("cpu backend has a cluster")
                    .sample_batch(roots, hops, fanout, self.seed);
                batch
            }
            SamplerBackend::Axe => match self.executor.execute(&AxeCommand::SampleNHop {
                roots: roots.to_vec(),
                hops,
                fanout,
                method: SampleMethod::Streaming,
                with_attributes: false,
            }) {
                AxeResponse::Sampled { batch, .. } => batch,
                _ => unreachable!("SampleNHop returns Sampled"),
            },
        }
    }

    /// Gathers attribute vectors for `nodes`.
    pub fn node_attributes(&mut self, nodes: &[NodeId]) -> Vec<f32> {
        match self.backend {
            SamplerBackend::Cpu => {
                self.cluster
                    .as_ref()
                    .expect("cpu backend has a cluster")
                    .fetch_attrs(nodes)
                    .0
            }
            SamplerBackend::Axe => match self.executor.execute(&AxeCommand::ReadNodeAttr {
                nodes: nodes.to_vec(),
            }) {
                AxeResponse::NodeAttrs(a) => a,
                _ => unreachable!("ReadNodeAttr returns NodeAttrs"),
            },
        }
    }

    /// Negative sampling through either backend (always AxE-compatible
    /// semantics).
    pub fn negative_sample(&mut self, pairs: &[(NodeId, NodeId)], rate: usize) -> Vec<Vec<NodeId>> {
        match self.executor.execute(&AxeCommand::NegativeSample {
            pairs: pairs.to_vec(),
            rate,
        }) {
            AxeResponse::Negatives(n) => n,
            _ => unreachable!("NegativeSample returns Negatives"),
        }
    }

    /// Closes the session, stopping any cluster threads.
    pub fn close(mut self) {
        if let Some(c) = self.cluster.take() {
            c.shutdown();
        }
    }

    /// Graph accessor (for validation in tests).
    pub fn graph(&self) -> &CsrGraph {
        self.graph
    }

    /// Attribute accessor.
    pub fn attributes(&self) -> &AttributeStore {
        self.attributes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdgnn_graph::generators;

    fn setup() -> (CsrGraph, AttributeStore) {
        let g = generators::power_law(600, 8, 70);
        let a = AttributeStore::synthetic(600, 8, 70);
        (g, a)
    }

    #[test]
    fn both_backends_sample_valid_neighbors() {
        let (g, a) = setup();
        let roots: Vec<NodeId> = (0..8).map(NodeId).collect();
        for backend in [SamplerBackend::Cpu, SamplerBackend::Axe] {
            let mut s = GraphLearnSession::open(&g, &a, backend, 4, 1);
            let batch = s.sample(&roots, 2, 5);
            assert_eq!(batch.hops.len(), 2, "{backend:?}");
            for v in &batch.hops[0] {
                assert!(
                    roots.iter().any(|&r| g.has_edge(r, *v)),
                    "{backend:?} produced a non-neighbor"
                );
            }
            s.close();
        }
    }

    #[test]
    fn backends_agree_on_attributes() {
        let (g, a) = setup();
        let nodes = vec![NodeId(5), NodeId(300), NodeId(599)];
        let mut cpu = GraphLearnSession::open(&g, &a, SamplerBackend::Cpu, 4, 2);
        let mut axe = GraphLearnSession::open(&g, &a, SamplerBackend::Axe, 4, 2);
        assert_eq!(cpu.node_attributes(&nodes), axe.node_attributes(&nodes));
        cpu.close();
        axe.close();
    }

    #[test]
    fn backends_have_statistically_similar_samples() {
        // Transparency: distributions must match even if exact draws
        // differ. Compare per-root sample-count histograms.
        let (g, a) = setup();
        let roots: Vec<NodeId> = (0..32).map(NodeId).collect();
        let mut cpu = GraphLearnSession::open(&g, &a, SamplerBackend::Cpu, 4, 3);
        let mut axe = GraphLearnSession::open(&g, &a, SamplerBackend::Axe, 4, 3);
        let cb = cpu.sample(&roots, 1, 5);
        let ab = axe.sample(&roots, 1, 5);
        // Fanout capping by degree is backend-independent.
        assert_eq!(cb.hops[0].len(), ab.hops[0].len());
        cpu.close();
        axe.close();
    }

    #[test]
    fn negative_sampling_avoids_edges() {
        let (g, a) = setup();
        let mut s = GraphLearnSession::open(&g, &a, SamplerBackend::Axe, 1, 4);
        let negs = s.negative_sample(&[(NodeId(1), NodeId(2))], 10);
        assert_eq!(negs[0].len(), 10);
        for n in &negs[0] {
            assert!(!g.has_edge(NodeId(1), *n));
        }
        s.close();
    }
}
