//! The near-transparent user interface of §5: one Graph-Learn-style
//! session whose sampling calls route through the
//! [`SamplingService`] over any [`SamplingBackend`] — the AliGraph CPU
//! cluster, the Access Engine, or a cache-decorated variant. Swapping
//! hardware is a one-line backend change; results are identical because
//! backends share the per-request-seed determinism contract.

use crate::backend::{CpuBackend, SampleRequest, SamplingBackend};
use crate::cluster::RequestStats;
use crate::service::{SamplingService, ServiceConfig, ServiceStats};
use lsdgnn_axe::command::SampleMethod;
use lsdgnn_axe::{AxeCommand, AxeResponse, CommandExecutor};
use lsdgnn_graph::{AttributeStore, CsrGraph, NodeId};
use lsdgnn_sampler::{SampleBatch, SampleBlock};
use std::sync::{Arc, Mutex};

/// Where sampling requests execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerBackend {
    /// The AliGraph CPU path (distributed server/worker cluster).
    Cpu,
    /// Offloaded to the Access Engine.
    Axe,
}

/// The Access Engine behind the backend interface: each request is
/// translated to the Table 4 command set and executed by a
/// [`CommandExecutor`] seeded from the request, so results depend only
/// on the request — the property the offload's transparency rests on.
pub struct AxeBackend {
    graph: Arc<CsrGraph>,
    attributes: Arc<AttributeStore>,
    method: SampleMethod,
    stats: Mutex<RequestStats>,
}

impl std::fmt::Debug for AxeBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AxeBackend")
            .field("method", &self.method)
            .finish()
    }
}

impl AxeBackend {
    /// Creates a backend over shared graph data, sampling with the
    /// paper's default streaming method (Tech-2).
    pub fn new(graph: Arc<CsrGraph>, attributes: Arc<AttributeStore>) -> Self {
        AxeBackend {
            graph,
            attributes,
            method: SampleMethod::Streaming,
            stats: Mutex::new(RequestStats::default()),
        }
    }

    /// Selects the sampling method (streaming vs conventional).
    pub fn with_method(mut self, method: SampleMethod) -> Self {
        self.method = method;
        self
    }

    /// Executes an arbitrary Table 4 command against this backend's
    /// graph, with command randomness derived from `seed`.
    pub fn execute(&self, cmd: &AxeCommand, seed: u64) -> AxeResponse {
        CommandExecutor::new(&self.graph, &self.attributes, seed).execute(cmd)
    }
}

impl SamplingBackend for AxeBackend {
    fn sample_block(&self, req: &SampleRequest) -> SampleBlock {
        let resp = self.execute(
            &AxeCommand::SampleNHop {
                roots: req.roots.clone(),
                hops: req.hops,
                fanout: req.fanout,
                method: self.method,
                with_attributes: false,
            },
            req.seed,
        );
        let batch = match resp {
            AxeResponse::Sampled { batch, .. } => batch,
            _ => unreachable!("SampleNHop returns Sampled"),
        };
        // The engine is a single local device: every request is local.
        self.stats.lock().expect("stats lock").merge(RequestStats {
            local_requests: 1,
            nodes_expanded: (req.roots.len() + batch.total_sampled()
                - batch.hops.last().map_or(0, Vec::len)) as u64,
            ..RequestStats::default()
        });
        SampleBlock::from_batch(&batch)
    }

    fn gather_attributes(&self, nodes: &[NodeId]) -> Vec<f32> {
        let resp = self.execute(
            &AxeCommand::ReadNodeAttr {
                nodes: nodes.to_vec(),
            },
            0,
        );
        self.stats.lock().expect("stats lock").merge(RequestStats {
            local_requests: 1,
            attrs_fetched: nodes.len() as u64,
            ..RequestStats::default()
        });
        match resp {
            AxeResponse::NodeAttrs(a) => a,
            _ => unreachable!("ReadNodeAttr returns NodeAttrs"),
        }
    }

    fn stats(&self) -> RequestStats {
        *self.stats.lock().expect("stats lock")
    }
}

/// Builds the boxed backend a [`SamplerBackend`] selector names — the
/// single point where the CPU-vs-AxE choice is made.
pub fn build_backend(
    kind: SamplerBackend,
    graph: &CsrGraph,
    attributes: &AttributeStore,
    partitions: u32,
) -> Box<dyn SamplingBackend> {
    match kind {
        SamplerBackend::Cpu => Box::new(CpuBackend::new(graph, attributes, partitions)),
        SamplerBackend::Axe => Box::new(AxeBackend::new(
            Arc::new(graph.clone()),
            Arc::new(attributes.clone()),
        )),
    }
}

/// A Graph-Learn-style session: the user calls `sample` and
/// `node_attributes`; requests flow through a [`SamplingService`] whose
/// backend choice is invisible in the results.
pub struct GraphLearnSession {
    graph: Arc<CsrGraph>,
    attributes: Arc<AttributeStore>,
    service: SamplingService,
    seed: u64,
    issued: u64,
}

impl std::fmt::Debug for GraphLearnSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphLearnSession")
            .field("service", &self.service)
            .finish()
    }
}

impl GraphLearnSession {
    /// Opens a session over a graph + attributes with the chosen backend.
    /// The CPU backend spawns a `partitions`-way cluster.
    pub fn open(
        graph: &CsrGraph,
        attributes: &AttributeStore,
        backend: SamplerBackend,
        partitions: u32,
        seed: u64,
    ) -> Self {
        let boxed = build_backend(backend, graph, attributes, partitions);
        Self::with_backend(
            Arc::new(graph.clone()),
            Arc::new(attributes.clone()),
            boxed,
            seed,
        )
    }

    /// Opens a session over an arbitrary backend (e.g. a
    /// [`crate::backend::CachedBackend`] decorator), sharing graph data
    /// by reference count.
    pub fn with_backend(
        graph: Arc<CsrGraph>,
        attributes: Arc<AttributeStore>,
        backend: Box<dyn SamplingBackend>,
        seed: u64,
    ) -> Self {
        GraphLearnSession {
            graph,
            attributes,
            service: SamplingService::start(backend, ServiceConfig::default()),
            seed,
            issued: 0,
        }
    }

    /// Derives the next per-request seed: deterministic in (session seed,
    /// call index), decorrelated across calls.
    fn next_seed(&mut self) -> u64 {
        let s = self
            .seed
            .wrapping_add(self.issued.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.issued += 1;
        s
    }

    /// Samples a mini-batch (`hops` levels, `fanout` per node).
    pub fn sample(&mut self, roots: &[NodeId], hops: u32, fanout: usize) -> SampleBatch {
        let seed = self.next_seed();
        self.service.sample(SampleRequest {
            roots: roots.to_vec(),
            hops,
            fanout,
            seed,
        })
    }

    /// Gathers attribute vectors for `nodes`.
    pub fn node_attributes(&self, nodes: &[NodeId]) -> Vec<f32> {
        self.service.gather_attributes(nodes)
    }

    /// Negative sampling (always AxE command semantics, backend-neutral:
    /// negatives never touch the sampled-frontier path).
    pub fn negative_sample(&mut self, pairs: &[(NodeId, NodeId)], rate: usize) -> Vec<Vec<NodeId>> {
        let seed = self.next_seed();
        let resp = CommandExecutor::new(&self.graph, &self.attributes, seed).execute(
            &AxeCommand::NegativeSample {
                pairs: pairs.to_vec(),
                rate,
            },
        );
        match resp {
            AxeResponse::Negatives(n) => n,
            _ => unreachable!("NegativeSample returns Negatives"),
        }
    }

    /// Service-level stats (queue depth, batch size, latency, backend
    /// accounting).
    pub fn stats(&self) -> ServiceStats {
        self.service.stats()
    }

    /// Closes the session, draining and stopping the service shards.
    pub fn close(self) {
        self.service.shutdown();
    }

    /// Graph accessor (for validation in tests).
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Attribute accessor.
    pub fn attributes(&self) -> &AttributeStore {
        &self.attributes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::CachedBackend;
    use lsdgnn_graph::generators;

    fn setup() -> (CsrGraph, AttributeStore) {
        let g = generators::power_law(600, 8, 70);
        let a = AttributeStore::synthetic(600, 8, 70);
        (g, a)
    }

    #[test]
    fn both_backends_sample_valid_neighbors() {
        let (g, a) = setup();
        let roots: Vec<NodeId> = (0..8).map(NodeId).collect();
        for backend in [SamplerBackend::Cpu, SamplerBackend::Axe] {
            let mut s = GraphLearnSession::open(&g, &a, backend, 4, 1);
            let batch = s.sample(&roots, 2, 5);
            assert_eq!(batch.hops.len(), 2, "{backend:?}");
            for v in &batch.hops[0] {
                assert!(
                    roots.iter().any(|&r| g.has_edge(r, *v)),
                    "{backend:?} produced a non-neighbor"
                );
            }
            s.close();
        }
    }

    #[test]
    fn backends_agree_on_attributes() {
        let (g, a) = setup();
        let nodes = vec![NodeId(5), NodeId(300), NodeId(599)];
        let cpu = GraphLearnSession::open(&g, &a, SamplerBackend::Cpu, 4, 2);
        let axe = GraphLearnSession::open(&g, &a, SamplerBackend::Axe, 4, 2);
        assert_eq!(cpu.node_attributes(&nodes), axe.node_attributes(&nodes));
        cpu.close();
        axe.close();
    }

    #[test]
    fn backends_agree_exactly_on_samples() {
        // Stronger than the old statistical check: the per-request-seed
        // contract makes CPU and AxE sessions produce identical batches.
        let (g, a) = setup();
        let roots: Vec<NodeId> = (0..32).map(NodeId).collect();
        let mut cpu = GraphLearnSession::open(&g, &a, SamplerBackend::Cpu, 4, 3);
        let mut axe = GraphLearnSession::open(&g, &a, SamplerBackend::Axe, 4, 3);
        assert_eq!(cpu.sample(&roots, 1, 5), axe.sample(&roots, 1, 5));
        cpu.close();
        axe.close();
    }

    #[test]
    fn custom_cached_backend_plugs_into_the_session() {
        let (g, a) = setup();
        let graph = Arc::new(g.clone());
        let attrs = Arc::new(a.clone());
        let cached = CachedBackend::new(
            Box::new(AxeBackend::new(graph.clone(), attrs.clone())),
            128,
            a.attr_len(),
        );
        let mut s = GraphLearnSession::with_backend(graph, attrs, Box::new(cached), 4);
        let batch = s.sample(&(0..8).map(NodeId).collect::<Vec<_>>(), 1, 5);
        let fetch = batch.attr_fetch_list();
        let first = s.node_attributes(&fetch);
        assert_eq!(s.node_attributes(&fetch), first); // cache round trip
        s.close();
    }

    #[test]
    fn negative_sampling_avoids_edges() {
        let (g, a) = setup();
        let mut s = GraphLearnSession::open(&g, &a, SamplerBackend::Axe, 1, 4);
        let negs = s.negative_sample(&[(NodeId(1), NodeId(2))], 10);
        assert_eq!(negs[0].len(), 10);
        for n in &negs[0] {
            assert!(!g.has_edge(NodeId(1), *n));
        }
        s.close();
    }

    #[test]
    fn session_stats_expose_the_service_pipeline() {
        let (g, a) = setup();
        let mut s = GraphLearnSession::open(&g, &a, SamplerBackend::Cpu, 2, 5);
        let roots: Vec<NodeId> = (0..8).map(NodeId).collect();
        for _ in 0..4 {
            s.sample(&roots, 1, 5);
        }
        let stats = s.stats();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.latency.count(), 4);
        assert!(stats.backend.nodes_expanded > 0);
        s.close();
    }
}
