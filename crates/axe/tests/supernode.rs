//! The supernode scenario (§4.2 Tech-1: "such loosely coupled dataflow
//! naturally supports the supernode scenario"): e-commerce graphs have
//! hub nodes with extreme degree, and a rigid design would stall its
//! whole pipeline behind one multi-thousand-cycle edge-list scan.

use lsdgnn_axe::{AccessEngine, AxeConfig};
use lsdgnn_graph::{GraphBuilder, NodeId};
use lsdgnn_sampler::{NeighborSampler, StandardSampler, StreamingSampler};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A graph with one extreme hub and a uniform background.
fn supernode_graph(n: u64, hub_degree: u64) -> lsdgnn_graph::CsrGraph {
    let mut b = GraphBuilder::new(n);
    // Hub = node 0, connected to a large slice of the graph.
    for v in 1..=hub_degree.min(n - 1) {
        b.add_undirected_edge(NodeId(0), NodeId(v));
    }
    // Background ring so every node has some neighbors.
    for v in 1..n {
        b.add_undirected_edge(NodeId(v), NodeId((v % (n - 1)) + 1));
    }
    b.build()
}

#[test]
fn engine_completes_batches_containing_the_supernode() {
    let g = supernode_graph(4_000, 3_000);
    assert!(g.degree(NodeId(0)) >= 3_000);
    // Seed the batch so the hub is definitely expanded (seeded roots are
    // random; run enough batches that hub expansion is overwhelmingly
    // likely, then verify completion and liveness).
    let cfg = AxeConfig::poc().with_batch_size(64).with_sampling(2, 10);
    let m = AccessEngine::new(cfg).run(&g, 72, 3);
    assert_eq!(m.batches, 3);
    assert!(m.samples > 0);
    assert!(
        m.samples_per_sec > 1e6,
        "throughput collapsed: {}",
        m.samples_per_sec
    );
}

#[test]
fn supernode_slowdown_is_work_proportional_not_a_stall() {
    // A 3000-degree hub adjacent to most of the graph genuinely
    // multiplies the sampling work (every hub expansion streams 3000
    // candidates — Tech-2's N cycles). The claim to check is that the
    // engine's slowdown tracks that inherent work growth instead of
    // deadlocking or collapsing super-linearly.
    let flat = supernode_graph(4_000, 16);
    let hubby = supernode_graph(4_000, 3_000);
    let cfg = AxeConfig::poc().with_batch_size(64).with_sampling(2, 10);
    let m_flat = AccessEngine::new(cfg.clone()).run(&flat, 72, 3);
    let m_hub = AccessEngine::new(cfg).run(&hubby, 72, 3);
    let ratio = m_flat.samples_per_sec / m_hub.samples_per_sec;
    // Work proxy: a sampled node is reached with probability ∝ its
    // degree, so expected cycles per expansion scale with the
    // size-biased mean degree E[deg²]/E[deg].
    let size_biased = |g: &lsdgnn_graph::CsrGraph| {
        let (mut d1, mut d2) = (0.0f64, 0.0f64);
        for v in 0..g.num_nodes() {
            let d = g.degree(NodeId(v)) as f64;
            d1 += d;
            d2 += d * d;
        }
        d2 / d1
    };
    let work_growth = size_biased(&hubby) / size_biased(&flat);
    assert!(
        ratio > 2.0,
        "a hub this size must cost something: ratio {ratio:.1}x"
    );
    assert!(
        ratio < work_growth,
        "supernode degraded throughput by {ratio:.1}x, exceeding the \
         inherent work growth {work_growth:.1}x — a pipeline stall"
    );
    // And the engine stays live — no deadlock, full batch completion.
    assert_eq!(m_hub.batches, 3);
    assert!(m_hub.samples_per_sec > 1e6);
}

#[test]
fn streaming_sampler_handles_the_hub_in_one_pass() {
    // Functional check at the sampler level: the hub's full neighbor
    // list samples correctly and cheaply (N cycles, no buffer) versus
    // the conventional N-entry-buffer + N+K cycles.
    let g = supernode_graph(4_000, 3_000);
    let hub_neighbors = g.neighbors(NodeId(0));
    let n = hub_neighbors.len();
    let mut rng = SmallRng::seed_from_u64(1);
    let picks = StreamingSampler.sample(&mut rng, hub_neighbors, 10);
    assert_eq!(picks.len(), 10);
    assert!(StreamingSampler.cycles(n, 10) == n as u64);
    assert_eq!(StreamingSampler.buffer_entries(n), 0);
    assert_eq!(
        StandardSampler.buffer_entries(n),
        n,
        "conventional needs the full buffer"
    );
}
