//! Trace-writer validation: a small AxE run must emit Chrome trace-event
//! JSON whose every event carries `ph`, `ts`, `pid` and `tid`, with spans
//! from the desim kernel, the AxE pipeline stages and the MoF remote path.

use lsdgnn_axe::{AccessEngine, AxeConfig};
use lsdgnn_graph::generators;
use lsdgnn_telemetry::{Json, Registry, Tracer};

#[test]
fn small_run_emits_valid_chrome_trace() {
    let g = generators::power_law(1_000, 8, 11);
    let cfg = AxeConfig::poc().with_batch_size(8).with_sampling(2, 5);
    let tracer = Tracer::new();
    let m = AccessEngine::new(cfg).run_traced(&g, 72, 2, Some(tracer.clone()));
    assert_eq!(m.batches, 2);
    assert!(!tracer.is_empty());

    let text = tracer.to_chrome_json();
    let doc = Json::parse(&text).expect("trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut cats = std::collections::BTreeSet::new();
    for ev in events {
        assert!(ev.get("ph").and_then(Json::as_str).is_some(), "ph field");
        assert!(ev.get("ts").and_then(Json::as_f64).is_some(), "ts field");
        assert!(ev.get("pid").and_then(Json::as_u64).is_some(), "pid field");
        assert!(ev.get("tid").and_then(Json::as_u64).is_some(), "tid field");
        if let Some(cat) = ev.get("cat").and_then(Json::as_str) {
            cats.insert(cat.to_string());
        }
        if ev.get("ph").and_then(Json::as_str) == Some("X") {
            let dur = ev.get("dur").and_then(Json::as_f64).expect("dur field");
            assert!(dur >= 0.0, "negative duration");
        }
    }
    // The default PoC deployment is 4-way partitioned, so remote (MoF)
    // reads must appear alongside the pipeline stages and the kernel run.
    for want in ["desim", "axe", "mof"] {
        assert!(cats.contains(want), "missing category {want} in {cats:?}");
    }

    let names: Vec<String> = tracer.events().into_iter().map(|e| e.name).collect();
    for stage in ["get_neighbor", "get_sample", "get_attribute", "remote_read"] {
        assert!(
            names.iter().any(|n| n == stage),
            "missing stage span {stage}"
        );
    }
}

#[test]
fn traced_and_untraced_runs_measure_identically() {
    let g = generators::power_law(1_000, 8, 11);
    let cfg = AxeConfig::poc().with_batch_size(8).with_sampling(2, 5);
    let plain = AccessEngine::new(cfg.clone()).run(&g, 72, 2);
    let traced = AccessEngine::new(cfg).run_traced(&g, 72, 2, Some(Tracer::new()));
    assert_eq!(plain, traced, "tracing must not perturb the simulation");
}

#[test]
fn measurement_registers_the_paper_metrics() {
    let g = generators::power_law(1_000, 8, 11);
    let m = AccessEngine::new(AxeConfig::poc().with_batch_size(8)).run(&g, 72, 2);
    let mut reg = Registry::new();
    reg.register("axe", &[("dataset", "synthetic")], Box::new(m));
    let snap = reg.snapshot();
    let hit_rate = snap
        .get("axe/cache_hit_rate")
        .expect("cache hit rate exported")
        .as_f64();
    assert!((0.0..=1.0).contains(&hit_rate));
    let remote_util = snap
        .get("axe/remote_utilization")
        .expect("MoF link utilization exported")
        .as_f64();
    assert!((0.0..=1.0).contains(&remote_util));
    assert!(
        remote_util > 0.0,
        "4-way partitioning must touch the MoF link"
    );
}
