//! Property-based tests for AxE components: the coalescing cache, the
//! pipeline model, and conservation laws of the engine DES.

use lsdgnn_axe::pipeline::{pipeline_batch_latency, PipelineSpec};
use lsdgnn_axe::{AccessEngine, AxeConfig, CoalescingCache};
use lsdgnn_graph::generators;
use proptest::prelude::*;

proptest! {
    /// Cache miss bytes per access are bounded by the line-rounded span,
    /// and probes are conserved (hits + misses == lines touched).
    #[test]
    fn cache_accounting_is_conserved(
        accesses in proptest::collection::vec((0u64..1_000_000, 1u64..512), 1..200),
        kb in 1usize..32,
    ) {
        let mut c = CoalescingCache::new(kb * 1024);
        let mut lines_touched = 0u64;
        let mut miss_bytes = 0u64;
        for (addr, len) in accesses {
            let first = addr / 64;
            let last = (addr + len - 1) / 64;
            lines_touched += last - first + 1;
            let miss = c.access(addr, len);
            prop_assert!(miss <= (last - first + 1) * 64);
            prop_assert_eq!(miss % 64, 0);
            miss_bytes += miss;
        }
        prop_assert_eq!(c.hits() + c.misses(), lines_touched);
        prop_assert_eq!(c.misses() * 64, miss_bytes);
    }

    /// The pipeline latency model is monotone for even stage splits:
    /// deeper never slower, more items never faster. (With ceiling
    /// rounding an uneven split can cost a cycle on tiny batches, so the
    /// property quantifies over power-of-two depths dividing the work.)
    #[test]
    fn pipeline_latency_monotone(
        work_units in 1u64..8,
        items in 1u64..1_000,
        e1 in 0u32..5,
        e2 in 0u32..5,
    ) {
        let work = work_units * 16;
        let (d1, d2) = (1u32 << e1, 1u32 << e2);
        let (lo, hi) = (d1.min(d2), d1.max(d2));
        let shallow = pipeline_batch_latency(&PipelineSpec::new(work, lo, 4), items);
        let deep = pipeline_batch_latency(&PipelineSpec::new(work, hi, 4), items);
        prop_assert!(deep <= shallow);
        let more = pipeline_batch_latency(&PipelineSpec::new(work, lo, 4), items + 1);
        prop_assert!(more >= shallow);
    }

    /// Engine conservation: every sampled node and every root produces
    /// exactly one attribute's worth of output bytes, for arbitrary
    /// small configurations.
    #[test]
    fn engine_output_conservation(
        cores in 1usize..4,
        batch in 4usize..24,
        partitions in 1u32..5,
        seed in 0u64..50,
    ) {
        let g = generators::power_law(400, 6, seed + 100);
        let cfg = AxeConfig::poc()
            .with_cores(cores)
            .with_batch_size(batch)
            .with_partitions(partitions)
            .with_sampling(1, 4)
            .with_seed(seed);
        let m = AccessEngine::new(cfg).run(&g, 16, 1);
        prop_assert_eq!(m.batches, 1);
        prop_assert_eq!(m.output_bytes, (m.samples + batch as u64) * 16 * 4);
        // All traffic is local when there is one partition.
        if partitions == 1 {
            prop_assert_eq!(m.remote_bytes, 0);
        }
        prop_assert!(m.samples <= (batch * 4) as u64);
    }
}
