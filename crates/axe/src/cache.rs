//! The Tech-4 coalescing cache.
//!
//! The paper finds temporal reuse in LSD-GNN negligible (512-node batches
//! against 10-billion-node graphs) and provisions only an **8 KB** cache
//! whose job is *coalescing*: capturing the spatial reuse of contiguously
//! stored edge lists and attributes so a multi-line read doesn't re-fetch
//! lines it just touched. Modeled as a direct-mapped cache of 64-byte
//! lines.

/// Cache line size in bytes.
pub const LINE_BYTES: u64 = 64;

/// A direct-mapped coalescing cache.
///
/// # Example
///
/// ```
/// use lsdgnn_axe::CoalescingCache;
/// let mut c = CoalescingCache::new(8 * 1024);
/// // First touch of an aligned 128-byte object: 2 line misses.
/// assert_eq!(c.access(1024, 128), 2 * 64);
/// // Immediately re-reading it is free.
/// assert_eq!(c.access(1024, 128), 0);
/// ```
#[derive(Debug, Clone)]
pub struct CoalescingCache {
    /// Tag per line slot; `u64::MAX` = invalid.
    tags: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl CoalescingCache {
    /// Creates a cache of `capacity_bytes` (rounded down to whole lines).
    ///
    /// # Panics
    ///
    /// Panics if the capacity is smaller than one line.
    pub fn new(capacity_bytes: usize) -> Self {
        let lines = capacity_bytes / LINE_BYTES as usize;
        assert!(lines > 0, "cache must hold at least one line");
        CoalescingCache {
            tags: vec![u64::MAX; lines],
            hits: 0,
            misses: 0,
        }
    }

    /// Number of line slots.
    pub fn lines(&self) -> usize {
        self.tags.len()
    }

    /// Accesses `[addr, addr + bytes)`; returns the bytes that must be
    /// fetched from memory (64 per missing line). Missing lines are filled.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn access(&mut self, addr: u64, bytes: u64) -> u64 {
        assert!(bytes > 0, "access must cover at least one byte");
        let first = addr / LINE_BYTES;
        let last = (addr + bytes - 1) / LINE_BYTES;
        let mut miss_bytes = 0;
        for line in first..=last {
            let slot = (line % self.tags.len() as u64) as usize;
            if self.tags[slot] == line {
                self.hits += 1;
            } else {
                self.misses += 1;
                self.tags[slot] = line;
                miss_bytes += LINE_BYTES;
            }
        }
        miss_bytes
    }

    /// Line hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Line misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over all line probes.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Invalidates everything (e.g. between independent tasks).
    pub fn flush(&mut self) {
        self.tags.fill(u64::MAX);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_coalescing_within_object() {
        let mut c = CoalescingCache::new(8 * 1024);
        // A 288-byte attribute (72 floats) spans 5-6 lines on first touch…
        let miss1 = c.access(64 * 100, 288);
        assert_eq!(miss1, 5 * 64);
        // …and zero on the immediate re-read.
        assert_eq!(c.access(64 * 100, 288), 0);
        assert!(c.hit_rate() > 0.0);
    }

    #[test]
    fn unaligned_access_touches_extra_line() {
        let mut c = CoalescingCache::new(1024);
        // 64 bytes starting mid-line straddles 2 lines.
        assert_eq!(c.access(32, 64), 2 * 64);
    }

    #[test]
    fn tiny_cache_thrashes_on_far_apart_objects() {
        let mut c = CoalescingCache::new(128); // 2 lines
        assert_eq!(c.access(0, 64), 64);
        assert_eq!(c.access(128 * 64, 64), 64); // same slot, evicts
        assert_eq!(c.access(0, 64), 64); // miss again
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = CoalescingCache::new(1024);
        c.access(0, 64);
        c.flush();
        assert_eq!(c.access(0, 64), 64);
    }

    #[test]
    fn eight_kb_suffices_for_coalescing_not_temporal_reuse() {
        // The paper's design point: within-object spatial reuse is fully
        // captured, cross-batch temporal reuse is not.
        let mut c = CoalescingCache::new(8 * 1024);
        // Stream 1000 distinct 288-byte attributes: every object misses,
        // but re-reading the *current* object's tail lines hits.
        let mut total_miss = 0;
        for i in 0..1_000u64 {
            total_miss += c.access(i * 4096, 288);
            // second half of the object re-read (tail coalescing)
            let hit_bytes = c.access(i * 4096 + 128, 160);
            assert_eq!(hit_bytes, 0);
        }
        assert_eq!(total_miss, 1_000 * 5 * 64);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn sub_line_capacity_panics() {
        let _ = CoalescingCache::new(32);
    }

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn zero_byte_access_panics() {
        CoalescingCache::new(1024).access(0, 0);
    }
}
