//! The optional on-FPGA compute engines of §4.1: an FP32 GEMM engine and
//! a vector processing unit (VPU).
//!
//! The paper adds these for two scenarios: latency-sensitive inference
//! with simple models (computing on the FPGA avoids moving data to a
//! GPU), and in-fabric reductions during sampling (e.g. GCN-mean) that
//! shrink communication. This module provides their timing models and
//! the two scenario analyses.

use crate::config::AxeConfig;
use lsdgnn_desim::Time;
use lsdgnn_memfabric::LinkModel;

/// A systolic-array FP32 GEMM engine.
///
/// `C[m×n] = A[m×k] · B[k×n]` executes as `ceil(m/rows) · ceil(n/cols)`
/// tile passes of `k + fill` cycles each.
///
/// # Example
///
/// ```
/// use lsdgnn_axe::compute::GemmEngine;
/// let gemm = GemmEngine::poc();
/// let t = gemm.time_for(512, 256, 128);
/// assert!(t.as_micros_f64() > 0.0);
/// assert!(gemm.peak_gflops() > 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmEngine {
    /// Systolic array rows.
    pub rows: u32,
    /// Systolic array columns.
    pub cols: u32,
    /// Clock in MHz.
    pub clock_mhz: u64,
}

impl GemmEngine {
    /// The PoC-scale engine: 32×32 array at 250 MHz (FPGA FP32 is "not
    /// competitive with GPU", §4.1 — this is deliberately modest).
    pub fn poc() -> Self {
        GemmEngine {
            rows: 32,
            cols: 32,
            clock_mhz: 250,
        }
    }

    /// Peak throughput in GFLOP/s (2 flops per MAC per cell per cycle).
    pub fn peak_gflops(&self) -> f64 {
        2.0 * self.rows as f64 * self.cols as f64 * self.clock_mhz as f64 / 1e3
    }

    /// Cycles for an `m×k · k×n` product.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn cycles_for(&self, m: u64, k: u64, n: u64) -> u64 {
        assert!(m > 0 && k > 0 && n > 0, "dimensions must be non-zero");
        let tiles = m.div_ceil(self.rows as u64) * n.div_ceil(self.cols as u64);
        let fill = (self.rows + self.cols) as u64;
        tiles * (k + fill)
    }

    /// Wall time for an `m×k · k×n` product.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn time_for(&self, m: u64, k: u64, n: u64) -> Time {
        Time::from_ticks(self.cycles_for(m, k, n) * 1_000_000 / self.clock_mhz)
    }
}

/// A SIMD vector unit for element-wise ops and reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VectorUnit {
    /// Parallel lanes (f32 each).
    pub lanes: u32,
    /// Clock in MHz.
    pub clock_mhz: u64,
}

impl VectorUnit {
    /// The PoC-scale unit: 16 lanes at 250 MHz.
    pub fn poc() -> Self {
        VectorUnit {
            lanes: 16,
            clock_mhz: 250,
        }
    }

    /// Cycles to reduce `vectors` vectors of `len` floats element-wise
    /// (max/mean tree: one pass per vector plus pipeline drain).
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn reduce_cycles(&self, vectors: u64, len: u64) -> u64 {
        assert!(vectors > 0 && len > 0, "arguments must be non-zero");
        vectors * len.div_ceil(self.lanes as u64) + 8
    }

    /// Wall time of the reduction.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn reduce_time(&self, vectors: u64, len: u64) -> Time {
        Time::from_ticks(self.reduce_cycles(vectors, len) * 1_000_000 / self.clock_mhz)
    }
}

/// Scenario 1 (§4.1): latency of a small-model inference batch computed
/// on the FPGA (GEMM + VPU, zero movement) versus shipping the sampled
/// attributes to a GPU over `link` and computing there at
/// `gpu_gflops`.
///
/// Returns `(fpga_latency, gpu_latency)`.
pub fn inference_latency_comparison(
    cfg: &AxeConfig,
    gemm: &GemmEngine,
    batch: u64,
    attr_len: u64,
    hidden: u64,
    link: &LinkModel,
    gpu_gflops: f64,
) -> (Time, Time) {
    let _ = cfg;
    // One projection layer batch×attr_len -> hidden, on either side.
    let fpga = gemm.time_for(batch, attr_len, hidden);
    let bytes = batch * attr_len * 4;
    let move_time = link.round_trip(bytes);
    let flops = 2.0 * batch as f64 * attr_len as f64 * hidden as f64;
    let gpu_compute = Time::from_ticks((flops / gpu_gflops * 1e3) as u64); // GFLOP/s -> ns -> ps
    (fpga, move_time + gpu_compute)
}

/// Scenario 2 (§4.1): communication saved by reducing (e.g. GCN-mean)
/// sampled neighbor attributes *before* they cross the fabric: `fanout`
/// vectors shrink to one. Returns `(bytes_without, bytes_with)` per
/// sampled node set.
pub fn reduction_communication_savings(fanout: u64, attr_bytes: u64) -> (u64, u64) {
    (fanout * attr_bytes, attr_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_cycles_scale_with_tiles() {
        let g = GemmEngine::poc();
        // 32x32 fits one tile: k + fill cycles.
        assert_eq!(g.cycles_for(32, 100, 32), 100 + 64);
        // 64x64 output needs 4 tiles.
        assert_eq!(g.cycles_for(64, 100, 64), 4 * (100 + 64));
    }

    #[test]
    fn gemm_peak_is_modest_vs_gpu() {
        // §4.1: FPGA FP32 "is not competitive with GPU or even CPU".
        let g = GemmEngine::poc();
        assert!(g.peak_gflops() < 1_000.0);
        assert!(g.peak_gflops() > 100.0);
    }

    #[test]
    fn vpu_reduction_time() {
        let v = VectorUnit::poc();
        // 10 vectors of 128 floats at 16 lanes: 10*8 + 8 = 88 cycles.
        assert_eq!(v.reduce_cycles(10, 128), 88);
        assert_eq!(v.reduce_time(10, 128), Time::from_nanos(88 * 4));
    }

    #[test]
    fn small_model_inference_prefers_fpga_on_slow_links() {
        // Over a cloud NIC, moving the batch costs more than computing a
        // small layer locally; over NVLink the GPU wins.
        let cfg = AxeConfig::poc();
        let gemm = GemmEngine::poc();
        let nic = LinkModel::cloud_nic_remote();
        let (fpga, gpu_via_nic) =
            inference_latency_comparison(&cfg, &gemm, 64, 128, 128, &nic, 10_000.0);
        assert!(
            fpga < gpu_via_nic,
            "fpga {fpga} vs gpu-over-nic {gpu_via_nic}"
        );
        let nvlink = LinkModel::gpu_fast_link();
        let (fpga2, gpu_via_nvlink) =
            inference_latency_comparison(&cfg, &gemm, 2_048, 128, 128, &nvlink, 10_000.0);
        assert!(
            gpu_via_nvlink < fpga2,
            "gpu-over-nvlink {gpu_via_nvlink} vs fpga {fpga2} on big batches"
        );
    }

    #[test]
    fn gcn_reduction_saves_fanout_factor() {
        let (without, with) = reduction_communication_savings(10, 512);
        assert_eq!(without / with, 10);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dim_gemm_panics() {
        GemmEngine::poc().cycles_for(0, 1, 1);
    }
}
