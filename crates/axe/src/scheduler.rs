//! The top scheduler of Figure 5: distributing sampling tasks across AxE
//! cores.
//!
//! The PoC distributes tasks round-robin ("the top scheduler module ...
//! distributing the task to cores accordingly"); on skewed batches a
//! load-aware policy shortens the makespan. This module provides both
//! policies and a makespan model so the choice can be ablated.

/// Task-to-core assignment policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Tasks go to cores in rotation (the PoC default — stateless and
    /// cheap in hardware).
    RoundRobin,
    /// Each task goes to the currently least-loaded core (requires a
    /// per-core load register).
    LeastLoaded,
}

/// Assigns `task_costs` (estimated cycles per task, in arrival order) to
/// `cores`; returns the per-core assignment lists.
///
/// # Panics
///
/// Panics if `cores` is zero.
pub fn assign(policy: SchedulePolicy, task_costs: &[u64], cores: usize) -> Vec<Vec<usize>> {
    assert!(cores > 0, "need at least one core");
    let mut assignment = vec![Vec::new(); cores];
    match policy {
        SchedulePolicy::RoundRobin => {
            for (t, _) in task_costs.iter().enumerate() {
                assignment[t % cores].push(t);
            }
        }
        SchedulePolicy::LeastLoaded => {
            let mut load = vec![0u64; cores];
            for (t, &c) in task_costs.iter().enumerate() {
                let (idx, _) = load
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, l)| *l)
                    .expect("at least one core");
                assignment[idx].push(t);
                load[idx] += c;
            }
        }
    }
    assignment
}

/// Makespan (cycles until the last core finishes) of an assignment.
pub fn makespan(assignment: &[Vec<usize>], task_costs: &[u64]) -> u64 {
    assignment
        .iter()
        .map(|tasks| tasks.iter().map(|&t| task_costs[t]).sum::<u64>())
        .max()
        .unwrap_or(0)
}

/// Convenience: makespan of a policy on a task set.
pub fn policy_makespan(policy: SchedulePolicy, task_costs: &[u64], cores: usize) -> u64 {
    makespan(&assign(policy, task_costs, cores), task_costs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_task_assigned_exactly_once() {
        let costs: Vec<u64> = (1..=20).collect();
        for policy in [SchedulePolicy::RoundRobin, SchedulePolicy::LeastLoaded] {
            let a = assign(policy, &costs, 4);
            let mut seen: Vec<usize> = a.iter().flatten().copied().collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..20).collect::<Vec<_>>(), "{policy:?}");
        }
    }

    #[test]
    fn uniform_tasks_make_policies_equivalent() {
        let costs = vec![100u64; 32];
        let rr = policy_makespan(SchedulePolicy::RoundRobin, &costs, 4);
        let ll = policy_makespan(SchedulePolicy::LeastLoaded, &costs, 4);
        assert_eq!(rr, ll);
        assert_eq!(rr, 800);
    }

    #[test]
    fn skewed_tasks_favor_least_loaded() {
        // Supernode-style skew: one huge task among small ones. Arrival
        // order interleaves so round-robin piles big tasks on one core.
        let mut costs = vec![10u64; 16];
        costs[0] = 1_000;
        costs[4] = 900; // same core as task 0 under RR with 4 cores
        let rr = policy_makespan(SchedulePolicy::RoundRobin, &costs, 4);
        let ll = policy_makespan(SchedulePolicy::LeastLoaded, &costs, 4);
        assert!(ll < rr, "least-loaded {ll} vs round-robin {rr}");
        // Least-loaded separates the two giants onto different cores.
        assert!(ll <= 1_000 + 10 * 4);
    }

    #[test]
    fn makespan_lower_bound_is_respected() {
        // Makespan >= max task and >= total/cores for any policy.
        let costs = vec![7u64, 3, 9, 14, 2, 8, 1, 1];
        let total: u64 = costs.iter().sum();
        for policy in [SchedulePolicy::RoundRobin, SchedulePolicy::LeastLoaded] {
            let m = policy_makespan(policy, &costs, 3);
            assert!(m >= *costs.iter().max().unwrap());
            assert!(m >= total.div_ceil(3));
        }
    }

    #[test]
    fn empty_task_set_is_free() {
        assert_eq!(policy_makespan(SchedulePolicy::RoundRobin, &[], 2), 0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        assign(SchedulePolicy::RoundRobin, &[1], 0);
    }
}
