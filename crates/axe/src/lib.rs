//! The Access Engine (AxE) — the paper's core contribution (§4.2) as a
//! cycle-approximate simulation.
//!
//! AxE is a multi-core, decoupled access-execution accelerator for graph
//! sampling. Each core runs the `GetNeighbor → GetSample → GetAttribute`
//! flow over a load unit that keeps massive numbers of out-of-order memory
//! requests in flight. This crate models all four of the paper's
//! micro-architecture techniques:
//!
//! * **Tech-1** fine-grained FIFO-connected asynchronous pipelining —
//!   [`pipeline`] (Figure 7's depth/latency relationship).
//! * **Tech-2** streaming step-based sampling — provided by
//!   [`lsdgnn_sampler::StreamingSampler`] and selected in [`AxeConfig`].
//! * **Tech-3** OoO massive outstanding-request generation with score-board
//!   ordering — [`load_unit`] (the ~30× throughput claim).
//! * **Tech-4** the small (8 KB) coalescing cache — [`cache`].
//!
//! [`engine::AccessEngine`] assembles them into the full device and
//! produces the sampling-throughput measurements that anchor the FaaS
//! design-space exploration (Figures 14, 15, 17–21).
//!
//! # Example
//!
//! ```
//! use lsdgnn_axe::{AccessEngine, AxeConfig};
//! use lsdgnn_graph::generators;
//!
//! let graph = generators::power_law(2_000, 8, 1);
//! let cfg = AxeConfig::poc().with_cores(2);
//! let engine = AccessEngine::new(cfg);
//! let m = engine.run(&graph, 72, 4);
//! assert!(m.samples_per_sec > 0.0);
//! ```

pub mod cache;
pub mod command;
pub mod compute;
pub mod config;
pub mod engine;
pub mod load_unit;
pub mod pipeline;
pub mod scheduler;

pub use cache::CoalescingCache;
pub use command::{AxeCommand, AxeResponse, CommandExecutor};
pub use compute::{GemmEngine, VectorUnit};
pub use config::AxeConfig;
pub use engine::{AccessEngine, Measurement};
pub use load_unit::{LoadUnitConfig, LoadUnitReport};
pub use pipeline::{pipeline_batch_latency, pipeline_throughput, PipelineSpec, StagePipeline};
pub use scheduler::SchedulePolicy;
