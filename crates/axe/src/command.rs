//! The AxE command set (paper Table 4) and its functional executor.
//!
//! The RISC-V controller drives AxE through these commands; the framework
//! (`lsdgnn-framework`) offloads AliGraph sampling requests by translating
//! them to the same set. [`CommandExecutor`] gives the commands functional
//! (untimed) semantics so correctness can be tested independently of the
//! timing model.

use lsdgnn_graph::{AttributeStore, CsrGraph, NodeId};
use lsdgnn_sampler::{
    MultiHopSampler, NegativeSampler, SampleBatch, StandardSampler, StreamingSampler,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Sampling method selector carried by sampling commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleMethod {
    /// Conventional exact random sampling.
    Standard,
    /// Streaming step-based approximate sampling (Tech-2).
    Streaming,
}

/// A command accepted by the Access Engine (Table 4; not a complete list
/// in the paper either).
#[derive(Debug, Clone, PartialEq)]
pub enum AxeCommand {
    /// Writes a control/status register.
    SetCsr {
        /// Register index (the PoC exposes 32).
        index: u8,
        /// Value to write.
        value: u32,
    },
    /// Reads a control/status register.
    ReadCsr {
        /// Register index.
        index: u8,
    },
    /// `sample n-hop`: expands root nodes through `hops` levels at
    /// `fanout` samples per node.
    SampleNHop {
        /// Root (seed) nodes.
        roots: Vec<NodeId>,
        /// Number of hops.
        hops: u32,
        /// Samples per node per hop.
        fanout: usize,
        /// Sampling method.
        method: SampleMethod,
        /// Also return the sampled nodes' attributes.
        with_attributes: bool,
    },
    /// `read node attribute` for a batch of nodes.
    ReadNodeAttr {
        /// Nodes whose attributes to fetch.
        nodes: Vec<NodeId>,
    },
    /// `read edge attribute` for node pairs (returns edge weights).
    ReadEdgeAttr {
        /// `(src, dst)` pairs.
        pairs: Vec<(NodeId, NodeId)>,
    },
    /// `negative sample` for node pairs at the given rate.
    NegativeSample {
        /// Positive `(src, dst)` pairs.
        pairs: Vec<(NodeId, NodeId)>,
        /// Negatives per pair.
        rate: usize,
    },
}

/// A response issued through the AxE encoder.
#[derive(Debug, Clone, PartialEq)]
pub enum AxeResponse {
    /// CSR write acknowledged.
    CsrWritten,
    /// CSR read value.
    CsrValue(u32),
    /// Sampling result (and attributes when requested).
    Sampled {
        /// Per-hop sampled frontiers.
        batch: SampleBatch,
        /// Gathered attributes for [`SampleBatch::attr_fetch_list`] when
        /// `with_attributes` was set.
        attributes: Option<Vec<f32>>,
    },
    /// Gathered node attributes.
    NodeAttrs(Vec<f32>),
    /// Edge weights per pair (`None` where the edge does not exist).
    EdgeAttrs(Vec<Option<f32>>),
    /// Negatives per input pair.
    Negatives(Vec<Vec<NodeId>>),
}

/// Functional executor: applies commands to a graph + attribute store.
#[derive(Debug)]
pub struct CommandExecutor<'a> {
    graph: &'a CsrGraph,
    attributes: &'a AttributeStore,
    csr_file: [u32; 32],
    rng: SmallRng,
}

impl<'a> CommandExecutor<'a> {
    /// Creates an executor over a graph and attribute store.
    pub fn new(graph: &'a CsrGraph, attributes: &'a AttributeStore, seed: u64) -> Self {
        CommandExecutor {
            graph,
            attributes,
            csr_file: [0; 32],
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Executes one command.
    ///
    /// # Panics
    ///
    /// Panics if a CSR index is out of range (hardware would raise a bus
    /// error) or node ids are out of range.
    pub fn execute(&mut self, cmd: &AxeCommand) -> AxeResponse {
        match cmd {
            AxeCommand::SetCsr { index, value } => {
                self.csr_file[*index as usize] = *value;
                AxeResponse::CsrWritten
            }
            AxeCommand::ReadCsr { index } => AxeResponse::CsrValue(self.csr_file[*index as usize]),
            AxeCommand::SampleNHop {
                roots,
                hops,
                fanout,
                method,
                with_attributes,
            } => {
                let mh = MultiHopSampler::new(*hops, *fanout);
                let batch = match method {
                    SampleMethod::Standard => {
                        mh.sample(&mut self.rng, self.graph, &StandardSampler, roots)
                    }
                    SampleMethod::Streaming => {
                        mh.sample(&mut self.rng, self.graph, &StreamingSampler, roots)
                    }
                };
                let attributes =
                    with_attributes.then(|| self.attributes.gather(&batch.attr_fetch_list()));
                AxeResponse::Sampled { batch, attributes }
            }
            AxeCommand::ReadNodeAttr { nodes } => {
                AxeResponse::NodeAttrs(self.attributes.gather(nodes))
            }
            AxeCommand::ReadEdgeAttr { pairs } => AxeResponse::EdgeAttrs(
                pairs
                    .iter()
                    .map(|&(u, v)| {
                        self.graph
                            .neighbors(u)
                            .binary_search(&v)
                            .ok()
                            .map(|i| self.graph.edge_weights(u).map_or(1.0, |w| w[i]))
                    })
                    .collect(),
            ),
            AxeCommand::NegativeSample { pairs, rate } => {
                let neg = NegativeSampler::new(*rate);
                AxeResponse::Negatives(neg.sample_pairs(&mut self.rng, self.graph, pairs))
            }
        }
    }

    /// Degree of a node in the executor's graph (used by the
    /// tightly-coupled degree-query op).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn graph_degree(&self, v: NodeId) -> u64 {
        self.graph.degree(v)
    }

    /// Convenience: run a 2-hop sampling command with the paper's default
    /// method (streaming) and return the batch.
    pub fn sample_2hop(&mut self, roots: &[NodeId], fanout: usize) -> SampleBatch {
        match self.execute(&AxeCommand::SampleNHop {
            roots: roots.to_vec(),
            hops: 2,
            fanout,
            method: SampleMethod::Streaming,
            with_attributes: false,
        }) {
            AxeResponse::Sampled { batch, .. } => batch,
            _ => unreachable!("SampleNHop always returns Sampled"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdgnn_graph::generators;

    fn setup() -> (CsrGraph, AttributeStore) {
        let g = generators::power_law(500, 8, 40);
        let a = AttributeStore::synthetic(500, 16, 40);
        (g, a)
    }

    #[test]
    fn csr_write_then_read() {
        let (g, a) = setup();
        let mut ex = CommandExecutor::new(&g, &a, 1);
        assert_eq!(
            ex.execute(&AxeCommand::SetCsr {
                index: 5,
                value: 99
            }),
            AxeResponse::CsrWritten
        );
        assert_eq!(
            ex.execute(&AxeCommand::ReadCsr { index: 5 }),
            AxeResponse::CsrValue(99)
        );
        assert_eq!(
            ex.execute(&AxeCommand::ReadCsr { index: 6 }),
            AxeResponse::CsrValue(0)
        );
    }

    #[test]
    fn sample_nhop_returns_real_neighbors() {
        let (g, a) = setup();
        let mut ex = CommandExecutor::new(&g, &a, 2);
        let batch = ex.sample_2hop(&[NodeId(3), NodeId(7)], 4);
        assert_eq!(batch.hops.len(), 2);
        for (i, &root) in batch.roots.iter().enumerate() {
            // hop-1 samples of root i occupy a contiguous run; verify
            // membership instead of position for robustness.
            let _ = (i, root);
        }
        for v in &batch.hops[0] {
            assert!(batch.roots.iter().any(|&r| g.has_edge(r, *v)));
        }
    }

    #[test]
    fn sample_with_attributes_gathers_matching_length() {
        let (g, a) = setup();
        let mut ex = CommandExecutor::new(&g, &a, 3);
        let resp = ex.execute(&AxeCommand::SampleNHop {
            roots: vec![NodeId(1)],
            hops: 1,
            fanout: 3,
            method: SampleMethod::Standard,
            with_attributes: true,
        });
        match resp {
            AxeResponse::Sampled { batch, attributes } => {
                let attrs = attributes.expect("requested attributes");
                assert_eq!(attrs.len(), batch.attr_fetch_list().len() * 16);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn read_node_attr_matches_store() {
        let (g, a) = setup();
        let mut ex = CommandExecutor::new(&g, &a, 4);
        let resp = ex.execute(&AxeCommand::ReadNodeAttr {
            nodes: vec![NodeId(9)],
        });
        assert_eq!(resp, AxeResponse::NodeAttrs(a.get(NodeId(9)).to_vec()));
    }

    #[test]
    fn edge_attr_distinguishes_present_and_absent() {
        let (g, a) = setup();
        let mut ex = CommandExecutor::new(&g, &a, 5);
        let some_edge = g.edges().next().expect("graph has edges");
        let resp = ex.execute(&AxeCommand::ReadEdgeAttr {
            pairs: vec![some_edge, (some_edge.0, some_edge.0)],
        });
        match resp {
            AxeResponse::EdgeAttrs(ws) => {
                assert!(ws[0].is_some());
                assert!(ws[1].is_none(), "self-loop should not exist");
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn negative_sample_respects_rate() {
        let (g, a) = setup();
        let mut ex = CommandExecutor::new(&g, &a, 6);
        let resp = ex.execute(&AxeCommand::NegativeSample {
            pairs: vec![(NodeId(1), NodeId(2)); 3],
            rate: 7,
        });
        match resp {
            AxeResponse::Negatives(n) => {
                assert_eq!(n.len(), 3);
                assert!(n.iter().all(|v| v.len() == 7));
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
}
