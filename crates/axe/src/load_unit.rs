//! Tech-3: the OoO load unit with massive outstanding-request generation.
//!
//! Context that a CPU would keep in thread state is packed into a 128-bit
//! tag carried by each memory request, so the only limit on memory-level
//! parallelism is the tag budget. Two score-boards re-establish order on
//! the response side: one across root nodes (training loss needs
//! root-ordered results) and one across each root's neighbors.
//!
//! [`simulate_stream`] runs a request stream through the unit and measures
//! the throughput gain of out-of-order issue over in-order issue — the
//! paper reports ~30×.

use lsdgnn_desim::DetRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Load unit parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadUnitConfig {
    /// In-flight request budget (number of context tags). In-order
    /// operation is the degenerate budget of 1.
    pub max_outstanding: usize,
    /// Bits per context tag (the paper embeds 128-bit contexts).
    pub context_tag_bits: u32,
}

impl LoadUnitConfig {
    /// OoO configuration with the given tag budget.
    ///
    /// # Panics
    ///
    /// Panics if `max_outstanding` is zero.
    pub fn ooo(max_outstanding: usize) -> Self {
        assert!(max_outstanding > 0, "need at least one tag");
        LoadUnitConfig {
            max_outstanding,
            context_tag_bits: 128,
        }
    }

    /// In-order configuration: one request at a time.
    pub fn in_order() -> Self {
        Self::ooo(1)
    }

    /// Context storage in bytes for the full tag budget — the paper's
    /// point is that this replaces per-thread software context.
    pub fn context_storage_bytes(&self) -> u64 {
        self.max_outstanding as u64 * self.context_tag_bits as u64 / 8
    }
}

/// Results of one simulated request stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadUnitReport {
    /// Requests processed.
    pub requests: u64,
    /// Total cycles until the last in-order release.
    pub elapsed_cycles: u64,
    /// Requests per cycle.
    pub throughput: f64,
    /// Responses that arrived ahead of an older outstanding request
    /// (evidence of out-of-order completion absorbed by the score-board).
    pub out_of_order_arrivals: u64,
    /// Peak score-board occupancy (responses waiting for older ones).
    pub peak_scoreboard: usize,
}

/// Simulates `requests` memory operations with uniformly distributed
/// latency in `[min_latency, max_latency]` cycles, one issue slot per
/// cycle, and in-order release through the score-board.
///
/// # Panics
///
/// Panics if `requests` is zero or the latency range is inverted.
pub fn simulate_stream(
    cfg: &LoadUnitConfig,
    requests: u64,
    min_latency: u64,
    max_latency: u64,
    seed: u64,
) -> LoadUnitReport {
    assert!(requests > 0, "need at least one request");
    assert!(min_latency <= max_latency, "latency range inverted");
    let mut rng = DetRng::seed_from(seed);
    // (completion_time, request_index)
    let mut inflight: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut scoreboard: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
    let mut next_issue: u64 = 0; // next request index to issue
    let mut next_release: u64 = 0; // next request index to release in order
    let mut now: u64 = 0;
    let mut ooo_arrivals = 0u64;
    let mut peak_sb = 0usize;
    let mut last_release_time = 0u64;

    while next_release < requests {
        // Issue while we have budget and requests left. A context tag is
        // held from issue until in-order release, so the budget covers
        // both in-flight requests and score-board residents.
        while next_issue < requests && inflight.len() + scoreboard.len() < cfg.max_outstanding {
            let span = max_latency - min_latency;
            let lat = min_latency
                + if span == 0 {
                    0
                } else {
                    rng.next_below(span + 1)
                };
            inflight.push(Reverse((now + lat, next_issue)));
            next_issue += 1;
            now += 1; // one issue slot per cycle
        }
        // Advance to the next completion.
        let Reverse((t, idx)) = inflight.pop().expect("inflight while releases remain");
        now = now.max(t);
        if idx != next_release {
            ooo_arrivals += 1;
        }
        scoreboard.push(Reverse(idx));
        peak_sb = peak_sb.max(scoreboard.len());
        // Release the in-order prefix.
        while scoreboard
            .peek()
            .is_some_and(|Reverse(i)| *i == next_release)
        {
            scoreboard.pop();
            next_release += 1;
            last_release_time = now;
        }
    }

    LoadUnitReport {
        requests,
        elapsed_cycles: last_release_time,
        throughput: requests as f64 / last_release_time as f64,
        out_of_order_arrivals: ooo_arrivals,
        peak_scoreboard: peak_sb,
    }
}

/// Throughput ratio of an OoO configuration over in-order on the same
/// stream — the paper's "30×" measurement.
pub fn ooo_speedup(
    tag_budget: usize,
    requests: u64,
    min_latency: u64,
    max_latency: u64,
    seed: u64,
) -> f64 {
    let ooo = simulate_stream(
        &LoadUnitConfig::ooo(tag_budget),
        requests,
        min_latency,
        max_latency,
        seed,
    );
    let ino = simulate_stream(
        &LoadUnitConfig::in_order(),
        requests,
        min_latency,
        max_latency,
        seed,
    );
    ooo.throughput / ino.throughput
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_throughput_is_latency_bound() {
        let r = simulate_stream(&LoadUnitConfig::in_order(), 100, 1_000, 1_000, 1);
        // Each request takes ~latency cycles serially.
        assert!(r.elapsed_cycles >= 100 * 1_000);
        assert_eq!(r.out_of_order_arrivals, 0);
        assert_eq!(r.peak_scoreboard, 1);
    }

    #[test]
    fn ooo_hides_latency() {
        let r = simulate_stream(&LoadUnitConfig::ooo(64), 1_000, 1_000, 1_000, 2);
        // 64 in flight: elapsed ≈ requests * latency / 64.
        assert!(r.elapsed_cycles < 1_000 * 1_000 / 32);
        assert!(r.throughput > 0.03);
    }

    #[test]
    fn paper_30x_claim_reproduced() {
        // Remote-access latencies (~1250 cycles = 5 µs at 250 MHz) with a
        // 32-tag budget: ~30x throughput over in-order issue.
        let s = ooo_speedup(32, 2_000, 1_100, 1_400, 3);
        assert!((20.0..40.0).contains(&s), "OoO speedup {s}");
    }

    #[test]
    fn speedup_saturates_at_tag_budget() {
        let s8 = ooo_speedup(8, 1_000, 1_000, 1_000, 4);
        let s64 = ooo_speedup(64, 1_000, 1_000, 1_000, 4);
        assert!(s8 < s64);
        assert!(s8 > 6.0 && s8 < 10.0, "s8 {s8}");
    }

    #[test]
    fn scoreboard_absorbs_reordering() {
        // Wide latency spread: many responses arrive out of order yet the
        // release sequence is strictly in order (verified internally by
        // construction: release index only advances in order).
        let r = simulate_stream(&LoadUnitConfig::ooo(64), 2_000, 10, 2_000, 5);
        assert!(r.out_of_order_arrivals > 100);
        assert!(r.peak_scoreboard > 1);
        assert!(r.peak_scoreboard <= 64);
    }

    #[test]
    fn context_storage_is_tiny() {
        // 128-bit tags for 64 requests: 1 KB, versus ~KBs *per thread* of
        // software context.
        assert_eq!(LoadUnitConfig::ooo(64).context_storage_bytes(), 1_024);
    }

    #[test]
    #[should_panic(expected = "latency range")]
    fn inverted_range_panics() {
        simulate_stream(&LoadUnitConfig::in_order(), 1, 10, 5, 0);
    }
}
