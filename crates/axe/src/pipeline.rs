//! Tech-1: fine-grained FIFO-connected asynchronous pipelining.
//!
//! Figure 6 decomposes `GetNeighbor` into five FIFO-coupled sub-modules,
//! some further pipelined; Figure 7 measures how batch latency falls as the
//! pipeline deepens. This module provides both the analytic model and a
//! discrete-event validation of it (see the crate tests).
//!
//! For a batch of `M` items through work of `W` cycles per item split into
//! a depth-`D` pipeline (stage service `W/D`), the batch latency is the
//! fill time plus one stage interval per remaining item:
//! `L(D) = W + (M-1) * ceil(W/D)` — deeper pipelines approach one-item-per-
//! stage-interval throughput, which is why the paper pushes depth so hard.

use lsdgnn_desim::{Fifo, Simulation, Time};
use std::cell::RefCell;
use std::rc::Rc;

/// A pipeline shape: total per-item work split into equal stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineSpec {
    /// Total per-item work in cycles.
    pub work_cycles: u64,
    /// Number of pipeline stages.
    pub depth: u32,
    /// FIFO capacity between stages.
    pub fifo_capacity: usize,
}

impl PipelineSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero or `depth > work_cycles`.
    pub fn new(work_cycles: u64, depth: u32, fifo_capacity: usize) -> Self {
        assert!(work_cycles > 0, "work must be non-zero");
        assert!(depth > 0, "depth must be non-zero");
        assert!(fifo_capacity > 0, "fifo capacity must be non-zero");
        assert!(
            depth as u64 <= work_cycles,
            "cannot split {work_cycles} cycles into {depth} stages"
        );
        PipelineSpec {
            work_cycles,
            depth,
            fifo_capacity,
        }
    }

    /// Cycles per stage (ceiling split).
    pub fn stage_cycles(&self) -> u64 {
        self.work_cycles.div_ceil(self.depth as u64)
    }
}

/// Analytic batch latency in cycles for `items` through the pipeline.
pub fn pipeline_batch_latency(spec: &PipelineSpec, items: u64) -> u64 {
    if items == 0 {
        return 0;
    }
    spec.stage_cycles() * spec.depth as u64 + (items - 1) * spec.stage_cycles()
}

/// Analytic steady-state throughput in items per cycle.
pub fn pipeline_throughput(spec: &PipelineSpec) -> f64 {
    1.0 / spec.stage_cycles() as f64
}

/// Simulates the pipeline on the event kernel and returns the measured
/// batch latency in cycles — validates the analytic model and exercises
/// the FIFO back-pressure path.
pub fn simulate_batch_latency(spec: &PipelineSpec, items: u64) -> u64 {
    if items == 0 {
        return 0;
    }
    let depth = spec.depth as usize;
    let stage_time = Time::from_ticks(spec.stage_cycles());

    struct Stage {
        fifo: Fifo<u64>,
        busy: bool,
    }
    struct Pipe {
        stages: Vec<Stage>,
        done: u64,
        finish: Time,
        items: u64,
    }
    let pipe = Rc::new(RefCell::new(Pipe {
        stages: (0..depth)
            .map(|_| Stage {
                fifo: Fifo::new(spec.fifo_capacity),
                busy: false,
            })
            .collect(),
        done: 0,
        finish: Time::ZERO,
        items,
    }));

    // A stage tries to start work whenever it becomes idle or input lands.
    fn pump(sim: &mut Simulation, pipe: &Rc<RefCell<Pipe>>, stage_idx: usize, stage_time: Time) {
        let can_start = {
            let p = pipe.borrow();
            !p.stages[stage_idx].busy && !p.stages[stage_idx].fifo.is_empty()
        };
        if !can_start {
            return;
        }
        let item = {
            let mut p = pipe.borrow_mut();
            p.stages[stage_idx].busy = true;
            p.stages[stage_idx].fifo.pop().expect("non-empty checked")
        };
        let pipe = pipe.clone();
        sim.schedule(stage_time, move |sim| {
            let depth = pipe.borrow().stages.len();
            {
                let mut p = pipe.borrow_mut();
                p.stages[stage_idx].busy = false;
                if stage_idx + 1 < depth {
                    // Infinite-capacity hand-off would hide back-pressure;
                    // retry until the FIFO accepts (capacity >= 1 keeps
                    // this bounded in practice for equal stage times).
                    p.stages[stage_idx + 1]
                        .fifo
                        .push(item)
                        .unwrap_or_else(|_| panic!("fifo overflow between stages"));
                } else {
                    p.done += 1;
                    p.finish = sim.now();
                }
            }
            if stage_idx + 1 < depth {
                pump(sim, &pipe, stage_idx + 1, stage_time);
            }
            pump(sim, &pipe, stage_idx, stage_time);
        });
    }

    let mut sim = Simulation::new();
    // Feed items as fast as stage 0 accepts them.
    fn feed(sim: &mut Simulation, pipe: &Rc<RefCell<Pipe>>, next: u64, stage_time: Time) {
        let total = pipe.borrow().items;
        if next >= total {
            return;
        }
        let accepted = pipe.borrow_mut().stages[0].fifo.push(next).is_ok();
        if accepted {
            pump(sim, pipe, 0, stage_time);
            feed(sim, pipe, next + 1, stage_time);
        } else {
            let pipe = pipe.clone();
            sim.schedule(stage_time, move |sim| feed(sim, &pipe, next, stage_time));
        }
    }
    {
        let pipe_rc = pipe.clone();
        sim.schedule(Time::ZERO, move |sim| {
            feed(sim, &pipe_rc, 0, stage_time);
        });
    }
    sim.run();
    let p = pipe.borrow();
    assert_eq!(p.done, items, "all items must drain");
    p.finish.as_ticks()
}

/// A heterogeneous pipeline: named stages with individual service times —
/// the Figure 6 GetNeighbor decomposition (address generation, tag
/// allocation, request issue, and the two score-boards), where stages are
/// *not* equal and the slowest one sets throughput.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagePipeline {
    names: Vec<&'static str>,
    cycles: Vec<u64>,
}

impl StagePipeline {
    /// Builds a pipeline from `(name, cycles)` stages.
    ///
    /// # Panics
    ///
    /// Panics on an empty stage list or a zero-cycle stage.
    pub fn new(stages: &[(&'static str, u64)]) -> Self {
        assert!(!stages.is_empty(), "need at least one stage");
        assert!(
            stages.iter().all(|&(_, c)| c > 0),
            "stages must take at least one cycle"
        );
        StagePipeline {
            names: stages.iter().map(|&(n, _)| n).collect(),
            cycles: stages.iter().map(|&(_, c)| c).collect(),
        }
    }

    /// The Figure 6 GetNeighbor sub-module pipeline.
    pub fn get_neighbor() -> Self {
        Self::new(&[
            ("addr-gen", 1),
            ("tag-alloc", 1),
            ("request-issue", 2),
            ("scoreboard-root", 2),
            ("scoreboard-neighbor", 2),
        ])
    }

    /// Stage count.
    pub fn depth(&self) -> usize {
        self.cycles.len()
    }

    /// Total fill latency (sum of stages).
    pub fn fill_cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// The throughput-setting (slowest) stage: `(name, cycles)`.
    pub fn bottleneck(&self) -> (&'static str, u64) {
        let (i, &c) = self
            .cycles
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .expect("non-empty by construction");
        (self.names[i], c)
    }

    /// Batch latency: fill plus one bottleneck interval per remaining
    /// item.
    pub fn batch_latency(&self, items: u64) -> u64 {
        if items == 0 {
            return 0;
        }
        self.fill_cycles() + (items - 1) * self.bottleneck().1
    }

    /// Steady-state throughput in items/cycle.
    pub fn throughput(&self) -> f64 {
        1.0 / self.bottleneck().1 as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_latency_shrinks_with_depth() {
        // Figure 7's shape: deeper pipeline, (much) lower batch latency.
        let items = 256;
        let l: Vec<u64> = [1u32, 2, 4, 8, 16]
            .iter()
            .map(|&d| pipeline_batch_latency(&PipelineSpec::new(16, d, 4), items))
            .collect();
        assert!(l.windows(2).all(|w| w[0] > w[1]), "{l:?}");
        // Depth 16 vs depth 1: close to 16x for large batches.
        let speedup = l[0] as f64 / l[4] as f64;
        assert!(speedup > 10.0, "speedup {speedup}");
    }

    #[test]
    fn throughput_is_stage_rate() {
        let spec = PipelineSpec::new(16, 4, 4);
        assert_eq!(spec.stage_cycles(), 4);
        assert!((pipeline_throughput(&spec) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn simulation_matches_analytic_model() {
        for depth in [1u32, 2, 4, 8] {
            let spec = PipelineSpec::new(16, depth, 8);
            let analytic = pipeline_batch_latency(&spec, 50);
            let measured = simulate_batch_latency(&spec, 50);
            assert_eq!(measured, analytic, "depth {depth}");
        }
    }

    #[test]
    fn uneven_split_rounds_up() {
        let spec = PipelineSpec::new(10, 3, 2);
        assert_eq!(spec.stage_cycles(), 4);
        assert_eq!(pipeline_batch_latency(&spec, 1), 12);
    }

    #[test]
    fn empty_batch_is_free() {
        let spec = PipelineSpec::new(8, 2, 2);
        assert_eq!(pipeline_batch_latency(&spec, 0), 0);
        assert_eq!(simulate_batch_latency(&spec, 0), 0);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn overdeep_pipeline_panics() {
        let _ = PipelineSpec::new(4, 8, 2);
    }

    #[test]
    fn figure6_pipeline_shape() {
        let p = StagePipeline::get_neighbor();
        assert_eq!(p.depth(), 5);
        assert_eq!(p.fill_cycles(), 8);
        // One of the 2-cycle stages bottlenecks at 0.5 items/cycle.
        assert_eq!(p.bottleneck().1, 2);
        assert!((p.throughput() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_latency_matches_equal_split_special_case() {
        // All-equal stages reduce to the PipelineSpec formula.
        let hetero = StagePipeline::new(&[("a", 4), ("b", 4), ("c", 4), ("d", 4)]);
        let equal = PipelineSpec::new(16, 4, 4);
        for items in [1u64, 10, 100] {
            assert_eq!(
                hetero.batch_latency(items),
                pipeline_batch_latency(&equal, items)
            );
        }
    }

    #[test]
    fn bottleneck_stage_dominates_large_batches() {
        let p = StagePipeline::new(&[("fast", 1), ("slow", 10), ("fast2", 1)]);
        assert_eq!(p.bottleneck(), ("slow", 10));
        let l = p.batch_latency(1_000);
        // Asymptotically 10 cycles per item.
        assert!((l as f64 / 1_000.0 - 10.0).abs() < 0.2);
    }

    #[test]
    fn balancing_the_bottleneck_improves_throughput() {
        // The micro-architecture lesson behind Figure 6: splitting the
        // slow stage (e.g. pipelining the scoreboard update) raises
        // whole-pipeline throughput.
        let unbalanced = StagePipeline::new(&[("a", 1), ("slow", 6), ("c", 1)]);
        let balanced = StagePipeline::new(&[("a", 1), ("slow-1", 3), ("slow-2", 3), ("c", 1)]);
        assert!(balanced.throughput() > 1.5 * unbalanced.throughput());
        assert!(balanced.batch_latency(500) < unbalanced.batch_latency(500));
    }

    #[test]
    #[should_panic(expected = "at least one cycle")]
    fn zero_cycle_stage_panics() {
        let _ = StagePipeline::new(&[("x", 0)]);
    }
}
