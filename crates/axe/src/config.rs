//! Access Engine configuration (the "highly parametrizable" architecture
//! of §4.1 / Table 10).

use lsdgnn_memfabric::TierConfig;

/// Configuration of one AxE instance.
///
/// Defaults follow the PoC build of Table 10: dual-core at 250 MHz,
/// 4-channel FPGA-local DDR4, MoF remote access, PCIe command/data IO,
/// 8 KB coalescing cache, streaming sampling, 2-hop fanout-10 workload.
#[derive(Debug, Clone, PartialEq)]
pub struct AxeConfig {
    /// Number of homogeneous sampler cores.
    pub cores: usize,
    /// Logic clock in MHz (PoC: 250 MHz).
    pub clock_mhz: u64,
    /// Maximum in-flight memory requests per core (the OoO load unit's
    /// tag budget).
    pub max_outstanding_per_core: usize,
    /// Coalescing cache capacity in bytes per core (Tech-4: 8 KB).
    pub cache_bytes: usize,
    /// Neighbors sampled per node per hop.
    pub fanout: usize,
    /// Sampling hops.
    pub hops: u32,
    /// Use streaming step-based sampling (Tech-2); `false` selects the
    /// conventional buffered sampler for ablation.
    pub streaming_sampling: bool,
    /// Memory tier wiring (local / remote / output paths).
    pub tier: TierConfig,
    /// Number of graph partitions in the deployment (this node owns one).
    pub partitions: u32,
    /// Model the output (PCIe/GPU-link) bandwidth limit. Figure 15's
    /// "w/o PCIe limitation" bars disable this.
    pub model_output_limit: bool,
    /// Model the symmetric serving load: in an all-to-all deployment
    /// this node also *serves* its peers' remote fetches from local
    /// memory at (statistically) the same rate it issues its own —
    /// consuming local bandwidth. Off by default (the paper's PoC
    /// measurement also reflects a live 4-card system, but the published
    /// per-card numbers don't separate this term).
    pub model_symmetric_serving: bool,
    /// Negative samples drawn per root (Table 2 runs rate 10; the DES
    /// defaults to 0 so calibrated figures are unaffected — enable via
    /// [`AxeConfig::with_negative_rate`]).
    pub negative_rate: usize,
    /// Mini-batch size in root nodes.
    pub batch_size: usize,
    /// RNG seed for sampling decisions.
    pub seed: u64,
}

impl AxeConfig {
    /// The PoC configuration of Table 10.
    pub fn poc() -> Self {
        AxeConfig {
            cores: 2,
            clock_mhz: 250,
            max_outstanding_per_core: 64,
            cache_bytes: 8 * 1024,
            fanout: 10,
            hops: 2,
            streaming_sampling: true,
            tier: TierConfig::poc(true),
            partitions: 4,
            model_output_limit: true,
            model_symmetric_serving: false,
            negative_rate: 0,
            batch_size: 64,
            seed: 0x15D6_0001,
        }
    }

    /// Sets the core count (scaling-up knob of §4.1).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn with_cores(mut self, cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        self.cores = cores;
        self
    }

    /// Sets the memory tier wiring.
    pub fn with_tier(mut self, tier: TierConfig) -> Self {
        self.tier = tier;
        self
    }

    /// Sets the partition count (1 = all accesses local).
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    pub fn with_partitions(mut self, partitions: u32) -> Self {
        assert!(partitions > 0, "need at least one partition");
        self.partitions = partitions;
        self
    }

    /// Sets the per-core outstanding-request budget.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_max_outstanding(mut self, n: usize) -> Self {
        assert!(n > 0, "need at least one outstanding request");
        self.max_outstanding_per_core = n;
        self
    }

    /// Enables/disables the output bandwidth limit.
    pub fn with_output_limit(mut self, on: bool) -> Self {
        self.model_output_limit = on;
        self
    }

    /// Sets the mini-batch size.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_batch_size(mut self, n: usize) -> Self {
        assert!(n > 0, "batch size must be non-zero");
        self.batch_size = n;
        self
    }

    /// Sets the sampling fanout and hop count.
    ///
    /// # Panics
    ///
    /// Panics if either is zero.
    pub fn with_sampling(mut self, hops: u32, fanout: usize) -> Self {
        assert!(hops > 0 && fanout > 0, "hops and fanout must be non-zero");
        self.hops = hops;
        self.fanout = fanout;
        self
    }

    /// Selects streaming (Tech-2) or conventional sampling.
    pub fn with_streaming(mut self, streaming: bool) -> Self {
        self.streaming_sampling = streaming;
        self
    }

    /// Enables/disables modeling the symmetric serving load.
    pub fn with_symmetric_serving(mut self, on: bool) -> Self {
        self.model_symmetric_serving = on;
        self
    }

    /// Sets the negative-sampling rate per root.
    pub fn with_negative_rate(mut self, rate: usize) -> Self {
        self.negative_rate = rate;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// One clock period in simulation ticks (picoseconds).
    pub fn clock_period_ticks(&self) -> u64 {
        1_000_000 / self.clock_mhz
    }
}

impl Default for AxeConfig {
    fn default() -> Self {
        Self::poc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poc_matches_table10() {
        let c = AxeConfig::poc();
        assert_eq!(c.cores, 2);
        assert_eq!(c.clock_mhz, 250);
        assert_eq!(c.cache_bytes, 8 * 1024);
        assert_eq!(c.clock_period_ticks(), 4_000); // 4 ns at 250 MHz
    }

    #[test]
    fn builder_methods_chain() {
        let c = AxeConfig::poc()
            .with_cores(4)
            .with_partitions(8)
            .with_max_outstanding(128)
            .with_batch_size(32)
            .with_sampling(3, 5)
            .with_streaming(false)
            .with_output_limit(false)
            .with_seed(9);
        assert_eq!(c.cores, 4);
        assert_eq!(c.partitions, 8);
        assert_eq!(c.max_outstanding_per_core, 128);
        assert_eq!(c.batch_size, 32);
        assert_eq!((c.hops, c.fanout), (3, 5));
        assert!(!c.streaming_sampling);
        assert!(!c.model_output_limit);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = AxeConfig::poc().with_cores(0);
    }
}
