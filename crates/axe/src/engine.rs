//! The assembled Access Engine: a discrete-event simulation of the full
//! device of Figure 5, producing the sampling-throughput measurements that
//! play the role of the paper's PoC measurements.
//!
//! Per core, mini-batch tasks flow `GetNeighbor → GetSample →
//! GetAttribute`; every memory touch goes through the per-core coalescing
//! cache and then a local- or remote-tier link chosen by the node's
//! partition owner, with the core's outstanding-request budget (Tech-3)
//! limiting memory-level parallelism. Sampled attributes leave through the
//! output link (PCIe or GPU fast link), which is exactly the bottleneck
//! Figure 15 toggles with its "w/o PCIe limitation" bars.

use crate::cache::CoalescingCache;
use crate::config::AxeConfig;
use lsdgnn_desim::{BandwidthResource, Server, Simulation, Time, TimeWeighted};
use lsdgnn_graph::{CsrGraph, NodeId};
use lsdgnn_memfabric::LinkModel;
use lsdgnn_sampler::{NeighborSampler, StandardSampler, StreamingSampler};
use lsdgnn_telemetry::{pids, ticks_to_us, MetricSource, Scope, Tracer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

/// Synthetic physical address map: metadata, edge lists and attributes
/// live in distinct regions so the coalescing cache sees realistic
/// addresses.
const META_BASE: u64 = 0;
const EDGE_BASE: u64 = 1 << 40;
const ATTR_BASE: u64 = 1 << 44;

/// Measurement results of one engine run (the "PoC measurement").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Mini-batches completed.
    pub batches: u64,
    /// Individual nodes sampled.
    pub samples: u64,
    /// Simulated wall-clock of the run.
    pub elapsed: Time,
    /// Samples per simulated second (the Figure 14 metric).
    pub samples_per_sec: f64,
    /// Batches per simulated second.
    pub batches_per_sec: f64,
    /// Bytes fetched from the local memory tier.
    pub local_bytes: u64,
    /// Bytes fetched from the remote tier.
    pub remote_bytes: u64,
    /// Bytes pushed through the output link.
    pub output_bytes: u64,
    /// Coalescing-cache hit rate over line probes.
    pub cache_hit_rate: f64,
    /// Time-weighted average outstanding memory requests (all cores).
    pub avg_outstanding: f64,
    /// Memory requests completed.
    pub requests: u64,
    /// Structure (metadata/edge-list/probe) requests completed.
    pub structure_requests: u64,
    /// Attribute requests completed.
    pub attribute_requests: u64,
    /// Mean request latency in nanoseconds (issue to response).
    pub avg_request_latency_ns: f64,
    /// Busy fraction of the local memory tier over the run.
    pub local_utilization: f64,
    /// Busy fraction of the remote (MoF) link over the run.
    pub remote_utilization: f64,
    /// Busy fraction of the output (PCIe/GPU) link over the run.
    pub output_utilization: f64,
}

impl MetricSource for Measurement {
    fn collect(&self, out: &mut Scope<'_>) {
        out.counter("batches", self.batches);
        out.counter("samples", self.samples);
        out.gauge("elapsed_us", self.elapsed.as_micros_f64());
        out.gauge("samples_per_sec", self.samples_per_sec);
        out.gauge("batches_per_sec", self.batches_per_sec);
        out.counter("local_bytes", self.local_bytes);
        out.counter("remote_bytes", self.remote_bytes);
        out.counter("output_bytes", self.output_bytes);
        out.gauge("cache_hit_rate", self.cache_hit_rate);
        out.gauge("avg_outstanding", self.avg_outstanding);
        out.counter("requests", self.requests);
        out.counter("structure_requests", self.structure_requests);
        out.counter("attribute_requests", self.attribute_requests);
        out.gauge("avg_request_latency_ns", self.avg_request_latency_ns);
        out.gauge("local_utilization", self.local_utilization);
        out.gauge("remote_utilization", self.remote_utilization);
        out.gauge("output_utilization", self.output_utilization);
    }
}

struct CoreState {
    neighbor_q: VecDeque<(u32, u32, NodeId)>, // (batch, hop, node)
    negative_q: VecDeque<(u32, NodeId, NodeId)>, // (batch, root, candidate)
    attr_q: VecDeque<(u32, NodeId)>,
    inflight: usize,
    cache: CoalescingCache,
    sampler_unit: Server,
}

struct EngineState {
    cfg: AxeConfig,
    graph: Rc<CsrGraph>,
    attr_bytes: u64,
    cores: Vec<CoreState>,
    local_bw: BandwidthResource,
    remote_bw: BandwidthResource,
    output_bw: BandwidthResource,
    local_link: LinkModel,
    remote_link: LinkModel,
    output_link: LinkModel,
    batch_pending: HashMap<u32, u64>,
    completed_batches: u64,
    samples: u64,
    output_bytes: u64,
    local_bytes: u64,
    remote_bytes: u64,
    last_done: Time,
    outstanding: TimeWeighted,
    requests: u64,
    structure_requests: u64,
    attribute_requests: u64,
    latency_sum_ns: f64,
    rng: SmallRng,
    tracer: Option<Tracer>,
}

impl EngineState {
    fn note_response(&mut self, issued: Time, now: Time) {
        self.requests += 1;
        self.latency_sum_ns += (now.saturating_sub(issued)).as_nanos_f64();
    }

    /// Records a pipeline-stage span on core `core` over `[from, to]`
    /// simulated time (no-op without an attached tracer).
    fn trace_stage(&self, cat: &str, name: &str, core: usize, from: Time, to: Time) {
        if let Some(tracer) = &self.tracer {
            let pid = if cat == "mof" { pids::MOF } else { pids::AXE };
            let ts = ticks_to_us(from.as_ticks());
            let dur = ticks_to_us(to.saturating_sub(from).as_ticks());
            tracer.span(cat, name, pid, core as u32, ts, dur);
        }
    }
}

impl EngineState {
    fn owner(&self, v: NodeId) -> u32 {
        let h = v.0.wrapping_mul(0x9E3779B97F4A7C15);
        (h >> 32) as u32 % self.cfg.partitions
    }

    fn is_local(&self, v: NodeId) -> bool {
        // This engine instance owns partition 0.
        self.owner(v) == 0
    }
}

type Shared = Rc<RefCell<EngineState>>;

/// The Access Engine simulator.
///
/// # Example
///
/// ```
/// use lsdgnn_axe::{AccessEngine, AxeConfig};
/// use lsdgnn_graph::generators;
///
/// let g = generators::power_law(1_000, 8, 3);
/// let m = AccessEngine::new(AxeConfig::poc()).run(&g, 72, 2);
/// assert_eq!(m.batches, 2);
/// assert!(m.samples > 0);
/// ```
#[derive(Debug, Clone)]
pub struct AccessEngine {
    cfg: AxeConfig,
}

impl AccessEngine {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: AxeConfig) -> Self {
        AccessEngine { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &AxeConfig {
        &self.cfg
    }

    /// Runs `num_batches` mini-batches of sampling over `graph` with
    /// `attr_len`-float node attributes and returns the measurement.
    ///
    /// # Panics
    ///
    /// Panics if `num_batches` is zero or the graph is empty.
    pub fn run(&self, graph: &CsrGraph, attr_len: usize, num_batches: u32) -> Measurement {
        self.run_traced(graph, attr_len, num_batches, None)
    }

    /// Like [`AccessEngine::run`], but records per-stage spans
    /// (`get_neighbor`, `get_sample`, `negative_probe`, `get_attribute`
    /// under cat `axe`; `remote_read` under cat `mof`) plus the kernel's
    /// calendar counters into `tracer`, in simulated-time microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `num_batches` is zero or the graph is empty.
    pub fn run_traced(
        &self,
        graph: &CsrGraph,
        attr_len: usize,
        num_batches: u32,
        tracer: Option<Tracer>,
    ) -> Measurement {
        assert!(num_batches > 0, "need at least one batch");
        assert!(graph.num_nodes() > 0, "graph must be non-empty");
        let cfg = self.cfg.clone();
        let graph = Rc::new(graph.clone());
        let local_link = cfg.tier.local.link_model();
        let remote_link = cfg.tier.remote.link_model();
        let output_link = cfg.tier.output.link_model();
        let mut rng = SmallRng::seed_from_u64(cfg.seed);

        // Pre-draw the batch root sets.
        let n = graph.num_nodes();
        let batches: Vec<Vec<NodeId>> = (0..num_batches)
            .map(|_| {
                (0..cfg.batch_size)
                    .map(|_| NodeId(rng.gen_range(0..n)))
                    .collect()
            })
            .collect();

        let cores = (0..cfg.cores)
            .map(|_| CoreState {
                neighbor_q: VecDeque::new(),
                negative_q: VecDeque::new(),
                attr_q: VecDeque::new(),
                inflight: 0,
                cache: CoalescingCache::new(cfg.cache_bytes),
                sampler_unit: Server::new(1),
            })
            .collect();

        let state: Shared = Rc::new(RefCell::new(EngineState {
            local_bw: BandwidthResource::from_gbytes_per_sec(local_link.peak_gbps),
            remote_bw: BandwidthResource::from_gbytes_per_sec(remote_link.peak_gbps),
            output_bw: BandwidthResource::from_gbytes_per_sec(output_link.peak_gbps),
            local_link,
            remote_link,
            output_link,
            attr_bytes: attr_len as u64 * 4,
            cores,
            graph,
            batch_pending: HashMap::new(),
            completed_batches: 0,
            samples: 0,
            output_bytes: 0,
            local_bytes: 0,
            remote_bytes: 0,
            last_done: Time::ZERO,
            outstanding: TimeWeighted::new(),
            requests: 0,
            structure_requests: 0,
            attribute_requests: 0,
            latency_sum_ns: 0.0,
            rng: SmallRng::seed_from_u64(cfg.seed ^ 0xA5A5),
            tracer: tracer.clone(),
            cfg,
        }));

        let mut sim = Simulation::new();
        if let Some(tracer) = &tracer {
            tracer.name_process(pids::AXE, "axe-engine");
            tracer.name_process(pids::MOF, "mof-remote");
            for core in 0..state.borrow().cfg.cores {
                tracer.name_thread(pids::AXE, core as u32, &format!("core{core}"));
            }
            sim.attach_tracer(tracer.clone(), pids::DESIM);
        }
        // Seed the work: batch b goes to core b % cores; each root spawns
        // one GetNeighbor work item and one attribute fetch.
        {
            let mut st = state.borrow_mut();
            let ncores = st.cfg.cores;
            for (b, roots) in batches.iter().enumerate() {
                let core = b % ncores;
                let bid = b as u32;
                let mut pending = 0u64;
                for &root in roots {
                    st.cores[core].neighbor_q.push_back((bid, 1, root));
                    st.cores[core].attr_q.push_back((bid, root));
                    pending += 2;
                    // Negative sampling (Table 4's `negative sample`
                    // command): each draw probes the root's edge list and
                    // fetches the candidate's attributes.
                    for _ in 0..st.cfg.negative_rate {
                        let cand = NodeId(st.rng.gen_range(0..n));
                        st.cores[core].negative_q.push_back((bid, root, cand));
                        pending += 1;
                    }
                }
                st.batch_pending.insert(bid, pending);
            }
        }
        for core in 0..state.borrow().cfg.cores {
            let st = state.clone();
            sim.schedule(Time::ZERO, move |sim| pump(sim, &st, core));
        }
        sim.run();

        let st = state.borrow();
        debug_assert!(st.batch_pending.is_empty(), "all batches must drain");
        let elapsed = st.last_done;
        let secs = elapsed.as_secs_f64().max(1e-12);
        let (h, m) = st.cores.iter().fold((0u64, 0u64), |(h, m), c| {
            (h + c.cache.hits(), m + c.cache.misses())
        });
        Measurement {
            batches: st.completed_batches,
            samples: st.samples,
            elapsed,
            samples_per_sec: st.samples as f64 / secs,
            batches_per_sec: st.completed_batches as f64 / secs,
            local_bytes: st.local_bytes,
            remote_bytes: st.remote_bytes,
            output_bytes: st.output_bytes,
            cache_hit_rate: if h + m == 0 {
                0.0
            } else {
                h as f64 / (h + m) as f64
            },
            avg_outstanding: st.outstanding.average(elapsed),
            requests: st.requests,
            structure_requests: st.structure_requests,
            attribute_requests: st.attribute_requests,
            avg_request_latency_ns: if st.requests == 0 {
                0.0
            } else {
                st.latency_sum_ns / st.requests as f64
            },
            local_utilization: st.local_bw.utilization(elapsed),
            remote_utilization: st.remote_bw.utilization(elapsed),
            output_utilization: st.output_bw.utilization(elapsed),
        }
    }
}

/// Issues work from a core's queues while its outstanding budget allows.
fn pump(sim: &mut Simulation, st: &Shared, core: usize) {
    loop {
        enum Work {
            Attr(u32, NodeId),
            Negative(u32, NodeId, NodeId),
            Neighbor(u32, u32, NodeId),
        }
        let work = {
            let mut s = st.borrow_mut();
            if s.cores[core].inflight >= s.cfg.max_outstanding_per_core {
                return;
            }
            // Attribute fetches drain first: they retire batch items and
            // keep the output pipe busy (the hardware's GetAttribute FIFO
            // sits closest to the encoder).
            if let Some((bid, v)) = s.cores[core].attr_q.pop_front() {
                Work::Attr(bid, v)
            } else if let Some((bid, root, cand)) = s.cores[core].negative_q.pop_front() {
                Work::Negative(bid, root, cand)
            } else if let Some((bid, hop, v)) = s.cores[core].neighbor_q.pop_front() {
                Work::Neighbor(bid, hop, v)
            } else {
                return;
            }
        };
        match work {
            Work::Attr(bid, v) => issue_attr(sim, st, core, bid, v),
            Work::Negative(bid, root, cand) => issue_negative(sim, st, core, bid, root, cand),
            Work::Neighbor(bid, hop, v) => issue_neighbor(sim, st, core, bid, hop, v),
        }
    }
}

/// Books a memory request of `addr..addr+bytes` through the core's cache
/// and the chosen tier; returns its completion time.
fn memory_access(
    now: Time,
    s: &mut EngineState,
    core: usize,
    addr: u64,
    bytes: u64,
    local: bool,
) -> Time {
    let miss_bytes = s.cores[core].cache.access(addr, bytes);
    if miss_bytes == 0 {
        // Pure cache hit: one clock of the AxE logic.
        return now + Time::from_ticks(s.cfg.clock_period_ticks());
    }
    if local {
        s.local_bytes += miss_bytes;
        let (_, finish) = s.local_bw.acquire(now, miss_bytes);
        finish + Time::from_nanos(s.local_link.base_latency_ns + s.local_link.per_request_ns)
    } else {
        s.remote_bytes += miss_bytes;
        if s.cfg.model_symmetric_serving {
            // Peers statistically fetch from this node at the rate it
            // fetches from them: the same bytes occupy local memory as
            // serving traffic.
            s.local_bw.acquire(now, miss_bytes);
        }
        let (_, finish) = s.remote_bw.acquire(now, miss_bytes);
        let done =
            finish + Time::from_nanos(s.remote_link.base_latency_ns + s.remote_link.per_request_ns);
        s.trace_stage("mof", "remote_read", core, now, done);
        done
    }
}

fn issue_neighbor(sim: &mut Simulation, st: &Shared, core: usize, bid: u32, hop: u32, v: NodeId) {
    let issued = sim.now();
    let done = {
        let mut s = st.borrow_mut();
        let now = sim.now();
        s.cores[core].inflight += 1;
        s.outstanding.adjust(now, 1.0);
        let local = s.is_local(v);
        let deg = s.graph.degree(v);
        let meta_addr = META_BASE + v.0 * 16;
        let t1 = memory_access(now, &mut s, core, meta_addr, 16, local);
        let done = if deg > 0 {
            let avg = (s.graph.num_edges() / s.graph.num_nodes().max(1)).max(1);
            let edge_addr = EDGE_BASE + v.0 * avg * 8;
            let t2 = memory_access(now, &mut s, core, edge_addr, deg * 8, local);
            t1.max(t2)
        } else {
            t1
        };
        s.trace_stage("axe", "get_neighbor", core, now, done);
        done
    };
    let st2 = st.clone();
    sim.schedule_at(done, move |sim| {
        {
            let mut s = st2.borrow_mut();
            s.note_response(issued, sim.now());
            s.structure_requests += 1;
        }
        on_neighbor_response(sim, &st2, core, bid, hop, v);
    });
}

/// Edge list arrived: stream it through the GetSample stage, then spawn
/// attribute fetches (and next-hop expansions) for the picked nodes.
fn on_neighbor_response(
    sim: &mut Simulation,
    st: &Shared,
    core: usize,
    bid: u32,
    hop: u32,
    v: NodeId,
) {
    let sample_done = {
        let mut s = st.borrow_mut();
        let now = sim.now();
        s.cores[core].inflight -= 1;
        s.outstanding.adjust(now, -1.0);
        let deg = s.graph.degree(v) as usize;
        let cycles = if s.cfg.streaming_sampling {
            StreamingSampler.cycles(deg, s.cfg.fanout)
        } else {
            StandardSampler.cycles(deg, s.cfg.fanout)
        };
        let service = Time::from_ticks(cycles.max(1) * s.cfg.clock_period_ticks());
        let (_, finish) = s.cores[core].sampler_unit.acquire(now, service);
        s.trace_stage("axe", "get_sample", core, now, finish);
        finish
    };
    let st2 = st.clone();
    sim.schedule_at(sample_done, move |sim| {
        // Sampling complete: pick the concrete nodes functionally.
        {
            let mut s = st2.borrow_mut();
            let graph = s.graph.clone();
            let neighbors = graph.neighbors(v);
            let fanout = s.cfg.fanout;
            let streaming = s.cfg.streaming_sampling;
            let picked = if streaming {
                StreamingSampler.sample(&mut s.rng, neighbors, fanout)
            } else {
                StandardSampler.sample(&mut s.rng, neighbors, fanout)
            };
            s.samples += picked.len() as u64;
            let next_hop = hop + 1;
            let expand_further = next_hop <= s.cfg.hops;
            let pending = s
                .batch_pending
                .get_mut(&bid)
                .expect("batch open while work exists");
            // Each picked node adds an attr fetch (+1) and possibly a
            // next-hop expansion (+1); this neighbor item itself retires
            // (-1) — net adjustment below.
            let spawn_per_pick = 1 + u64::from(expand_further);
            *pending += picked.len() as u64 * spawn_per_pick;
            for &p in &picked {
                s.cores[core].attr_q.push_back((bid, p));
                if expand_further {
                    s.cores[core].neighbor_q.push_back((bid, next_hop, p));
                }
            }
        }
        retire_batch_item(sim, &st2, bid);
        pump(sim, &st2, core);
    });
}

/// A negative-sample draw: probe the root's edge list (binary search in
/// hardware — one structure read), then fetch the candidate's attributes
/// and emit them like any sampled node.
fn issue_negative(
    sim: &mut Simulation,
    st: &Shared,
    core: usize,
    bid: u32,
    root: NodeId,
    cand: NodeId,
) {
    let issued = sim.now();
    let done = {
        let mut s = st.borrow_mut();
        let now = sim.now();
        s.cores[core].inflight += 1;
        s.outstanding.adjust(now, 1.0);
        // Edge-existence probe against the root's edge list.
        let local_root = s.is_local(root);
        let deg = s.graph.degree(root);
        let avg = (s.graph.num_edges() / s.graph.num_nodes().max(1)).max(1);
        let edge_addr = EDGE_BASE + root.0 * avg * 8;
        // A binary search touches ~log2(deg) positions; model as one
        // line-granular probe in the middle of the list.
        let done = memory_access(now, &mut s, core, edge_addr + deg * 4, 8, local_root);
        s.trace_stage("axe", "negative_probe", core, now, done);
        done
    };
    let st2 = st.clone();
    sim.schedule_at(done, move |sim| {
        // Probe complete; hand the candidate to the attribute path.
        {
            let mut s = st2.borrow_mut();
            let now = sim.now();
            s.note_response(issued, now);
            s.structure_requests += 1;
            s.cores[core].inflight -= 1;
            s.outstanding.adjust(now, -1.0);
            s.samples += 1;
            let pending = s
                .batch_pending
                .get_mut(&bid)
                .expect("batch open while work exists");
            *pending += 1; // the attr fetch we are about to enqueue
            s.cores[core].attr_q.push_back((bid, cand));
        }
        retire_batch_item(sim, &st2, bid);
        pump(sim, &st2, core);
    });
}

fn issue_attr(sim: &mut Simulation, st: &Shared, core: usize, bid: u32, v: NodeId) {
    let issued = sim.now();
    let done = {
        let mut s = st.borrow_mut();
        let now = sim.now();
        s.cores[core].inflight += 1;
        s.outstanding.adjust(now, 1.0);
        let local = s.is_local(v);
        let addr = ATTR_BASE + v.0 * s.attr_bytes;
        let bytes = s.attr_bytes;
        let done = memory_access(now, &mut s, core, addr, bytes, local);
        s.trace_stage("axe", "get_attribute", core, now, done);
        done
    };
    let st2 = st.clone();
    sim.schedule_at(done, move |sim| {
        // Attribute arrived: push it through the output link.
        let finish = {
            let mut s = st2.borrow_mut();
            let now = sim.now();
            s.note_response(issued, now);
            s.attribute_requests += 1;
            s.cores[core].inflight -= 1;
            s.outstanding.adjust(now, -1.0);
            let bytes = s.attr_bytes;
            s.output_bytes += bytes;
            if s.cfg.model_output_limit {
                let lat =
                    Time::from_nanos(s.output_link.base_latency_ns + s.output_link.per_request_ns);
                let (_, f) = s.output_bw.acquire(now, bytes);
                f + lat
            } else {
                now
            }
        };
        let st3 = st2.clone();
        sim.schedule_at(finish, move |sim| {
            retire_batch_item(sim, &st3, bid);
            pump(sim, &st3, core);
        });
        pump(sim, &st2, core);
    });
}

fn retire_batch_item(sim: &mut Simulation, st: &Shared, bid: u32) {
    let mut s = st.borrow_mut();
    let left = {
        let left = s
            .batch_pending
            .get_mut(&bid)
            .expect("batch exists until retired");
        *left -= 1;
        *left
    };
    s.last_done = s.last_done.max(sim.now());
    if left == 0 {
        s.batch_pending.remove(&bid);
        s.completed_batches += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsdgnn_graph::generators;
    use lsdgnn_memfabric::{MemoryTier, TierConfig};

    fn small_graph() -> CsrGraph {
        generators::power_law(2_000, 8, 50)
    }

    fn quick_cfg() -> AxeConfig {
        AxeConfig::poc().with_batch_size(16).with_sampling(2, 5)
    }

    #[test]
    fn run_completes_all_batches() {
        let g = small_graph();
        let m = AccessEngine::new(quick_cfg()).run(&g, 72, 3);
        assert_eq!(m.batches, 3);
        assert!(m.samples > 0);
        assert!(m.samples_per_sec > 0.0);
        assert!(m.elapsed > Time::ZERO);
        // Every sampled node plus every root produced output.
        assert_eq!(m.output_bytes, (m.samples + 3 * 16) * 72 * 4);
    }

    #[test]
    fn remote_traffic_follows_partitioning() {
        let g = small_graph();
        let local_only = AccessEngine::new(quick_cfg().with_partitions(1)).run(&g, 72, 2);
        assert_eq!(local_only.remote_bytes, 0);
        let four_way = AccessEngine::new(quick_cfg().with_partitions(4)).run(&g, 72, 2);
        assert!(four_way.remote_bytes > 0);
        // ~3/4 of bytes remote under 4-way hash partitioning.
        let frac =
            four_way.remote_bytes as f64 / (four_way.remote_bytes + four_way.local_bytes) as f64;
        assert!((0.55..0.95).contains(&frac), "remote fraction {frac}");
    }

    #[test]
    fn more_outstanding_requests_raise_throughput() {
        let g = small_graph();
        let narrow = AccessEngine::new(quick_cfg().with_max_outstanding(1)).run(&g, 72, 2);
        let wide = AccessEngine::new(quick_cfg().with_max_outstanding(64)).run(&g, 72, 2);
        assert!(
            wide.samples_per_sec > 5.0 * narrow.samples_per_sec,
            "wide {} vs narrow {}",
            wide.samples_per_sec,
            narrow.samples_per_sec
        );
        assert!(wide.avg_outstanding > narrow.avg_outstanding);
    }

    #[test]
    fn removing_output_limit_helps_when_output_bound() {
        let g = small_graph();
        // Narrow PCIe output, fast local memory: output-bound.
        let tier = TierConfig {
            local: MemoryTier::FpgaLocalDram { channels: 4 },
            remote: MemoryTier::Mof { links: 3 },
            output: MemoryTier::PciePeerToPeer,
        };
        let cfg = quick_cfg().with_tier(tier).with_cores(4);
        let limited = AccessEngine::new(cfg.clone()).run(&g, 152, 2);
        let unlimited = AccessEngine::new(cfg.with_output_limit(false)).run(&g, 152, 2);
        assert!(
            unlimited.samples_per_sec >= limited.samples_per_sec,
            "unlimited {} vs limited {}",
            unlimited.samples_per_sec,
            limited.samples_per_sec
        );
    }

    #[test]
    fn more_cores_scale_throughput_until_bottleneck() {
        let g = small_graph();
        let one =
            AccessEngine::new(quick_cfg().with_cores(1).with_max_outstanding(8)).run(&g, 72, 4);
        let four =
            AccessEngine::new(quick_cfg().with_cores(4).with_max_outstanding(8)).run(&g, 72, 4);
        assert!(
            four.samples_per_sec > 1.5 * one.samples_per_sec,
            "4-core {} vs 1-core {}",
            four.samples_per_sec,
            one.samples_per_sec
        );
    }

    #[test]
    fn cache_captures_spatial_reuse() {
        let g = small_graph();
        let m = AccessEngine::new(quick_cfg()).run(&g, 72, 2);
        assert!(m.cache_hit_rate > 0.0, "hit rate {}", m.cache_hit_rate);
        assert!(
            m.cache_hit_rate < 0.9,
            "8KB must not capture temporal reuse"
        );
    }

    #[test]
    fn streaming_and_standard_both_complete() {
        let g = small_graph();
        let stream = AccessEngine::new(quick_cfg().with_streaming(true)).run(&g, 72, 2);
        let standard = AccessEngine::new(quick_cfg().with_streaming(false)).run(&g, 72, 2);
        assert_eq!(stream.batches, 2);
        assert_eq!(standard.batches, 2);
        // Streaming's fewer sampler cycles should never be slower overall.
        assert!(stream.elapsed <= standard.elapsed + Time::from_micros(50));
    }

    #[test]
    fn symmetric_serving_costs_local_bandwidth() {
        // With serving modeled, local memory also carries the peers'
        // fetches, so multi-node throughput drops (never rises).
        let g = small_graph();
        let base = AccessEngine::new(quick_cfg().with_output_limit(false)).run(&g, 152, 2);
        let serving = AccessEngine::new(
            quick_cfg()
                .with_output_limit(false)
                .with_symmetric_serving(true),
        )
        .run(&g, 152, 2);
        assert!(serving.samples_per_sec <= base.samples_per_sec * 1.01);
        // Single-partition deployments have no remote traffic to serve.
        let solo = AccessEngine::new(quick_cfg().with_partitions(1).with_symmetric_serving(true))
            .run(&g, 152, 2);
        let solo_base = AccessEngine::new(quick_cfg().with_partitions(1)).run(&g, 152, 2);
        assert_eq!(solo.samples_per_sec, solo_base.samples_per_sec);
    }

    #[test]
    fn des_access_mix_is_conserved_and_fanout_shaped() {
        // The DES coalesces each edge-list scan into one request, so its
        // structure share is ~1/(fanout+1) of requests — unlike Figure
        // 2(c)'s per-pointer accounting (reproduced in
        // `lsdgnn_sampler::traffic`), every expansion here is one
        // hardware request serving `fanout` samples.
        let g = small_graph();
        let m = AccessEngine::new(quick_cfg().with_sampling(2, 10)).run(&g, 72, 2);
        assert_eq!(m.requests, m.structure_requests + m.attribute_requests);
        let frac = m.structure_requests as f64 / m.requests as f64;
        let expect = 1.0 / 11.0; // expansions / (expansions + attrs)
        assert!(
            (frac - expect).abs() < 0.05,
            "structure fraction {frac} vs expected {expect}"
        );
    }

    #[test]
    fn littles_law_holds_in_the_des() {
        // Self-consistency: average outstanding requests L, request
        // completion rate λ and mean latency W must satisfy L ≈ λ·W.
        let g = small_graph();
        let m = AccessEngine::new(quick_cfg().with_max_outstanding(32)).run(&g, 72, 3);
        assert!(m.requests > 0);
        let lambda = m.requests as f64 / m.elapsed.as_secs_f64();
        let w_secs = m.avg_request_latency_ns * 1e-9;
        let l_predicted = lambda * w_secs;
        let rel = (m.avg_outstanding - l_predicted).abs() / l_predicted.max(1e-9);
        assert!(
            rel < 0.25,
            "Little's law violated: L {} vs λW {} (rel {rel})",
            m.avg_outstanding,
            l_predicted
        );
    }

    #[test]
    fn negative_sampling_adds_proportional_work() {
        let g = small_graph();
        let without = AccessEngine::new(quick_cfg()).run(&g, 72, 2);
        let with = AccessEngine::new(quick_cfg().with_negative_rate(10)).run(&g, 72, 2);
        // 10 negatives per root add 10 output attrs per root.
        let extra = 2 * 16 * 10; // batches * batch_size * rate
        assert_eq!(with.samples, without.samples + extra);
        assert_eq!(with.output_bytes, without.output_bytes + extra * 72 * 4);
        assert!(with.elapsed > without.elapsed);
    }

    #[test]
    #[should_panic(expected = "at least one batch")]
    fn zero_batches_panics() {
        let g = small_graph();
        AccessEngine::new(quick_cfg()).run(&g, 72, 0);
    }
}
