//! The label-aware metrics registry: counters, gauges and log2
//! histograms collected from [`MetricSource`]s into diffable
//! [`Snapshot`]s with a JSON exporter and parser.
//!
//! The flow mirrors production metric pipelines scaled to this repo:
//! stats structs (AxE measurements, MoF endpoint stats, service
//! histograms) implement [`MetricSource`]; a [`Registry`] holds the
//! sources under a scope name plus labels; `Registry::snapshot()` walks
//! them into one flat, sorted [`Snapshot`] that serializes to JSON and
//! parses back for round-trip testing and CI smoke checks.

use crate::json::{Json, JsonError};

/// Aggregate view of a histogram at snapshot time. All statistics are in
/// the histogram's native unit (the recorder decides: microseconds,
/// requests, bytes, ...).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Smallest sample (0 if empty).
    pub min: f64,
    /// Largest sample (0 if empty).
    pub max: f64,
    /// Interpolated 50th percentile.
    pub p50: f64,
    /// Interpolated 90th percentile.
    pub p90: f64,
    /// Interpolated 99th percentile.
    pub p99: f64,
}

/// One metric's value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing count.
    Counter(u64),
    /// A point-in-time level.
    Gauge(f64),
    /// A distribution summary.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// The value as a plain number: counters and gauges directly,
    /// histograms via their mean.
    pub fn as_f64(&self) -> f64 {
        match self {
            MetricValue::Counter(v) => *v as f64,
            MetricValue::Gauge(v) => *v,
            MetricValue::Histogram(h) => h.mean,
        }
    }

    /// The histogram summary, if this is one.
    pub fn as_histogram(&self) -> Option<&HistogramSnapshot> {
        match self {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

/// A named, labeled metric inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Slash-separated name, e.g. `axe/cache_hit_rate`.
    pub name: String,
    /// Label key/value pairs, e.g. `[("dataset", "ss")]`.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: MetricValue,
}

/// A flat, ordered collection of metrics — the exported artifact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    metrics: Vec<Metric>,
}

impl Snapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// All metrics, in registration order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// First metric with this full name, any labels.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| &m.value)
    }

    /// The metric with this full name carrying all the given labels.
    pub fn get_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        self.metrics
            .iter()
            .find(|m| {
                m.name == name
                    && labels
                        .iter()
                        .all(|(k, v)| m.labels.iter().any(|(mk, mv)| mk == k && mv == v))
            })
            .map(|m| &m.value)
    }

    /// Appends a metric.
    pub fn push(&mut self, metric: Metric) {
        self.metrics.push(metric);
    }

    /// Appends every metric of `other`, preserving its internal order —
    /// the merge primitive for combining per-worker snapshots into one
    /// deterministic export.
    pub fn extend(&mut self, other: Snapshot) {
        self.metrics.extend(other.metrics);
    }

    /// Serializes the snapshot to JSON.
    pub fn to_json(&self) -> String {
        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                let mut fields = vec![
                    ("name".to_string(), Json::Str(m.name.clone())),
                    (
                        "labels".to_string(),
                        Json::Obj(
                            m.labels
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
                                .collect(),
                        ),
                    ),
                ];
                match &m.value {
                    MetricValue::Counter(v) => {
                        fields.push(("type".to_string(), Json::Str("counter".to_string())));
                        fields.push(("value".to_string(), Json::Num(*v as f64)));
                    }
                    MetricValue::Gauge(v) => {
                        fields.push(("type".to_string(), Json::Str("gauge".to_string())));
                        fields.push(("value".to_string(), Json::Num(*v)));
                    }
                    MetricValue::Histogram(h) => {
                        fields.push(("type".to_string(), Json::Str("histogram".to_string())));
                        fields.push(("count".to_string(), Json::Num(h.count as f64)));
                        fields.push(("mean".to_string(), Json::Num(h.mean)));
                        fields.push(("min".to_string(), Json::Num(h.min)));
                        fields.push(("max".to_string(), Json::Num(h.max)));
                        fields.push(("p50".to_string(), Json::Num(h.p50)));
                        fields.push(("p90".to_string(), Json::Num(h.p90)));
                        fields.push(("p99".to_string(), Json::Num(h.p99)));
                    }
                }
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![("metrics".to_string(), Json::Arr(metrics))]).render()
    }

    /// Parses a snapshot back from its JSON form.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a missing/unknown metric shape.
    pub fn from_json(text: &str) -> Result<Snapshot, JsonError> {
        let bad = |message: &'static str| JsonError { offset: 0, message };
        let doc = Json::parse(text)?;
        let list = doc
            .get("metrics")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `metrics` array"))?;
        let mut snap = Snapshot::new();
        for entry in list {
            let name = entry
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("metric lacks name"))?
                .to_string();
            let labels = entry
                .get("labels")
                .and_then(Json::as_obj)
                .ok_or_else(|| bad("metric lacks labels"))?
                .iter()
                .map(|(k, v)| {
                    v.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| bad("label value must be a string"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let num = |key: &'static str| -> Result<f64, JsonError> {
                entry
                    .get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| bad("histogram field missing"))
            };
            let value = match entry.get("type").and_then(Json::as_str) {
                Some("counter") => MetricValue::Counter(
                    entry
                        .get("value")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("counter value must be a whole number"))?,
                ),
                Some("gauge") => MetricValue::Gauge(
                    entry
                        .get("value")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| bad("gauge value must be a number"))?,
                ),
                Some("histogram") => MetricValue::Histogram(HistogramSnapshot {
                    count: entry
                        .get("count")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad("histogram count must be a whole number"))?,
                    mean: num("mean")?,
                    min: num("min")?,
                    max: num("max")?,
                    p50: num("p50")?,
                    p90: num("p90")?,
                    p99: num("p99")?,
                }),
                _ => return Err(bad("unknown metric type")),
            };
            snap.push(Metric {
                name,
                labels,
                value,
            });
        }
        Ok(snap)
    }
}

/// The write side handed to a [`MetricSource`]: metric names are
/// prefixed with the registration scope and carry its labels.
pub struct Scope<'a> {
    snap: &'a mut Snapshot,
    prefix: String,
    labels: Vec<(String, String)>,
}

impl<'a> Scope<'a> {
    fn full_name(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", self.prefix, name)
        }
    }

    /// Emits a counter.
    pub fn counter(&mut self, name: &str, value: u64) {
        let metric = Metric {
            name: self.full_name(name),
            labels: self.labels.clone(),
            value: MetricValue::Counter(value),
        };
        self.snap.push(metric);
    }

    /// Emits a gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        let metric = Metric {
            name: self.full_name(name),
            labels: self.labels.clone(),
            value: MetricValue::Gauge(value),
        };
        self.snap.push(metric);
    }

    /// Emits a histogram summary.
    pub fn histogram(&mut self, name: &str, h: HistogramSnapshot) {
        let metric = Metric {
            name: self.full_name(name),
            labels: self.labels.clone(),
            value: MetricValue::Histogram(h),
        };
        self.snap.push(metric);
    }

    /// A sub-scope whose metric names gain another path segment (used by
    /// composite sources, e.g. service stats nesting backend stats).
    pub fn nested(&mut self, segment: &str) -> Scope<'_> {
        Scope {
            prefix: self.full_name(segment),
            labels: self.labels.clone(),
            snap: self.snap,
        }
    }
}

/// Anything that can contribute metrics to a snapshot.
///
/// Implemented by the stats structs across the workspace (AxE
/// `Measurement`, MoF `EndpointStats`, framework `ServiceStats`, desim
/// `FifoStats`) and by plain closures for one-off gauges:
///
/// ```
/// use lsdgnn_telemetry::{Registry, Scope};
/// let mut reg = Registry::new();
/// reg.register("link", &[("tier", "mof")], Box::new(|s: &mut Scope| {
///     s.gauge("utilization", 0.7);
/// }));
/// let snap = reg.snapshot();
/// assert_eq!(snap.get("link/utilization").unwrap().as_f64(), 0.7);
/// ```
pub trait MetricSource {
    /// Appends this source's metrics.
    fn collect(&self, out: &mut Scope<'_>);
}

impl<F: Fn(&mut Scope<'_>)> MetricSource for F {
    fn collect(&self, out: &mut Scope<'_>) {
        self(out)
    }
}

struct Registered {
    scope: String,
    labels: Vec<(String, String)>,
    source: Box<dyn MetricSource>,
}

/// Holds registered [`MetricSource`]s and produces [`Snapshot`]s.
#[derive(Default)]
pub struct Registry {
    sources: Vec<Registered>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("sources", &self.sources.len())
            .finish()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a source under `scope` (the metric-name prefix) with
    /// the given labels.
    pub fn register(
        &mut self,
        scope: &str,
        labels: &[(&str, &str)],
        source: Box<dyn MetricSource>,
    ) {
        self.sources.push(Registered {
            scope: scope.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            source,
        });
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// Collects every source into one snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::new();
        for reg in &self.sources {
            let mut scope = Scope {
                snap: &mut snap,
                prefix: reg.scope.clone(),
                labels: reg.labels.clone(),
            };
            reg.source.collect(&mut scope);
        }
        snap
    }
}

/// A power-of-two bucketed histogram over plain `u64` samples (bucket
/// `i` covers `[2^i, 2^(i+1))`; bucket 0 also covers zero), with
/// interpolated percentiles.
///
/// This is the unit-agnostic sibling of `lsdgnn_desim::Histogram` (which
/// records simulated [`Time`]s); the serving layer records latencies in
/// microseconds, queue depths in requests, batch sizes in requests.
///
/// # Example
///
/// ```
/// use lsdgnn_telemetry::Log2Histogram;
/// let mut h = Log2Histogram::new();
/// for v in [1, 2, 4, 8] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(0.99) <= 8.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (zero if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample (zero if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Raw log2 bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Interpolated `q`-percentile (`0.0..=1.0`): linear within the
    /// containing bucket, clamped to the observed `[min, max]`, so a
    /// single-sample histogram returns that sample at every `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "percentile must be within [0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        // Edge quantiles are exact (mirrors `desim::Histogram::percentile`):
        // interpolation would report mid-bucket for q=0 whenever the first
        // occupied bucket holds more than one sample.
        if q <= 0.0 {
            return self.min() as f64;
        }
        if q >= 1.0 {
            return self.max as f64;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            if seen + b >= target {
                let lo = if i == 0 { 0u64 } else { 1u64 << i };
                let hi = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
                let frac = (target - seen) as f64 / b as f64;
                let v = lo as f64 + frac * (hi - lo) as f64;
                return v.clamp(self.min as f64, self.max as f64);
            }
            seen += b;
        }
        self.max as f64
    }

    /// The summary exported into snapshots.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            mean: self.mean(),
            min: self.min() as f64,
            max: self.max as f64,
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
        }
    }

    /// Folds another histogram's samples into this one (bucket-wise; min
    /// and max merge exactly, percentiles stay bucket-approximate).
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_collects_prefixed_and_labeled() {
        let mut reg = Registry::new();
        reg.register(
            "axe",
            &[("dataset", "ss")],
            Box::new(|s: &mut Scope| {
                s.gauge("cache_hit_rate", 0.25);
                s.counter("samples", 100);
            }),
        );
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.get("axe/cache_hit_rate").unwrap().as_f64(), 0.25);
        assert_eq!(
            snap.get_labeled("axe/samples", &[("dataset", "ss")])
                .unwrap(),
            &MetricValue::Counter(100)
        );
        assert!(snap
            .get_labeled("axe/samples", &[("dataset", "ll")])
            .is_none());
    }

    #[test]
    fn nested_scopes_extend_names() {
        let mut snap = Snapshot::new();
        let mut scope = Scope {
            snap: &mut snap,
            prefix: "service".to_string(),
            labels: vec![],
        };
        scope.nested("backend").counter("local_requests", 3);
        assert!(snap.get("service/backend/local_requests").is_some());
    }

    #[test]
    fn histogram_percentiles_interpolate_and_clamp() {
        let mut h = Log2Histogram::new();
        h.record(100);
        // Single sample: every percentile is that sample.
        assert_eq!(h.percentile(0.0), 100.0);
        assert_eq!(h.percentile(0.5), 100.0);
        assert_eq!(h.percentile(1.0), 100.0);
        // Empty: zero.
        assert_eq!(Log2Histogram::new().percentile(0.99), 0.0);
        // Cross-bucket: p99 lands in the top bucket, below max.
        let mut h = Log2Histogram::new();
        for _ in 0..99 {
            h.record(4);
        }
        h.record(1000);
        let p50 = h.percentile(0.5);
        let p99 = h.percentile(0.99);
        assert!((4.0..8.0).contains(&p50), "p50 {p50}");
        assert!(p50 <= p99 && p99 <= 1000.0);
    }

    #[test]
    fn histogram_merge_accumulates() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        a.record(2);
        b.record(64);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 2);
        assert_eq!(a.max(), 64);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let mut h = Log2Histogram::new();
        for v in [1u64, 5, 900, 17] {
            h.record(v);
        }
        let mut reg = Registry::new();
        let hist = h.clone();
        reg.register(
            "svc",
            &[("backend", "cpu"), ("shard", "0")],
            Box::new(move |s: &mut Scope| {
                s.counter("requests", 41);
                s.gauge("utilization", 0.125);
                s.histogram("latency_us", hist.snapshot());
            }),
        );
        let snap = reg.snapshot();
        let parsed = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn snapshot_extend_preserves_order() {
        let mut a = Snapshot::new();
        a.push(Metric {
            name: "first".into(),
            labels: vec![],
            value: MetricValue::Counter(1),
        });
        let mut b = Snapshot::new();
        b.push(Metric {
            name: "second".into(),
            labels: vec![],
            value: MetricValue::Counter(2),
        });
        a.extend(b);
        let names: Vec<&str> = a.metrics().iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["first", "second"]);
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(Snapshot::from_json("{}").is_err());
        assert!(Snapshot::from_json(r#"{"metrics":[{"name":"x"}]}"#).is_err());
        assert!(
            Snapshot::from_json(r#"{"metrics":[{"name":"x","labels":{},"type":"blob"}]}"#).is_err()
        );
    }

    #[test]
    #[should_panic(expected = "within")]
    fn bad_percentile_panics() {
        Log2Histogram::new().percentile(2.0);
    }
}
