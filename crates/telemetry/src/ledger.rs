//! Request-scoped causal observability: the [`RequestLedger`].
//!
//! Aggregate histograms (the [`crate::metrics`] layer) answer *how slow*;
//! the ledger answers *why*. Every served request gets a trace id at
//! submission, and each stage it passes through — enqueue, batch
//! admission, per-hop sampling, per-shard remote legs, the coalesced
//! gather, per-layer compute, and every retry/hedge/breaker event of the
//! degradation ladder — appends a [`LedgerEvent`] carrying a
//! **queue-wait vs service-time split**, so tail latency decomposes into
//! "waited for a batch" vs "the shard was slow".
//!
//! Recording is off the hot path by construction: threads buffer events
//! in a private [`LedgerHandle`] (one `Vec` push per event, no locks)
//! and merge into the shared store at explicit flush points — the same
//! idiom as the bench harness's `--jobs` telemetry merge. The shared
//! store is a bounded ring: when full, the *oldest* events evict first,
//! so the ledger is an always-on flight recorder rather than a
//! grows-forever log.
//!
//! On top of the raw events:
//!
//! * [`LedgerSnapshot::blame`] — the tail-attribution report: requests
//!   above a latency quantile (plus every degraded request) have their
//!   end-to-end latency decomposed into per-stage and per-shard blame,
//!   with injected faults tallied by layer ([`BlameReport`] is a
//!   [`MetricSource`] and renders to JSON).
//! * [`FlightDump`] — when a request finishes degraded or breaches its
//!   deadline, the last N of its events are dumped together with the
//!   active chaos seed and fault-plan digest, so the exact tail sample
//!   replays byte-identically from the seed.
//! * [`SloMonitor`] — a target-p99 objective with error-budget burn
//!   counters, evaluated inline by the serving layers.
//!
//! Determinism: [`LedgerSnapshot`] orders events canonically (trace,
//! timestamp, stage rank), so two runs that record the same event set —
//! regardless of thread interleaving or `--jobs` fan-out — produce
//! byte-identical snapshots and equal [`LedgerSnapshot::digest`]s.

use crate::json::Json;
use crate::metrics::{Log2Histogram, MetricSource, Scope};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Shard value for events with no shard/partition context.
pub const NO_SHARD: u32 = u32::MAX;

/// The pipeline stage (or degradation-ladder rung) an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Request accepted into the service queue (`detail` = root count).
    Enqueue,
    /// Pulled off the queue into a coalesced batch; `queue_us` is the
    /// submit→dispatch wait, `detail` the batch size.
    Admission,
    /// The admission controller rejected the request (`detail` = reject
    /// code: 1 = rate limit, 2 = class queue full).
    Reject,
    /// Brownout load shedding dropped the request before it queued
    /// (`detail` = priority-class index).
    Shed,
    /// The request was admitted under brownout with degraded fanout
    /// (`detail` = priority-class index).
    Brownout,
    /// Injected queue stall before dispatch (`queue_us` = stall time).
    Stall,
    /// One backend sampling call (`detail` = batch size or attempt).
    Sampling,
    /// One hop of frontier expansion (`detail` = hop index).
    SampleHop,
    /// A hot-set cache consult that served hits, short-circuiting remote
    /// legs (`detail` = nodes served from cache; `service_us` covers the
    /// consult-and-copy, the time that *replaces* the skipped legs).
    CacheHit,
    /// One remote neighbor fetch leg (`shard` = partition).
    RemoteLeg,
    /// A failed attempt in the retry ladder (`detail` = attempt,
    /// `queue_us` = backoff slept after it).
    Retry,
    /// A hedged re-dispatch.
    Hedge,
    /// An open circuit breaker short-circuited the request.
    BreakerTrip,
    /// The degraded fallback answered after the ladder ran out.
    Fallback,
    /// An injected fault was observed (`detail` = [`faults`] code).
    Fault,
    /// The coalesced attribute gather (`detail` = fused batch size).
    Gather,
    /// One remote attribute-fetch leg (`shard` = partition).
    GatherLeg,
    /// One GraphSAGE layer forward (`detail` = layer index).
    ComputeLayer,
    /// Sampling finished (`service_us` = submit→reply latency,
    /// `detail` bit 0 = degraded).
    SampleDone,
    /// The request finished end-to-end (`service_us` = total latency,
    /// `detail` bit 0 = degraded, bit 1 = deadline breach).
    Done,
}

impl Stage {
    /// Every stage, in causal-rank order.
    pub const ALL: [Stage; 20] = [
        Stage::Enqueue,
        Stage::Admission,
        Stage::Reject,
        Stage::Shed,
        Stage::Brownout,
        Stage::Stall,
        Stage::Sampling,
        Stage::SampleHop,
        Stage::CacheHit,
        Stage::RemoteLeg,
        Stage::Retry,
        Stage::Hedge,
        Stage::BreakerTrip,
        Stage::Fallback,
        Stage::Fault,
        Stage::Gather,
        Stage::GatherLeg,
        Stage::ComputeLayer,
        Stage::SampleDone,
        Stage::Done,
    ];

    /// Stable display name (the blame table's row key).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Enqueue => "enqueue",
            Stage::Admission => "admission",
            Stage::Reject => "reject",
            Stage::Shed => "shed",
            Stage::Brownout => "brownout",
            Stage::Stall => "stall",
            Stage::Sampling => "sampling",
            Stage::SampleHop => "sample_hop",
            Stage::CacheHit => "cache_hit",
            Stage::RemoteLeg => "remote_leg",
            Stage::Retry => "retry",
            Stage::Hedge => "hedge",
            Stage::BreakerTrip => "breaker_trip",
            Stage::Fallback => "fallback",
            Stage::Fault => "fault",
            Stage::Gather => "gather",
            Stage::GatherLeg => "gather_leg",
            Stage::ComputeLayer => "compute_layer",
            Stage::SampleDone => "sample_done",
            Stage::Done => "done",
        }
    }

    /// Position in the canonical pipeline order ([`Stage::ALL`]) — the
    /// tie-break the snapshot's deterministic event sort uses.
    pub fn rank(self) -> u8 {
        Stage::ALL.iter().position(|&s| s == self).unwrap_or(0) as u8
    }
}

/// Fault-layer codes carried in [`Stage::Fault`] events' `detail`, so
/// the blame report can name the injected fault layer.
pub mod faults {
    /// A dispatch attempt was dropped (the MoF-loss analogue).
    pub const REQUEST_LOSS: u64 = 1;
    /// A card/partition was down when the request needed it.
    pub const CARD_DOWN: u64 = 2;
    /// A straggling card delayed the attempt.
    pub const STRAGGLER: u64 = 3;
    /// The worker's queue was stalled before dispatch.
    pub const QUEUE_STALL: u64 = 4;
    /// The worker shard was scheduled to panic.
    pub const WORKER_PANIC: u64 = 5;

    /// Display name of a fault code.
    pub fn name(code: u64) -> &'static str {
        match code {
            REQUEST_LOSS => "request_loss",
            CARD_DOWN => "card_down",
            STRAGGLER => "straggler",
            QUEUE_STALL => "queue_stall",
            WORKER_PANIC => "worker_panic",
            _ => "unknown",
        }
    }
}

/// One causally-linked span event of a request's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerEvent {
    /// The request's trace id (assigned at submission, never 0).
    pub trace: u64,
    /// Timestamp in microseconds since the ledger's epoch.
    pub at_us: f64,
    /// Which stage of the pipeline this event describes.
    pub stage: Stage,
    /// Shard / partition / worker context, or [`NO_SHARD`].
    pub shard: u32,
    /// Time spent *waiting* (queue, backoff, stall) in microseconds.
    pub queue_us: f64,
    /// Time spent *being served* in microseconds.
    pub service_us: f64,
    /// Stage-specific payload (hop, layer, attempt, batch size, fault
    /// code, or the degraded/breach bits of a completion event).
    pub detail: u64,
}

impl LedgerEvent {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("trace".to_string(), Json::Num(self.trace as f64)),
            ("at_us".to_string(), Json::Num(self.at_us)),
            (
                "stage".to_string(),
                Json::Str(self.stage.name().to_string()),
            ),
            (
                "shard".to_string(),
                Json::Num(if self.shard == NO_SHARD {
                    -1.0
                } else {
                    self.shard as f64
                }),
            ),
            ("queue_us".to_string(), Json::Num(self.queue_us)),
            ("service_us".to_string(), Json::Num(self.service_us)),
            ("detail".to_string(), Json::Num(self.detail as f64)),
        ])
    }
}

/// Sizing and trigger policy of a [`RequestLedger`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerConfig {
    /// Bounded ring capacity of the shared event store; the oldest
    /// events evict first when full (flight-recorder semantics).
    pub capacity: usize,
    /// Last-N events captured into a [`FlightDump`].
    pub flight_tail: usize,
    /// Most dumps retained (later triggers only count).
    pub flight_capacity: usize,
    /// Per-request deadline in microseconds; a finish above it triggers
    /// a flight dump even when the reply was exact.
    pub deadline_us: f64,
}

impl Default for LedgerConfig {
    fn default() -> Self {
        LedgerConfig {
            capacity: 1 << 16,
            flight_tail: 32,
            flight_capacity: 16,
            deadline_us: f64::INFINITY,
        }
    }
}

/// Why a [`FlightDump`] was captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DumpReason {
    /// The request finished with a degraded (partial) answer.
    Degraded,
    /// The request's end-to-end latency exceeded the deadline.
    DeadlineBreach,
}

impl DumpReason {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            DumpReason::Degraded => "degraded",
            DumpReason::DeadlineBreach => "deadline_breach",
        }
    }
}

/// The last-N structured events of a request that finished degraded or
/// breached its deadline, correlated with the chaos seed that was
/// active — the tuple `(seed, request seed)` replays the tail sample
/// byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightDump {
    /// The finishing request's trace id.
    pub trace: u64,
    /// What triggered the dump.
    pub reason: DumpReason,
    /// End-to-end latency at finish, microseconds.
    pub total_us: f64,
    /// The reply was degraded.
    pub degraded: bool,
    /// The active [`FaultPlan`](https://docs.rs) seed, when chaos was on.
    pub chaos_seed: Option<u64>,
    /// The active fault plan's digest (replay identity check).
    pub plan_digest: Option<u64>,
    /// The request's last events still in the ring, oldest first.
    pub events: Vec<LedgerEvent>,
}

impl FlightDump {
    /// Renders the dump for the artifact.
    pub fn to_json(&self) -> Json {
        let opt = |v: Option<u64>| match v {
            Some(x) => Json::Str(format!("{x:#018x}")),
            None => Json::Bool(false),
        };
        Json::Obj(vec![
            ("trace".to_string(), Json::Num(self.trace as f64)),
            (
                "reason".to_string(),
                Json::Str(self.reason.name().to_string()),
            ),
            ("total_us".to_string(), Json::Num(self.total_us)),
            ("degraded".to_string(), Json::Bool(self.degraded)),
            ("chaos_seed".to_string(), opt(self.chaos_seed)),
            ("plan_digest".to_string(), opt(self.plan_digest)),
            (
                "events".to_string(),
                Json::Arr(self.events.iter().map(|e| e.to_json()).collect()),
            ),
        ])
    }
}

#[derive(Debug, Default)]
struct Store {
    events: VecDeque<LedgerEvent>,
    evicted: u64,
    dumps: Vec<FlightDump>,
    dumps_suppressed: u64,
    finished: u64,
    degraded_finishes: u64,
    deadline_breaches: u64,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    next_trace: AtomicU64,
    cfg: LedgerConfig,
    store: Mutex<Store>,
    /// `(chaos seed, plan digest)` for flight-dump correlation.
    chaos: Mutex<Option<(u64, u64)>>,
}

/// The shared, cloneable request ledger. Cheap to clone (an `Arc`);
/// every recording thread takes a private [`LedgerHandle`] and flushes
/// at stage boundaries.
#[derive(Debug, Clone)]
pub struct RequestLedger {
    inner: Arc<Inner>,
}

impl Default for RequestLedger {
    fn default() -> Self {
        RequestLedger::new(LedgerConfig::default())
    }
}

impl RequestLedger {
    /// Creates a ledger with the given sizing/trigger policy.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(cfg: LedgerConfig) -> Self {
        assert!(cfg.capacity > 0, "ledger capacity must be non-zero");
        RequestLedger {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                next_trace: AtomicU64::new(1),
                cfg,
                store: Mutex::new(Store::default()),
                chaos: Mutex::new(None),
            }),
        }
    }

    /// Assigns the next trace id (monotonic, never 0 — 0 means
    /// "untraced" throughout the serving stack).
    pub fn next_trace(&self) -> u64 {
        self.inner.next_trace.fetch_add(1, Ordering::Relaxed)
    }

    /// Microseconds since this ledger's epoch.
    pub fn now_us(&self) -> f64 {
        self.inner.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// The configured policy.
    pub fn config(&self) -> LedgerConfig {
        self.inner.cfg
    }

    /// Correlates subsequent flight dumps with an active fault plan:
    /// `seed` is the replay identity, `plan_digest` the integrity check.
    pub fn set_chaos(&self, seed: u64, plan_digest: u64) {
        *self.inner.chaos.lock().expect("chaos lock") = Some((seed, plan_digest));
    }

    /// The chaos correlation, if one was installed.
    pub fn chaos(&self) -> Option<(u64, u64)> {
        *self.inner.chaos.lock().expect("chaos lock")
    }

    /// A private per-thread event buffer; flush at stage boundaries.
    pub fn handle(&self) -> LedgerHandle {
        LedgerHandle {
            ledger: self.clone(),
            buf: Vec::new(),
        }
    }

    /// Events evicted from the bounded ring so far.
    pub fn evicted(&self) -> u64 {
        self.store().evicted
    }

    fn store(&self) -> std::sync::MutexGuard<'_, Store> {
        self.inner.store.lock().expect("ledger store lock")
    }

    fn absorb(&self, buf: &mut Vec<LedgerEvent>) {
        if buf.is_empty() {
            return;
        }
        let cap = self.inner.cfg.capacity;
        let mut s = self.store();
        for ev in buf.drain(..) {
            if s.events.len() >= cap {
                s.events.pop_front();
                s.evicted += 1;
            }
            s.events.push_back(ev);
        }
    }

    /// Registers a request's completion: counts it, and when the reply
    /// was degraded or the latency breached the configured deadline,
    /// captures a [`FlightDump`] of the trace's last events together
    /// with the active chaos correlation.
    ///
    /// The caller must flush the trace's events (a
    /// [`LedgerHandle::finish`] does both) before calling this.
    pub fn finish(&self, trace: u64, total_us: f64, degraded: bool) {
        let breach = total_us > self.inner.cfg.deadline_us;
        let chaos = self.chaos();
        let mut s = self.store();
        s.finished += 1;
        if degraded {
            s.degraded_finishes += 1;
        }
        if breach {
            s.deadline_breaches += 1;
        }
        if !(degraded || breach) {
            return;
        }
        if s.dumps.len() >= self.inner.cfg.flight_capacity {
            s.dumps_suppressed += 1;
            return;
        }
        let tail = self.inner.cfg.flight_tail;
        let mut events: Vec<LedgerEvent> = s
            .events
            .iter()
            .filter(|e| e.trace == trace)
            .copied()
            .collect();
        if events.len() > tail {
            events.drain(..events.len() - tail);
        }
        s.dumps.push(FlightDump {
            trace,
            reason: if degraded {
                DumpReason::Degraded
            } else {
                DumpReason::DeadlineBreach
            },
            total_us,
            degraded,
            chaos_seed: chaos.map(|(s, _)| s),
            plan_digest: chaos.map(|(_, d)| d),
            events,
        });
    }

    /// A canonically-ordered, self-contained copy of everything recorded
    /// so far. Ordering is (trace, timestamp, stage rank, shard, detail)
    /// — independent of which thread flushed first, so equal event sets
    /// snapshot byte-identically at any `--jobs` count.
    pub fn snapshot(&self) -> LedgerSnapshot {
        let chaos = self.chaos();
        let s = self.store();
        let mut events: Vec<LedgerEvent> = s.events.iter().copied().collect();
        drop_sorted(&mut events);
        LedgerSnapshot {
            events,
            dumps: s.dumps.clone(),
            evicted: s.evicted,
            finished: s.finished,
            degraded_finishes: s.degraded_finishes,
            deadline_breaches: s.deadline_breaches,
            dumps_suppressed: s.dumps_suppressed,
            chaos,
        }
    }
}

fn drop_sorted(events: &mut [LedgerEvent]) {
    events.sort_by(|a, b| {
        a.trace
            .cmp(&b.trace)
            .then(a.at_us.total_cmp(&b.at_us))
            .then(a.stage.rank().cmp(&b.stage.rank()))
            .then(a.shard.cmp(&b.shard))
            .then(a.detail.cmp(&b.detail))
            .then(a.queue_us.total_cmp(&b.queue_us))
            .then(a.service_us.total_cmp(&b.service_us))
    });
}

/// A thread-private event buffer over a [`RequestLedger`]. Recording is
/// one `Vec` push; the shared store is only touched on
/// [`LedgerHandle::flush`] (call it at batch/stage boundaries) or drop.
#[derive(Debug)]
pub struct LedgerHandle {
    ledger: RequestLedger,
    buf: Vec<LedgerEvent>,
}

impl LedgerHandle {
    /// Records an event stamped with the current ledger clock.
    pub fn record(
        &mut self,
        trace: u64,
        stage: Stage,
        shard: u32,
        queue_us: f64,
        service_us: f64,
        detail: u64,
    ) {
        let at_us = self.ledger.now_us();
        self.record_at(at_us, trace, stage, shard, queue_us, service_us, detail);
    }

    /// Records an event with an explicit timestamp (deterministic
    /// replay/merge tests use synthetic clocks).
    #[allow(clippy::too_many_arguments)]
    pub fn record_at(
        &mut self,
        at_us: f64,
        trace: u64,
        stage: Stage,
        shard: u32,
        queue_us: f64,
        service_us: f64,
        detail: u64,
    ) {
        self.buf.push(LedgerEvent {
            trace,
            at_us,
            stage,
            shard,
            queue_us,
            service_us,
            detail,
        });
    }

    /// Merges the buffered events into the shared ring.
    pub fn flush(&mut self) {
        let mut buf = std::mem::take(&mut self.buf);
        self.ledger.absorb(&mut buf);
        self.buf = buf;
    }

    /// Records the terminal [`Stage::Done`] event, flushes, and runs the
    /// ledger's finish triggers (flight dump on degraded/breach).
    pub fn finish(&mut self, trace: u64, total_us: f64, degraded: bool) {
        let breach = total_us > self.ledger.config().deadline_us;
        let detail = u64::from(degraded) | (u64::from(breach) << 1);
        self.record(trace, Stage::Done, NO_SHARD, 0.0, total_us, detail);
        self.flush();
        self.ledger.finish(trace, total_us, degraded);
    }

    /// The ledger this handle feeds.
    pub fn ledger(&self) -> &RequestLedger {
        &self.ledger
    }
}

impl Drop for LedgerHandle {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A canonically-ordered copy of a ledger's state.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerSnapshot {
    /// All retained events, in (trace, time, stage) order.
    pub events: Vec<LedgerEvent>,
    /// Captured flight dumps, oldest first.
    pub dumps: Vec<FlightDump>,
    /// Ring evictions (events lost to the bound).
    pub evicted: u64,
    /// Requests that ran their finish trigger.
    pub finished: u64,
    /// Finishes with a degraded reply.
    pub degraded_finishes: u64,
    /// Finishes over the configured deadline.
    pub deadline_breaches: u64,
    /// Dump triggers suppressed by the dump capacity.
    pub dumps_suppressed: u64,
    /// The chaos correlation active at snapshot time.
    pub chaos: Option<(u64, u64)>,
}

impl LedgerSnapshot {
    /// FNV-1a over the canonical event encoding: equal event sets —
    /// however they were interleaved or fanned out — digest equal.
    pub fn digest(&self) -> u64 {
        let mut bytes = Vec::with_capacity(self.events.len() * 41);
        for e in &self.events {
            bytes.extend_from_slice(&e.trace.to_le_bytes());
            bytes.push(e.stage.rank());
            bytes.extend_from_slice(&e.shard.to_le_bytes());
            bytes.extend_from_slice(&e.at_us.to_bits().to_le_bytes());
            bytes.extend_from_slice(&e.queue_us.to_bits().to_le_bytes());
            bytes.extend_from_slice(&e.service_us.to_bits().to_le_bytes());
            bytes.extend_from_slice(&e.detail.to_le_bytes());
        }
        fnv1a(&bytes)
    }

    /// The events of one trace, in causal order.
    pub fn events_for(&self, trace: u64) -> Vec<LedgerEvent> {
        self.events
            .iter()
            .filter(|e| e.trace == trace)
            .copied()
            .collect()
    }

    /// Builds the tail-attribution report: every request whose
    /// end-to-end latency is at or above the `quantile` of all finished
    /// requests — plus every degraded request — has its recorded stage
    /// time decomposed into per-stage / per-shard / per-fault blame.
    ///
    /// End-to-end totals come from [`Stage::Done`] events, falling back
    /// to [`Stage::SampleDone`] for sampling-only services.
    pub fn blame(&self, quantile: f64) -> BlameReport {
        let q = quantile.clamp(0.0, 1.0);
        let done: Vec<&LedgerEvent> = {
            let e2e: Vec<&LedgerEvent> = self
                .events
                .iter()
                .filter(|e| e.stage == Stage::Done)
                .collect();
            if e2e.is_empty() {
                self.events
                    .iter()
                    .filter(|e| e.stage == Stage::SampleDone)
                    .collect()
            } else {
                e2e
            }
        };
        let mut totals: Vec<f64> = done.iter().map(|e| e.service_us).collect();
        totals.sort_by(f64::total_cmp);
        let threshold_us = if totals.is_empty() {
            0.0
        } else {
            let idx = ((totals.len() as f64 * q).ceil() as usize)
                .saturating_sub(1)
                .min(totals.len() - 1);
            totals[idx]
        };
        let mut tail: Vec<u64> = Vec::new();
        let mut degraded_traces = 0u64;
        for e in &done {
            let degraded = e.detail & 1 != 0;
            if degraded {
                degraded_traces += 1;
            }
            if (e.service_us >= threshold_us || degraded) && !tail.contains(&e.trace) {
                tail.push(e.trace);
            }
        }
        let in_tail = |t: u64| tail.contains(&t);

        let mut stages: Vec<StageBlame> = Vec::new();
        let mut shards: Vec<ShardBlame> = Vec::new();
        let mut fault_counts: Vec<FaultBlame> = Vec::new();
        for e in &self.events {
            if !in_tail(e.trace) {
                continue;
            }
            if matches!(e.stage, Stage::Done | Stage::SampleDone) {
                continue;
            }
            match stages.iter_mut().find(|s| s.stage == e.stage) {
                Some(s) => {
                    s.queue_us += e.queue_us;
                    s.service_us += e.service_us;
                    s.events += 1;
                }
                None => stages.push(StageBlame {
                    stage: e.stage,
                    queue_us: e.queue_us,
                    service_us: e.service_us,
                    events: 1,
                    share: 0.0,
                }),
            }
            if e.shard != NO_SHARD {
                let us = e.queue_us + e.service_us;
                match shards.iter_mut().find(|s| s.shard == e.shard) {
                    Some(s) => {
                        s.blame_us += us;
                        s.events += 1;
                    }
                    None => shards.push(ShardBlame {
                        shard: e.shard,
                        blame_us: us,
                        events: 1,
                    }),
                }
            }
            if e.stage == Stage::Fault {
                match fault_counts.iter_mut().find(|f| f.code == e.detail) {
                    Some(f) => f.count += 1,
                    None => fault_counts.push(FaultBlame {
                        code: e.detail,
                        count: 1,
                    }),
                }
            }
        }
        let total_blame: f64 = stages.iter().map(|s| s.queue_us + s.service_us).sum();
        for s in &mut stages {
            s.share = if total_blame > 0.0 {
                (s.queue_us + s.service_us) / total_blame
            } else {
                0.0
            };
        }
        stages.sort_by(|a, b| {
            (b.queue_us + b.service_us)
                .total_cmp(&(a.queue_us + a.service_us))
                .then(a.stage.rank().cmp(&b.stage.rank()))
        });
        shards.sort_by(|a, b| {
            b.blame_us
                .total_cmp(&a.blame_us)
                .then(a.shard.cmp(&b.shard))
        });
        fault_counts.sort_by(|a, b| b.count.cmp(&a.count).then(a.code.cmp(&b.code)));

        BlameReport {
            quantile: q,
            threshold_us,
            traces: done.len() as u64,
            tail_traces: tail.len() as u64,
            degraded_traces,
            stages,
            shards,
            faults: fault_counts,
        }
    }
}

/// One stage's share of the tail's recorded time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageBlame {
    /// Which stage.
    pub stage: Stage,
    /// Queue-wait microseconds attributed to the tail.
    pub queue_us: f64,
    /// Service-time microseconds attributed to the tail.
    pub service_us: f64,
    /// Events aggregated.
    pub events: u64,
    /// Fraction of all attributed time this stage carries.
    pub share: f64,
}

/// One shard's share of the tail's recorded time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardBlame {
    /// Which shard/partition.
    pub shard: u32,
    /// Microseconds (queue + service) attributed to it.
    pub blame_us: f64,
    /// Events aggregated.
    pub events: u64,
}

/// Tally of one injected-fault layer across the tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultBlame {
    /// The [`faults`] code.
    pub code: u64,
    /// Fault events observed in tail traces.
    pub count: u64,
}

/// The tail-attribution report: per-stage / per-shard / per-fault
/// decomposition of the latency tail (plus all degraded requests).
#[derive(Debug, Clone, PartialEq)]
pub struct BlameReport {
    /// The quantile the tail was cut at.
    pub quantile: f64,
    /// Latency threshold (µs) of the cut.
    pub threshold_us: f64,
    /// Finished requests considered.
    pub traces: u64,
    /// Requests in the tail (above threshold, or degraded).
    pub tail_traces: u64,
    /// Degraded requests among them.
    pub degraded_traces: u64,
    /// Per-stage blame, most-blamed first.
    pub stages: Vec<StageBlame>,
    /// Per-shard blame, most-blamed first.
    pub shards: Vec<ShardBlame>,
    /// Injected-fault tallies, most frequent first.
    pub faults: Vec<FaultBlame>,
}

impl BlameReport {
    /// The most-blamed stage's name, if any time was attributed.
    pub fn top_stage(&self) -> Option<&'static str> {
        self.stages.first().map(|s| s.stage.name())
    }

    /// The most-blamed shard, if any sharded time was attributed.
    pub fn top_shard(&self) -> Option<u32> {
        self.shards.first().map(|s| s.shard)
    }

    /// The most frequent injected-fault layer across the tail, if any
    /// fault events were recorded — the "who did it" answer for an
    /// injected fault.
    pub fn top_fault(&self) -> Option<&'static str> {
        self.faults.first().map(|f| faults::name(f.code))
    }

    /// Renders the report for the artifact.
    pub fn to_json(&self) -> Json {
        let opt_str = |v: Option<&'static str>| match v {
            Some(s) => Json::Str(s.to_string()),
            None => Json::Bool(false),
        };
        Json::Obj(vec![
            ("quantile".to_string(), Json::Num(self.quantile)),
            ("threshold_us".to_string(), Json::Num(self.threshold_us)),
            ("traces".to_string(), Json::Num(self.traces as f64)),
            (
                "tail_traces".to_string(),
                Json::Num(self.tail_traces as f64),
            ),
            (
                "degraded_traces".to_string(),
                Json::Num(self.degraded_traces as f64),
            ),
            ("top_stage".to_string(), opt_str(self.top_stage())),
            ("top_fault".to_string(), opt_str(self.top_fault())),
            (
                "top_shard".to_string(),
                match self.top_shard() {
                    Some(s) => Json::Num(s as f64),
                    None => Json::Bool(false),
                },
            ),
            (
                "stages".to_string(),
                Json::Arr(
                    self.stages
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("stage".to_string(), Json::Str(s.stage.name().to_string())),
                                ("queue_us".to_string(), Json::Num(s.queue_us)),
                                ("service_us".to_string(), Json::Num(s.service_us)),
                                ("events".to_string(), Json::Num(s.events as f64)),
                                ("share".to_string(), Json::Num(s.share)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "shards".to_string(),
                Json::Arr(
                    self.shards
                        .iter()
                        .map(|s| {
                            Json::Obj(vec![
                                ("shard".to_string(), Json::Num(s.shard as f64)),
                                ("blame_us".to_string(), Json::Num(s.blame_us)),
                                ("events".to_string(), Json::Num(s.events as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "faults".to_string(),
                Json::Arr(
                    self.faults
                        .iter()
                        .map(|f| {
                            Json::Obj(vec![
                                (
                                    "fault".to_string(),
                                    Json::Str(faults::name(f.code).to_string()),
                                ),
                                ("count".to_string(), Json::Num(f.count as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl MetricSource for BlameReport {
    fn collect(&self, out: &mut Scope<'_>) {
        out.counter("traces", self.traces);
        out.counter("tail_traces", self.tail_traces);
        out.counter("degraded_traces", self.degraded_traces);
        out.gauge("threshold_us", self.threshold_us);
        for s in &self.stages {
            let mut nested = out.nested(s.stage.name());
            nested.gauge("queue_us", s.queue_us);
            nested.gauge("service_us", s.service_us);
            nested.gauge("share", s.share);
            nested.counter("events", s.events);
        }
        for f in &self.faults {
            let mut nested = out.nested("fault");
            nested.counter(faults::name(f.code), f.count);
        }
    }
}

/// A target-p99 service-level objective with error-budget burn
/// accounting, evaluated inline by the serving layers.
///
/// The budget is the allowed fraction of requests over target (a p99
/// target allows 1%). `burn_rate` > 1 means the objective is being
/// missed: violations are arriving faster than the budget admits.
#[derive(Debug, Clone)]
pub struct SloMonitor {
    target_p99_us: f64,
    budget: f64,
    total: u64,
    violations: u64,
    degraded: u64,
    latency: Log2Histogram,
}

impl SloMonitor {
    /// An SLO of `target_p99_us` with `budget` allowed violation
    /// fraction (pass `0.01` for a p99 objective).
    ///
    /// # Panics
    ///
    /// Panics if `budget` is not in `(0, 1]`.
    pub fn new(target_p99_us: f64, budget: f64) -> Self {
        assert!(budget > 0.0 && budget <= 1.0, "budget must be in (0, 1]");
        SloMonitor {
            target_p99_us,
            budget,
            total: 0,
            violations: 0,
            degraded: 0,
            latency: Log2Histogram::default(),
        }
    }

    /// Accounts one finished request.
    pub fn observe(&mut self, latency_us: f64, degraded: bool) {
        self.total += 1;
        if latency_us > self.target_p99_us {
            self.violations += 1;
        }
        if degraded {
            self.degraded += 1;
        }
        self.latency.record(latency_us.max(0.0) as u64);
    }

    /// The latency objective, microseconds.
    pub fn target_p99_us(&self) -> f64 {
        self.target_p99_us
    }

    /// Requests observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Requests over target.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Fraction of requests over target.
    pub fn violation_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.violations as f64 / self.total as f64
        }
    }

    /// Violation rate over allowed rate: > 1 burns budget faster than
    /// the objective admits.
    pub fn burn_rate(&self) -> f64 {
        self.violation_rate() / self.budget
    }

    /// Whether the cumulative budget is spent.
    pub fn budget_exhausted(&self) -> bool {
        self.burn_rate() > 1.0
    }

    /// Achieved p99 so far (log2-interpolated), microseconds.
    pub fn achieved_p99_us(&self) -> f64 {
        self.latency.percentile(0.99)
    }
}

impl MetricSource for SloMonitor {
    fn collect(&self, out: &mut Scope<'_>) {
        out.gauge("target_p99_us", self.target_p99_us);
        out.counter("total", self.total);
        out.counter("violations", self.violations);
        out.counter("degraded", self.degraded);
        out.gauge("violation_rate", self.violation_rate());
        out.gauge("burn_rate", self.burn_rate());
        out.gauge("achieved_p99_us", self.achieved_p99_us());
        out.gauge(
            "budget_exhausted",
            if self.budget_exhausted() { 1.0 } else { 0.0 },
        );
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Thread-local recording scope: deep layers (cluster data plane, chaos
// wrappers) record against whatever request(s) the serving layer
// installed, without threading a handle through every signature.
// ---------------------------------------------------------------------

struct ScopeState {
    handle: LedgerHandle,
    traces: Vec<u64>,
}

thread_local! {
    static SCOPE: RefCell<Option<ScopeState>> = const { RefCell::new(None) };
}

/// Guard of an active recording scope (see [`enter_scope`]); restores
/// the previous scope and flushes on drop.
pub struct ActiveScope {
    prev: Option<ScopeState>,
}

/// Installs a recording scope on this thread: until the guard drops,
/// [`scope_record`] appends events for every trace in `traces` (a
/// coalesced batch attributes shared work to each request in it).
pub fn enter_scope(ledger: &RequestLedger, traces: Vec<u64>) -> ActiveScope {
    let prev = SCOPE.with(|s| {
        s.borrow_mut().replace(ScopeState {
            handle: ledger.handle(),
            traces,
        })
    });
    ActiveScope { prev }
}

impl Drop for ActiveScope {
    fn drop(&mut self) {
        SCOPE.with(|s| {
            let mut slot = s.borrow_mut();
            // The departing scope's handle flushes on drop here.
            *slot = self.prev.take();
        });
    }
}

/// Whether a recording scope is installed on this thread. Deep layers
/// gate their `Instant::now()` calls on this, so the disabled path pays
/// one thread-local read and nothing else.
pub fn scope_active() -> bool {
    SCOPE.with(|s| s.borrow().is_some())
}

/// Records one event for every trace of the active scope; a no-op
/// without a scope.
pub fn scope_record(stage: Stage, shard: u32, queue_us: f64, service_us: f64, detail: u64) {
    SCOPE.with(|s| {
        if let Some(state) = s.borrow_mut().as_mut() {
            let at_us = state.handle.ledger().now_us();
            for i in 0..state.traces.len() {
                let trace = state.traces[i];
                state
                    .handle
                    .record_at(at_us, trace, stage, shard, queue_us, service_us, detail);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace: u64, at: f64, stage: Stage) -> (u64, f64, Stage) {
        (trace, at, stage)
    }

    #[test]
    fn trace_ids_are_monotonic_and_nonzero() {
        let ledger = RequestLedger::default();
        let a = ledger.next_trace();
        let b = ledger.next_trace();
        assert!(a >= 1);
        assert_eq!(b, a + 1);
    }

    #[test]
    fn snapshot_order_is_canonical_across_flush_interleavings() {
        let make = |order_swapped: bool| {
            let ledger = RequestLedger::default();
            let mut h1 = ledger.handle();
            let mut h2 = ledger.handle();
            for (t, at, st) in [
                ev(1, 10.0, Stage::Enqueue),
                ev(1, 20.0, Stage::Admission),
                ev(2, 15.0, Stage::Enqueue),
            ] {
                h1.record_at(at, t, st, NO_SHARD, 0.0, 0.0, 0);
            }
            for (t, at, st) in [ev(2, 25.0, Stage::Admission), ev(1, 30.0, Stage::Done)] {
                h2.record_at(at, t, st, NO_SHARD, 0.0, 0.0, 0);
            }
            if order_swapped {
                h2.flush();
                h1.flush();
            } else {
                h1.flush();
                h2.flush();
            }
            ledger.snapshot()
        };
        let a = make(false);
        let b = make(true);
        assert_eq!(a.events, b.events, "flush order must not matter");
        assert_eq!(a.digest(), b.digest());
        // Canonical order: trace-major, time-minor.
        let traces: Vec<u64> = a.events.iter().map(|e| e.trace).collect();
        assert_eq!(traces, vec![1, 1, 1, 2, 2]);
    }

    #[test]
    fn ring_evicts_oldest_first_and_counts() {
        let ledger = RequestLedger::new(LedgerConfig {
            capacity: 3,
            ..LedgerConfig::default()
        });
        let mut h = ledger.handle();
        for i in 0..5u64 {
            h.record_at(i as f64, i + 1, Stage::Enqueue, NO_SHARD, 0.0, 0.0, i);
        }
        h.flush();
        let snap = ledger.snapshot();
        assert_eq!(snap.events.len(), 3, "count never exceeds the cap");
        assert_eq!(snap.evicted, 2);
        let survivors: Vec<u64> = snap.events.iter().map(|e| e.trace).collect();
        assert_eq!(survivors, vec![3, 4, 5], "oldest events dropped first");
    }

    #[test]
    fn degraded_finish_captures_flight_dump_with_chaos_seed() {
        let ledger = RequestLedger::new(LedgerConfig {
            flight_tail: 2,
            ..LedgerConfig::default()
        });
        ledger.set_chaos(42, 0xdead_beef);
        let mut h = ledger.handle();
        for at in [1.0, 2.0, 3.0] {
            h.record_at(at, 7, Stage::SampleHop, 1, 0.0, 5.0, 0);
        }
        h.finish(7, 900.0, true);
        let snap = ledger.snapshot();
        assert_eq!(snap.degraded_finishes, 1);
        assert_eq!(snap.dumps.len(), 1);
        let dump = &snap.dumps[0];
        assert_eq!(dump.trace, 7);
        assert_eq!(dump.reason, DumpReason::Degraded);
        assert_eq!(dump.chaos_seed, Some(42));
        assert_eq!(dump.plan_digest, Some(0xdead_beef));
        // Last N only, oldest first, plus nothing from other traces.
        assert_eq!(dump.events.len(), 2);
        assert_eq!(dump.events[0].at_us, 3.0);
        assert_eq!(dump.events[1].stage, Stage::Done);
        let rendered = dump.to_json().render();
        assert!(rendered.contains("\"chaos_seed\""));
    }

    #[test]
    fn deadline_breach_triggers_dump_without_degradation() {
        let ledger = RequestLedger::new(LedgerConfig {
            deadline_us: 100.0,
            ..LedgerConfig::default()
        });
        let mut h = ledger.handle();
        h.finish(1, 50.0, false); // under deadline: no dump
        h.finish(2, 500.0, false); // breach
        let snap = ledger.snapshot();
        assert_eq!(snap.finished, 2);
        assert_eq!(snap.deadline_breaches, 1);
        assert_eq!(snap.dumps.len(), 1);
        assert_eq!(snap.dumps[0].reason, DumpReason::DeadlineBreach);
        assert_eq!(snap.dumps[0].chaos_seed, None);
    }

    #[test]
    fn dump_capacity_suppresses_not_grows() {
        let ledger = RequestLedger::new(LedgerConfig {
            flight_capacity: 1,
            ..LedgerConfig::default()
        });
        let mut h = ledger.handle();
        h.finish(1, 10.0, true);
        h.finish(2, 10.0, true);
        let snap = ledger.snapshot();
        assert_eq!(snap.dumps.len(), 1);
        assert_eq!(snap.dumps_suppressed, 1);
        assert_eq!(snap.degraded_finishes, 2, "counting is never suppressed");
    }

    #[test]
    fn blame_report_attributes_the_dominant_stage_and_fault() {
        let ledger = RequestLedger::default();
        let mut h = ledger.handle();
        // Trace 1: fast and clean. Trace 2: slow, retry-dominated, with
        // an injected request-loss fault.
        h.record_at(1.0, 1, Stage::Admission, 0, 5.0, 0.0, 1);
        h.record_at(2.0, 1, Stage::Sampling, 0, 0.0, 10.0, 1);
        h.record_at(3.0, 1, Stage::Done, NO_SHARD, 0.0, 20.0, 0);
        h.record_at(1.0, 2, Stage::Admission, 0, 5.0, 0.0, 1);
        h.record_at(
            2.0,
            2,
            Stage::Fault,
            NO_SHARD,
            0.0,
            0.0,
            faults::REQUEST_LOSS,
        );
        h.record_at(3.0, 2, Stage::Retry, NO_SHARD, 400.0, 100.0, 1);
        h.record_at(4.0, 2, Stage::Sampling, 1, 0.0, 30.0, 1);
        h.record_at(5.0, 2, Stage::Done, NO_SHARD, 0.0, 600.0, 0);
        h.flush();
        let report = ledger.snapshot().blame(0.9);
        assert_eq!(report.traces, 2);
        assert_eq!(report.tail_traces, 1, "only the slow trace is tail");
        assert_eq!(report.top_stage(), Some("retry"));
        assert_eq!(report.top_fault(), Some("request_loss"));
        assert_eq!(report.top_shard(), Some(1));
        let total_share: f64 = report.stages.iter().map(|s| s.share).sum();
        assert!((total_share - 1.0).abs() < 1e-9);
        let rendered = report.to_json().render();
        assert!(rendered.contains("\"top_fault\":\"request_loss\""));
    }

    #[test]
    fn blame_includes_degraded_requests_below_the_threshold() {
        let ledger = RequestLedger::default();
        let mut h = ledger.handle();
        // The degraded request is the *fastest* — blame must still see it.
        h.record_at(1.0, 1, Stage::Fault, 1, 0.0, 0.0, faults::CARD_DOWN);
        h.record_at(2.0, 1, Stage::Fallback, NO_SHARD, 0.0, 5.0, 0);
        h.record_at(3.0, 1, Stage::Done, NO_SHARD, 0.0, 10.0, 1);
        for t in 2..=4u64 {
            h.record_at(1.0, t, Stage::Sampling, 0, 0.0, 50.0, 1);
            h.record_at(2.0, t, Stage::Done, NO_SHARD, 0.0, 100.0 + t as f64, 0);
        }
        h.flush();
        let report = ledger.snapshot().blame(0.99);
        assert_eq!(report.degraded_traces, 1);
        assert!(report.tail_traces >= 2, "tail = top quantile + degraded");
        assert_eq!(report.top_fault(), Some("card_down"));
    }

    #[test]
    fn blame_falls_back_to_sample_done_without_e2e_events() {
        let ledger = RequestLedger::default();
        let mut h = ledger.handle();
        h.record_at(1.0, 1, Stage::Sampling, 0, 0.0, 9.0, 1);
        h.record_at(2.0, 1, Stage::SampleDone, NO_SHARD, 0.0, 9.0, 0);
        h.flush();
        let report = ledger.snapshot().blame(0.5);
        assert_eq!(report.traces, 1);
        assert_eq!(report.top_stage(), Some("sampling"));
    }

    #[test]
    fn scope_records_replicate_to_every_batched_trace() {
        let ledger = RequestLedger::default();
        assert!(!scope_active());
        {
            let _scope = enter_scope(&ledger, vec![3, 4]);
            assert!(scope_active());
            scope_record(Stage::SampleHop, NO_SHARD, 0.0, 7.0, 0);
            scope_record(Stage::RemoteLeg, 1, 0.0, 3.0, 0);
        }
        assert!(!scope_active());
        scope_record(Stage::SampleHop, NO_SHARD, 0.0, 99.0, 0); // no-op
        let snap = ledger.snapshot();
        assert_eq!(snap.events.len(), 4, "2 events x 2 traces, no strays");
        assert_eq!(snap.events_for(3).len(), 2);
        assert_eq!(snap.events_for(4).len(), 2);
    }

    #[test]
    fn nested_scopes_restore_the_outer_scope() {
        let ledger = RequestLedger::default();
        let _outer = enter_scope(&ledger, vec![1]);
        {
            let _inner = enter_scope(&ledger, vec![2]);
            scope_record(Stage::Sampling, NO_SHARD, 0.0, 1.0, 0);
        }
        scope_record(Stage::Sampling, NO_SHARD, 0.0, 2.0, 0);
        drop(_outer);
        let snap = ledger.snapshot();
        assert_eq!(snap.events_for(2).len(), 1);
        assert_eq!(snap.events_for(1).len(), 1);
        assert_eq!(snap.events_for(1)[0].service_us, 2.0);
    }

    #[test]
    fn concurrent_handles_merge_to_one_canonical_snapshot() {
        let ledger = RequestLedger::default();
        std::thread::scope(|s| {
            for w in 0..4u64 {
                let ledger = ledger.clone();
                s.spawn(move || {
                    let mut h = ledger.handle();
                    for i in 0..16u64 {
                        let trace = w * 16 + i + 1;
                        h.record_at(i as f64, trace, Stage::Sampling, w as u32, 1.0, 2.0, i);
                    }
                });
            }
        });
        let snap = ledger.snapshot();
        assert_eq!(snap.events.len(), 64);
        // A second identical population digests identically.
        let ledger2 = RequestLedger::default();
        let mut h = ledger2.handle();
        for w in (0..4u64).rev() {
            for i in 0..16u64 {
                h.record_at(
                    i as f64,
                    w * 16 + i + 1,
                    Stage::Sampling,
                    w as u32,
                    1.0,
                    2.0,
                    i,
                );
            }
        }
        h.flush();
        assert_eq!(snap.digest(), ledger2.snapshot().digest());
    }

    #[test]
    fn slo_monitor_burns_budget_on_violations() {
        let mut slo = SloMonitor::new(100.0, 0.01);
        for _ in 0..98 {
            slo.observe(50.0, false);
        }
        assert_eq!(slo.violations(), 0);
        assert!(!slo.budget_exhausted());
        slo.observe(150.0, false);
        slo.observe(200.0, true);
        assert_eq!(slo.total(), 100);
        assert_eq!(slo.violations(), 2);
        assert!((slo.violation_rate() - 0.02).abs() < 1e-12);
        assert!((slo.burn_rate() - 2.0).abs() < 1e-9);
        assert!(slo.budget_exhausted());
        assert!(slo.achieved_p99_us() > 0.0);
        let mut reg = crate::Registry::new();
        reg.register("slo", &[], Box::new(slo));
        let snap = reg.snapshot();
        assert_eq!(snap.get("slo/violations").unwrap().as_f64(), 2.0);
        assert!(snap.get("slo/burn_rate").unwrap().as_f64() > 1.0);
    }

    #[test]
    fn handle_finish_records_done_and_flushes() {
        let ledger = RequestLedger::new(LedgerConfig {
            deadline_us: 100.0,
            ..LedgerConfig::default()
        });
        let mut h = ledger.handle();
        h.finish(5, 250.0, false);
        let snap = ledger.snapshot();
        let done = snap.events_for(5);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].stage, Stage::Done);
        assert_eq!(done[0].service_us, 250.0);
        assert_eq!(done[0].detail, 0b10, "breach bit set, degraded bit clear");
    }
}
