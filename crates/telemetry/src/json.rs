//! A small, dependency-free JSON value: enough to write and re-read the
//! telemetry artifacts (metric snapshots, Chrome trace files).
//!
//! The workspace's `serde` is an offline no-op shim, so telemetry carries
//! its own encoder *and* parser — the parser is what makes snapshot
//! round-trip tests and CI smoke checks possible without crates.io.
//!
//! # Example
//!
//! ```
//! use lsdgnn_telemetry::Json;
//! let doc = Json::parse(r#"{"a": [1, 2.5, "x"], "b": true}"#).unwrap();
//! assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 3);
//! assert_eq!(doc.get("b").unwrap(), &Json::Bool(true));
//! assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
//! ```

/// A JSON value. Numbers are `f64` (integers round-trip exactly up to
/// 2^53, far beyond any counter this workspace produces in one run).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset and a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What was wrong.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The number as an unsigned integer, if whole and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields, if this is one.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => render_num(*v, out),
            Json::Str(s) => render_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the failing byte offset on malformed
    /// input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError {
                offset: pos,
                message: "trailing characters after value",
            });
        }
        Ok(value)
    }
}

/// JSON has no NaN/Infinity; they serialize as `null`. Whole numbers
/// print without a fraction, others use Rust's shortest round-trip form.
fn render_num(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v:?}"));
    }
}

fn render_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(
    b: &[u8],
    pos: &mut usize,
    lit: &'static str,
    msg: &'static str,
) -> Result<(), JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(JsonError {
            offset: *pos,
            message: msg,
        })
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err(JsonError {
            offset: *pos,
            message: "unexpected end of input",
        });
    };
    match c {
        b'n' => expect(b, pos, "null", "expected null").map(|()| Json::Null),
        b't' => expect(b, pos, "true", "expected true").map(|()| Json::Bool(true)),
        b'f' => expect(b, pos, "false", "expected false").map(|()| Json::Bool(false)),
        b'"' => parse_string(b, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => {
                        return Err(JsonError {
                            offset: *pos,
                            message: "expected ',' or ']' in array",
                        })
                    }
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(JsonError {
                        offset: *pos,
                        message: "expected ':' after object key",
                    });
                }
                *pos += 1;
                fields.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => {
                        return Err(JsonError {
                            offset: *pos,
                            message: "expected ',' or '}' in object",
                        })
                    }
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        _ => Err(JsonError {
            offset: *pos,
            message: "unexpected character",
        }),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if b.get(*pos) != Some(&b'"') {
        return Err(JsonError {
            offset: *pos,
            message: "expected string",
        });
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err(JsonError {
                offset: *pos,
                message: "unterminated string",
            });
        };
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = b.get(*pos) else {
                    return Err(JsonError {
                        offset: *pos,
                        message: "unterminated escape",
                    });
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b.get(*pos..*pos + 4).ok_or(JsonError {
                            offset: *pos,
                            message: "truncated \\u escape",
                        })?;
                        let hex = std::str::from_utf8(hex).map_err(|_| JsonError {
                            offset: *pos,
                            message: "non-ascii \\u escape",
                        })?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| JsonError {
                            offset: *pos,
                            message: "bad \\u escape",
                        })?;
                        *pos += 4;
                        // Surrogates (from external tools) degrade to the
                        // replacement character rather than failing.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => {
                        return Err(JsonError {
                            offset: *pos,
                            message: "unknown escape",
                        })
                    }
                }
            }
            _ => {
                // Copy the full UTF-8 sequence starting here.
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                let s = std::str::from_utf8(&b[start..*pos]).map_err(|_| JsonError {
                    offset: start,
                    message: "invalid utf-8 in string",
                })?;
                out.push_str(s);
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii digits");
    text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
        offset: start,
        message: "malformed number",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-17", "2.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "case {text}");
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1e-9, 123456.789, f64::MAX, -0.25] {
            let v = Json::Num(x);
            assert_eq!(Json::parse(&v.render()).unwrap().as_f64().unwrap(), x);
        }
    }

    #[test]
    fn non_finite_degrades_to_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2,{"b":"x","c":[]}],"d":{"e":null},"f":-2.5e3}"#;
        let v = Json::parse(text).unwrap();
        // Exponent notation normalizes to a plain integer on re-render.
        let normalized = r#"{"a":[1,2,{"b":"x","c":[]}],"d":{"e":null},"f":-2500}"#;
        assert_eq!(v.render(), normalized);
        assert_eq!(Json::parse(normalized).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}π".to_string());
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn errors_carry_offsets() {
        let err = Json::parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("[] extra").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
