//! Structured event tracing with a Chrome trace-event JSON writer.
//!
//! A [`Tracer`] is a cheap, cloneable handle over a shared bounded event
//! buffer. Components record *spans* (`ph: "X"` complete events),
//! *instants* (`ph: "i"`) and *counter series* (`ph: "C"`); the buffer
//! exports the Chrome trace-event format that `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) load directly.
//!
//! Timelines: each subsystem records under its own process id (see
//! [`pids`]), so simulated-time components (desim ticks, 1 tick = 1 ps,
//! converted with [`ticks_to_us`]) and wall-clock components (the
//! `SamplingService`, via [`Tracer::wall_us`]) each get a coherent
//! per-process timeline in the viewer.
//!
//! # Example
//!
//! ```
//! use lsdgnn_telemetry::{pids, ticks_to_us, Tracer};
//! let tracer = Tracer::new();
//! tracer.name_process(pids::AXE, "axe-engine");
//! tracer.span("axe", "get_neighbor", pids::AXE, 0, ticks_to_us(2_000_000), 1.5);
//! let json = tracer.to_chrome_json();
//! assert!(json.contains("\"ph\":\"X\""));
//! ```

use crate::json::Json;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Process-id conventions: one Chrome-trace "process" per subsystem so
/// each gets its own track group in Perfetto.
pub mod pids {
    /// The discrete-event simulation kernel (calendar depth counters).
    pub const DESIM: u32 = 1;
    /// The Access Engine (per-core pipeline stages).
    pub const AXE: u32 = 2;
    /// Memory-over-Fabric (remote reads, package lifecycles).
    pub const MOF: u32 = 3;
    /// The sampling service (wall-clock submit/batch/dispatch).
    pub const SERVICE: u32 = 4;
}

/// Converts desim ticks (1 tick = 1 ps by workspace convention) to the
/// microseconds Chrome traces use.
pub fn ticks_to_us(ticks: u64) -> f64 {
    ticks as f64 / 1e6
}

/// One Chrome trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Phase: `X` complete, `i` instant, `C` counter, `M` metadata.
    pub ph: char,
    /// Event name (or counter name).
    pub name: String,
    /// Category, e.g. `axe`, `mof`, `service`, `desim`.
    pub cat: String,
    /// Timestamp in microseconds.
    pub ts_us: f64,
    /// Duration in microseconds (complete events only).
    pub dur_us: f64,
    /// Process id (subsystem; see [`pids`]).
    pub pid: u32,
    /// Thread id (core / shard / link index).
    pub tid: u32,
    /// Numeric arguments (counter series, span annotations).
    pub args: Vec<(String, f64)>,
    /// String arguments (metadata names).
    pub str_args: Vec<(String, String)>,
}

#[derive(Debug)]
struct Buf {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

/// A cloneable handle to a shared trace buffer.
///
/// The buffer is a bounded ring: beyond `capacity` events the *oldest*
/// records evict first (counted in [`Tracer::dropped`]) instead of
/// growing memory without limit — the trace of a large run keeps its
/// most recent window, which is the part a tail investigation needs.
#[derive(Debug, Clone)]
pub struct Tracer {
    buf: Arc<Mutex<Buf>>,
    t0: Instant,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// Default event capacity (~1M events ≈ a few hundred MB of JSON at
    /// most; Perfetto handles it comfortably).
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Creates a tracer with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a tracer holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "tracer capacity must be non-zero");
        Tracer {
            buf: Arc::new(Mutex::new(Buf {
                events: VecDeque::new(),
                capacity,
                dropped: 0,
            })),
            t0: Instant::now(),
        }
    }

    fn push(&self, ev: TraceEvent) {
        let mut buf = self.buf.lock().expect("trace buffer lock");
        if buf.events.len() >= buf.capacity {
            buf.events.pop_front();
            buf.dropped += 1;
        }
        buf.events.push_back(ev);
    }

    /// Microseconds of wall clock since this tracer was created.
    pub fn wall_us(&self) -> f64 {
        self.t0.elapsed().as_secs_f64() * 1e6
    }

    /// Microseconds from tracer creation to `at` (0 if `at` precedes
    /// creation).
    pub fn us_of(&self, at: Instant) -> f64 {
        at.saturating_duration_since(self.t0).as_secs_f64() * 1e6
    }

    /// Records a complete event (`ph: "X"`) spanning
    /// `[ts_us, ts_us + dur_us]`.
    pub fn span(&self, cat: &str, name: &str, pid: u32, tid: u32, ts_us: f64, dur_us: f64) {
        self.span_args(cat, name, pid, tid, ts_us, dur_us, &[]);
    }

    /// Records a complete event with numeric arguments.
    #[allow(clippy::too_many_arguments)]
    pub fn span_args(
        &self,
        cat: &str,
        name: &str,
        pid: u32,
        tid: u32,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, f64)],
    ) {
        self.push(TraceEvent {
            ph: 'X',
            name: name.to_string(),
            cat: cat.to_string(),
            ts_us,
            dur_us: dur_us.max(0.0),
            pid,
            tid,
            args: args.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            str_args: Vec::new(),
        });
    }

    /// Records an instant event (`ph: "i"`).
    pub fn instant(&self, cat: &str, name: &str, pid: u32, tid: u32, ts_us: f64) {
        self.push(TraceEvent {
            ph: 'i',
            name: name.to_string(),
            cat: cat.to_string(),
            ts_us,
            dur_us: 0.0,
            pid,
            tid,
            args: Vec::new(),
            str_args: Vec::new(),
        });
    }

    /// Records a counter sample (`ph: "C"`): each `(series, value)` pair
    /// becomes one line on the counter track.
    pub fn counter(&self, name: &str, pid: u32, ts_us: f64, series: &[(&str, f64)]) {
        self.push(TraceEvent {
            ph: 'C',
            name: name.to_string(),
            cat: String::new(),
            ts_us,
            dur_us: 0.0,
            pid,
            tid: 0,
            args: series.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            str_args: Vec::new(),
        });
    }

    /// Names a process track (`ph: "M"`, `process_name`).
    pub fn name_process(&self, pid: u32, name: &str) {
        self.push(TraceEvent {
            ph: 'M',
            name: "process_name".to_string(),
            cat: String::new(),
            ts_us: 0.0,
            dur_us: 0.0,
            pid,
            tid: 0,
            args: Vec::new(),
            str_args: vec![("name".to_string(), name.to_string())],
        });
    }

    /// Names a thread track (`ph: "M"`, `thread_name`).
    pub fn name_thread(&self, pid: u32, tid: u32, name: &str) {
        self.push(TraceEvent {
            ph: 'M',
            name: "thread_name".to_string(),
            cat: String::new(),
            ts_us: 0.0,
            dur_us: 0.0,
            pid,
            tid,
            args: Vec::new(),
            str_args: vec![("name".to_string(), name.to_string())],
        });
    }

    /// Appends already-built events (e.g. drained from a worker thread's
    /// private tracer) into this buffer, respecting its capacity — the
    /// ring evicts its oldest events on overflow, counted as dropped
    /// exactly like locally recorded events.
    pub fn absorb(&self, events: Vec<TraceEvent>) {
        let mut buf = self.buf.lock().expect("trace buffer lock");
        for ev in events {
            if buf.events.len() >= buf.capacity {
                buf.events.pop_front();
                buf.dropped += 1;
            }
            buf.events.push_back(ev);
        }
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("trace buffer lock").events.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted from the ring after the buffer filled (oldest
    /// records go first).
    pub fn dropped(&self) -> u64 {
        self.buf.lock().expect("trace buffer lock").dropped
    }

    /// A copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf
            .lock()
            .expect("trace buffer lock")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Serializes the buffer to Chrome trace-event JSON
    /// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
    pub fn to_chrome_json(&self) -> String {
        let buf = self.buf.lock().expect("trace buffer lock");
        let events = buf
            .events
            .iter()
            .map(|e| {
                let mut fields = vec![
                    ("name".to_string(), Json::Str(e.name.clone())),
                    ("ph".to_string(), Json::Str(e.ph.to_string())),
                    ("ts".to_string(), Json::Num(e.ts_us)),
                    ("pid".to_string(), Json::Num(e.pid as f64)),
                    ("tid".to_string(), Json::Num(e.tid as f64)),
                ];
                if !e.cat.is_empty() {
                    fields.push(("cat".to_string(), Json::Str(e.cat.clone())));
                }
                if e.ph == 'X' {
                    fields.push(("dur".to_string(), Json::Num(e.dur_us)));
                }
                if e.ph == 'i' {
                    // Instant scope: thread.
                    fields.push(("s".to_string(), Json::Str("t".to_string())));
                }
                if !e.args.is_empty() || !e.str_args.is_empty() {
                    let mut args: Vec<(String, Json)> = e
                        .args
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect();
                    args.extend(
                        e.str_args
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Str(v.clone()))),
                    );
                    fields.push(("args".to_string(), Json::Obj(args)));
                }
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            ("traceEvents".to_string(), Json::Arr(events)),
            ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
        ])
        .render()
    }

    /// Writes the Chrome trace JSON to `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_chrome_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_instants_export_required_fields() {
        let t = Tracer::new();
        t.span_args(
            "axe",
            "get_neighbor",
            pids::AXE,
            3,
            10.0,
            2.5,
            &[("bytes", 64.0)],
        );
        t.instant("mof", "retransmit", pids::MOF, 0, 11.0);
        t.counter("queue", pids::SERVICE, 12.0, &[("depth", 4.0)]);
        t.name_process(pids::AXE, "axe-engine");
        let doc = Json::parse(&t.to_chrome_json()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 4);
        for ev in events {
            assert!(ev.get("ph").is_some());
            assert!(ev.get("ts").is_some());
            assert!(ev.get("pid").is_some());
            assert!(ev.get("tid").is_some());
        }
        let span = &events[0];
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(2.5));
        assert_eq!(
            span.get("args").unwrap().get("bytes").unwrap().as_f64(),
            Some(64.0)
        );
    }

    #[test]
    fn capacity_bounds_the_buffer() {
        let t = Tracer::with_capacity(2);
        for i in 0..5 {
            t.instant("x", "e", 1, 0, i as f64);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn overflow_evicts_oldest_spans_first() {
        let t = Tracer::with_capacity(3);
        for i in 0..7 {
            t.instant("x", "e", 1, 0, i as f64);
            assert!(t.len() <= 3, "count must never exceed the cap");
        }
        // The ring keeps the newest window: timestamps 4, 5, 6.
        let ts: Vec<f64> = t.events().iter().map(|e| e.ts_us).collect();
        assert_eq!(ts, vec![4.0, 5.0, 6.0]);
        assert_eq!(t.dropped(), 4);
    }

    #[test]
    fn absorb_overflow_also_evicts_oldest_first() {
        let main = Tracer::with_capacity(2);
        main.instant("x", "old", 1, 0, 0.0);
        let worker = Tracer::new();
        worker.instant("x", "new-a", 1, 0, 1.0);
        worker.instant("x", "new-b", 1, 0, 2.0);
        main.absorb(worker.events());
        assert_eq!(main.len(), 2);
        assert_eq!(main.dropped(), 1);
        let names: Vec<String> = main.events().into_iter().map(|e| e.name).collect();
        // "old" was evicted; the absorbed events survive in order.
        assert_eq!(names, vec!["new-a", "new-b"]);
    }

    #[test]
    fn absorb_merges_and_respects_capacity() {
        let main = Tracer::with_capacity(3);
        main.instant("x", "local", 1, 0, 0.0);
        let worker = Tracer::new();
        for i in 0..4 {
            worker.instant("x", "remote", 1, 0, i as f64);
        }
        main.absorb(worker.events());
        assert_eq!(main.len(), 3);
        assert_eq!(main.dropped(), 2);
        assert_eq!(main.events()[1].name, "remote");
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = Tracer::new();
        let t2 = t.clone();
        t2.instant("x", "e", 1, 0, 0.0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let t = Tracer::new();
        let a = t.wall_us();
        let b = t.wall_us();
        assert!(b >= a && a >= 0.0);
        assert_eq!(t.us_of(t.t0), 0.0);
    }

    #[test]
    fn negative_durations_clamp_to_zero() {
        let t = Tracer::new();
        t.span("x", "e", 1, 0, 5.0, -1.0);
        assert_eq!(t.events()[0].dur_us, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = Tracer::with_capacity(0);
    }
}
