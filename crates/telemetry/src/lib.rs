//! Unified telemetry for the LSD-GNN workspace.
//!
//! Two complementary facilities:
//!
//! - **Metrics**: a label-aware [`Registry`] of [`MetricSource`]s.
//!   Components expose counters, gauges and histogram summaries through
//!   [`Scope`] emitters; [`Registry::snapshot`] flattens everything into
//!   a [`Snapshot`] that serializes to (and parses back from) JSON.
//! - **Tracing**: a bounded, cloneable [`Tracer`] recording spans,
//!   instants and counter series in simulated time (desim ticks via
//!   [`ticks_to_us`]) or wall time, exported as Chrome trace-event JSON
//!   loadable in `chrome://tracing` or Perfetto.
//! - **Request ledger**: a per-request causal event log
//!   ([`RequestLedger`]) with queue-wait vs service-time split per
//!   stage, a tail-attribution [`BlameReport`], a degradation
//!   [`FlightDump`] recorder, and [`SloMonitor`] error-budget burn
//!   accounting.
//!
//! The crate is dependency-free by design: the workspace's `serde` is a
//! no-op shim, so [`json`] carries its own small encoder and
//! recursive-descent parser.

pub mod json;
pub mod ledger;
pub mod metrics;
pub mod trace;

pub use json::{Json, JsonError};
pub use ledger::{
    BlameReport, DumpReason, FlightDump, LedgerConfig, LedgerEvent, LedgerHandle, LedgerSnapshot,
    RequestLedger, SloMonitor, Stage,
};
pub use metrics::{
    HistogramSnapshot, Log2Histogram, Metric, MetricSource, MetricValue, Registry, Scope, Snapshot,
};
pub use trace::{pids, ticks_to_us, TraceEvent, Tracer};
