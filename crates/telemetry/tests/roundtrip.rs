//! Snapshot round-trip and Chrome-trace format tests (integration
//! surface: only the public API).

use lsdgnn_telemetry::{
    pids, ticks_to_us, Json, Log2Histogram, MetricSource, MetricValue, Registry, Scope, Snapshot,
    Tracer,
};

struct FakeCache {
    hits: u64,
    misses: u64,
}

impl MetricSource for FakeCache {
    fn collect(&self, out: &mut Scope<'_>) {
        out.counter("hits", self.hits);
        out.counter("misses", self.misses);
        let total = (self.hits + self.misses).max(1);
        out.gauge("hit_rate", self.hits as f64 / total as f64);
    }
}

#[test]
fn snapshot_roundtrips_through_json() {
    let mut reg = Registry::new();
    reg.register(
        "axe/cache",
        &[("core", "0")],
        Box::new(FakeCache {
            hits: 900,
            misses: 100,
        }),
    );
    let mut hist = Log2Histogram::new();
    for v in [1u64, 2, 3, 100, 1000, 10_000] {
        hist.record(v);
    }
    reg.register(
        "service",
        &[],
        Box::new(move |out: &mut Scope<'_>| out.histogram("latency_us", hist.snapshot())),
    );

    let snap = reg.snapshot();
    let json = snap.to_json();
    let parsed = Snapshot::from_json(&json).expect("snapshot JSON parses back");

    assert_eq!(parsed.metrics().len(), snap.metrics().len());
    for m in snap.metrics() {
        let labels: Vec<(&str, &str)> = m
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let back = parsed
            .get_labeled(&m.name, &labels)
            .unwrap_or_else(|| panic!("metric {} lost in round-trip", m.name));
        assert_eq!(back, &m.value, "value mismatch for {}", m.name);
    }

    let rate = parsed
        .get_labeled("axe/cache/hit_rate", &[("core", "0")])
        .expect("hit_rate present");
    assert_eq!(rate, &MetricValue::Gauge(0.9));
    let lat = parsed.get("service/latency_us").expect("latency present");
    let h = lat.as_histogram().expect("histogram value");
    assert_eq!(h.count, 6);
    assert!(h.p99 >= h.p50 && h.p50 >= h.min);
}

#[test]
fn empty_snapshot_roundtrips() {
    let reg = Registry::new();
    let snap = reg.snapshot();
    let parsed = Snapshot::from_json(&snap.to_json()).unwrap();
    assert!(parsed.metrics().is_empty());
}

#[test]
fn chrome_trace_has_required_fields_per_event() {
    let tracer = Tracer::new();
    tracer.name_process(pids::AXE, "axe-engine");
    tracer.span(
        "axe",
        "get_neighbor",
        pids::AXE,
        2,
        ticks_to_us(1_000_000),
        3.0,
    );
    tracer.instant("mof", "retransmit", pids::MOF, 1, 4.0);
    tracer.counter("queue", pids::SERVICE, 5.0, &[("depth", 7.0)]);

    let doc = Json::parse(&tracer.to_chrome_json()).expect("trace JSON parses");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert_eq!(events.len(), 4);
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph field");
        assert!(
            matches!(ph, "X" | "i" | "C" | "M"),
            "unexpected phase {ph:?}"
        );
        assert!(ev.get("ts").and_then(Json::as_f64).is_some(), "ts field");
        assert!(ev.get("pid").and_then(Json::as_u64).is_some(), "pid field");
        assert!(ev.get("tid").and_then(Json::as_u64).is_some(), "tid field");
        if ph == "X" {
            assert!(ev.get("dur").and_then(Json::as_f64).is_some(), "dur field");
        }
    }
}
