//! Property-based tests for the graph substrate.

use lsdgnn_graph::dynamic::DynamicGraph;
use lsdgnn_graph::{GraphBuilder, NodeId, PartitionedGraph};
use proptest::prelude::*;

fn arb_edges(nodes: u64, max_edges: usize) -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0..nodes, 0..nodes), 0..max_edges)
}

proptest! {
    /// Any edge list builds a CSR satisfying all structural invariants.
    #[test]
    fn builder_always_produces_valid_csr(edges in arb_edges(50, 300)) {
        let mut b = GraphBuilder::new(50);
        for (u, v) in &edges {
            b.add_edge(NodeId(*u), NodeId(*v));
        }
        let g = b.build();
        prop_assert!(g.check_invariants().is_ok());
        // Dedup can only shrink.
        prop_assert!(g.num_edges() as usize <= edges.len());
        // Every input edge is present.
        for (u, v) in edges {
            prop_assert!(g.has_edge(NodeId(u), NodeId(v)));
        }
    }

    /// Degrees sum to the edge count.
    #[test]
    fn degrees_sum_to_edge_count(edges in arb_edges(40, 200)) {
        let mut b = GraphBuilder::new(40);
        for (u, v) in &edges {
            b.add_edge(NodeId(*u), NodeId(*v));
        }
        let g = b.build();
        let total: u64 = (0..40).map(|v| g.degree(NodeId(v))).sum();
        prop_assert_eq!(total, g.num_edges());
    }

    /// Partition ownership is a total, deterministic function covering
    /// all partitions reasonably.
    #[test]
    fn partition_owner_is_stable(parts in 1u32..16, nodes in 16u64..200) {
        let mut b = GraphBuilder::new(nodes);
        b.add_edge(NodeId(0), NodeId(1));
        let pg = PartitionedGraph::new(b.build(), parts);
        for v in 0..nodes {
            let o1 = pg.owner(NodeId(v));
            let o2 = pg.owner(NodeId(v));
            prop_assert_eq!(o1, o2);
            prop_assert!(o1.0 < parts);
        }
    }

    /// A window snapshot is always a subgraph of the full snapshot, and
    /// nested windows are monotone.
    #[test]
    fn dynamic_windows_are_monotone(
        events in proptest::collection::vec((0u64..30, 0u64..30, 0u64..100), 1..100),
        lo in 0u64..50,
        span in 0u64..50,
    ) {
        let mut g = DynamicGraph::new(30);
        for (u, v, t) in &events {
            g.insert_edge(NodeId(*u), NodeId(*v), *t);
        }
        let hi = lo + span;
        let window = g.window_snapshot(lo, hi);
        let full = g.snapshot();
        prop_assert!(window.num_edges() <= full.num_edges());
        for (u, v) in window.edges() {
            prop_assert!(full.has_edge(u, v));
        }
        // Widening the window never loses edges.
        let wider = g.window_snapshot(lo.saturating_sub(10), hi + 10);
        prop_assert!(wider.num_edges() >= window.num_edges());
    }

    /// Attribute gather returns exactly len*attr_len floats in order.
    #[test]
    fn gather_respects_order(nodes in proptest::collection::vec(0u64..20, 1..40)) {
        use lsdgnn_graph::AttributeStore;
        let store = AttributeStore::synthetic(20, 4, 9);
        let ids: Vec<NodeId> = nodes.iter().map(|&v| NodeId(v)).collect();
        let got = store.gather(&ids);
        prop_assert_eq!(got.len(), ids.len() * 4);
        for (i, v) in ids.iter().enumerate() {
            prop_assert_eq!(&got[i * 4..(i + 1) * 4], store.get(*v));
        }
    }
}
