//! Dense node attribute (feature) storage.

use crate::types::NodeId;

/// Fixed-length `f32` feature vectors for every node, stored contiguously —
/// the "attribute" side of the paper's graph servers, fetched by the AxE
/// `GetAttribute` stage.
///
/// # Example
///
/// ```
/// use lsdgnn_graph::{AttributeStore, NodeId};
/// let mut a = AttributeStore::zeros(3, 4);
/// a.set(NodeId(1), &[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(a.get(NodeId(1))[2], 3.0);
/// assert_eq!(a.bytes_per_node(), 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeStore {
    data: Vec<f32>,
    attr_len: usize,
    num_nodes: u64,
}

impl AttributeStore {
    /// Allocates zero-filled attributes for `num_nodes` nodes of
    /// `attr_len` floats each.
    ///
    /// # Panics
    ///
    /// Panics if `attr_len` is zero.
    pub fn zeros(num_nodes: u64, attr_len: usize) -> Self {
        assert!(attr_len > 0, "attribute length must be non-zero");
        AttributeStore {
            data: vec![0.0; num_nodes as usize * attr_len],
            attr_len,
            num_nodes,
        }
    }

    /// Fills attributes deterministically from node ids (useful for tests
    /// and synthetic workloads: attribute `j` of node `v` is
    /// `hash(v, j)` mapped into `[-1, 1)`).
    pub fn synthetic(num_nodes: u64, attr_len: usize, seed: u64) -> Self {
        let mut store = Self::zeros(num_nodes, attr_len);
        for v in 0..num_nodes {
            for j in 0..attr_len {
                let mut h = v
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add((j as u64).wrapping_mul(0xBF58476D1CE4E5B9))
                    .wrapping_add(seed);
                h ^= h >> 31;
                h = h.wrapping_mul(0x94D049BB133111EB);
                let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
                store.data[v as usize * attr_len + j] = (unit * 2.0 - 1.0) as f32;
            }
        }
        store
    }

    /// Builds *structure-correlated* attributes: a random base signal
    /// smoothed once over the graph (each node's attributes are averaged
    /// with its neighbors'), producing the homophily real features have —
    /// neighbors look alike, so link prediction and GNN aggregation have
    /// signal to learn.
    ///
    /// # Panics
    ///
    /// Panics if `attr_len` is zero or the graph is empty.
    pub fn smoothed(graph: &crate::csr::CsrGraph, attr_len: usize, seed: u64) -> Self {
        assert!(graph.num_nodes() > 0, "graph must be non-empty");
        let base = Self::synthetic(graph.num_nodes(), attr_len, seed);
        let mut store = Self::zeros(graph.num_nodes(), attr_len);
        for v in 0..graph.num_nodes() {
            let node = crate::types::NodeId(v);
            let mut acc: Vec<f32> = base.get(node).to_vec();
            let ns = graph.neighbors(node);
            for &u in ns {
                for (a, b) in acc.iter_mut().zip(base.get(u)) {
                    *a += b;
                }
            }
            let scale = 1.0 / (ns.len() as f32 + 1.0);
            for a in &mut acc {
                *a *= scale;
            }
            store.set(node, &acc);
        }
        store
    }

    /// Attribute vector length in floats.
    pub fn attr_len(&self) -> usize {
        self.attr_len
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> u64 {
        self.num_nodes
    }

    /// Bytes per node (`attr_len * 4`).
    pub fn bytes_per_node(&self) -> u64 {
        self.attr_len as u64 * 4
    }

    /// Total bytes held.
    pub fn total_bytes(&self) -> u64 {
        self.data.len() as u64 * 4
    }

    /// Attribute vector of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn get(&self, v: NodeId) -> &[f32] {
        let i = v.index() * self.attr_len;
        &self.data[i..i + self.attr_len]
    }

    /// Overwrites the attribute vector of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or `values` has the wrong length.
    pub fn set(&mut self, v: NodeId, values: &[f32]) {
        assert_eq!(values.len(), self.attr_len, "attribute length mismatch");
        let i = v.index() * self.attr_len;
        self.data[i..i + self.attr_len].copy_from_slice(values);
    }

    /// Gathers the attributes of `nodes` into one contiguous buffer
    /// (the mini-batch "fetch attributes" operation).
    ///
    /// # Panics
    ///
    /// Panics if any node is out of range.
    pub fn gather(&self, nodes: &[NodeId]) -> Vec<f32> {
        let mut out = Vec::with_capacity(nodes.len() * self.attr_len);
        self.gather_into(nodes, &mut out);
        out
    }

    /// [`Self::gather`] appending into a caller-provided buffer, so a
    /// pooled scratch can be recycled across gathers instead of
    /// reallocated.
    ///
    /// # Panics
    ///
    /// Panics if any node is out of range.
    pub fn gather_into(&self, nodes: &[NodeId], out: &mut Vec<f32>) {
        out.reserve(nodes.len() * self.attr_len);
        for (i, &v) in nodes.iter().enumerate() {
            // A mini-batch gather is a random walk over a store far
            // larger than cache; touch a few rows ahead so the copies
            // overlap their miss latency.
            if let Some(&w) = nodes.get(i + 8) {
                crate::mem::prefetch_read(self.get(w).as_ptr());
            }
            out.extend_from_slice(self.get(v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_then_set_get() {
        let mut a = AttributeStore::zeros(2, 3);
        assert_eq!(a.get(NodeId(0)), &[0.0, 0.0, 0.0]);
        a.set(NodeId(1), &[1.0, 2.0, 3.0]);
        assert_eq!(a.get(NodeId(1)), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn synthetic_is_deterministic_and_bounded() {
        let a = AttributeStore::synthetic(10, 8, 42);
        let b = AttributeStore::synthetic(10, 8, 42);
        assert_eq!(a, b);
        for v in 0..10 {
            for &x in a.get(NodeId(v)) {
                assert!((-1.0..1.0).contains(&x));
            }
        }
        let c = AttributeStore::synthetic(10, 8, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn gather_concatenates_in_order() {
        let mut a = AttributeStore::zeros(3, 2);
        a.set(NodeId(0), &[1.0, 1.0]);
        a.set(NodeId(2), &[3.0, 3.0]);
        let g = a.gather(&[NodeId(2), NodeId(0)]);
        assert_eq!(g, vec![3.0, 3.0, 1.0, 1.0]);
    }

    #[test]
    fn byte_accounting() {
        let a = AttributeStore::zeros(100, 72);
        assert_eq!(a.bytes_per_node(), 288);
        assert_eq!(a.total_bytes(), 28_800);
        assert_eq!(a.num_nodes(), 100);
        assert_eq!(a.attr_len(), 72);
    }

    #[test]
    fn smoothed_attributes_are_homophilous() {
        use crate::generators;
        let g = generators::uniform_random(300, 6, 5);
        let smooth = AttributeStore::smoothed(&g, 8, 5);
        let raw = AttributeStore::synthetic(300, 8, 5);
        // Cosine similarity between endpoints of edges should be higher
        // for the smoothed store than the raw one, on average.
        let cos = |a: &[f32], b: &[f32]| {
            let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nb).max(1e-9)
        };
        let (mut s_sum, mut r_sum, mut n) = (0.0f32, 0.0f32, 0);
        for (u, v) in g.edges().take(500) {
            s_sum += cos(smooth.get(u), smooth.get(v));
            r_sum += cos(raw.get(u), raw.get(v));
            n += 1;
        }
        assert!(n > 0);
        assert!(
            s_sum / n as f32 > r_sum / n as f32 + 0.1,
            "smoothed {} vs raw {}",
            s_sum / n as f32,
            r_sum / n as f32
        );
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn wrong_length_set_panics() {
        AttributeStore::zeros(1, 3).set(NodeId(0), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_attr_len_panics() {
        let _ = AttributeStore::zeros(1, 0);
    }
}
