//! Graph storage substrate for the LSD-GNN reproduction.
//!
//! Provides the pieces the paper's AliGraph-style stack stores in
//! distributed memory: CSR adjacency ([`CsrGraph`]), dense node attributes
//! ([`AttributeStore`]), hash partitioning across servers
//! ([`PartitionedGraph`]), synthetic graph generators matching the degree
//! structure of the paper's industrial datasets ([`generators`]), and the
//! exact Table 2 dataset configurations with their analytic memory-footprint
//! model ([`datasets`], Figure 2(a)).
//!
//! # Example
//!
//! ```
//! use lsdgnn_graph::{GraphBuilder, NodeId};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(NodeId(0), NodeId(1));
//! b.add_edge(NodeId(0), NodeId(2));
//! b.add_edge(NodeId(3), NodeId(0));
//! let g = b.build();
//! assert_eq!(g.degree(NodeId(0)), 2);
//! assert_eq!(g.neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
//! ```

pub mod attributes;
pub mod builder;
pub mod csr;
pub mod datasets;
pub mod dynamic;
pub mod generators;
pub mod hash;
pub mod hetero;
pub mod io;
pub mod mem;
pub mod partition;
pub mod reorder;
pub mod traversal;
pub mod types;

pub use attributes::AttributeStore;
pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use datasets::{DatasetConfig, FootprintModel, SamplingConfig, PAPER_DATASETS};
pub use hash::{FnvHashMap, FnvHashSet, NodeMap};
pub use partition::{greedy_partition, PartitionId, PartitionedGraph};
pub use reorder::{Permutation, ReorderPolicy};
pub use types::NodeId;
