//! Core identifier types.

use std::fmt;

/// A global node identifier.
///
/// Newtype over `u64` so node ids cannot be confused with counts, offsets or
/// partition-local indices.
///
/// # Example
///
/// ```
/// use lsdgnn_graph::NodeId;
/// let v = NodeId(17);
/// assert_eq!(v.index(), 17);
/// assert_eq!(v.to_string(), "n17");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u64);

impl NodeId {
    /// The id as a usize index.
    ///
    /// # Panics
    ///
    /// Panics on 32-bit targets if the id exceeds `usize::MAX`.
    pub fn index(self) -> usize {
        usize::try_from(self.0).expect("node id exceeds usize")
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u64 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let v = NodeId::from(42u64);
        assert_eq!(u64::from(v), 42);
        assert_eq!(v.index(), 42);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId::default(), NodeId(0));
    }
}
