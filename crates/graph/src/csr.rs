//! Compressed sparse row (CSR) adjacency storage.

use crate::types::NodeId;

/// An immutable directed graph in CSR form.
///
/// Built through [`crate::GraphBuilder`]; neighbor lists are sorted and
/// deduplicated. Optionally carries one `f32` weight per edge (used by
/// degree-/weight-based sampling).
///
/// # Example
///
/// ```
/// use lsdgnn_graph::{GraphBuilder, NodeId};
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId(0), NodeId(2));
/// b.add_edge(NodeId(0), NodeId(1));
/// let g = b.build();
/// assert_eq!(g.neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrGraph {
    pub(crate) offsets: Vec<u64>,
    pub(crate) targets: Vec<NodeId>,
    pub(crate) weights: Option<Vec<f32>>,
}

impl CsrGraph {
    /// Number of nodes.
    pub fn num_nodes(&self) -> u64 {
        (self.offsets.len() - 1) as u64
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> u64 {
        let i = v.index();
        self.offsets[i + 1] - self.offsets[i]
    }

    /// Sorted, deduplicated neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The flat CSR target array every neighbor list is a slice of.
    ///
    /// Together with [`Self::neighbor_range`] this lets a caller hold
    /// *positions* into the adjacency instead of copying neighbor lists —
    /// the zero-copy fast path of the serving data plane.
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// The range of `v`'s neighbor list inside [`Self::targets`]
    /// (`targets()[range]` equals `neighbors(v)`).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbor_range(&self, v: NodeId) -> std::ops::Range<usize> {
        let i = v.index();
        self.offsets[i] as usize..self.offsets[i + 1] as usize
    }

    /// Edge weights parallel to [`Self::neighbors`], if the graph is weighted.
    pub fn edge_weights(&self, v: NodeId) -> Option<&[f32]> {
        let i = v.index();
        self.weights
            .as_ref()
            .map(|w| &w[self.offsets[i] as usize..self.offsets[i + 1] as usize])
    }

    /// Whether an edge `u -> v` exists (binary search).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Whether edge weights are stored.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Maximum out-degree across all nodes.
    pub fn max_degree(&self) -> u64 {
        (0..self.num_nodes())
            .map(|v| self.degree(NodeId(v)))
            .max()
            .unwrap_or(0)
    }

    /// The `k` highest-out-degree nodes, highest first, ties broken by
    /// node id — the degree prior behind hot-set cache warmup: under
    /// power-law sampling traffic, access frequency tracks degree, so
    /// these are the nodes worth admitting before a single request runs.
    pub fn top_degree_nodes(&self, k: usize) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = (0..self.num_nodes()).map(NodeId).collect();
        let k = k.min(nodes.len());
        if k == 0 {
            return Vec::new();
        }
        if k < nodes.len() {
            nodes.select_nth_unstable_by_key(k - 1, |&v| (std::cmp::Reverse(self.degree(v)), v.0));
            nodes.truncate(k);
        }
        nodes.sort_unstable_by_key(|&v| (std::cmp::Reverse(self.degree(v)), v.0));
        nodes
    }

    /// Mean out-degree.
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Bytes of structure data this graph occupies (offsets + targets +
    /// weights), matching what a storage server would hold.
    pub fn structure_bytes(&self) -> u64 {
        let w = self.weights.as_ref().map_or(0, |w| w.len() * 4);
        (self.offsets.len() * 8 + self.targets.len() * 8 + w) as u64
    }

    /// The transposed graph: every edge `u -> v` becomes `v -> u`
    /// (weights preserved). In-degree queries and reverse traversal run
    /// on the transpose.
    pub fn reverse(&self) -> CsrGraph {
        let mut b = crate::builder::GraphBuilder::new(self.num_nodes());
        for u in 0..self.num_nodes() {
            let node = NodeId(u);
            match self.edge_weights(node) {
                Some(ws) => {
                    for (&v, &w) in self.neighbors(node).iter().zip(ws) {
                        b.add_weighted_edge(v, node, w);
                    }
                }
                None => {
                    for &v in self.neighbors(node) {
                        b.add_edge(v, node);
                    }
                }
            }
        }
        b.build()
    }

    /// Whether every edge has its reverse (the graph is symmetric /
    /// undirected).
    pub fn is_undirected(&self) -> bool {
        self.edges().all(|(u, v)| self.has_edge(v, u))
    }

    /// Iterates over all `(source, target)` pairs in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes()).flat_map(move |u| {
            self.neighbors(NodeId(u))
                .iter()
                .map(move |&v| (NodeId(u), v))
        })
    }

    /// Validates internal invariants (monotone offsets, in-range targets,
    /// sorted unique neighbor lists). Used by property tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.offsets.is_empty() {
            return Err("offsets must have at least one entry".into());
        }
        if self.offsets[0] != 0 || *self.offsets.last().unwrap() != self.targets.len() as u64 {
            return Err("offset endpoints invalid".into());
        }
        for w in self.offsets.windows(2) {
            if w[0] > w[1] {
                return Err("offsets not monotone".into());
            }
        }
        let n = self.num_nodes();
        for v in 0..n {
            let ns = self.neighbors(NodeId(v));
            for pair in ns.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(format!("neighbors of n{v} not sorted/unique"));
                }
            }
            if ns.iter().any(|t| t.0 >= n) {
                return Err(format!("neighbor of n{v} out of range"));
            }
        }
        if let Some(w) = &self.weights {
            if w.len() != self.targets.len() {
                return Err("weights length mismatch".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> CsrGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(0), NodeId(2));
        b.add_edge(NodeId(1), NodeId(3));
        b.add_edge(NodeId(2), NodeId(3));
        b.build()
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(NodeId(0)), 2);
        assert_eq!(g.degree(NodeId(3)), 0);
        assert_eq!(g.neighbors(NodeId(1)), &[NodeId(3)]);
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(!g.has_edge(NodeId(3), NodeId(0)));
    }

    #[test]
    fn edge_iterator_covers_all() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.contains(&(NodeId(2), NodeId(3))));
    }

    #[test]
    fn degree_stats() {
        let g = diamond();
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.avg_degree(), 1.0);
    }

    #[test]
    fn top_degree_nodes_orders_by_degree_then_id() {
        let g = diamond(); // degrees: 0->2, 1->1, 2->1, 3->0
        assert_eq!(g.top_degree_nodes(0), vec![]);
        assert_eq!(g.top_degree_nodes(1), vec![NodeId(0)]);
        assert_eq!(g.top_degree_nodes(3), vec![NodeId(0), NodeId(1), NodeId(2)]);
        // k past the node count clamps.
        assert_eq!(
            g.top_degree_nodes(100),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn invariants_hold_for_built_graph() {
        assert!(diamond().check_invariants().is_ok());
    }

    #[test]
    fn structure_bytes_counts_arrays() {
        let g = diamond();
        // 5 offsets * 8 + 4 targets * 8 = 72.
        assert_eq!(g.structure_bytes(), 72);
    }

    #[test]
    fn reverse_transposes_edges() {
        let g = diamond();
        let r = g.reverse();
        assert_eq!(r.num_edges(), g.num_edges());
        for (u, v) in g.edges() {
            assert!(r.has_edge(v, u));
        }
        // Double transpose is identity.
        assert_eq!(r.reverse(), g);
        assert!(r.check_invariants().is_ok());
    }

    #[test]
    fn undirected_detection() {
        let g = diamond();
        assert!(!g.is_undirected());
        let mut b = GraphBuilder::new(3);
        b.add_undirected_edge(NodeId(0), NodeId(1));
        b.add_undirected_edge(NodeId(1), NodeId(2));
        assert!(b.build().is_undirected());
    }

    #[test]
    fn unweighted_graph_has_no_weights() {
        let g = diamond();
        assert!(!g.is_weighted());
        assert!(g.edge_weights(NodeId(0)).is_none());
    }
}
