//! The paper's dataset configurations (Table 2) and the analytic memory
//! footprint model behind Figure 2(a).
//!
//! Footprints and minimum-server counts are pure arithmetic over the
//! published node/edge counts and attribute lengths, so they are computed at
//! paper scale; execution-based experiments instantiate scaled-down graphs
//! via [`DatasetConfig::instantiate_scaled`].

use crate::attributes::AttributeStore;
use crate::csr::CsrGraph;
use crate::generators;
use serde::{Deserialize, Serialize};

/// Per-node metadata bytes a distributed graph store keeps besides raw
/// attributes (id map entry, degree, type tags).
const NODE_META_BYTES: u64 = 16;
/// Per-edge bytes: 8-byte neighbor id plus 4 bytes of edge metadata.
const EDGE_BYTES: u64 = 12;

/// The sampling application setup shared by all Table 2 rows:
/// 2-hop random sampling, batch 512, negative-sample rate 10, fanout 10/10,
/// hidden/embedding size 128.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingConfig {
    /// Mini-batch size (root nodes per batch).
    pub batch_size: u32,
    /// Number of hops (layers).
    pub hops: u32,
    /// Neighbors sampled per node at each hop.
    pub fanout: u32,
    /// Negative sampling rate.
    pub negative_rate: u32,
    /// Hidden / embedding size of the downstream model.
    pub hidden_size: u32,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self::paper()
    }
}

impl SamplingConfig {
    /// The paper's Table 2 configuration.
    pub const fn paper() -> Self {
        SamplingConfig {
            batch_size: 512,
            hops: 2,
            fanout: 10,
            negative_rate: 10,
            hidden_size: 128,
        }
    }

    /// Total nodes sampled per batch across all hops (excluding roots):
    /// `B*f + B*f^2 + ...`.
    pub fn sampled_per_batch(&self) -> u64 {
        let b = self.batch_size as u64;
        let f = self.fanout as u64;
        let mut total = 0;
        let mut frontier = b;
        for _ in 0..self.hops {
            frontier *= f;
            total += frontier;
        }
        total
    }

    /// Nodes whose attributes are fetched per batch (roots + all samples).
    pub fn attr_fetches_per_batch(&self) -> u64 {
        self.batch_size as u64 + self.sampled_per_batch()
    }
}

/// One row of Table 2: a named graph dataset at paper scale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Short name used throughout the paper (`ss`, `ls`, ...).
    pub name: &'static str,
    /// Node count at paper scale.
    pub nodes: u64,
    /// Edge count at paper scale.
    pub edges: u64,
    /// Attribute (feature) length in `f32`s.
    pub attr_len: u32,
    /// Sampling application setup.
    pub sampling: SamplingConfig,
}

/// The six Table 2 datasets, paper-exact sizes.
pub const PAPER_DATASETS: [DatasetConfig; 6] = [
    DatasetConfig {
        name: "ss",
        nodes: 65_200_000,
        edges: 592_000_000,
        attr_len: 72,
        sampling: SamplingConfig::paper(),
    },
    DatasetConfig {
        name: "ls",
        nodes: 1_900_000_000,
        edges: 5_200_000_000,
        attr_len: 84,
        sampling: SamplingConfig::paper(),
    },
    DatasetConfig {
        name: "sl",
        nodes: 67_300_000,
        edges: 601_000_000,
        attr_len: 128,
        sampling: SamplingConfig::paper(),
    },
    DatasetConfig {
        name: "ml",
        nodes: 207_000_000,
        edges: 5_700_000_000,
        attr_len: 136,
        sampling: SamplingConfig::paper(),
    },
    DatasetConfig {
        name: "ll",
        nodes: 702_000_000,
        edges: 12_300_000_000,
        attr_len: 152,
        sampling: SamplingConfig::paper(),
    },
    DatasetConfig {
        name: "syn",
        nodes: 5_900_000_000,
        edges: 105_000_000_000,
        attr_len: 152,
        sampling: SamplingConfig::paper(),
    },
];

impl DatasetConfig {
    /// Looks a dataset up by its paper name.
    pub fn by_name(name: &str) -> Option<DatasetConfig> {
        PAPER_DATASETS.iter().copied().find(|d| d.name == name)
    }

    /// Average out-degree.
    pub fn avg_degree(&self) -> f64 {
        self.edges as f64 / self.nodes as f64
    }

    /// Raw attribute bytes at paper scale.
    pub fn attribute_bytes(&self) -> u64 {
        self.nodes * self.attr_len as u64 * 4
    }

    /// Raw structure bytes at paper scale (edges + node metadata).
    pub fn structure_bytes(&self) -> u64 {
        self.edges * EDGE_BYTES + self.nodes * NODE_META_BYTES
    }

    /// Instantiates an executable scaled-down power-law graph with the
    /// dataset's average degree and a synthetic attribute store, capped at
    /// `max_nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `max_nodes < 2`.
    pub fn instantiate_scaled(&self, max_nodes: u64, seed: u64) -> (CsrGraph, AttributeStore) {
        let g = generators::scaled_power_law(self.nodes, self.edges, max_nodes, seed);
        let attrs = AttributeStore::synthetic(g.num_nodes(), self.attr_len as usize, seed);
        (g, attrs)
    }
}

/// The analytic footprint model of Figure 2(a): raw data size, an in-memory
/// expansion factor for the store's indexes/allocator overhead, and the
/// usable memory per storage server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FootprintModel {
    /// Multiplier covering hash indexes, allocator slack and replication of
    /// hot metadata. AliGraph-style stores land near 1.3x raw.
    pub overhead_factor: f64,
    /// Usable DRAM per storage server in bytes (a 512 GB box minus OS and
    /// service headroom).
    pub server_bytes: u64,
}

impl Default for FootprintModel {
    fn default() -> Self {
        FootprintModel {
            overhead_factor: 1.3,
            server_bytes: 384 * (1 << 30),
        }
    }
}

impl FootprintModel {
    /// Total in-memory footprint of a dataset in bytes.
    pub fn footprint_bytes(&self, d: &DatasetConfig) -> u64 {
        let raw = d.attribute_bytes() + d.structure_bytes();
        (raw as f64 * self.overhead_factor) as u64
    }

    /// Footprint in GiB (for the Figure 2(a) axis).
    pub fn footprint_gib(&self, d: &DatasetConfig) -> f64 {
        self.footprint_bytes(d) as f64 / (1u64 << 30) as f64
    }

    /// Minimal number of servers to hold the dataset.
    pub fn min_servers(&self, d: &DatasetConfig) -> u64 {
        self.footprint_bytes(d).div_ceil(self.server_bytes).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_is_complete_and_ordered_by_name() {
        let names: Vec<_> = PAPER_DATASETS.iter().map(|d| d.name).collect();
        assert_eq!(names, vec!["ss", "ls", "sl", "ml", "ll", "syn"]);
        assert!(DatasetConfig::by_name("ml").is_some());
        assert!(DatasetConfig::by_name("nope").is_none());
    }

    #[test]
    fn syn_is_the_10tb_class_graph() {
        let m = FootprintModel::default();
        let syn = DatasetConfig::by_name("syn").unwrap();
        let gib = m.footprint_gib(&syn);
        // Paper: 10 TB-level graphs. 1 TiB = 1024 GiB.
        assert!(gib > 4.0 * 1024.0, "syn footprint {gib} GiB too small");
    }

    #[test]
    fn small_graphs_fit_one_server() {
        let m = FootprintModel::default();
        for name in ["ss", "sl", "ml"] {
            let d = DatasetConfig::by_name(name).unwrap();
            assert_eq!(m.min_servers(&d), 1, "{name} should fit one server");
        }
    }

    #[test]
    fn large_graphs_need_many_servers() {
        let m = FootprintModel::default();
        let ll = DatasetConfig::by_name("ll").unwrap();
        let syn = DatasetConfig::by_name("syn").unwrap();
        assert!(m.min_servers(&ll) >= 2);
        // Paper scale: the distributed system runs ~15 servers for the
        // biggest graphs.
        let s = m.min_servers(&syn);
        assert!((10..=20).contains(&s), "syn needs {s} servers");
    }

    #[test]
    fn footprint_monotone_in_size() {
        let m = FootprintModel::default();
        let f: Vec<u64> = ["ss", "ml", "ll", "syn"]
            .iter()
            .map(|n| m.footprint_bytes(&DatasetConfig::by_name(n).unwrap()))
            .collect();
        assert!(f.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sampling_math_matches_paper_config() {
        let s = SamplingConfig::paper();
        // 512 roots * 10 + 512 * 100 = 56,320 samples/batch.
        assert_eq!(s.sampled_per_batch(), 56_320);
        assert_eq!(s.attr_fetches_per_batch(), 56_832);
    }

    #[test]
    fn instantiate_scaled_produces_consistent_pair() {
        let d = DatasetConfig::by_name("ss").unwrap();
        let (g, a) = d.instantiate_scaled(2_000, 11);
        assert_eq!(g.num_nodes(), a.num_nodes());
        assert_eq!(a.attr_len(), 72);
        assert!(g.check_invariants().is_ok());
        let deg = g.avg_degree();
        let paper_deg = d.avg_degree();
        assert!(
            (deg - paper_deg).abs() / paper_deg < 0.5,
            "scaled degree {deg} vs paper {paper_deg}"
        );
    }
}
