//! Memory-access helpers for the data plane's gather loops.

/// Hints the CPU to pull the cache line holding `ptr` toward L1.
///
/// The serving path's hot loops are random gathers into arrays far
/// larger than cache (CSR targets, attribute rows); issuing the next
/// few iterations' loads ahead of use overlaps their miss latency with
/// the current iteration's work. A pure hint: prefetches never fault,
/// so any address is fine, and the call compiles to nothing on
/// architectures without a stable prefetch intrinsic.
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_mm_prefetch(ptr as *const i8, core::arch::x86_64::_MM_HINT_T0)
    };
    #[cfg(not(target_arch = "x86_64"))]
    let _ = ptr;
}
