//! Locality-aware node relabeling.
//!
//! Hash partitioning spreads a graph's nodes across servers, but *within*
//! a shard the node-id layout still decides how much spatial locality the
//! serving path sees: neighbor lists of co-sampled vertices land on the
//! same cache lines (and pack into the same MoF base+offset window) only
//! if their ids are close. "Exploring Memory Access Patterns for Graph
//! Processing Accelerators" (arXiv 2010.13619) measures layout as the
//! dominant lever for graph-accelerator memory traffic; this module is
//! that lever for the reproduction: compute an old↔new [`Permutation`]
//! under a [`ReorderPolicy`], then relabel the CSR and attribute store
//! consistently.
//!
//! # The permutation-equivariance contract
//!
//! Sampling draws *positions* into neighbor lists
//! (`StreamingSampler::pick_into` consumes RNG per list length), so a
//! relabeled graph reproduces the exact same logical samples **iff** each
//! node's neighbor list keeps its original relative order. [`relabel_graph`]
//! therefore maps list *values* old→new without re-sorting the lists:
//! the list of `new(v)` is `[new(x) for x in old list of v]`, in the old
//! order. Consequences:
//!
//! * Sampling at a fixed seed is permutation-isomorphic: mapping a block
//!   sampled on the relabeled graph back through [`Permutation::to_old`]
//!   yields byte-for-byte the block sampled on the original graph
//!   (pinned by `framework/tests/reorder_differential.rs`).
//! * Relabeled neighbor lists are generally **not sorted** by new id, so
//!   `CsrGraph::has_edge` (binary search) and `check_invariants` (sorted
//!   lists) do not apply to a reordered graph; use containment checks.

use crate::csr::CsrGraph;
use crate::types::NodeId;
use crate::AttributeStore;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A bijective old↔new node-id mapping carried alongside a relabeled
/// graph so attributes, caches and request roots remap consistently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    old_to_new: Vec<u64>,
    new_to_old: Vec<u64>,
}

impl Permutation {
    /// The identity mapping over `n` nodes.
    pub fn identity(n: u64) -> Self {
        let ids: Vec<u64> = (0..n).collect();
        Permutation {
            old_to_new: ids.clone(),
            new_to_old: ids,
        }
    }

    /// Builds a permutation from its old→new table.
    ///
    /// # Panics
    ///
    /// Panics if the table is not a bijection over `0..len`.
    pub fn from_old_to_new(old_to_new: Vec<u64>) -> Self {
        let n = old_to_new.len();
        let mut new_to_old = vec![u64::MAX; n];
        for (old, &new) in old_to_new.iter().enumerate() {
            assert!((new as usize) < n, "new id {new} out of range");
            assert_eq!(
                new_to_old[new as usize],
                u64::MAX,
                "new id {new} assigned twice"
            );
            new_to_old[new as usize] = old as u64;
        }
        Permutation {
            old_to_new,
            new_to_old,
        }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> u64 {
        self.old_to_new.len() as u64
    }

    /// Whether the permutation covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.old_to_new.is_empty()
    }

    /// The relabeled id of original node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn to_new(&self, v: NodeId) -> NodeId {
        NodeId(self.old_to_new[v.index()])
    }

    /// The original id of relabeled node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn to_old(&self, v: NodeId) -> NodeId {
        NodeId(self.new_to_old[v.index()])
    }

    /// Whether this is the identity mapping.
    pub fn is_identity(&self) -> bool {
        self.old_to_new
            .iter()
            .enumerate()
            .all(|(i, &v)| i as u64 == v)
    }

    /// Composition: first `self`, then `next` (`result.to_new(v) ==
    /// next.to_new(self.to_new(v))`).
    ///
    /// # Panics
    ///
    /// Panics if the permutations cover different node counts.
    pub fn then(&self, next: &Permutation) -> Permutation {
        assert_eq!(self.len(), next.len(), "permutation size mismatch");
        Permutation::from_old_to_new(
            self.old_to_new
                .iter()
                .map(|&mid| next.old_to_new[mid as usize])
                .collect(),
        )
    }
}

/// How to relabel a graph's node ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReorderPolicy {
    /// Keep the current layout.
    Identity,
    /// A seeded random shuffle — the "as-ingested arbitrary layout"
    /// baseline that locality-aware policies are measured against (and
    /// the adversarial worst case for spatial locality).
    Random {
        /// Shuffle seed.
        seed: u64,
    },
    /// Descending out-degree: hubs (the nodes skewed serving traffic
    /// re-samples constantly) pack into the lowest ids, so the hot
    /// working set spans the fewest lines/pages.
    DegreeSort,
    /// Breadth-first visit order from the highest-degree node (restarting
    /// from the highest-degree unvisited node per component): neighbors
    /// get ids near their parents, so hop frontiers stay compact.
    Bfs,
    /// Gorder-style windowed greedy (Wei et al., SIGMOD'16): each next id
    /// goes to the candidate sharing the most edges and in-neighbors
    /// with the last `window` placed nodes, clustering siblings —
    /// vertices commonly *co-fetched* by one parent's expansion — into
    /// adjacent ids.
    Gorder {
        /// Sliding window width (the paper's `w`; 5 is a good default).
        window: usize,
    },
}

impl std::fmt::Display for ReorderPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReorderPolicy::Identity => write!(f, "identity"),
            ReorderPolicy::Random { seed } => write!(f, "random({seed})"),
            ReorderPolicy::DegreeSort => write!(f, "degree"),
            ReorderPolicy::Bfs => write!(f, "bfs"),
            ReorderPolicy::Gorder { window } => write!(f, "gorder(w={window})"),
        }
    }
}

/// In-neighbors with out-degree above this are skipped when scoring
/// Gorder sibling relations: a hub's out-list is touched for every one of
/// its thousands of children, turning the pass quadratic, while
/// contributing a near-uniform score that barely discriminates — the
/// standard high-degree-skip of Gorder implementations.
const GORDER_HUB_SKIP_DEGREE: u64 = 64;

/// Computes the relabeling permutation for `graph` under `policy`
/// (`to_new` maps an original id to its new position).
pub fn compute_permutation(graph: &CsrGraph, policy: ReorderPolicy) -> Permutation {
    let n = graph.num_nodes();
    match policy {
        ReorderPolicy::Identity => Permutation::identity(n),
        ReorderPolicy::Random { seed } => {
            let mut new_to_old: Vec<u64> = (0..n).collect();
            let mut rng = SmallRng::seed_from_u64(seed);
            for i in (1..new_to_old.len()).rev() {
                new_to_old.swap(i, rng.gen_range(0..=i));
            }
            invert(new_to_old)
        }
        ReorderPolicy::DegreeSort => {
            let mut new_to_old: Vec<u64> = (0..n).collect();
            new_to_old.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(NodeId(v))), v));
            invert(new_to_old)
        }
        ReorderPolicy::Bfs => invert(bfs_order(graph)),
        ReorderPolicy::Gorder { window } => invert(gorder_order(graph, window.max(1))),
    }
}

/// Turns a new→old visit order into a [`Permutation`].
fn invert(new_to_old: Vec<u64>) -> Permutation {
    let mut old_to_new = vec![0u64; new_to_old.len()];
    for (new, &old) in new_to_old.iter().enumerate() {
        old_to_new[old as usize] = new as u64;
    }
    Permutation {
        old_to_new,
        new_to_old,
    }
}

/// Nodes sorted by descending out-degree, ties by ascending id — the
/// deterministic seed sequence both traversal policies restart from.
fn degree_desc(graph: &CsrGraph) -> Vec<u64> {
    let mut order: Vec<u64> = (0..graph.num_nodes()).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(NodeId(v))), v));
    order
}

fn bfs_order(graph: &CsrGraph) -> Vec<u64> {
    let n = graph.num_nodes() as usize;
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for &seed in &degree_desc(graph) {
        if visited[seed as usize] {
            continue;
        }
        visited[seed as usize] = true;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &u in graph.neighbors(NodeId(v)) {
                if !visited[u.index()] {
                    visited[u.index()] = true;
                    queue.push_back(u.0);
                }
            }
        }
    }
    order
}

/// Windowed greedy placement. Score bookkeeping is incremental: when a
/// node enters (leaves) the trailing window, the scores of its neighbors
/// and — through each non-hub in-neighbor — its siblings are raised
/// (lowered) by one. Candidates (unplaced nodes with a positive score)
/// live in a dense vector scanned per step; the scan is bounded by the
/// window's neighborhood size, not by `n`.
fn gorder_order(graph: &CsrGraph, window: usize) -> Vec<u64> {
    let n = graph.num_nodes() as usize;
    let reverse = graph.reverse();
    let mut order: Vec<u64> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    let mut score = vec![0i64; n];
    // Dense candidate set: `cand` holds ids with score > 0, `cand_pos`
    // their position (or MAX when absent), so insert/remove are O(1).
    let mut cand: Vec<u32> = Vec::new();
    let mut cand_pos = vec![u32::MAX; n];
    let mut live = std::collections::VecDeque::with_capacity(window + 1);
    let seeds = degree_desc(graph);
    let mut seed_cursor = 0usize;

    let bump = |v: usize,
                delta: i64,
                score: &mut Vec<i64>,
                cand: &mut Vec<u32>,
                cand_pos: &mut Vec<u32>,
                placed: &[bool]| {
        score[v] += delta;
        if placed[v] {
            return;
        }
        if score[v] > 0 {
            if cand_pos[v] == u32::MAX {
                cand_pos[v] = cand.len() as u32;
                cand.push(v as u32);
            }
        } else if cand_pos[v] != u32::MAX {
            let p = cand_pos[v] as usize;
            let last = *cand.last().expect("candidate present");
            cand.swap_remove(p);
            if p < cand.len() {
                cand_pos[last as usize] = p as u32;
            }
            cand_pos[v] = u32::MAX;
        }
    };

    // Applies the window-entry (+1) or window-exit (-1) score updates of
    // node `u`: direct neighbors in both directions, then siblings via
    // non-hub in-neighbors.
    macro_rules! touch {
        ($u:expr, $delta:expr) => {{
            let u = $u;
            for &x in graph.neighbors(NodeId(u as u64)) {
                bump(
                    x.index(),
                    $delta,
                    &mut score,
                    &mut cand,
                    &mut cand_pos,
                    &placed,
                );
            }
            for &w in reverse.neighbors(NodeId(u as u64)) {
                bump(
                    w.index(),
                    $delta,
                    &mut score,
                    &mut cand,
                    &mut cand_pos,
                    &placed,
                );
                if graph.degree(w) <= GORDER_HUB_SKIP_DEGREE {
                    for &x in graph.neighbors(w) {
                        if x.index() != u {
                            bump(
                                x.index(),
                                $delta,
                                &mut score,
                                &mut cand,
                                &mut cand_pos,
                                &placed,
                            );
                        }
                    }
                }
            }
        }};
    }

    while order.len() < n {
        // Pick the highest-score candidate (ties: smallest id, for
        // determinism); fall back to the next unplaced seed.
        let next = cand
            .iter()
            .copied()
            .max_by_key(|&v| (score[v as usize], std::cmp::Reverse(v)))
            .map(|v| v as usize)
            .unwrap_or_else(|| {
                while placed[seeds[seed_cursor] as usize] {
                    seed_cursor += 1;
                }
                seeds[seed_cursor] as usize
            });
        placed[next] = true;
        if cand_pos[next] != u32::MAX {
            let p = cand_pos[next] as usize;
            let last = *cand.last().expect("candidate present");
            cand.swap_remove(p);
            if p < cand.len() {
                cand_pos[last as usize] = p as u32;
            }
            cand_pos[next] = u32::MAX;
        }
        order.push(next as u64);
        live.push_back(next);
        touch!(next, 1);
        if live.len() > window {
            let gone = live.pop_front().expect("window non-empty");
            touch!(gone, -1);
        }
    }
    order
}

/// Relabels `graph` under `perm`, preserving each neighbor list's
/// original relative order (see the module-level contract: list values
/// are mapped, lists are **not** re-sorted, so sampling positions select
/// the same logical neighbors). Edge weights travel with their edges.
pub fn relabel_graph(graph: &CsrGraph, perm: &Permutation) -> CsrGraph {
    let n = graph.num_nodes();
    assert_eq!(n, perm.len(), "permutation must cover every node");
    let mut offsets = Vec::with_capacity(n as usize + 1);
    offsets.push(0u64);
    let mut targets = Vec::with_capacity(graph.num_edges() as usize);
    let mut weights = graph
        .is_weighted()
        .then(|| Vec::with_capacity(graph.num_edges() as usize));
    for new_v in 0..n {
        let old = perm.to_old(NodeId(new_v));
        targets.extend(graph.neighbors(old).iter().map(|&t| perm.to_new(t)));
        if let (Some(ws), Some(out)) = (graph.edge_weights(old), weights.as_mut()) {
            out.extend_from_slice(ws);
        }
        offsets.push(targets.len() as u64);
    }
    CsrGraph {
        offsets,
        targets,
        weights,
    }
}

/// Relabels an attribute store under `perm`: new node `perm.to_new(v)`
/// carries old node `v`'s row.
pub fn relabel_attributes(attrs: &AttributeStore, perm: &Permutation) -> AttributeStore {
    assert_eq!(
        attrs.num_nodes(),
        perm.len(),
        "permutation must cover every node"
    );
    let mut out = AttributeStore::zeros(attrs.num_nodes(), attrs.attr_len());
    for old in 0..attrs.num_nodes() {
        out.set(perm.to_new(NodeId(old)), attrs.get(NodeId(old)));
    }
    out
}

/// Mean |new(u) - new(v)| over all edges — the locality figure of merit
/// a reordering minimizes (small gaps = neighbor lists land near each
/// other in the relabeled CSR and attribute store).
pub fn mean_neighbor_gap(graph: &CsrGraph, perm: &Permutation) -> f64 {
    if graph.num_edges() == 0 {
        return 0.0;
    }
    let total: u64 = graph
        .edges()
        .map(|(u, v)| perm.to_new(u).0.abs_diff(perm.to_new(v).0))
        .sum();
    total as f64 / graph.num_edges() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators;

    fn path(n: u64) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n - 1 {
            b.add_undirected_edge(NodeId(v), NodeId(v + 1));
        }
        b.build()
    }

    fn assert_bijection(p: &Permutation, n: u64) {
        assert_eq!(p.len(), n);
        for v in 0..n {
            assert_eq!(p.to_old(p.to_new(NodeId(v))), NodeId(v));
            assert_eq!(p.to_new(p.to_old(NodeId(v))), NodeId(v));
        }
    }

    #[test]
    fn identity_round_trips() {
        let p = Permutation::identity(10);
        assert!(p.is_identity());
        assert_bijection(&p, 10);
    }

    #[test]
    fn every_policy_yields_a_bijection() {
        let g = generators::power_law(500, 6, 11);
        for policy in [
            ReorderPolicy::Identity,
            ReorderPolicy::Random { seed: 3 },
            ReorderPolicy::DegreeSort,
            ReorderPolicy::Bfs,
            ReorderPolicy::Gorder { window: 5 },
        ] {
            let p = compute_permutation(&g, policy);
            assert_bijection(&p, 500);
        }
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn duplicate_mapping_panics() {
        let _ = Permutation::from_old_to_new(vec![0, 0, 1]);
    }

    #[test]
    fn composition_applies_in_order() {
        let a = Permutation::from_old_to_new(vec![1, 2, 0]);
        let b = Permutation::from_old_to_new(vec![2, 0, 1]);
        let c = a.then(&b);
        for v in 0..3 {
            assert_eq!(c.to_new(NodeId(v)), b.to_new(a.to_new(NodeId(v))));
        }
    }

    #[test]
    fn degree_sort_is_monotone_in_degree() {
        let g = generators::power_law(400, 8, 7);
        let p = compute_permutation(&g, ReorderPolicy::DegreeSort);
        let mut prev = u64::MAX;
        for new_v in 0..400 {
            let d = g.degree(p.to_old(NodeId(new_v)));
            assert!(d <= prev, "degrees must descend in new-id order");
            prev = d;
        }
    }

    #[test]
    fn relabel_preserves_structure_and_list_order() {
        let g = generators::power_law(300, 5, 19);
        let p = compute_permutation(&g, ReorderPolicy::Random { seed: 8 });
        let r = relabel_graph(&g, &p);
        assert_eq!(r.num_nodes(), g.num_nodes());
        assert_eq!(r.num_edges(), g.num_edges());
        for v in 0..300 {
            let old = NodeId(v);
            let new = p.to_new(old);
            assert_eq!(r.degree(new), g.degree(old));
            // Order preservation: position j of the relabeled list is the
            // relabeled position-j neighbor of the original list.
            let mapped: Vec<NodeId> = g.neighbors(old).iter().map(|&t| p.to_new(t)).collect();
            assert_eq!(r.neighbors(new), mapped.as_slice());
        }
    }

    #[test]
    fn relabel_carries_weights_with_their_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(NodeId(0), NodeId(1), 2.5);
        b.add_weighted_edge(NodeId(0), NodeId(2), 7.0);
        let g = b.build();
        let p = Permutation::from_old_to_new(vec![2, 0, 1]);
        let r = relabel_graph(&g, &p);
        // Old node 0 -> new node 2; its list order (1, 2) -> (0, 1).
        assert_eq!(r.neighbors(NodeId(2)), &[NodeId(0), NodeId(1)]);
        assert_eq!(r.edge_weights(NodeId(2)).unwrap(), &[2.5, 7.0]);
    }

    #[test]
    fn relabel_attributes_moves_rows() {
        let a = AttributeStore::synthetic(50, 4, 5);
        let g = generators::uniform_random(50, 4, 5);
        let p = compute_permutation(&g, ReorderPolicy::Random { seed: 2 });
        let r = relabel_attributes(&a, &p);
        for v in 0..50 {
            assert_eq!(r.get(p.to_new(NodeId(v))), a.get(NodeId(v)));
        }
    }

    #[test]
    fn traversal_policies_recover_path_locality() {
        // Scramble a path graph, then reorder: BFS and Gorder must beat
        // the scramble by a wide margin (a path relabels back to near
        // consecutive ids, mean gap ~1; a random layout averages ~n/3).
        let g = path(512);
        let scramble = compute_permutation(&g, ReorderPolicy::Random { seed: 4 });
        let gb = relabel_graph(&g, &scramble);
        let random_gap = mean_neighbor_gap(&gb, &Permutation::identity(512));
        for policy in [ReorderPolicy::Bfs, ReorderPolicy::Gorder { window: 5 }] {
            let p = compute_permutation(&gb, policy);
            let gap = mean_neighbor_gap(&gb, &p);
            assert!(
                gap * 10.0 < random_gap,
                "{policy}: gap {gap} vs random {random_gap}"
            );
        }
    }

    #[test]
    fn gorder_clusters_siblings() {
        // A star's leaves share one in-neighbor (the hub): Gorder must
        // place them consecutively even though no leaf links to another.
        let mut b = GraphBuilder::new(33);
        for leaf in 1..33 {
            b.add_edge(NodeId(0), NodeId(leaf));
        }
        let g = b.build();
        let p = compute_permutation(&g, ReorderPolicy::Gorder { window: 4 });
        let gap = mean_neighbor_gap(&g, &p);
        // Hub->leaf edges average half the span; the sibling score packs
        // leaves tightly behind the hub, so the mean gap stays near the
        // optimum (~16) rather than a shuffled ~11-22 with outliers.
        assert!(gap < 17.0, "star gap {gap}");
        assert_bijection(&p, 33);
    }
}
