//! Heterogeneous graphs: typed edges over a shared node space.
//!
//! AliGraph (the paper's framework, §2.4) "supports a large variety of
//! GNN models, including heterogeneous graph and dynamic graph";
//! e-commerce graphs mix user→item clicks, item→item co-purchases, etc.
//! A [`HeteroGraph`] stores one CSR per edge type so typed neighbor
//! queries and meta-path sampling stay O(degree).

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::hash::FnvHashMap;
use crate::types::NodeId;

/// An edge-type identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeType(pub u8);

/// A heterogeneous graph: typed edge sets over one node space.
///
/// # Example
///
/// ```
/// use lsdgnn_graph::hetero::{EdgeType, HeteroGraphBuilder};
/// use lsdgnn_graph::NodeId;
///
/// let mut b = HeteroGraphBuilder::new(4);
/// let clicks = b.add_edge_type("clicks");
/// let buys = b.add_edge_type("buys");
/// b.add_edge(clicks, NodeId(0), NodeId(1));
/// b.add_edge(buys, NodeId(0), NodeId(2));
/// let g = b.build();
/// assert_eq!(g.neighbors(clicks, NodeId(0)), &[NodeId(1)]);
/// assert_eq!(g.neighbors(buys, NodeId(0)), &[NodeId(2)]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroGraph {
    num_nodes: u64,
    type_names: Vec<String>,
    layers: Vec<CsrGraph>,
}

impl HeteroGraph {
    /// Number of nodes (shared across edge types).
    pub fn num_nodes(&self) -> u64 {
        self.num_nodes
    }

    /// Number of edge types.
    pub fn num_edge_types(&self) -> usize {
        self.layers.len()
    }

    /// Name of an edge type.
    ///
    /// # Panics
    ///
    /// Panics if the type is out of range.
    pub fn type_name(&self, t: EdgeType) -> &str {
        &self.type_names[t.0 as usize]
    }

    /// Looks an edge type up by name.
    pub fn type_by_name(&self, name: &str) -> Option<EdgeType> {
        self.type_names
            .iter()
            .position(|n| n == name)
            .map(|i| EdgeType(i as u8))
    }

    /// The CSR layer of one edge type.
    ///
    /// # Panics
    ///
    /// Panics if the type is out of range.
    pub fn layer(&self, t: EdgeType) -> &CsrGraph {
        &self.layers[t.0 as usize]
    }

    /// Typed neighbor list.
    ///
    /// # Panics
    ///
    /// Panics if the type or node is out of range.
    pub fn neighbors(&self, t: EdgeType, v: NodeId) -> &[NodeId] {
        self.layer(t).neighbors(v)
    }

    /// Typed out-degree.
    ///
    /// # Panics
    ///
    /// Panics if the type or node is out of range.
    pub fn degree(&self, t: EdgeType, v: NodeId) -> u64 {
        self.layer(t).degree(v)
    }

    /// Total edges across all types.
    pub fn num_edges(&self) -> u64 {
        self.layers.iter().map(CsrGraph::num_edges).sum()
    }

    /// Collapses all edge types into one homogeneous CSR (duplicates
    /// across types removed) — what a type-blind sampler would see.
    pub fn flatten(&self) -> CsrGraph {
        let mut b = GraphBuilder::new(self.num_nodes);
        for layer in &self.layers {
            for (u, v) in layer.edges() {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    /// Per-type edge counts keyed by name (for characterization reports).
    pub fn edge_histogram(&self) -> FnvHashMap<String, u64> {
        self.type_names
            .iter()
            .cloned()
            .zip(self.layers.iter().map(CsrGraph::num_edges))
            .collect()
    }
}

/// Incrementally builds a [`HeteroGraph`].
#[derive(Debug, Clone)]
pub struct HeteroGraphBuilder {
    num_nodes: u64,
    type_names: Vec<String>,
    builders: Vec<GraphBuilder>,
}

impl HeteroGraphBuilder {
    /// Creates a builder over `num_nodes` nodes with no edge types yet.
    pub fn new(num_nodes: u64) -> Self {
        HeteroGraphBuilder {
            num_nodes,
            type_names: Vec::new(),
            builders: Vec::new(),
        }
    }

    /// Registers an edge type; returns its id.
    ///
    /// # Panics
    ///
    /// Panics beyond 256 types or on a duplicate name.
    pub fn add_edge_type(&mut self, name: &str) -> EdgeType {
        assert!(self.type_names.len() < 256, "at most 256 edge types");
        assert!(
            !self.type_names.iter().any(|n| n == name),
            "duplicate edge type `{name}`"
        );
        self.type_names.push(name.to_string());
        self.builders.push(GraphBuilder::new(self.num_nodes));
        EdgeType((self.type_names.len() - 1) as u8)
    }

    /// Adds a typed directed edge.
    ///
    /// # Panics
    ///
    /// Panics if the type or endpoints are out of range.
    pub fn add_edge(&mut self, t: EdgeType, u: NodeId, v: NodeId) -> &mut Self {
        self.builders[t.0 as usize].add_edge(u, v);
        self
    }

    /// Finalizes all layers.
    pub fn build(self) -> HeteroGraph {
        HeteroGraph {
            num_nodes: self.num_nodes,
            type_names: self.type_names,
            layers: self.builders.into_iter().map(GraphBuilder::build).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> HeteroGraph {
        let mut b = HeteroGraphBuilder::new(6);
        let clicks = b.add_edge_type("clicks");
        let buys = b.add_edge_type("buys");
        b.add_edge(clicks, NodeId(0), NodeId(1));
        b.add_edge(clicks, NodeId(0), NodeId(2));
        b.add_edge(clicks, NodeId(1), NodeId(3));
        b.add_edge(buys, NodeId(0), NodeId(2));
        b.add_edge(buys, NodeId(2), NodeId(4));
        b.build()
    }

    #[test]
    fn typed_queries_are_isolated() {
        let g = sample_graph();
        let clicks = g.type_by_name("clicks").unwrap();
        let buys = g.type_by_name("buys").unwrap();
        assert_eq!(g.neighbors(clicks, NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.neighbors(buys, NodeId(0)), &[NodeId(2)]);
        assert_eq!(g.degree(clicks, NodeId(2)), 0);
        assert_eq!(g.degree(buys, NodeId(2)), 1);
    }

    #[test]
    fn names_round_trip() {
        let g = sample_graph();
        let t = g.type_by_name("buys").unwrap();
        assert_eq!(g.type_name(t), "buys");
        assert!(g.type_by_name("returns").is_none());
        assert_eq!(g.num_edge_types(), 2);
    }

    #[test]
    fn flatten_merges_and_dedups() {
        let g = sample_graph();
        let flat = g.flatten();
        // clicks 0->2 and buys 0->2 merge into one edge.
        assert_eq!(flat.num_edges(), g.num_edges() - 1);
        assert!(flat.has_edge(NodeId(0), NodeId(2)));
        assert!(flat.has_edge(NodeId(2), NodeId(4)));
        assert!(flat.check_invariants().is_ok());
    }

    #[test]
    fn histogram_counts_per_type() {
        let g = sample_graph();
        let h = g.edge_histogram();
        assert_eq!(h["clicks"], 3);
        assert_eq!(h["buys"], 2);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_type_name_panics() {
        let mut b = HeteroGraphBuilder::new(2);
        b.add_edge_type("x");
        b.add_edge_type("x");
    }
}
