//! Graph and attribute persistence.
//!
//! A downstream user brings their own graph; these routines load/store
//! the standard interchange formats: whitespace-separated edge lists
//! (one `src dst [weight]` per line, `#` comments) and a little-endian
//! binary format for attribute matrices.

use crate::attributes::AttributeStore;
use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::types::NodeId;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Errors raised by the I/O routines.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content with line context.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Reads an edge list. Node ids are dense non-negative integers; the
/// graph size is `max id + 1` unless `num_nodes` forces a larger space.
///
/// # Errors
///
/// Returns [`IoError::Parse`] on malformed lines.
///
/// # Example
///
/// ```
/// use lsdgnn_graph::io::read_edge_list;
/// let text = "# a comment\n0 1\n1 2 0.5\n";
/// let g = read_edge_list(text.as_bytes(), None).unwrap();
/// assert_eq!(g.num_nodes(), 3);
/// assert_eq!(g.num_edges(), 2);
/// ```
pub fn read_edge_list<R: Read>(reader: R, num_nodes: Option<u64>) -> Result<CsrGraph, IoError> {
    let mut edges: Vec<(u64, u64, f32)> = Vec::new();
    let mut max_id = 0u64;
    for (i, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        let text = line.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut parts = text.split_whitespace();
        let parse_id = |tok: Option<&str>, what: &str| -> Result<u64, IoError> {
            tok.ok_or_else(|| IoError::Parse {
                line: lineno,
                message: format!("missing {what}"),
            })?
            .parse()
            .map_err(|_| IoError::Parse {
                line: lineno,
                message: format!("bad {what}"),
            })
        };
        let src = parse_id(parts.next(), "source id")?;
        let dst = parse_id(parts.next(), "target id")?;
        let weight = match parts.next() {
            Some(w) => w.parse().map_err(|_| IoError::Parse {
                line: lineno,
                message: "bad weight".into(),
            })?,
            None => 1.0,
        };
        if parts.next().is_some() {
            return Err(IoError::Parse {
                line: lineno,
                message: "trailing tokens".into(),
            });
        }
        max_id = max_id.max(src).max(dst);
        edges.push((src, dst, weight));
    }
    let n = num_nodes.unwrap_or(if edges.is_empty() { 0 } else { max_id + 1 });
    let mut b = GraphBuilder::new(n);
    for (u, v, w) in edges {
        b.add_weighted_edge(NodeId(u), NodeId(v), w);
    }
    Ok(b.build())
}

/// Writes a graph as an edge list (weights included when present).
///
/// # Errors
///
/// Propagates write failures.
pub fn write_edge_list<W: Write>(graph: &CsrGraph, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    )?;
    for u in 0..graph.num_nodes() {
        let node = NodeId(u);
        let ns = graph.neighbors(node);
        match graph.edge_weights(node) {
            Some(ws) => {
                for (v, wt) in ns.iter().zip(ws) {
                    writeln!(w, "{} {} {}", u, v.0, wt)?;
                }
            }
            None => {
                for v in ns {
                    writeln!(w, "{} {}", u, v.0)?;
                }
            }
        }
    }
    w.flush()?;
    Ok(())
}

const ATTR_MAGIC: &[u8; 8] = b"LSDATTR1";

/// Writes an attribute store in the binary format
/// (`magic, u64 nodes, u64 attr_len, then f32 LE data`).
///
/// # Errors
///
/// Propagates write failures.
pub fn write_attributes<W: Write>(store: &AttributeStore, writer: W) -> Result<(), IoError> {
    let mut w = BufWriter::new(writer);
    w.write_all(ATTR_MAGIC)?;
    w.write_all(&store.num_nodes().to_le_bytes())?;
    w.write_all(&(store.attr_len() as u64).to_le_bytes())?;
    for v in 0..store.num_nodes() {
        for x in store.get(NodeId(v)) {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Reads an attribute store written by [`write_attributes`].
///
/// # Errors
///
/// Returns [`IoError::Parse`] on a bad magic or truncated data.
pub fn read_attributes<R: Read>(reader: R) -> Result<AttributeStore, IoError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != ATTR_MAGIC {
        return Err(IoError::Parse {
            line: 0,
            message: "bad attribute file magic".into(),
        });
    }
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf)?;
    let nodes = u64::from_le_bytes(u64buf);
    r.read_exact(&mut u64buf)?;
    let attr_len = u64::from_le_bytes(u64buf) as usize;
    if attr_len == 0 {
        return Err(IoError::Parse {
            line: 0,
            message: "zero attribute length".into(),
        });
    }
    let mut store = AttributeStore::zeros(nodes, attr_len);
    let mut row = vec![0.0f32; attr_len];
    let mut f32buf = [0u8; 4];
    for v in 0..nodes {
        for x in row.iter_mut() {
            r.read_exact(&mut f32buf)?;
            *x = f32::from_le_bytes(f32buf);
        }
        store.set(NodeId(v), &row);
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn edge_list_round_trips() {
        let g = generators::power_law(200, 6, 77);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..], Some(200)).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn weighted_edge_list_round_trips() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(NodeId(0), NodeId(1), 2.5);
        b.add_weighted_edge(NodeId(1), NodeId(2), 0.25);
        let g = b.build();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..], None).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# header\n\n0 1 # inline comment\n 1 2 \n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = read_edge_list("0 1\nx 2\n".as_bytes(), None).unwrap_err();
        match e {
            IoError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("source"));
            }
            other => panic!("unexpected error {other}"),
        }
        let e = read_edge_list("0 1 1.0 extra\n".as_bytes(), None).unwrap_err();
        assert!(matches!(e, IoError::Parse { line: 1, .. }));
    }

    #[test]
    fn attributes_round_trip() {
        let a = AttributeStore::synthetic(50, 7, 3);
        let mut buf = Vec::new();
        write_attributes(&a, &mut buf).unwrap();
        let back = read_attributes(&buf[..]).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn bad_magic_rejected() {
        let e = read_attributes(&b"NOTMAGIC\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert!(matches!(e, IoError::Parse { .. }));
    }

    #[test]
    fn truncated_attributes_error() {
        let a = AttributeStore::synthetic(10, 4, 1);
        let mut buf = Vec::new();
        write_attributes(&a, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_attributes(&buf[..]).is_err());
    }
}
