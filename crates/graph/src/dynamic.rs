//! Dynamic (timestamped) graphs with CSR snapshotting.
//!
//! Production e-commerce graphs mutate continuously; AliGraph supports
//! dynamic graphs (§2.4) and the paper's scalability goal is driven by
//! "data size keeps expanding". A [`DynamicGraph`] ingests a timestamped
//! edge stream and produces immutable CSR snapshots — either everything
//! so far or a sliding time window — which the samplers and the AxE
//! simulation then consume unchanged.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::types::NodeId;

/// An event timestamp (opaque, monotone per edge source).
pub type Timestamp = u64;

/// A growing, timestamped edge log over a fixed node space.
///
/// # Example
///
/// ```
/// use lsdgnn_graph::dynamic::DynamicGraph;
/// use lsdgnn_graph::NodeId;
///
/// let mut g = DynamicGraph::new(4);
/// g.insert_edge(NodeId(0), NodeId(1), 10);
/// g.insert_edge(NodeId(1), NodeId(2), 20);
/// let now = g.snapshot();
/// assert_eq!(now.num_edges(), 2);
/// let early = g.window_snapshot(0, 15);
/// assert_eq!(early.num_edges(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DynamicGraph {
    num_nodes: u64,
    /// Edge log: (time, src, dst), append-ordered.
    log: Vec<(Timestamp, NodeId, NodeId)>,
    /// Highest timestamp seen.
    horizon: Timestamp,
}

impl DynamicGraph {
    /// Creates an empty dynamic graph over `num_nodes` nodes.
    pub fn new(num_nodes: u64) -> Self {
        DynamicGraph {
            num_nodes,
            log: Vec::new(),
            horizon: 0,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u64 {
        self.num_nodes
    }

    /// Edges ingested so far (duplicates included — the log is a stream).
    pub fn num_events(&self) -> usize {
        self.log.len()
    }

    /// Latest timestamp ingested.
    pub fn horizon(&self) -> Timestamp {
        self.horizon
    }

    /// Appends a directed edge observed at `t`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId, t: Timestamp) -> &mut Self {
        assert!(
            u.0 < self.num_nodes && v.0 < self.num_nodes,
            "edge ({u}, {v}) out of range for {} nodes",
            self.num_nodes
        );
        self.log.push((t, u, v));
        self.horizon = self.horizon.max(t);
        self
    }

    /// Bulk-ingests a stream of `(src, dst, t)` events.
    pub fn extend_edges<I: IntoIterator<Item = (NodeId, NodeId, Timestamp)>>(
        &mut self,
        events: I,
    ) -> &mut Self {
        for (u, v, t) in events {
            self.insert_edge(u, v, t);
        }
        self
    }

    /// Snapshot of everything observed so far.
    pub fn snapshot(&self) -> CsrGraph {
        self.window_snapshot(0, Timestamp::MAX)
    }

    /// Snapshot of edges with timestamps in `[from, to]` — the sliding
    /// training window of a continuously-refreshed GNN.
    pub fn window_snapshot(&self, from: Timestamp, to: Timestamp) -> CsrGraph {
        let mut b = GraphBuilder::new(self.num_nodes);
        for &(t, u, v) in &self.log {
            if (from..=to).contains(&t) {
                b.add_edge(u, v);
            }
        }
        b.build()
    }

    /// Edge events per node pair can repeat; this returns the repeat
    /// count of the hottest pair (a skew indicator for caching studies).
    pub fn max_pair_multiplicity(&self) -> u64 {
        use crate::hash::FnvHashMap;
        let mut counts: FnvHashMap<(NodeId, NodeId), u64> = FnvHashMap::default();
        for &(_, u, v) in &self.log {
            *counts.entry((u, v)).or_default() += 1;
        }
        counts.values().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_reflect_growth() {
        let mut g = DynamicGraph::new(5);
        g.insert_edge(NodeId(0), NodeId(1), 1);
        assert_eq!(g.snapshot().num_edges(), 1);
        g.insert_edge(NodeId(1), NodeId(2), 2);
        g.insert_edge(NodeId(2), NodeId(3), 3);
        let s = g.snapshot();
        assert_eq!(s.num_edges(), 3);
        assert!(s.check_invariants().is_ok());
        assert_eq!(g.horizon(), 3);
    }

    #[test]
    fn window_selects_by_time() {
        let mut g = DynamicGraph::new(4);
        g.extend_edges([
            (NodeId(0), NodeId(1), 10),
            (NodeId(0), NodeId(2), 20),
            (NodeId(0), NodeId(3), 30),
        ]);
        assert_eq!(g.window_snapshot(0, 10).num_edges(), 1);
        assert_eq!(g.window_snapshot(15, 30).num_edges(), 2);
        assert_eq!(g.window_snapshot(31, 99).num_edges(), 0);
        // Inclusive bounds.
        assert_eq!(g.window_snapshot(10, 30).num_edges(), 3);
    }

    #[test]
    fn duplicate_events_dedup_in_snapshot_but_count_in_log() {
        let mut g = DynamicGraph::new(3);
        for t in 0..5 {
            g.insert_edge(NodeId(0), NodeId(1), t);
        }
        assert_eq!(g.num_events(), 5);
        assert_eq!(g.snapshot().num_edges(), 1);
        assert_eq!(g.max_pair_multiplicity(), 5);
    }

    #[test]
    fn snapshot_is_samplable() {
        // The dynamic path feeds the unchanged sampling stack.
        let mut g = DynamicGraph::new(100);
        for i in 0..99u64 {
            g.insert_edge(NodeId(i), NodeId(i + 1), i);
        }
        let s = g.snapshot();
        assert_eq!(s.degree(NodeId(0)), 1);
        assert_eq!(s.neighbors(NodeId(50)), &[NodeId(51)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_event_panics() {
        DynamicGraph::new(2).insert_edge(NodeId(0), NodeId(9), 0);
    }
}
