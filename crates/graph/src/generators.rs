//! Synthetic graph generators.
//!
//! The paper's industrial graphs are unavailable; these generators produce
//! scaled-down graphs with the properties that matter to sampling behaviour:
//! heavy-tailed degree distributions (e-commerce graphs), configurable
//! average degree, and deterministic seeding. The `syn` dataset in the paper
//! is itself "a synthesized large graph ... scaled from a smaller graph",
//! so synthetic generation is faithful to the paper's own methodology.

use crate::builder::GraphBuilder;
use crate::csr::CsrGraph;
use crate::types::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a power-law graph by preferential attachment: each new node
/// attaches `edges_per_node` out-edges, half to uniformly random earlier
/// nodes and half preferentially (by sampling an endpoint of an existing
/// edge), yielding a heavy-tailed in-degree distribution.
///
/// # Panics
///
/// Panics if `num_nodes < 2` or `edges_per_node == 0`.
///
/// # Example
///
/// ```
/// use lsdgnn_graph::generators::power_law;
/// let g = power_law(1_000, 8, 1);
/// assert_eq!(g.num_nodes(), 1_000);
/// assert!(g.max_degree() > 3 * (g.avg_degree() as u64));
/// ```
pub fn power_law(num_nodes: u64, edges_per_node: u64, seed: u64) -> CsrGraph {
    assert!(num_nodes >= 2, "need at least two nodes");
    assert!(edges_per_node > 0, "edges_per_node must be non-zero");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder =
        GraphBuilder::new(num_nodes).with_edge_capacity((num_nodes * edges_per_node) as usize);
    // endpoint pool for preferential attachment
    let mut pool: Vec<NodeId> = vec![NodeId(0)];
    for v in 1..num_nodes {
        for e in 0..edges_per_node {
            let target = if e % 2 == 0 {
                // uniform over earlier nodes
                NodeId(rng.gen_range(0..v))
            } else {
                // preferential: sample from endpoint pool
                pool[rng.gen_range(0..pool.len())]
            };
            if target.0 != v {
                builder.add_edge(NodeId(v), target);
                builder.add_edge(target, NodeId(v));
                pool.push(target);
                pool.push(NodeId(v));
            }
        }
    }
    builder.build()
}

/// Generates a uniform random directed graph (Erdős–Rényi with a fixed
/// out-degree), the "no hot spots" contrast case for cache ablations.
///
/// # Panics
///
/// Panics if `num_nodes < 2` or `out_degree == 0`.
///
/// # Example
///
/// ```
/// use lsdgnn_graph::generators::uniform_random;
/// let g = uniform_random(500, 10, 7);
/// assert!(g.avg_degree() <= 10.0);
/// ```
pub fn uniform_random(num_nodes: u64, out_degree: u64, seed: u64) -> CsrGraph {
    assert!(num_nodes >= 2, "need at least two nodes");
    assert!(out_degree > 0, "out_degree must be non-zero");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder =
        GraphBuilder::new(num_nodes).with_edge_capacity((num_nodes * out_degree) as usize);
    for v in 0..num_nodes {
        for _ in 0..out_degree {
            let mut t = rng.gen_range(0..num_nodes);
            if t == v {
                t = (t + 1) % num_nodes;
            }
            builder.add_edge(NodeId(v), NodeId(t));
        }
    }
    builder.build()
}

/// Generates an R-MAT graph (Chakrabarti et al.): each edge lands by
/// recursively descending a 2x2 probability matrix `(a, b, c, d)`,
/// producing the skewed, self-similar degree structure of web and
/// social graphs. The classic parameters are `(0.57, 0.19, 0.19, 0.05)`.
///
/// # Panics
///
/// Panics if `scale` is zero/over 30, `edges` is zero, or probabilities
/// are invalid (non-positive or not summing to ~1).
///
/// # Example
///
/// ```
/// use lsdgnn_graph::generators::rmat;
/// let g = rmat(10, 8_000, (0.57, 0.19, 0.19, 0.05), 1);
/// assert_eq!(g.num_nodes(), 1 << 10);
/// assert!(g.max_degree() > 4 * g.avg_degree() as u64);
/// ```
pub fn rmat(scale: u32, edges: u64, probs: (f64, f64, f64, f64), seed: u64) -> CsrGraph {
    assert!((1..=30).contains(&scale), "scale must be in 1..=30");
    assert!(edges > 0, "need at least one edge");
    let (a, b, c, d) = probs;
    assert!(
        a > 0.0 && b > 0.0 && c > 0.0 && d > 0.0,
        "probabilities must be positive"
    );
    assert!(
        ((a + b + c + d) - 1.0).abs() < 1e-6,
        "probabilities must sum to 1"
    );
    let n = 1u64 << scale;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::new(n).with_edge_capacity(edges as usize);
    for _ in 0..edges {
        let (mut row, mut col) = (0u64, 0u64);
        for level in (0..scale).rev() {
            let r: f64 = rng.gen();
            let bit = 1u64 << level;
            if r < a {
                // top-left: nothing set
            } else if r < a + b {
                col |= bit;
            } else if r < a + b + c {
                row |= bit;
            } else {
                row |= bit;
                col |= bit;
            }
        }
        if row != col {
            builder.add_edge(NodeId(row), NodeId(col));
        }
    }
    builder.build()
}

/// Generates a two-community graph with node labels: nodes in the same
/// community connect with probability `p_in`, across communities with
/// `p_out`. Used as the PPI-like proxy task when validating that streaming
/// sampling matches standard sampling on downstream quality (paper §4.2
/// Tech-2: "0.548 on PPI vs 0.549").
///
/// Returns the graph and the per-node community label.
///
/// # Panics
///
/// Panics if `num_nodes < 4` or probabilities are outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use lsdgnn_graph::generators::two_community;
/// let (g, labels) = two_community(200, 0.1, 0.01, 3);
/// assert_eq!(labels.len(), 200);
/// assert!(g.num_edges() > 0);
/// ```
pub fn two_community(num_nodes: u64, p_in: f64, p_out: f64, seed: u64) -> (CsrGraph, Vec<u8>) {
    assert!(num_nodes >= 4, "need at least four nodes");
    assert!(
        (0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out),
        "probabilities must be in [0, 1]"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let labels: Vec<u8> = (0..num_nodes).map(|v| (v >= num_nodes / 2) as u8).collect();
    let mut builder = GraphBuilder::new(num_nodes);
    for u in 0..num_nodes {
        for v in (u + 1)..num_nodes {
            let p = if labels[u as usize] == labels[v as usize] {
                p_in
            } else {
                p_out
            };
            if rng.gen_bool(p) {
                builder.add_undirected_edge(NodeId(u), NodeId(v));
            }
        }
    }
    (builder.build(), labels)
}

/// Scales a dataset configuration down to an executable graph: preserves
/// average degree and heavy-tailed structure while capping the node count.
///
/// # Panics
///
/// Panics if `max_nodes < 2`.
pub fn scaled_power_law(paper_nodes: u64, paper_edges: u64, max_nodes: u64, seed: u64) -> CsrGraph {
    assert!(max_nodes >= 2, "need at least two nodes");
    let nodes = paper_nodes.min(max_nodes);
    let avg_degree = (paper_edges as f64 / paper_nodes as f64).round().max(1.0) as u64;
    // power_law adds undirected pairs, so halve to preserve avg degree.
    power_law(nodes, avg_degree.div_ceil(2).max(1), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_is_heavy_tailed() {
        let g = power_law(2_000, 8, 42);
        assert!(g.check_invariants().is_ok());
        // A heavy tail: max degree far exceeds the mean.
        assert!(g.max_degree() as f64 > 5.0 * g.avg_degree());
    }

    #[test]
    fn power_law_deterministic() {
        let a = power_law(500, 4, 9);
        let b = power_law(500, 4, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_has_flat_degrees() {
        let g = uniform_random(1_000, 10, 1);
        assert!(g.check_invariants().is_ok());
        // Dedup can only reduce below out_degree.
        assert!(g.max_degree() <= 10);
        assert!(g.avg_degree() > 9.0);
    }

    #[test]
    fn two_community_is_assortative() {
        let (g, labels) = two_community(200, 0.2, 0.02, 5);
        let (mut intra, mut inter) = (0u64, 0u64);
        for (u, v) in g.edges() {
            if labels[u.index()] == labels[v.index()] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 4 * inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn rmat_is_skewed_and_sized() {
        let g = rmat(11, 16_000, (0.57, 0.19, 0.19, 0.05), 9);
        assert_eq!(g.num_nodes(), 2_048);
        assert!(g.check_invariants().is_ok());
        // R-MAT's recursive skew concentrates edges on low ids.
        assert!(g.max_degree() as f64 > 8.0 * g.avg_degree());
        let low_half: u64 = (0..1_024).map(|v| g.degree(NodeId(v))).sum();
        assert!(
            low_half as f64 > 0.6 * g.num_edges() as f64,
            "low-id half holds {low_half} of {}",
            g.num_edges()
        );
    }

    #[test]
    fn rmat_uniform_probs_are_flat() {
        // With a=b=c=d the recursion is unbiased: no heavy tail.
        let g = rmat(11, 16_000, (0.25, 0.25, 0.25, 0.25), 10);
        assert!((g.max_degree() as f64) < 6.0 * g.avg_degree().max(1.0));
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_rmat_probs_panic() {
        let _ = rmat(4, 10, (0.5, 0.5, 0.5, 0.5), 0);
    }

    #[test]
    fn scaled_preserves_avg_degree() {
        // Paper `ss`: 65.2M nodes, 592M edges => avg degree ~9.
        let g = scaled_power_law(65_200_000, 592_000_000, 5_000, 7);
        assert_eq!(g.num_nodes(), 5_000);
        let d = g.avg_degree();
        assert!((6.0..=12.0).contains(&d), "avg degree {d}");
    }

    #[test]
    fn scaled_caps_at_paper_size() {
        let g = scaled_power_law(100, 500, 1_000_000, 7);
        assert_eq!(g.num_nodes(), 100);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_power_law_panics() {
        let _ = power_law(1, 2, 0);
    }
}
