//! Incremental construction of [`CsrGraph`]s.

use crate::csr::CsrGraph;
use crate::types::NodeId;

/// Accumulates edges and finalizes them into a [`CsrGraph`].
///
/// Duplicate edges are removed at build time (keeping the first weight);
/// neighbor lists come out sorted.
///
/// # Example
///
/// ```
/// use lsdgnn_graph::{GraphBuilder, NodeId};
/// let mut b = GraphBuilder::new(2);
/// b.add_edge(NodeId(0), NodeId(1));
/// b.add_edge(NodeId(0), NodeId(1)); // duplicate, dropped at build
/// let g = b.build();
/// assert_eq!(g.num_edges(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_nodes: u64,
    edges: Vec<(NodeId, NodeId, f32)>,
    weighted: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_nodes` nodes.
    pub fn new(num_nodes: u64) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
            weighted: false,
        }
    }

    /// Pre-allocates space for `n` edges.
    pub fn with_edge_capacity(mut self, n: usize) -> Self {
        self.edges.reserve(n);
        self
    }

    /// Adds a directed edge `u -> v` with weight 1.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.add_weighted_edge(u, v, 1.0)
    }

    /// Adds a directed edge with an explicit weight; marks the graph
    /// weighted.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_weighted_edge(&mut self, u: NodeId, v: NodeId, w: f32) -> &mut Self {
        assert!(
            u.0 < self.num_nodes && v.0 < self.num_nodes,
            "edge ({u}, {v}) out of range for {} nodes",
            self.num_nodes
        );
        if w != 1.0 {
            self.weighted = true;
        }
        self.edges.push((u, v, w));
        self
    }

    /// Adds both `u -> v` and `v -> u`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_undirected_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.add_edge(u, v);
        self.add_edge(v, u)
    }

    /// Number of edges added so far (before dedup).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of nodes the graph will have.
    pub fn num_nodes(&self) -> u64 {
        self.num_nodes
    }

    /// Finalizes into CSR form: counting sort by source, then per-row sort
    /// and dedup.
    pub fn build(mut self) -> CsrGraph {
        let n = self.num_nodes as usize;
        // Sort by (src, dst) — stable so the first weight for a duplicate
        // edge wins.
        self.edges.sort_by_key(|&(u, v, _)| (u, v));
        self.edges.dedup_by_key(|&mut (u, v, _)| (u, v));

        let mut offsets = vec![0u64; n + 1];
        for &(u, _, _) in &self.edges {
            offsets[u.index() + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets: Vec<NodeId> = self.edges.iter().map(|&(_, v, _)| v).collect();
        let weights = if self.weighted {
            Some(self.edges.iter().map(|&(_, _, w)| w).collect())
        } else {
            None
        };
        CsrGraph {
            offsets,
            targets,
            weights,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_unique_rows() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(2));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(0), NodeId(2));
        let g = b.build();
        assert_eq!(g.neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.num_edges(), 2);
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn undirected_adds_both_directions() {
        let mut b = GraphBuilder::new(2);
        b.add_undirected_edge(NodeId(0), NodeId(1));
        let g = b.build();
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
    }

    #[test]
    fn weighted_edges_preserved() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(NodeId(0), NodeId(1), 2.5);
        let g = b.build();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weights(NodeId(0)).unwrap(), &[2.5]);
    }

    #[test]
    fn first_weight_wins_on_duplicate() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(NodeId(0), NodeId(1), 3.0);
        b.add_weighted_edge(NodeId(0), NodeId(1), 9.0);
        let g = b.build();
        assert_eq!(g.edge_weights(NodeId(0)).unwrap(), &[3.0]);
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert!(g.check_invariants().is_ok());
    }

    #[test]
    fn isolated_nodes_have_zero_degree() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(NodeId(1), NodeId(2));
        let g = b.build();
        assert_eq!(g.degree(NodeId(0)), 0);
        assert_eq!(g.degree(NodeId(4)), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(5));
    }
}
