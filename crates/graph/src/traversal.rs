//! Graph traversal utilities: BFS distances and connected components.
//!
//! Used for dataset sanity (generated graphs should be mostly one
//! component), partitioning-quality analysis, and multi-hop reachability
//! checks in tests.

use crate::csr::CsrGraph;
use crate::types::NodeId;
use std::collections::VecDeque;

/// BFS hop distances from `source`; unreachable nodes get `u32::MAX`.
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_distances(graph: &CsrGraph, source: NodeId) -> Vec<u32> {
    let n = graph.num_nodes() as usize;
    assert!(source.index() < n, "source out of range");
    let mut dist = vec![u32::MAX; n];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let d = dist[u.index()];
        for &v in graph.neighbors(u) {
            if dist[v.index()] == u32::MAX {
                dist[v.index()] = d + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Weakly connected components (directions ignored): returns a component
/// id per node and the component count.
pub fn connected_components(graph: &CsrGraph) -> (Vec<u32>, u32) {
    let n = graph.num_nodes() as usize;
    // Union over both edge directions via an undirected adjacency pass.
    let reverse = graph.reverse();
    let mut comp = vec![u32::MAX; n];
    let mut next = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n {
        if comp[start] != u32::MAX {
            continue;
        }
        comp[start] = next;
        queue.push_back(NodeId(start as u64));
        while let Some(u) = queue.pop_front() {
            for &v in graph.neighbors(u).iter().chain(reverse.neighbors(u)) {
                if comp[v.index()] == u32::MAX {
                    comp[v.index()] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    (comp, next)
}

/// Fraction of nodes in the largest weakly connected component.
pub fn largest_component_fraction(graph: &CsrGraph) -> f64 {
    if graph.num_nodes() == 0 {
        return 0.0;
    }
    let (comp, count) = connected_components(graph);
    let mut sizes = vec![0u64; count as usize];
    for c in comp {
        sizes[c as usize] += 1;
    }
    *sizes.iter().max().expect("at least one component") as f64 / graph.num_nodes() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators;

    #[test]
    fn bfs_distances_on_a_path() {
        let mut b = GraphBuilder::new(5);
        for v in 0..4 {
            b.add_edge(NodeId(v), NodeId(v + 1));
        }
        let d = bfs_distances(&b.build(), NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_marks_unreachable() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(2), NodeId(3));
        let d = bfs_distances(&b.build(), NodeId(0));
        assert_eq!(d[1], 1);
        assert_eq!(d[2], u32::MAX);
        assert_eq!(d[3], u32::MAX);
    }

    #[test]
    fn components_ignore_direction() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(NodeId(0), NodeId(1)); // one direction only
        b.add_edge(NodeId(2), NodeId(1));
        b.add_edge(NodeId(4), NodeId(5));
        let g = b.build();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3); // {0,1,2}, {3}, {4,5}
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[0], comp[3]);
        assert_eq!(comp[4], comp[5]);
    }

    #[test]
    fn power_law_graphs_are_essentially_connected() {
        // Preferential attachment links every new node to earlier ones.
        let g = generators::power_law(2_000, 6, 44);
        assert!(largest_component_fraction(&g) > 0.99);
    }

    #[test]
    fn two_hop_reachability_matches_sampling_universe() {
        // Every node a 2-hop sampler can reach is within BFS distance 2.
        let g = generators::uniform_random(300, 5, 45);
        let d = bfs_distances(&g, NodeId(7));
        for &hop1 in g.neighbors(NodeId(7)) {
            assert!(d[hop1.index()] <= 1);
            for &hop2 in g.neighbors(hop1) {
                assert!(d[hop2.index()] <= 2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_source_panics() {
        let g = generators::uniform_random(10, 2, 46);
        bfs_distances(&g, NodeId(99));
    }
}
