//! Hash partitioning of a graph across storage servers.
//!
//! LSD-GNN shards both adjacency and attributes across servers by node-id
//! hash (the AliGraph default). A sampler running on one server therefore
//! sees roughly `(p-1)/p` of its neighbor fetches go remote — the root cause
//! of the paper's Observation-2 (communication-bound sampling).

use crate::attributes::AttributeStore;
use crate::csr::CsrGraph;
use crate::reorder::{self, Permutation, ReorderPolicy};
use crate::types::NodeId;
use std::fmt;

/// Identifies one storage server / partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PartitionId(pub u32);

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// How nodes map to partitions.
#[derive(Debug, Clone, PartialEq)]
enum PartitionMap {
    /// Fibonacci hash of the node id (the AliGraph default).
    Hash,
    /// Explicit per-node assignment (e.g. from [`greedy_partition`]).
    Explicit(Vec<u32>),
}

/// A graph plus its partition map: every node is owned by exactly one
/// partition, chosen by a multiplicative hash of the node id (default)
/// or an explicit assignment.
///
/// # Example
///
/// ```
/// use lsdgnn_graph::{generators, PartitionedGraph, NodeId};
/// let g = generators::uniform_random(100, 4, 1);
/// let pg = PartitionedGraph::new(g, 4);
/// let owner = pg.owner(NodeId(17));
/// assert!(owner.0 < 4);
/// assert!(pg.is_local(NodeId(17), owner));
/// ```
#[derive(Debug, Clone)]
pub struct PartitionedGraph {
    graph: CsrGraph,
    attributes: Option<AttributeStore>,
    partitions: u32,
    map: PartitionMap,
}

impl PartitionedGraph {
    /// Wraps `graph` with a `partitions`-way hash partition map.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero.
    pub fn new(graph: CsrGraph, partitions: u32) -> Self {
        assert!(partitions > 0, "partition count must be non-zero");
        PartitionedGraph {
            graph,
            attributes: None,
            partitions,
            map: PartitionMap::Hash,
        }
    }

    /// Wraps `graph` with an explicit per-node partition assignment
    /// (e.g. the output of [`greedy_partition`]).
    ///
    /// # Panics
    ///
    /// Panics if the assignment length mismatches the node count, is
    /// empty, or references a partition ≥ its maximum + 1 inconsistently.
    pub fn with_assignment(graph: CsrGraph, assignment: Vec<u32>) -> Self {
        assert_eq!(
            assignment.len() as u64,
            graph.num_nodes(),
            "assignment must cover every node"
        );
        assert!(!assignment.is_empty(), "assignment must be non-empty");
        let partitions = assignment.iter().copied().max().unwrap() + 1;
        PartitionedGraph {
            graph,
            attributes: None,
            partitions,
            map: PartitionMap::Explicit(assignment),
        }
    }

    /// Attaches an attribute store (sharded by the same map).
    ///
    /// # Panics
    ///
    /// Panics if the store covers a different node count than the graph.
    pub fn with_attributes(mut self, attributes: AttributeStore) -> Self {
        assert_eq!(
            attributes.num_nodes(),
            self.graph.num_nodes(),
            "attribute store node count mismatch"
        );
        self.attributes = Some(attributes);
        self
    }

    /// The underlying graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The attached attributes, if any.
    pub fn attributes(&self) -> Option<&AttributeStore> {
        self.attributes.as_ref()
    }

    /// Number of partitions.
    pub fn partitions(&self) -> u32 {
        self.partitions
    }

    /// The partition owning node `v`.
    pub fn owner(&self, v: NodeId) -> PartitionId {
        match &self.map {
            PartitionMap::Hash => {
                let h = v.0.wrapping_mul(0x9E3779B97F4A7C15);
                PartitionId((h >> 32) as u32 % self.partitions)
            }
            PartitionMap::Explicit(a) => PartitionId(a[v.index()]),
        }
    }

    /// Whether `v` lives on partition `p`.
    pub fn is_local(&self, v: NodeId, p: PartitionId) -> bool {
        self.owner(v) == p
    }

    /// Nodes owned by partition `p` (O(n) scan; used at setup time).
    pub fn nodes_of(&self, p: PartitionId) -> Vec<NodeId> {
        (0..self.graph.num_nodes())
            .map(NodeId)
            .filter(|&v| self.owner(v) == p)
            .collect()
    }

    /// Fraction of edges whose endpoints live on different partitions —
    /// the remote-access ratio sampling will experience.
    pub fn edge_cut_fraction(&self) -> f64 {
        let total = self.graph.num_edges();
        if total == 0 {
            return 0.0;
        }
        let cut = self
            .graph
            .edges()
            .filter(|&(u, v)| self.owner(u) != self.owner(v))
            .count();
        cut as f64 / total as f64
    }

    /// Expected remote fraction under ideal hash partitioning:
    /// `(p - 1) / p`.
    pub fn ideal_remote_fraction(&self) -> f64 {
        (self.partitions - 1) as f64 / self.partitions as f64
    }

    /// Per-partition structure bytes (even split of the CSR arrays plus the
    /// attribute shard), for footprint accounting.
    pub fn bytes_per_partition(&self) -> u64 {
        let attr = self.attributes.as_ref().map_or(0, |a| a.total_bytes());
        (self.graph.structure_bytes() + attr) / self.partitions as u64
    }

    /// Relabels the partitioned graph under `policy` (see
    /// [`crate::reorder`]), returning the reordered graph and the
    /// old↔new [`Permutation`] callers must use to remap roots,
    /// hot-cache keys and any other id they still hold.
    ///
    /// Logical ownership is preserved exactly: the new graph carries an
    /// explicit assignment with `owner(perm.to_new(v)) == self.owner(v)`
    /// for every node, and the partition *count* is kept even if some
    /// partition ends up empty — so local/remote splits, per-shard
    /// server topology and degradation behavior are unchanged by the
    /// relabeling. Attributes, if attached, move with their nodes.
    pub fn reorder(&self, policy: ReorderPolicy) -> (PartitionedGraph, Permutation) {
        let perm = reorder::compute_permutation(&self.graph, policy);
        let graph = reorder::relabel_graph(&self.graph, &perm);
        let attributes = self
            .attributes
            .as_ref()
            .map(|a| reorder::relabel_attributes(a, &perm));
        let mut assignment = vec![0u32; graph.num_nodes() as usize];
        for old in 0..self.graph.num_nodes() {
            let v = NodeId(old);
            assignment[perm.to_new(v).index()] = self.owner(v).0;
        }
        let pg = PartitionedGraph {
            graph,
            attributes,
            partitions: self.partitions,
            map: PartitionMap::Explicit(assignment),
        };
        (pg, perm)
    }
}

/// A greedy partitioner: grows one BFS region per partition from
/// distance-spread seeds, then refines with label-propagation sweeps
/// that move each node to the partition holding the plurality of its
/// neighbors, subject to a balance cap. Cuts far fewer edges than
/// hashing on clustered graphs — the kind of framework-level
/// optimization the paper calls orthogonal to its hardware (§8,
/// "caching and partition in AliGraph").
///
/// The seeded growth matters: label propagation alone, started from a
/// random assignment, tends to merge distinct communities under one
/// label until the balance cap halts it, leaving a mixed boundary.
/// Growing contiguous regions first gives the sweeps a coherent
/// starting point to polish.
///
/// # Panics
///
/// Panics if `partitions` is zero or the graph is empty.
pub fn greedy_partition(graph: &CsrGraph, partitions: u32, sweeps: u32) -> Vec<u32> {
    assert!(partitions > 0, "partition count must be non-zero");
    let n = graph.num_nodes();
    assert!(n > 0, "graph must be non-empty");
    let cap = (n as usize).div_ceil(partitions as usize) * 11 / 10 + 1;
    let mut assign = grow_regions(graph, partitions, cap);
    let mut sizes = vec![0usize; partitions as usize];
    for &p in &assign {
        sizes[p as usize] += 1;
    }
    let mut votes = vec![0u32; partitions as usize];
    for _ in 0..sweeps {
        let mut moved = 0u64;
        for v in 0..n {
            let ns = graph.neighbors(NodeId(v));
            if ns.is_empty() {
                continue;
            }
            votes.fill(0);
            for &u in ns {
                votes[assign[u.index()] as usize] += 1;
            }
            let cur = assign[v as usize];
            let (best, best_votes) = votes
                .iter()
                .enumerate()
                .max_by_key(|&(p, &c)| (c, usize::from(p as u32 == cur)))
                .map(|(p, &c)| (p as u32, c))
                .expect("at least one partition");
            if best != cur && best_votes > votes[cur as usize] && sizes[best as usize] < cap {
                sizes[cur as usize] -= 1;
                sizes[best as usize] += 1;
                assign[v as usize] = best;
                moved += 1;
            }
        }
        if moved == 0 {
            break;
        }
    }
    assign
}

/// Contiguous-region initialization for [`greedy_partition`]: picks
/// distance-spread seeds (highest-degree node first, then whatever lies
/// farthest from every chosen seed) and grows one FIFO frontier per
/// partition, round-robin, until every node is claimed.
fn grow_regions(graph: &CsrGraph, partitions: u32, cap: usize) -> Vec<u32> {
    const UNASSIGNED: u32 = u32::MAX;
    let n = graph.num_nodes() as usize;
    let k = partitions as usize;
    let degree = |v: usize| graph.neighbors(NodeId(v as u64)).len();

    // k-center seed spread: each next seed maximizes the BFS distance to
    // the seeds so far (unreachable counts as farthest), ties broken by
    // degree. Keeps seeds in distinct clusters when the graph has them.
    let mut seeds: Vec<usize> = Vec::with_capacity(k.min(n));
    if let Some(first) = (0..n).max_by_key(|&v| (degree(v), std::cmp::Reverse(v))) {
        seeds.push(first);
    }
    while seeds.len() < k.min(n) {
        let mut dist = vec![u32::MAX; n];
        let mut q = std::collections::VecDeque::new();
        for &s in &seeds {
            dist[s] = 0;
            q.push_back(s);
        }
        while let Some(v) = q.pop_front() {
            for &u in graph.neighbors(NodeId(v as u64)) {
                if dist[u.index()] == u32::MAX {
                    dist[u.index()] = dist[v] + 1;
                    q.push_back(u.index());
                }
            }
        }
        let next = (0..n)
            .filter(|v| dist[*v] != 0)
            .max_by_key(|&v| (dist[v], degree(v), std::cmp::Reverse(v)))
            .expect("seed count is capped at the node count");
        seeds.push(next);
    }

    let mut assign = vec![UNASSIGNED; n];
    let mut sizes = vec![0usize; k];
    let mut frontiers = vec![std::collections::VecDeque::new(); k];
    for (p, &s) in seeds.iter().enumerate() {
        frontiers[p].push_back(s);
    }
    // Round-robin growth: each partition claims one node per round from
    // its frontier (falling back to a scan cursor once the frontier is
    // exhausted, which also absorbs disconnected nodes), so regions stay
    // contiguous and sizes stay within the cap.
    let mut cursor = 0usize;
    let mut remaining = n;
    while remaining > 0 {
        for p in 0..k {
            if remaining == 0 || sizes[p] >= cap {
                continue;
            }
            let mut picked = None;
            while let Some(v) = frontiers[p].pop_front() {
                if assign[v] == UNASSIGNED {
                    picked = Some(v);
                    break;
                }
            }
            if picked.is_none() {
                while cursor < n && assign[cursor] != UNASSIGNED {
                    cursor += 1;
                }
                if cursor < n {
                    picked = Some(cursor);
                }
            }
            if let Some(v) = picked {
                assign[v] = p as u32;
                sizes[p] += 1;
                remaining -= 1;
                for &u in graph.neighbors(NodeId(v as u64)) {
                    if assign[u.index()] == UNASSIGNED {
                        frontiers[p].push_back(u.index());
                    }
                }
            }
        }
    }
    assign
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn pg(parts: u32) -> PartitionedGraph {
        PartitionedGraph::new(generators::uniform_random(2_000, 8, 3), parts)
    }

    #[test]
    fn every_node_has_exactly_one_owner() {
        let g = pg(4);
        let mut counts = vec![0u64; 4];
        for v in 0..2_000 {
            counts[g.owner(NodeId(v)).0 as usize] += 1;
        }
        assert_eq!(counts.iter().sum::<u64>(), 2_000);
        // Hash balance: each partition within 25% of the mean.
        for c in counts {
            assert!((375..=625).contains(&c), "unbalanced partition: {c}");
        }
    }

    #[test]
    fn nodes_of_matches_owner() {
        let g = pg(3);
        for p in 0..3 {
            for v in g.nodes_of(PartitionId(p)) {
                assert_eq!(g.owner(v), PartitionId(p));
            }
        }
    }

    #[test]
    fn edge_cut_near_ideal_for_hash_partition() {
        let g = pg(5);
        let cut = g.edge_cut_fraction();
        let ideal = g.ideal_remote_fraction();
        assert!((cut - ideal).abs() < 0.05, "cut {cut} vs ideal {ideal}");
    }

    #[test]
    fn single_partition_has_no_remote() {
        let g = pg(1);
        assert_eq!(g.edge_cut_fraction(), 0.0);
        assert_eq!(g.ideal_remote_fraction(), 0.0);
    }

    #[test]
    fn attributes_attach_and_count() {
        let base = generators::uniform_random(100, 4, 1);
        let attrs = AttributeStore::zeros(100, 16);
        let g = PartitionedGraph::new(base, 4).with_attributes(attrs);
        assert!(g.attributes().is_some());
        assert!(g.bytes_per_partition() > 0);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn wrong_attribute_count_panics() {
        let base = generators::uniform_random(100, 4, 1);
        let attrs = AttributeStore::zeros(99, 16);
        let _ = PartitionedGraph::new(base, 4).with_attributes(attrs);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_partitions_panics() {
        let _ = pg(0);
    }

    #[test]
    fn greedy_partition_cuts_fewer_edges_than_hash() {
        // Two-community graph: greedy should find the communities.
        let (g, _) = crate::generators::two_community(400, 0.08, 0.01, 17);
        let hash = PartitionedGraph::new(g.clone(), 2);
        let assign = greedy_partition(&g, 2, 8);
        let greedy = PartitionedGraph::with_assignment(g, assign);
        let hash_cut = hash.edge_cut_fraction();
        let greedy_cut = greedy.edge_cut_fraction();
        // With seeded region growth the partitioner recovers the planted
        // communities (cut near the ~0.11 ideal for these densities), so
        // the §8 claim holds with margin: at least 2x fewer cut edges
        // than hashing.
        assert!(
            greedy_cut * 2.0 < hash_cut,
            "greedy {greedy_cut} vs hash {hash_cut}"
        );
    }

    #[test]
    fn greedy_partition_respects_balance() {
        let g = crate::generators::power_law(1_000, 6, 18);
        let assign = greedy_partition(&g, 4, 6);
        let mut sizes = [0usize; 4];
        for p in &assign {
            sizes[*p as usize] += 1;
        }
        let cap = 1_000usize.div_ceil(4) * 11 / 10 + 1;
        for s in sizes {
            assert!(s <= cap, "partition size {s} exceeds cap {cap}");
        }
    }

    #[test]
    fn explicit_assignment_round_trips() {
        let g = crate::generators::uniform_random(10, 2, 19);
        let assign = vec![0u32, 1, 0, 1, 0, 1, 0, 1, 0, 1];
        let pg = PartitionedGraph::with_assignment(g, assign.clone());
        assert_eq!(pg.partitions(), 2);
        for (v, &p) in assign.iter().enumerate() {
            assert_eq!(pg.owner(NodeId(v as u64)), PartitionId(p));
        }
    }

    #[test]
    #[should_panic(expected = "cover")]
    fn short_assignment_panics() {
        let g = crate::generators::uniform_random(10, 2, 20);
        let _ = PartitionedGraph::with_assignment(g, vec![0, 1]);
    }
}
