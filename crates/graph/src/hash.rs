//! Fast non-cryptographic hashing for node-id keyed maps.
//!
//! `std`'s default `SipHash` pays for HashDoS resistance the serving
//! data plane never needs: node ids are internal `u64` newtypes, not
//! attacker-controlled strings. [`FnvHasher`] is FNV-1a with a
//! multiply-fold fast path for the integer writes the derived
//! `Hash` impls of [`NodeId`](crate::NodeId) (and tuples of it) emit —
//! effectively an identity hasher with one mixing multiply, which is
//! what a `u64` key space wants.
//!
//! # Example
//!
//! ```
//! use lsdgnn_graph::hash::NodeMap;
//! use lsdgnn_graph::NodeId;
//!
//! let mut m: NodeMap<u32> = NodeMap::default();
//! m.insert(NodeId(17), 1);
//! assert_eq!(m[&NodeId(17)], 1);
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

use crate::types::NodeId;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Fibonacci multiplier (2^64 / golden ratio) for the integer fast path.
const FIB_MIX: u64 = 0x9e37_79b9_7f4a_7c15;

/// FNV-1a over byte streams, with a multiply-fold fast path for the
/// fixed-width integer writes that `u64`-newtype keys produce.
#[derive(Debug, Clone)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(FNV_OFFSET)
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    // Integer keys (NodeId's derived Hash emits one write_u64) skip the
    // per-byte loop: xor-fold then one mixing multiply keeps distinct
    // ids in distinct buckets at a fraction of SipHash's cost.
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(FIB_MIX);
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    fn write_u8(&mut self, v: u8) {
        self.write_u64(v as u64);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// The `BuildHasher` for [`FnvHasher`]-keyed collections.
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

/// A `HashMap` hashed with [`FnvHasher`].
pub type FnvHashMap<K, V> = HashMap<K, V, FnvBuildHasher>;

/// A `HashSet` hashed with [`FnvHasher`].
pub type FnvHashSet<K> = HashSet<K, FnvBuildHasher>;

/// The node-id keyed map the sampling data plane uses everywhere.
pub type NodeMap<V> = FnvHashMap<NodeId, V>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips_node_keys() {
        let mut m: NodeMap<u64> = NodeMap::default();
        for v in 0..1_000u64 {
            m.insert(NodeId(v), v * 2);
        }
        assert_eq!(m.len(), 1_000);
        for v in 0..1_000u64 {
            assert_eq!(m[&NodeId(v)], v * 2);
        }
    }

    #[test]
    fn distinct_ids_hash_distinctly() {
        // Sequential and stride-heavy id patterns (the common frontier
        // shapes) must not collapse onto one bucket chain.
        let mut seen = FnvHashSet::default();
        for v in 0..10_000u64 {
            let mut h = FnvHasher::default();
            h.write_u64(v);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn byte_path_matches_fnv1a_vectors() {
        // Classic FNV-1a test vector: "a" -> 0xaf63dc4c8601ec8c.
        let mut h = FnvHasher::default();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn string_and_tuple_keys_work() {
        let mut m: FnvHashMap<String, u32> = FnvHashMap::default();
        m.insert("clicks".into(), 3);
        assert_eq!(m["clicks"], 3);
        let mut t: FnvHashMap<(NodeId, NodeId), u32> = FnvHashMap::default();
        t.insert((NodeId(1), NodeId(2)), 9);
        assert_eq!(t[&(NodeId(1), NodeId(2))], 9);
    }
}
